#!/usr/bin/env python
"""Bill capping over a simulated week under a tight monthly budget.

Reproduces the Section VII-C scenario in miniature: a monthly budget too
small to serve everyone is split into hourly budgets by the
history-driven budgeter; the bill capper guarantees premium customers
(80 % of traffic) and admits ordinary customers best-effort. The run
prints a per-day ledger and the month-level guarantees.

Run:
    python examples/bill_capping_month.py [--days N]
"""

import argparse

from repro.core import CappingStep
from repro.experiments import paper_world
from repro.sim import Simulator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=7, help="days to simulate")
    args = parser.parse_args()
    hours = args.days * 24

    world = paper_world(max_servers=500_000)
    sim = Simulator(world.sites, world.workload, world.mix)

    # Calibrate the budget: 85% of the uncapped spend — the "tight"
    # regime of the paper's $1.5M level (premium traffic alone costs
    # ~75% of the bill in this world, so 85% forces real trade-offs).
    uncapped = sim.run_capping(hours=hours)
    monthly_budget = uncapped.total_cost * (world.hours / hours) * 0.85
    print(
        f"Uncapped spend over {args.days} days: ${uncapped.total_cost:,.0f}; "
        f"monthly budget set to ${monthly_budget:,.0f}"
    )

    budgeter = world.budgeter(monthly_budget)
    capped = sim.run_capping(budgeter, hours=hours)

    print(f"\n{'day':>4} {'cost $':>10} {'budget $':>10} {'prem%':>7} {'ord%':>7} {'steps'}")
    for day in range(args.days):
        sl = slice(day * 24, (day + 1) * 24)
        recs = capped.hours[sl]
        cost = sum(h.realized_cost for h in recs)
        budget = sum(min(h.budget, 10 * cost + 1) for h in recs)
        prem = sum(h.served_premium_rps for h in recs) / max(
            1e-9, sum(h.demand_premium_rps for h in recs)
        )
        ordi = sum(h.served_ordinary_rps for h in recs) / max(
            1e-9, sum(h.demand_ordinary_rps for h in recs)
        )
        steps = "".join(
            {
                CappingStep.COST_MIN: ".",
                CappingStep.THROUGHPUT_MAX: "t",
                CappingStep.PREMIUM_ONLY: "P",
            }[h.step]
            for h in recs
        )
        print(f"{day:>4} {cost:>10,.0f} {budget:>10,.0f} {prem:>6.1%} {ordi:>6.1%}  {steps}")

    print("\nWeek totals:")
    print(f"  spend:              ${capped.total_cost:,.0f}")
    print(f"  premium throughput: {capped.premium_throughput_fraction:.1%} (guaranteed)")
    print(f"  ordinary admitted:  {capped.ordinary_throughput_fraction:.1%} (best effort)")
    print(f"  hours over budget:  {capped.hours_over_budget} (mandatory-premium hours)")
    print(f"  saved vs uncapped:  {1 - capped.total_cost / uncapped.total_cost:.1%}")


if __name__ == "__main__":
    main()
