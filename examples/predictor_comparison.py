#!/usr/bin/env python
"""Comparing workload predictors for the budgeter.

Section VI-B uses a 2-week hour-of-week average; Section IX asks what
happens when predictions go wrong. This example scores three
forecasters walk-forward on a fresh month — the paper's window average,
an EWMA variant, and naive last-week persistence — then shows how each
drives the budgeter's hourly split, and how the adaptive budgeter
absorbs a deliberately corrupted forecast.

Run:
    python examples/predictor_comparison.py
"""

import numpy as np

from repro.core import AdaptiveBudgeter, Budgeter
from repro.sim import Simulator
from repro.experiments import paper_world
from repro.workload import (
    EwmaByHourPredictor,
    HourOfWeekPredictor,
    LastWeekPredictor,
    evaluate_predictor,
    wikipedia_like_trace,
)


def main() -> None:
    world = paper_world(max_servers=500_000)

    print("Walk-forward forecast accuracy on the evaluated month:")
    print(f"{'predictor':<28} {'MAPE':>7} {'RMSE Mrps':>10} {'bias Mrps':>10}")
    predictors = {
        "hour-of-week avg (paper)": HourOfWeekPredictor(world.history),
        "EWMA (alpha=0.5)": EwmaByHourPredictor(world.history, alpha=0.5),
        "last-week persistence": LastWeekPredictor(world.history),
    }
    for name, pred in predictors.items():
        score = evaluate_predictor(pred, world.workload)
        print(
            f"{name:<28} {score.mape:>6.1%} {score.rmse / 1e6:>10.1f} "
            f"{score.bias / 1e6:>+10.1f}"
        )

    # --- budget consequences of a corrupted forecast -----------------------
    sim = Simulator(world.sites, world.workload, world.mix)
    hours = 7 * 24
    anchor = sim.run_capping(hours=hours)
    budget = anchor.total_cost * 0.85

    bad_history = wikipedia_like_trace(
        world.history.hours,
        0.6 * float(world.history.rates_rps.max()),
        seed=999,
        noise=0.25,
        start_weekday=world.history.start_weekday,
    )
    corrupted = HourOfWeekPredictor(bad_history)

    plain = sim.run_capping(
        Budgeter(budget, corrupted, month_hours=hours,
                 start_weekday=world.workload.start_weekday),
        hours=hours,
    )
    adaptive = sim.run_capping(
        AdaptiveBudgeter(budget, corrupted, month_hours=hours,
                         start_weekday=world.workload.start_weekday),
        hours=hours,
    )

    print(f"\nOne week at 85% budget (${budget:,.0f}) with a corrupted forecast:")
    print(f"{'budgeter':<22} {'spend':>10} {'vs budget':>10} {'ordinary':>9}")
    for name, res in (("plain (paper)", plain), ("adaptive (robust)", adaptive)):
        print(
            f"{name:<22} {res.total_cost:>10,.0f} "
            f"{res.total_cost / budget:>9.1%} "
            f"{res.ordinary_throughput_fraction:>8.1%}"
        )
    print(
        "\nThe adaptive budgeter re-normalizes hourly grants against the\n"
        "remaining budget, amortizing forecast error instead of violating\n"
        "the period total."
    )


if __name__ == "__main__":
    main()
