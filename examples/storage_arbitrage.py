#!/usr/bin/env python
"""Day-ahead battery arbitrage against stepped market prices.

The paper's related work (Urgaonkar et al., Govindan et al.) taps
stored energy to cut power bills; this example runs the repository's
day-ahead storage planner on Data Center 1: given tomorrow's dispatch
profile, the MILP charges the battery in cheap overnight hours and
discharges through the afternoon so the market stays below its price
breakpoints.

Run:
    python examples/storage_arbitrage.py
"""

import numpy as np

from repro.core import plan_storage_schedule
from repro.datacenter import Battery
from repro.experiments import paper_world


def main() -> None:
    world = paper_world(max_servers=500_000)
    site = world.sites[0]  # DC1 at bus B

    # Tomorrow's dispatch: assume DC1 carries a third of the workload.
    day = range(24, 48)
    hours = [site.hour(t) for t in day]
    base_power = np.array(
        [
            site.datacenter.power_mw(float(world.workload.rates_rps[t]) / 3.0)
            for t in day
        ]
    )

    battery = Battery(
        capacity_mwh=60.0,
        max_charge_mw=12.0,
        max_discharge_mw=12.0,
        charge_efficiency=0.92,
        discharge_efficiency=0.92,
    )
    plan = plan_storage_schedule(hours, base_power, battery)

    print(f"{'hour':>4} {'bg MW':>7} {'DC MW':>7} {'grid MW':>8} "
          f"{'chg':>5} {'dis':>5} {'SOC MWh':>8} {'price':>6}")
    for i, sh in enumerate(hours):
        market = sh.background_mw + plan.grid_mw[i]
        price = sh.policy.price(market)
        action = ""
        if plan.charge_mw[i] > 0.01:
            action = "chg"
        elif plan.discharge_mw[i] > 0.01:
            action = "DIS"
        print(
            f"{i:>4} {sh.background_mw:>7.1f} {base_power[i]:>7.1f} "
            f"{plan.grid_mw[i]:>8.1f} {plan.charge_mw[i]:>5.1f} "
            f"{plan.discharge_mw[i]:>5.1f} {plan.soc_mwh[i + 1]:>8.1f} "
            f"{price:>6.2f} {action}"
        )

    print(f"\nwithout battery: ${plan.baseline_cost:,.2f}")
    print(f"with battery:    ${plan.planned_cost:,.2f}")
    print(f"daily saving:    {plan.planned_saving:.1%} "
          f"(energy-neutral plan: final SOC >= initial)")


if __name__ == "__main__":
    main()
