#!/usr/bin/env python
"""Hierarchical dispatch across a 12-site, 4-region network.

Section IX of the paper flags the centralized capper's scalability and
proposes a hierarchical architecture as future work. This example runs
the repository's two-level implementation — regions bid sampled cost
curves, a small coordinator MILP splits the load, regions dispatch
locally — and compares bill and structure against the centralized
optimum.

Run:
    python examples/hierarchical_dispatch.py
"""

from collections import defaultdict

from repro.core import (
    CostMinimizer,
    HierarchicalDispatcher,
    Region,
    SiteHour,
)
from repro.experiments import paper_world


def build_network(world, n_sites=12, t=40):
    """Replicate the three paper sites into a 12-site national fleet."""
    sites = []
    for i in range(n_sites):
        base = world.sites[i % 3].hour(t)
        sites.append(
            SiteHour(
                name=f"{base.name}.{i // 3}",
                affine=base.affine,
                policy=base.policy,
                background_mw=base.background_mw * (0.85 + 0.04 * (i % 7)),
                power_cap_mw=base.power_cap_mw,
                max_rate_rps=base.max_rate_rps,
            )
        )
    return sites


def main() -> None:
    world = paper_world()
    sites = build_network(world)
    regions = [
        Region(name, tuple(sites[i : i + 3]))
        for i, name in zip(range(0, 12, 3), ("east", "central", "west", "pacific"))
    ]
    lam = 0.45 * sum(s.max_rate_rps for s in sites)
    print(f"Dispatching {lam / 1e6:,.0f} Mrps across {len(sites)} sites "
          f"in {len(regions)} regions\n")

    central = CostMinimizer().solve(sites, lam)
    dispatcher = HierarchicalDispatcher(samples_per_region=8)
    hier = dispatcher.solve(regions, lam)

    regional_rates = defaultdict(float)
    for alloc in hier.allocations:
        for region in regions:
            if any(s.name == alloc.site for s in region.sites):
                regional_rates[region.name] += alloc.rate_rps

    print(f"{'region':>8} {'sites':>5} {'assigned Mrps':>14} {'share':>7}")
    for region in regions:
        rate = regional_rates[region.name]
        print(
            f"{region.name:>8} {len(region.sites):>5} "
            f"{rate / 1e6:>14,.0f} {rate / lam:>6.1%}"
        )

    print(f"\ncentralized bill:  ${central.predicted_cost:,.0f}")
    print(f"hierarchical bill: ${hier.predicted_cost:,.0f}")
    gap = hier.predicted_cost / central.predicted_cost - 1
    print(f"optimality gap:    {gap:.2%}")
    print(
        "\nThe coordinator MILP sees only "
        f"{len(regions)} x {dispatcher.samples_per_region} sampled points, "
        "independent of how many sites each region holds."
    )


if __name__ == "__main__":
    main()
