#!/usr/bin/env python
"""Chaos run: a fault-injected Cost Capping month that must not crash.

The paper's control loop runs hourly against real-world inputs — ISO
price feeds, background-demand telemetry, a MILP stack, a stateful
budgeter — every one of which can fail. This example drives the
simulator through a seeded storm of those failures and checks the
graceful-degradation contract:

* every hour still carries a dispatch decision (no crashed hours);
* solver-stack failures are dispatched by a degradation policy and
  marked as DEGRADED hours;
* budgeter restarts resume from the hourly checkpoint;
* telemetry counts every injected fault and degraded hour;
* with no faults, the simulator's output is bit-identical to a plain
  run (the resilience layer is pay-per-fault).

Run ``python examples/chaos_month.py --hours 48`` for the CI-sized
smoke; the assertions make it a self-checking chaos test.
"""

import argparse

from repro.experiments import paper_world
from repro.resilience import DegradationPolicy, FaultInjector, FaultSpec
from repro.sim import Simulator
from repro.telemetry import Telemetry


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=int, default=72)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    world = paper_world(max_servers=500_000, seed=3)
    sim = Simulator(world.sites, world.workload, world.mix)

    # Anchor: an uncapped run prices the month and doubles as the
    # bit-identical reference for the fault-free path below.
    anchor = sim.run_capping(hours=args.hours, name="anchor")
    monthly = anchor.total_cost * world.hours / args.hours * 0.9
    print(f"anchor (no faults):  ${anchor.total_cost:,.0f} over {args.hours} h "
          f"-> monthly budget ${monthly:,.0f}")

    # The storm: stale prices, dead sensors, solver deaths and
    # timeouts, budgeter restarts — all seeded, all per-hour Bernoulli.
    spec = FaultSpec(
        price_stale=0.15,
        sensor_dropout=0.10,
        solver_error=0.12,
        solver_timeout=0.05,
        budget_loss=0.05,
        seed=args.seed,
    )
    injector = FaultInjector(spec)
    injected = injector.schedule_counts(args.hours)
    print("fault schedule:      "
          + ", ".join(f"{k}={v}" for k, v in injected.items() if v))

    tel = Telemetry()
    chaos_sim = Simulator(world.sites, world.workload, world.mix, telemetry=tel)
    result = chaos_sim.run_capping(
        world.budgeter(monthly),
        hours=args.hours,
        name="chaos",
        faults=injector,
        degradation=DegradationPolicy.PROPORTIONAL,
    )

    print(f"\n[chaos month, {args.hours} h]")
    print(f"  total cost:          ${result.total_cost:,.0f}")
    print(f"  premium throughput:  {result.premium_throughput_fraction:.2%}")
    print(f"  ordinary throughput: {result.ordinary_throughput_fraction:.2%}")
    print(f"  degraded hours:      {result.degraded_hours}")
    print(f"  steps: " + ", ".join(
        f"{step.value}={n}" for step, n in sorted(
            result.step_counts().items(), key=lambda kv: kv[0].value
        )
    ))
    counters = {
        metric.name: metric.value
        for metric in tel.registry
        if metric.name.startswith("resilience.")
    }
    for name in sorted(counters):
        print(f"  {name}: {counters[name]:.0f}")

    # -- the graceful-degradation contract --------------------------------
    assert len(result.hours) == args.hours, "an hour lost its dispatch"
    assert all(h.sites for h in result.hours), "an hour carries no allocation"
    assert result.degraded_hours > 0, "storm produced no degraded hours"
    assert counters.get("resilience.degraded_hours", 0) > 0
    assert sum(
        v for k, v in counters.items() if k.startswith("resilience.injected.")
    ) > 0, "telemetry recorded no injected faults"

    # Fault-free determinism: a zero-probability injector must reproduce
    # the anchor bit for bit.
    clean_sim = Simulator(world.sites, world.workload, world.mix)
    clean = clean_sim.run_capping(
        hours=args.hours, name="anchor", faults=FaultInjector(FaultSpec())
    )
    assert [h.realized_cost for h in clean.hours] == [
        h.realized_cost for h in anchor.hours
    ], "fault-free path diverged from the plain simulator"

    print("\nall chaos invariants hold: every hour dispatched, degraded "
          "hours counted, fault-free path bit-identical.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
