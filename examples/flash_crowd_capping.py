#!/usr/bin/env python
"""Surviving a breaking-news flash crowd within the electricity budget.

The paper motivates bill capping with "breaking news on major newspaper
websites [that] may incur a huge number of accesses in a short time and
thus lead to unexpectedly high electricity costs". This example injects
a 3x flash crowd into day two of the simulated month and compares how
the capped system rides through it: premium customers keep full QoS,
ordinary admission is squeezed during the spike, and the bill stays at
the budget.

Run:
    python examples/flash_crowd_capping.py
"""

from repro.experiments import paper_world
from repro.sim import Simulator
from repro.workload import FlashCrowd


def main() -> None:
    crowd = FlashCrowd(start_hour=30, duration_h=10, magnitude=3.0)
    calm = paper_world(max_servers=500_000)
    stormy = paper_world(max_servers=500_000, flash_crowds=(crowd,))

    hours = 72
    sim_calm = Simulator(calm.sites, calm.workload, calm.mix)
    sim_storm = Simulator(stormy.sites, stormy.workload, stormy.mix)

    # Budget provisioned from *calm* history — the spike is unexpected.
    base = sim_calm.run_capping(hours=hours)
    monthly_budget = base.total_cost * (calm.hours / hours) * 1.05
    print(
        f"Budget provisioned for calm traffic (+5% safety): "
        f"${monthly_budget:,.0f}/month"
    )

    uncapped = sim_storm.run_capping(hours=hours)
    capped = sim_storm.run_capping(stormy.budgeter(monthly_budget), hours=hours)

    print(f"\n{'hour':>5} {'demand Mrps':>12} {'uncapped $':>11} {'capped $':>10} {'ord%':>6}")
    for t in range(24, 48):
        h_un, h_cap = uncapped.hours[t], capped.hours[t]
        marker = " <- flash crowd" if crowd.start_hour <= t < crowd.start_hour + crowd.duration_h else ""
        print(
            f"{t:>5} {h_cap.demand_premium_rps + h_cap.demand_ordinary_rps:>10.2e} "
            f"{h_un.realized_cost:>11,.0f} {h_cap.realized_cost:>10,.0f} "
            f"{h_cap.served_ordinary_rps / max(1e-9, h_cap.demand_ordinary_rps):>5.0%}"
            f"{marker}"
        )

    scale = calm.hours / hours
    print("\nThree-day totals (scaled to the month):")
    print(f"  uncapped spend:  ${uncapped.total_cost * scale:,.0f} "
          f"(budget ${monthly_budget:,.0f} would be violated)")
    print(f"  capped spend:    ${capped.total_cost * scale:,.0f}")
    print(f"  premium service: {capped.premium_throughput_fraction:.1%} — guaranteed")
    print(f"  ordinary served: {capped.ordinary_throughput_fraction:.1%} — throttled through the spike")


if __name__ == "__main__":
    main()
