#!/usr/bin/env python
"""Explore LMP formation on the PJM five-bus system (paper Section II).

Dispatches the canonical five-bus market at increasing system loads and
shows how locational marginal prices step up as generator and line
limits bind — the mechanism behind the paper's Figure 1 pricing
policies. Ends by deriving the stepped policies a data-center operator
at buses B/C/D would face.

Run:
    python examples/lmp_exploration.py
"""

import numpy as np

from repro.powermarket import DcOpf, derive_step_policies, pjm5bus


def main() -> None:
    grid = pjm5bus()
    opf = DcOpf(grid)

    print("PJM five-bus system:")
    g = grid.to_networkx()
    for bus in sorted(g.nodes):
        gens = grid.generators_at(bus)
        desc = ", ".join(f"{x.name} ({x.max_mw:.0f} MW @ ${x.cost:.0f})" for x in gens)
        print(f"  bus {bus}: {desc or 'load only'}")
    print(f"  lines: {g.number_of_edges()}, E-D limit 240 MW\n")

    print(f"{'system MW':>10} | {'LMP B':>7} {'LMP C':>7} {'LMP D':>7} | binding")
    for total in (150, 450, 620, 690, 715, 800, 900):
        res = opf.dispatch({b: total / 3 for b in ("B", "C", "D")})
        if not res.feasible:
            print(f"{total:>10} | infeasible")
            continue
        binding = []
        for gen in grid.generators:
            if abs(res.generation[gen.name] - gen.max_mw) < 1e-6:
                binding.append(gen.name)
        for line in grid.lines:
            if abs(abs(res.flows[line.key]) - line.limit_mw) < 1e-6:
                binding.append(f"line {line.key}")
        print(
            f"{total:>10} | {res.lmp_at('B'):>7.2f} {res.lmp_at('C'):>7.2f} "
            f"{res.lmp_at('D'):>7.2f} | {', '.join(binding) or '-'}"
        )

    # Decompose the congested regime into energy + congestion components.
    from repro.powermarket import decompose_lmp

    decomp = decompose_lmp(grid, {b: 800.0 / 3 for b in ("B", "C", "D")})
    print("\nLMP decomposition at 800 MW system load (energy + congestion):")
    for bus in ("A", "B", "C", "D", "E"):
        e, c, t = decomp.at(bus)
        print(f"  {bus}: {e:6.2f} {c:+6.2f} = {t:6.2f} $/MWh")
    print("  (bus E sits behind the congested line: it is *paid less*)")

    print("\nDerived locational step policies (locational MW -> $/MWh):")
    for bus, pol in derive_step_policies(step_mw=2.5).items():
        steps = " | ".join(
            f"<{bp:.0f}: {price:.2f}"
            for bp, price in zip((*pol.breakpoints, np.inf), pol.prices)
        )
        print(f"  {bus}: {steps}")
    print(
        "\nThese steps are why a cloud-scale data center is a price maker:"
        "\nits own tens-of-MW draw decides which price level the whole"
        "\nmarket lands on."
    )


if __name__ == "__main__":
    main()
