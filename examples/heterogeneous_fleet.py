#!/usr/bin/env python
"""Heterogeneous fleets: the paper's Section IX extension in action.

A site that has lived through "repair, replacement, and expansion" runs
several server generations side by side. The greedy efficiency-ordered
local optimizer keeps the newest (most efficient) pool busy first, so
the site's power curve is piecewise linear and convex — and mixing one
efficient pool into an old fleet cuts the bill even before any
geographic optimization happens.

Run:
    python examples/heterogeneous_fleet.py
"""

import numpy as np

from repro.core import CostMinimizer, Site
from repro.datacenter import (
    CoolingModel,
    HeterogeneousDataCenter,
    ServerPool,
    ServerSpec,
    SwitchPowers,
)
from repro.powermarket import SteppedPricingPolicy


def make_site(pools, name):
    dc = HeterogeneousDataCenter(
        name=name,
        pools=pools,
        switch_powers=SwitchPowers(184.0, 184.0, 240.0),
        cooling=CoolingModel(1.94),
        target_response_s=0.5,
    )
    policy = SteppedPricingPolicy(name, (5.0, 10.0), (10.0, 15.0, 22.0))
    return Site(dc, policy, np.full(24, 3.0))


def main() -> None:
    athlon = ServerSpec.from_operating_point("2.0GHz Athlon (2006)", 88.88, 500.0)
    pentium_d = ServerSpec.from_operating_point("Pentium D 950 (2008)", 49.90, 725.0)

    legacy = make_site((ServerPool(athlon, 60_000),), "legacy")
    mixed = make_site(
        (ServerPool(athlon, 30_000), ServerPool(pentium_d, 30_000)), "mixed"
    )

    print("Power curves (exact greedy provisioning):")
    print(f"{'load Mrps':>10} {'legacy MW':>10} {'mixed MW':>10} {'saved':>7}")
    for lam in (2e6, 6e6, 1.2e7, 1.8e7, 2.4e7):
        p_leg = legacy.datacenter.power_mw(lam)
        p_mix = mixed.datacenter.power_mw(lam)
        print(
            f"{lam / 1e6:>10.0f} {p_leg:>10.2f} {p_mix:>10.2f} "
            f"{1 - p_mix / p_leg:>6.1%}"
        )

    print("\nPiecewise power model of the mixed site (capacity, slope):")
    for cap, slope in mixed.datacenter.piecewise_power():
        print(f"  up to {cap / 1e6:6.1f} Mrps: {slope * 1e6:.3f} W per req/s")

    # Heterogeneous sites drop straight into the dispatch MILP.
    lam = 2.0e7
    decision = CostMinimizer().solve([legacy.hour(0), mixed.hour(0)], lam)
    print(f"\nDispatching {lam / 1e6:.0f} Mrps across both sites:")
    for alloc in decision.allocations:
        print(
            f"  {alloc.site}: {alloc.rate_rps / 1e6:7.1f} Mrps, "
            f"{alloc.predicted_power_mw:6.2f} MW @ {alloc.predicted_price:.2f} $/MWh"
        )
    print(f"  hourly bill: ${decision.predicted_cost:,.2f}")


if __name__ == "__main__":
    main()
