#!/usr/bin/env python
"""Quickstart: dispatch one hour of cloud traffic at minimum electricity cost.

Builds the paper's three-data-center world (PJM-5-bus locational
pricing, Section VI-A hardware), then asks the price-maker-aware cost
minimizer to dispatch a single hour of traffic, and compares it against
what a price-taker baseline (Min-Only) would have paid.

Run:
    python examples/quickstart.py
"""

from repro.core import CostMinimizer, MinOnlyDispatcher, PriceMode, server_only_affine_slope
from repro.experiments import paper_world


def main() -> None:
    world = paper_world()
    hour = 17 * 1  # 5pm on day one: near the daily traffic peak
    site_hours = [site.hour(hour) for site in world.sites]
    offered_rps = float(world.workload.rates_rps[hour])

    print(f"Offered load: {offered_rps / 1e6:,.0f} M requests/second")
    print(f"{'site':>5} {'policy':>7} {'background':>11} {'price levels ($/MWh)'}")
    for sh in site_hours:
        print(
            f"{sh.name:>5} {sh.policy.name:>7} {sh.background_mw:>8.1f} MW"
            f"   {sh.policy.prices}"
        )

    # --- Cost Capping, step 1: price-maker-aware cost minimization --------
    decision = CostMinimizer().solve(site_hours, offered_rps)
    print("\nCost Capping dispatch (knows it moves the market):")
    for alloc in decision.allocations:
        print(
            f"  {alloc.site}: {alloc.rate_rps / 1e6:8.1f} Mrps -> "
            f"{alloc.predicted_power_mw:6.1f} MW @ {alloc.predicted_price:5.2f} $/MWh"
            f"  = ${alloc.predicted_cost:8,.0f}"
        )
    print(f"  hourly bill: ${decision.predicted_cost:,.0f}")

    # --- Min-Only baseline: believes prices are fixed ----------------------
    baseline = MinOnlyDispatcher(
        price_mode=PriceMode.AVG,
        server_slopes={
            s.datacenter.name: server_only_affine_slope(s.datacenter)
            for s in world.sites
        },
    ).solve(site_hours, offered_rps)

    # Bill the baseline's allocation at the *true* stepped prices.
    realized = 0.0
    for site, alloc in zip(world.sites, baseline.allocations):
        _, _, cost = site.evaluate_hour(hour, alloc.rate_rps)
        realized += cost
    print(f"\nMin-Only (Avg) same hour, billed at true prices: ${realized:,.0f}")
    saving = 1.0 - decision.predicted_cost / realized
    print(f"Price-maker awareness saves {saving:.1%} this hour.")


if __name__ == "__main__":
    main()
