"""Lightweight span tracer for the hourly control loop.

A :class:`Span` measures one region of work on the monotonic clock
(:func:`time.perf_counter`); spans nest, so an hour of simulated
dispatch decomposes into ``budget -> dispatch -> local_optimization ->
billing`` children and a MILP solve shows up under the ``dispatch``
span that triggered it. The API is deliberately tiny:

    with tracer.span("dispatch", hour=t) as sp:
        decision = capper.decide(...)
        sp.set(step=decision.step.value)

Finished spans accumulate in :attr:`Tracer.finished` in completion
order (children before parents, like any post-order walk), each
carrying its start offset, duration, depth, parent id and free-form
attributes — enough to rebuild the tree or feed the JSONL exporter.

The :class:`NullTracer` hands out one shared no-op span so disabled
runs pay a single method call and no allocation per region.
"""

from __future__ import annotations

import itertools
import time

__all__ = ["Span", "Tracer", "NullTracer"]


class Span:
    """One timed region. Use only via :meth:`Tracer.span`."""

    __slots__ = (
        "name", "span_id", "parent_id", "depth", "attrs",
        "start_s", "duration_s", "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, depth: int, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs
        self.start_s = 0.0
        self.duration_s = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span while it is running."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.start_s = time.perf_counter() - self._tracer.epoch_s
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = (
            time.perf_counter() - self._tracer.epoch_s - self.start_s
        )
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)

    def as_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Produces nested spans and collects the finished ones.

    All times are offsets from the tracer's creation instant
    (``epoch_s`` on the perf-counter clock), so a trace is
    self-consistent regardless of wall-clock adjustments.
    """

    enabled = True

    def __init__(self):
        self.epoch_s = time.perf_counter()
        self.finished: list[Span] = []
        self._stack: list[Span] = []
        self._ids = itertools.count(1)

    def span(self, name: str, **attrs) -> Span:
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            self,
            name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            depth=len(self._stack),
            attrs=attrs,
        )
        self._stack.append(sp)
        return sp

    def _finish(self, span: Span) -> None:
        # Exits normally come in LIFO order; tolerate out-of-order exits
        # (a caller holding a span across a generator boundary) by
        # removing wherever the span sits.
        try:
            self._stack.remove(span)
        except ValueError:
            pass
        self.finished.append(span)

    @property
    def active_depth(self) -> int:
        return len(self._stack)

    def as_dicts(self) -> list[dict]:
        return [s.as_dict() for s in self.finished]

    def drain(self) -> list[Span]:
        """Hand over the finished spans and forget them.

        Batch runs keep every span in memory for one final export; a
        long-lived process (``repro serve``) instead drains the tracer
        periodically into a streaming exporter so days of sub-hourly
        control traffic never accumulate. Spans still open stay on the
        stack and are delivered by a later drain once they finish.
        """
        finished, self.finished = self.finished, []
        return finished


class _NullSpan(Span):
    __slots__ = ()

    def set(self, **attrs) -> "Span":
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NullTracer(Tracer):
    """Disabled tracer: one shared span, no clock reads, no state."""

    enabled = False

    def __init__(self):
        super().__init__()
        self._null = _NullSpan(self, "null", 0, None, 0, {})

    def span(self, name: str, **attrs) -> Span:
        return self._null
