"""Shared recording conventions for instrumented solver backends.

Every LP/MILP backend reports the same four facts under
``solver.<backend>.*``: solve count, terminal status counts, wall time,
and iterations (simplex pivots or B&B nodes, whatever the backend's
:attr:`~repro.solver.result.SolveResult.iterations` means). Keeping the
naming in one place means ``repro telemetry summary`` renders a uniform
per-backend table no matter which engines a run exercised.
"""

from __future__ import annotations

from .session import Telemetry

__all__ = ["record_solver_result"]


def record_solver_result(
    tel: Telemetry, backend: str, status_value: str, iterations: int, wall_s: float
) -> None:
    """Record one backend solve under the ``solver.<backend>.*`` names."""
    tel.counter(f"solver.{backend}.solves").inc()
    tel.counter(f"solver.{backend}.status.{status_value}").inc()
    tel.histogram(f"solver.{backend}.wall_s").observe(wall_s)
    tel.histogram(f"solver.{backend}.iterations").observe(iterations)
