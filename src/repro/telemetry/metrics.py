"""Zero-dependency metric primitives: counters, gauges, histograms.

The hourly control loop solves a MILP every invocation period; finding
out *where* a simulated month spends its time — LP relaxations, branch
and bound, local provisioning, billing — requires per-solve accounting
that costs nothing when it is switched off. These primitives follow the
Prometheus vocabulary (counter / gauge / histogram with fixed bucket
boundaries) but live entirely in process: a :class:`MetricRegistry`
holds named instruments, and the paired ``Null*`` classes make every
operation a no-op so instrumented code can run unconditionally.

Design rules:

* instruments are created lazily and get-or-create by name, so callers
  never need registration ceremony at import time;
* histogram buckets are fixed at creation (cumulative ``le`` semantics),
  keeping ``observe`` O(#buckets) with no allocation;
* nothing here imports anything heavier than :mod:`bisect`.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "merge_counters",
]

#: Default histogram boundaries: geometric-ish, wide enough for both
#: sub-millisecond LP solves and thousands of B&B nodes.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0, 100000.0,
)


class Counter:
    """A monotonically increasing count (events, failovers, nodes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A value that can go up and down (carryover balance, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Fixed-boundary histogram with running sum/min/max.

    ``boundaries`` are upper bounds of the first ``len(boundaries)``
    buckets; one overflow bucket catches everything above the last
    boundary (cumulative Prometheus ``le`` semantics are recovered by
    the exporter).
    """

    __slots__ = ("name", "boundaries", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, boundaries: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be sorted ascending")
        if not boundaries:
            raise ValueError("need at least one bucket boundary")
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th observation; ``max`` for the overflow
        bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                if i < len(self.boundaries):
                    # The bucket's upper bound, clamped to the observed
                    # max so estimates never exceed any real value.
                    return min(self.boundaries[i], self.max)
                return self.max
        return self.max

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
        }


class MetricRegistry:
    """Named get-or-create store for the three instrument kinds.

    A name is bound to exactly one kind; asking for ``counter("x")``
    after ``gauge("x")`` is a programming error and raises.
    """

    enabled = True

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, boundaries: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, boundaries)

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str):
        """Look up an instrument without creating it (None if absent)."""
        return self._metrics.get(name)

    def as_dicts(self) -> list[dict]:
        return [m.as_dict() for m in self]


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null", (1.0,))


def merge_counters(registry: MetricRegistry, counters: dict) -> None:
    """Fold another process's counter totals into ``registry``.

    The shard front uses this to aggregate the per-worker telemetry
    snapshots reported over the worker pipes: counters add, so each
    ``{name: value}`` total is an increment here. Gauges and histograms
    are not mergeable across processes and stay per-worker.
    """
    for name, value in counters.items():
        registry.counter(name).inc(value)


class NullRegistry(MetricRegistry):
    """The disabled registry: every lookup returns a shared no-op
    instrument, so instrumented hot paths cost one method call."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, boundaries: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return _NULL_HISTOGRAM
