"""The telemetry session: registry + tracer bundle and the active default.

Instrumented code throughout the repository asks for the *current*
telemetry via :func:`get_telemetry` and records into whatever it gets.
The default is :data:`NULL` — a permanently disabled bundle whose every
operation is a shared no-op — so the solver and simulator hot paths pay
one global lookup and one method call when observability is off.

Enable collection for a region of code with :func:`use_telemetry`::

    tel = Telemetry()
    with use_telemetry(tel):
        simulator.run_capping(budgeter)
    write_jsonl(tel, "trace.jsonl")

The active bundle is process-global (not thread/task-local) on purpose:
the simulation loop is single-threaded, multi-seed studies fork worker
*processes* (each starts at NULL), and a global keeps the disabled-path
cost at a module-dict read.
"""

from __future__ import annotations

import contextlib

from .metrics import MetricRegistry, NullRegistry
from .tracing import NullTracer, Tracer

__all__ = ["Telemetry", "NULL", "get_telemetry", "set_telemetry", "use_telemetry"]


class Telemetry:
    """A metric registry and a span tracer that live and export together."""

    enabled = True

    def __init__(self):
        self.registry = MetricRegistry()
        self.tracer = Tracer()

    # Convenience pass-throughs so call sites read naturally.

    def counter(self, name: str):
        return self.registry.counter(name)

    def gauge(self, name: str):
        return self.registry.gauge(name)

    def histogram(self, name: str, boundaries=None):
        if boundaries is None:
            return self.registry.histogram(name)
        return self.registry.histogram(name, boundaries)

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)


class _NullTelemetry(Telemetry):
    """Disabled bundle: all instruments are shared no-ops."""

    enabled = False

    def __init__(self):
        self.registry = NullRegistry()
        self.tracer = NullTracer()


#: The process-wide disabled default.
NULL = _NullTelemetry()

_current: Telemetry = NULL


def get_telemetry() -> Telemetry:
    """The telemetry bundle instrumented code currently records into."""
    return _current


def set_telemetry(telemetry: Telemetry | None) -> Telemetry:
    """Install ``telemetry`` (or :data:`NULL` for ``None``) as the active
    bundle; returns the previous one so callers can restore it."""
    global _current
    previous = _current
    _current = telemetry if telemetry is not None else NULL
    return previous


@contextlib.contextmanager
def use_telemetry(telemetry: Telemetry | None):
    """Scope ``telemetry`` as the active bundle for a ``with`` block."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
