"""Exporters: JSONL traces, aggregate summaries, human-readable tables.

The on-disk format is JSON Lines — one self-describing record per line
(``{"type": "span" | "counter" | "gauge" | "histogram" | "meta", ...}``)
— because a month of hourly spans streams naturally, appends are atomic
enough for sidecar files, and downstream tooling (the BENCH trajectory,
notebook analysis) can parse it without this package.

Three layers:

* :func:`write_jsonl` / :func:`read_jsonl` — lossless round-trip of a
  :class:`~repro.telemetry.session.Telemetry` bundle;
* :func:`summarize` — aggregate a snapshot into plain dicts (span
  durations by name with count/total/mean/p50/p95/max, plus every
  metric);
* :func:`format_summary` — the aggregate as fixed-width tables for the
  ``repro telemetry summary`` CLI.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from .session import Telemetry

__all__ = [
    "TelemetrySnapshot",
    "snapshot",
    "write_jsonl",
    "read_jsonl",
    "RotatingJsonlWriter",
    "summarize",
    "format_summary",
]

#: Bump when a record's shape changes incompatibly.
FORMAT_VERSION = 1


@dataclass
class TelemetrySnapshot:
    """Plain-data view of a telemetry bundle (live or loaded from disk)."""

    spans: list[dict] = field(default_factory=list)
    counters: dict[str, dict] = field(default_factory=dict)
    gauges: dict[str, dict] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return not (self.spans or self.counters or self.gauges or self.histograms)


def snapshot(telemetry: Telemetry) -> TelemetrySnapshot:
    """Freeze a live bundle into plain data."""
    snap = TelemetrySnapshot(meta={"type": "meta", "version": FORMAT_VERSION})
    snap.spans = telemetry.tracer.as_dicts()
    for m in telemetry.registry.as_dicts():
        {"counter": snap.counters, "gauge": snap.gauges,
         "histogram": snap.histograms}[m["type"]][m["name"]] = m
    return snap


def write_jsonl(telemetry: Telemetry | TelemetrySnapshot, path) -> pathlib.Path:
    """Write one JSONL record per span and per metric; returns the path."""
    snap = telemetry if isinstance(telemetry, TelemetrySnapshot) else snapshot(telemetry)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "meta", "version": FORMAT_VERSION}) + "\n")
        for record in snap.spans:
            fh.write(json.dumps(record) + "\n")
        for group in (snap.counters, snap.gauges, snap.histograms):
            for record in group.values():
                fh.write(json.dumps(record) + "\n")
    return path


def read_jsonl(path) -> TelemetrySnapshot:
    """Load a trace written by :func:`write_jsonl`."""
    snap = TelemetrySnapshot()
    with pathlib.Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "span":
                snap.spans.append(record)
            elif kind == "counter":
                snap.counters[record["name"]] = record
            elif kind == "gauge":
                snap.gauges[record["name"]] = record
            elif kind == "histogram":
                snap.histograms[record["name"]] = record
            elif kind == "meta":
                snap.meta = record
            # Unknown kinds are skipped: newer writers stay readable.
    return snap


class RotatingJsonlWriter:
    """Incremental JSONL writer for long-lived processes.

    :func:`write_jsonl` is sized for batch runs: it holds the whole
    bundle in memory and dumps it once at the end. An always-on
    controller (``repro serve``) runs for days and would either buffer
    unbounded or grow one giant file; this writer appends one record at
    a time, flushes to disk every ``flush_every`` records (and on
    :meth:`flush`/:meth:`close`), and rotates the file once it passes
    ``max_bytes``:

    * the current file becomes ``<path>.1``, an existing ``.1`` becomes
      ``.2``, and so on;
    * at most ``keep`` rotated files are retained (older ones deleted);
    * every file — fresh or post-rotation — starts with the same
      ``meta`` record :func:`write_jsonl` emits, so each segment is
      independently loadable with :func:`read_jsonl`.

    Records are plain dicts in the on-disk schema (``{"type": "span" |
    "counter" | ..., ...}``); the writer does not interpret them beyond
    serialization.
    """

    def __init__(
        self,
        path,
        *,
        max_bytes: int = 16 << 20,
        flush_every: int = 100,
        keep: int = 4,
    ):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if flush_every <= 0:
            raise ValueError("flush_every must be positive")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.path = pathlib.Path(path)
        self.max_bytes = max_bytes
        self.flush_every = flush_every
        self.keep = keep
        self.records_written = 0
        self.rotations = 0
        self._unflushed = 0
        self._bytes = 0
        self._fh = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._open_fresh()

    # -- file lifecycle -----------------------------------------------------

    def _open_fresh(self) -> None:
        self._fh = self.path.open("w", encoding="utf-8")
        header = json.dumps({"type": "meta", "version": FORMAT_VERSION}) + "\n"
        self._fh.write(header)
        self._bytes = len(header.encode("utf-8"))

    def _rotate(self) -> None:
        self._fh.close()
        # Shift the retention chain up: .keep drops, .i -> .(i+1).
        oldest = self.path.with_name(f"{self.path.name}.{self.keep}")
        oldest.unlink(missing_ok=True)
        for i in range(self.keep - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{i}")
            if src.exists():
                src.replace(self.path.with_name(f"{self.path.name}.{i + 1}"))
        self.path.replace(self.path.with_name(f"{self.path.name}.1"))
        self.rotations += 1
        self._open_fresh()

    # -- writing ------------------------------------------------------------

    def write(self, record: dict) -> None:
        """Append one record, flushing and rotating as configured."""
        if self._fh is None:
            raise ValueError("writer is closed")
        line = json.dumps(record) + "\n"
        encoded = len(line.encode("utf-8"))
        if self._bytes + encoded > self.max_bytes and self._bytes > 0:
            self._rotate()
        self._fh.write(line)
        self._bytes += encoded
        self.records_written += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def write_all(self, records) -> None:
        for record in records:
            self.write(record)

    def flush(self) -> None:
        if self._fh is not None and self._unflushed:
            self._fh.flush()
            self._unflushed = 0

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RotatingJsonlWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def segment_paths(self) -> list[pathlib.Path]:
        """Existing on-disk segments, oldest first (rotated then live)."""
        out = []
        for i in range(self.keep, 0, -1):
            seg = self.path.with_name(f"{self.path.name}.{i}")
            if seg.exists():
                out.append(seg)
        if self.path.exists():
            out.append(self.path)
        return out


# -- aggregation ---------------------------------------------------------------


def _percentile(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted list."""
    if not sorted_vals:
        return 0.0
    rank = max(0, min(len(sorted_vals) - 1, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[rank]


def summarize(snap: TelemetrySnapshot) -> dict:
    """Aggregate a snapshot into plain dicts keyed by instrument name."""
    by_name: dict[str, list[float]] = {}
    for sp in snap.spans:
        by_name.setdefault(sp["name"], []).append(sp["duration_s"])
    spans = {}
    for name, durs in sorted(by_name.items()):
        durs.sort()
        spans[name] = {
            "count": len(durs),
            "total_s": sum(durs),
            "mean_s": sum(durs) / len(durs),
            "p50_s": _percentile(durs, 0.50),
            "p95_s": _percentile(durs, 0.95),
            "max_s": durs[-1],
        }
    histograms = {}
    for name, h in sorted(snap.histograms.items()):
        count = h["count"]
        histograms[name] = {
            "count": count,
            "total": h["total"],
            "mean": h["total"] / count if count else 0.0,
            "min": h["min"],
            "max": h["max"],
            "p50": _bucket_quantile(h, 0.50),
            "p95": _bucket_quantile(h, 0.95),
        }
    return {
        "spans": spans,
        "counters": {n: c["value"] for n, c in sorted(snap.counters.items())},
        "gauges": {n: g["value"] for n, g in sorted(snap.gauges.items())},
        "histograms": histograms,
    }


def _bucket_quantile(h: dict, q: float) -> float:
    """Bucket-resolution quantile from a serialized histogram record."""
    count = h["count"]
    if not count:
        return 0.0
    rank = q * count
    seen = 0
    for i, c in enumerate(h["counts"]):
        seen += c
        if seen >= rank and c:
            if i < len(h["boundaries"]):
                # Clamp to the observed max (see Histogram.quantile).
                return min(h["boundaries"][i], h["max"])
            return h["max"]
    return h["max"]


# -- rendering -----------------------------------------------------------------


def _table(header: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    return [fmt.format(*header), *(fmt.format(*row) for row in rows)]


def _si(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def format_summary(snap: TelemetrySnapshot) -> str:
    """Render the aggregate as human-readable tables."""
    agg = summarize(snap)
    out: list[str] = []
    if agg["spans"]:
        rows = [
            [name, str(s["count"]), _si(s["total_s"]), _si(s["mean_s"]),
             _si(s["p50_s"]), _si(s["p95_s"]), _si(s["max_s"])]
            for name, s in agg["spans"].items()
        ]
        out += ["== spans ==",
                *_table(["span", "count", "total", "mean", "p50", "p95", "max"], rows)]
    if agg["histograms"]:
        rows = [
            [name, str(h["count"]), f"{h['mean']:.4g}", f"{h['p50']:.4g}",
             f"{h['p95']:.4g}", f"{h['max']:.4g}"]
            for name, h in agg["histograms"].items()
        ]
        out += ["", "== histograms ==",
                *_table(["histogram", "count", "mean", "p50", "p95", "max"], rows)]
    if agg["counters"]:
        rows = [[name, f"{v:g}"] for name, v in agg["counters"].items()]
        out += ["", "== counters ==", *_table(["counter", "value"], rows)]
    if agg["gauges"]:
        rows = [[name, f"{v:g}"] for name, v in agg["gauges"].items()]
        out += ["", "== gauges ==", *_table(["gauge", "value"], rows)]
    if not out:
        return "(no telemetry recorded)"
    return "\n".join(out)
