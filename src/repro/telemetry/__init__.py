"""Observability for the hourly control loop: metrics, traces, exporters.

The paper's Cost Capping controller solves a MILP every invocation
period; this subpackage answers *where an hour of simulated dispatch
goes* without perturbing the answer:

* :mod:`repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms behind a get-or-create :class:`MetricRegistry`;
* :mod:`repro.telemetry.tracing` — nested monotonic-clock spans;
* :mod:`repro.telemetry.session` — the :class:`Telemetry` bundle and
  the process-wide active default (a no-op :data:`NULL` bundle unless
  :func:`use_telemetry` installs a live one);
* :mod:`repro.telemetry.export` — JSONL round-trip, aggregation, and
  human-readable summary tables.

Typical use::

    from repro.telemetry import Telemetry, use_telemetry
    from repro.telemetry.export import format_summary, snapshot, write_jsonl

    tel = Telemetry()
    with use_telemetry(tel):
        result = simulator.run_capping(budgeter)
    write_jsonl(tel, "trace.jsonl")
    print(format_summary(snapshot(tel)))

Everything in the hot layers (the solver backends, the bill capper, the
simulator) is instrumented against whatever :func:`get_telemetry`
returns, and the default bundle makes every operation a shared no-op —
so with telemetry off the cost is one global read per instrumented
region.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    merge_counters,
)
from .session import NULL, Telemetry, get_telemetry, set_telemetry, use_telemetry
from .tracing import NullTracer, Span, Tracer
from .export import (
    RotatingJsonlWriter,
    TelemetrySnapshot,
    format_summary,
    read_jsonl,
    snapshot,
    summarize,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "merge_counters",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "NullTracer",
    "Telemetry",
    "NULL",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "TelemetrySnapshot",
    "snapshot",
    "RotatingJsonlWriter",
    "write_jsonl",
    "read_jsonl",
    "summarize",
    "format_summary",
]
