"""Scenario-sweep engine: deterministic grid fan-out over process pools.

Every batch experiment in this repo — multi-seed robustness studies,
strategy comparisons, budget sweeps — has the same shape: a grid of
scenario parameters, an expensive metric evaluated independently per
scenario, and results folded back in grid order. This module is that
shape, once:

* :func:`sweep_grid` — cartesian product of named axes into a list of
  scenario dicts, in a deterministic order;
* :func:`derive_seed` — collision-resistant per-scenario seeds that do
  not depend on ``PYTHONHASHSEED`` (stable across worker processes);
* :func:`run_sweep` — evaluate ``metric(scenario, payload)`` for every
  scenario, serially or across a :class:`~concurrent.futures.
  ProcessPoolExecutor`, returning values in scenario order.

Parallel mechanics: the shared ``payload`` (a world spec, an anchor
result, a fitted model) is pickled **once** into each worker via the
pool initializer, not once per task; tasks are scheduled in chunks so
short scenarios don't drown in IPC. Each scenario runs under its own
fresh :class:`~repro.telemetry.Telemetry` bundle and ships its counter
totals back with the value; ``run_sweep`` merges the sums into the
ambient bundle, so solver counters survive the process pool. The
serial path runs tasks through the identical wrapper — a sweep's
results (and merged counters) are equal at any worker count, which
``tests/sim/test_sweep.py`` pins.

Spans and histograms are per-process and are *not* merged; trace a
single scenario with ``workers=1`` when you need them.
"""

from __future__ import annotations

import hashlib
import math
from concurrent.futures import ProcessPoolExecutor
from itertools import product
from typing import Any, Callable, Iterable, Mapping

from ..telemetry import Telemetry, get_telemetry, use_telemetry

__all__ = [
    "sweep_grid",
    "derive_seed",
    "run_sweep",
    "strategy_metric",
    "capped_month_metric",
    "closedloop_metric",
]

#: A sweep metric: ``metric(scenario, payload) -> value``. For
#: ``workers > 1`` it must be a module-level function (pool tasks are
#: pickled) and the value must be picklable.
Metric = Callable[[Mapping[str, Any], Any], Any]


def sweep_grid(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes as a list of scenario dicts.

    Axis order follows the keyword order; the last axis varies fastest.
    The order is deterministic, so a grid zips stably against its
    :func:`run_sweep` results.
    """
    named = {name: list(values) for name, values in axes.items()}
    if not named:
        raise ValueError("at least one axis required")
    for name, values in named.items():
        if not values:
            raise ValueError(f"axis {name!r} has no values")
    return [dict(zip(named, combo)) for combo in product(*named.values())]


def derive_seed(base: int, *components: Any) -> int:
    """A deterministic 32-bit seed for one scenario of a sweep.

    Hashes ``repr`` with SHA-256 rather than :func:`hash` — the
    built-in is salted per process (``PYTHONHASHSEED``), which would
    make worker-derived seeds irreproducible.
    """
    digest = hashlib.sha256(repr((int(base), components)).encode()).digest()
    return int.from_bytes(digest[:4], "big")


# Worker-process globals, set once by the pool initializer so the
# shared payload crosses the pipe once instead of once per task.
_WORKER_METRIC: Metric | None = None
_WORKER_PAYLOAD: Any = None


def _init_worker(metric: Metric, payload: Any) -> None:
    global _WORKER_METRIC, _WORKER_PAYLOAD
    _WORKER_METRIC = metric
    _WORKER_PAYLOAD = payload


def _run_scenario(metric: Metric, payload: Any, scenario: Mapping[str, Any]):
    """One task: the metric under a fresh telemetry bundle.

    Returns ``(value, counter_totals)``. Serial and parallel sweeps
    both go through here, so a scenario never sees ambient telemetry
    state and the two paths stay equivalent.
    """
    tel = Telemetry()
    with use_telemetry(tel):
        value = metric(scenario, payload)
    counters = {
        m["name"]: m["value"]
        for m in tel.registry.as_dicts()
        if m["type"] == "counter" and m["value"]
    }
    return value, counters


def _pool_task(scenario: Mapping[str, Any]):
    return _run_scenario(_WORKER_METRIC, _WORKER_PAYLOAD, scenario)


def run_sweep(
    metric: Metric,
    scenarios: Iterable[Mapping[str, Any]],
    *,
    workers: int = 1,
    chunksize: int | None = None,
    payload: Any = None,
) -> list[Any]:
    """Evaluate ``metric`` over every scenario; values in input order.

    ``payload`` is shared read-only context handed to every call; with
    ``workers > 1`` it is pickled once per worker (pool initializer),
    so a large payload costs ``workers`` transfers, not ``len(
    scenarios)``. ``chunksize`` defaults to about four chunks per
    worker, amortizing IPC for short tasks while keeping the pool
    load-balanced.

    Counter deltas recorded by the scenarios are summed into the
    ambient telemetry bundle (when one is active) under their own
    names, whatever the worker count.
    """
    scenarios = list(scenarios)
    if not scenarios:
        raise ValueError("at least one scenario required")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1 or len(scenarios) == 1:
        outcomes = [_run_scenario(metric, payload, s) for s in scenarios]
    else:
        workers = min(workers, len(scenarios))
        if chunksize is None:
            chunksize = math.ceil(len(scenarios) / (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(metric, payload),
        ) as pool:
            outcomes = list(
                pool.map(_pool_task, scenarios, chunksize=max(1, chunksize))
            )
    ambient = get_telemetry()
    if ambient.enabled:
        merged: dict[str, float] = {}
        for _, counters in outcomes:
            for name, value in counters.items():
                merged[name] = merged.get(name, 0.0) + value
        for name in sorted(merged):
            ambient.counter(name).inc(merged[name])
    return [value for value, _ in outcomes]


def strategy_metric(scenario: Mapping[str, Any], payload: Any = None):
    """Run one registered dispatch strategy on a fresh paper world.

    Scenario keys mirror :func:`repro.sim.parallel.run_one_strategy`:
    ``strategy`` (any :func:`repro.sim.registry.available_strategies`
    name) plus optional ``policy_id``, ``seed``, ``hours``,
    ``budget_fraction``, ``monthly_budget``, ``tariff`` (a
    :func:`repro.billing.make_ledger` spec). Returns the strategy's
    :class:`~repro.sim.records.SimulationResult`.
    """
    from .parallel import run_one_strategy

    return run_one_strategy(**scenario)


def capped_month_metric(scenario: Mapping[str, Any], payload: Any = None):
    """Run a Cost Capping month at an explicit monthly budget.

    Scenario keys: ``monthly_budget`` (``None`` for uncapped) plus
    optional ``policy_id``, ``seed``, ``hours``. Rebuilds the
    (deterministic, seed-keyed) world locally so the task payload is a
    handful of scalars, and runs the registry's ``capping`` strategy
    through the engine. Returns the run's ``SimulationResult``.
    """
    from ..experiments import paper_world
    from .engine import Engine

    world = paper_world(
        scenario.get("policy_id", 1), seed=scenario.get("seed", 7)
    )
    engine = Engine(world.sites, world.workload, world.mix)
    budgeter = None
    if scenario.get("monthly_budget") is not None:
        budgeter = world.budgeter(scenario["monthly_budget"])
    return engine.run(
        "capping", budgeter=budgeter, hours=scenario.get("hours", 168)
    )


def closedloop_metric(scenario: Mapping[str, Any], payload: Any = None):
    """One closed-loop endogenous-pricing run; returns a summary dict.

    The scenario axes of the closed-loop study (ROADMAP: oscillation /
    mitigation dynamics):

    ``policy_id``, ``seed``, ``hours``, ``monthly_budget``, ``strategy``
        The usual world/run knobs (defaults: policy 1, seed 7, 24 h,
        uncapped, ``capping``).
    ``grid``
        Registry name resolved via
        :func:`repro.powermarket.closedloop.get_grid` (default
        ``pjm5bus``).
    ``line_outage``
        A line key (e.g. ``"D-E"``) dropped from the grid before
        coupling — the N-1 contingency axis. ``None`` = intact grid.
    ``background``
        ``"reco"`` (default) keeps the world's diurnal traces;
        ``"renewable"`` swaps in duck-curve net load
        (:func:`repro.powermarket.demand.renewable_background`)
        calibrated to each site's first price breakpoint.
    ``operators``
        K symmetric operators chasing the same buses (amplifies the
        fleet's price impact; the competition axis).
    ``damping``, ``acceleration``, ``max_iterations``
        Fixed-point mitigation knobs
        (:class:`~repro.powermarket.closedloop.ClosedLoopConfig`).

    Returns convergence statistics plus the month's realized cost —
    scalars only, picklable across the process pool.
    """
    from dataclasses import replace

    from ..experiments import paper_world
    from ..powermarket import (
        ClosedLoopConfig,
        line_outage,
        renewable_background,
    )
    from .endogenous import EndogenousPriceMiddleware
    from .engine import Engine

    seed = scenario.get("seed", 7)
    world = paper_world(scenario.get("policy_id", 1), seed=seed)
    if scenario.get("background", "reco") == "renewable":
        world.sites = [
            replace(
                site,
                background_mw=renewable_background(
                    site.background_mw.size,
                    (
                        max(0.8 * site.policy.breakpoints[0], 5.0)
                        if site.policy.breakpoints
                        else 80.0
                    ),
                    seed=seed + 100 + i,
                ),
            )
            for i, site in enumerate(world.sites)
        ]
    engine = Engine(world.sites, world.workload, world.mix)
    config = ClosedLoopConfig(
        damping=scenario.get("damping", 0.5),
        acceleration=scenario.get("acceleration", "relaxation"),
        max_iterations=scenario.get("max_iterations", 8),
        operators=scenario.get("operators", 1),
    )
    mutate = (
        line_outage(scenario["line_outage"])
        if scenario.get("line_outage")
        else None
    )
    middleware = EndogenousPriceMiddleware.for_engine(
        engine,
        grid=scenario.get("grid", "pjm5bus"),
        config=config,
        mutate=mutate,
    )
    budgeter = None
    if scenario.get("monthly_budget") is not None:
        budgeter = world.budgeter(scenario["monthly_budget"])
    result = engine.run(
        scenario.get("strategy", "capping"),
        budgeter=budgeter,
        hours=scenario.get("hours", 24),
        middleware=[middleware],
    )
    tel = get_telemetry()

    def total(name: str) -> float:
        metric = tel.registry.get(name) if tel.enabled else None
        return float(metric.value) if metric is not None else 0.0

    hours = len(result.hours)
    return {
        "hours": hours,
        "total_cost": float(sum(h.realized_cost for h in result.hours)),
        "iterations": total("closedloop.iterations"),
        "mean_iterations": total("closedloop.iterations") / max(1, hours),
        "converged_hours": total("closedloop.converged"),
        "convergence_rate": total("closedloop.converged") / max(1, hours),
        "oscillated_hours": total("closedloop.oscillated"),
        "fallback_hours": total("closedloop.fallback"),
    }
