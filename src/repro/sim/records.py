"""Per-hour simulation records and aggregate summaries."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..billing import LineItem
from ..core import CappingStep

__all__ = ["RECORD_VERSION", "SiteRecord", "HourRecord", "SimulationResult"]

#: Schema version of serialized :class:`HourRecord` payloads. Bump when
#: a record's shape changes incompatibly; :meth:`HourRecord.from_dict`
#: rejects mismatches with a clear error instead of a ``KeyError`` deep
#: inside a checkpoint load. Version history:
#:
#: * 1 — through the energy-only billing spine.
#: * 2 — adds per-component ``line_items`` from the settlement ledger;
#:   v1 payloads migrate with an empty item list (their realized cost
#:   *is* the energy line item).
RECORD_VERSION = 2


@dataclass(frozen=True)
class SiteRecord:
    """Realized per-site outcome for one hour (exact models)."""

    site: str
    dispatched_rps: float
    served_rps: float
    power_mw: float
    price: float
    cost: float
    n_servers: int
    response_time_s: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SiteRecord":
        try:
            return cls(**data)
        except TypeError as exc:
            raise ValueError(f"malformed site record: {exc}") from None


@dataclass(frozen=True)
class HourRecord:
    """One invocation period of a simulated month.

    ``budget`` is the hourly budget in force (``inf`` when uncapped);
    ``realized_cost`` is the bill actually incurred under the exact
    power models and stepped prices; ``predicted_cost`` is what the
    dispatcher's decision model expected. ``line_items`` is the
    settlement ledger's per-component breakdown of the hour's bill
    (energy, demand charge, ...); under the default ``energy`` tariff
    the single item's amount equals ``realized_cost`` exactly.
    """

    hour: int
    step: CappingStep
    budget: float
    predicted_cost: float
    realized_cost: float
    demand_premium_rps: float
    demand_ordinary_rps: float
    served_premium_rps: float
    served_ordinary_rps: float
    sites: tuple[SiteRecord, ...]
    line_items: tuple[LineItem, ...] = ()

    @property
    def served_total_rps(self) -> float:
        return self.served_premium_rps + self.served_ordinary_rps

    @property
    def demand_total_rps(self) -> float:
        return self.demand_premium_rps + self.demand_ordinary_rps

    @property
    def over_budget(self) -> bool:
        return self.realized_cost > self.budget * (1 + 1e-9)

    @property
    def degraded(self) -> bool:
        """True when a degradation policy (not a solve) dispatched this hour."""
        return self.step is CappingStep.DEGRADED

    @property
    def total_power_mw(self) -> float:
        return sum(s.power_mw for s in self.sites)

    @property
    def settled_cost(self) -> float:
        """The hour's full bill across tariff components.

        Folded from 0.0 in ledger order; equals ``realized_cost``
        bitwise under the energy-only tariff (``0.0 + x == x``). Hours
        recorded without a ledger (decision records inside the service
        loop, migrated v1 checkpoints) fall back to the energy cost.
        """
        if not self.line_items:
            return self.realized_cost
        total = 0.0
        for item in self.line_items:
            total += item.amount
        return total

    def line_item(self, component: str) -> LineItem | None:
        for item in self.line_items:
            if item.component == component:
                return item
        return None

    @property
    def worst_response_time_s(self) -> float:
        """Slowest realized mean response time across active sites."""
        active = [s.response_time_s for s in self.sites if s.served_rps > 0]
        return max(active) if active else 0.0

    # -- serialization (engine checkpoints) ---------------------------------------
    # JSON float round-trips are exact (repr-based, Infinity included),
    # so a record restored from a checkpoint is field-for-field
    # identical — the engine's resume bit-identity rests on this.

    def to_dict(self) -> dict:
        return {
            "v": RECORD_VERSION,
            "hour": self.hour,
            "step": self.step.value,
            "budget": self.budget,
            "predicted_cost": self.predicted_cost,
            "realized_cost": self.realized_cost,
            "demand_premium_rps": self.demand_premium_rps,
            "demand_ordinary_rps": self.demand_ordinary_rps,
            "served_premium_rps": self.served_premium_rps,
            "served_ordinary_rps": self.served_ordinary_rps,
            "sites": [s.to_dict() for s in self.sites],
            "line_items": [li.to_dict() for li in self.line_items],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HourRecord":
        version = data.get("v")
        if version not in (1, RECORD_VERSION):
            raise ValueError(
                f"unsupported hour-record version {version!r} (expected "
                f"{RECORD_VERSION}); the checkpoint was written by an "
                "incompatible release"
            )
        try:
            return cls(
                hour=data["hour"],
                step=CappingStep(data["step"]),
                budget=data["budget"],
                predicted_cost=data["predicted_cost"],
                realized_cost=data["realized_cost"],
                demand_premium_rps=data["demand_premium_rps"],
                demand_ordinary_rps=data["demand_ordinary_rps"],
                served_premium_rps=data["served_premium_rps"],
                served_ordinary_rps=data["served_ordinary_rps"],
                sites=tuple(SiteRecord.from_dict(s) for s in data["sites"]),
                # v1 payloads predate line items; their realized cost
                # *is* the (single, energy) charge, so migration keeps
                # settled_cost identical.
                line_items=tuple(
                    LineItem.from_dict(li) for li in data.get("line_items", ())
                ),
            )
        except KeyError as exc:
            raise ValueError(f"hour record missing field {exc}") from None


@dataclass
class SimulationResult:
    """A simulated month: every hour's record plus aggregate views."""

    name: str
    hours: list[HourRecord] = field(default_factory=list)

    def append(self, record: HourRecord) -> None:
        self.hours.append(record)

    def __len__(self) -> int:
        return len(self.hours)

    # -- series ---------------------------------------------------------------

    def _series(self, getter) -> np.ndarray:
        return np.array([getter(h) for h in self.hours])

    @property
    def hourly_costs(self) -> np.ndarray:
        return self._series(lambda h: h.realized_cost)

    @property
    def hourly_budgets(self) -> np.ndarray:
        return self._series(lambda h: h.budget)

    @property
    def hourly_power_mw(self) -> np.ndarray:
        return self._series(lambda h: h.total_power_mw)

    @property
    def served_premium(self) -> np.ndarray:
        return self._series(lambda h: h.served_premium_rps)

    @property
    def served_ordinary(self) -> np.ndarray:
        return self._series(lambda h: h.served_ordinary_rps)

    @property
    def demand_premium(self) -> np.ndarray:
        return self._series(lambda h: h.demand_premium_rps)

    @property
    def demand_ordinary(self) -> np.ndarray:
        return self._series(lambda h: h.demand_ordinary_rps)

    # -- aggregates -------------------------------------------------------------

    @property
    def total_cost(self) -> float:
        """The monthly electricity bill, $."""
        return float(self.hourly_costs.sum())

    @property
    def premium_throughput_fraction(self) -> float:
        """Served / offered premium requests over the month."""
        demand = self.demand_premium.sum()
        return float(self.served_premium.sum() / demand) if demand > 0 else 1.0

    @property
    def ordinary_throughput_fraction(self) -> float:
        """Served / offered ordinary requests over the month."""
        demand = self.demand_ordinary.sum()
        return float(self.served_ordinary.sum() / demand) if demand > 0 else 1.0

    @property
    def hours_over_budget(self) -> int:
        return int(sum(h.over_budget for h in self.hours))

    @property
    def degraded_hours(self) -> int:
        """Hours dispatched by a degradation policy instead of a solve."""
        return int(sum(h.degraded for h in self.hours))

    def budget_utilization(self, monthly_budget: float) -> float:
        """Total spend as a fraction of the monthly budget."""
        if monthly_budget <= 0:
            raise ValueError("monthly budget must be positive")
        return self.total_cost / monthly_budget

    def step_counts(self) -> dict[CappingStep, int]:
        """How many hours each algorithm branch decided."""
        out: dict[CappingStep, int] = {}
        for h in self.hours:
            out[h.step] = out.get(h.step, 0) + 1
        return out

    def summary(self) -> dict[str, float]:
        """A flat dict of the headline metrics (for reports/benches)."""
        return {
            "total_cost": self.total_cost,
            "mean_hourly_cost": float(self.hourly_costs.mean()) if self.hours else 0.0,
            "premium_throughput": self.premium_throughput_fraction,
            "ordinary_throughput": self.ordinary_throughput_fraction,
            "hours_over_budget": float(self.hours_over_budget),
            "degraded_hours": float(self.degraded_hours),
            "peak_power_mw": float(self.hourly_power_mw.max()) if self.hours else 0.0,
        }

    # -- export -------------------------------------------------------------------

    def to_csv(self, path) -> "Path":
        """Write the hourly series (plus per-site columns) to a CSV file.

        One row per hour: step, budget, costs, class demand/served, and
        ``<site>_rate``/``<site>_power``/``<site>_price`` columns per
        site — everything needed to re-plot the paper's figures with
        external tooling.
        """
        import csv
        from pathlib import Path

        path = Path(path)
        if not self.hours:
            raise ValueError("empty result")
        site_names = [rec.site for rec in self.hours[0].sites]
        header = [
            "hour", "step", "budget", "predicted_cost", "realized_cost",
            "demand_premium_rps", "served_premium_rps",
            "demand_ordinary_rps", "served_ordinary_rps",
        ]
        for s in site_names:
            header += [f"{s}_rate_rps", f"{s}_power_mw", f"{s}_price"]
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(header)
            for h in self.hours:
                row = [
                    h.hour, h.step.value,
                    "" if h.budget == float("inf") else repr(h.budget),
                    repr(h.predicted_cost), repr(h.realized_cost),
                    repr(h.demand_premium_rps), repr(h.served_premium_rps),
                    repr(h.demand_ordinary_rps), repr(h.served_ordinary_rps),
                ]
                by_name = {rec.site: rec for rec in h.sites}
                for s in site_names:
                    rec = by_name[s]
                    row += [repr(rec.served_rps), repr(rec.power_mw), repr(rec.price)]
                writer.writerow(row)
        return path
