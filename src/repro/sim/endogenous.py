"""Engine adapter for closed-loop endogenous pricing.

:mod:`repro.powermarket.closedloop` owns the dispatch <-> DC-OPF fixed
point but knows nothing about strategies; this module binds it into the
stage pipeline. :class:`EndogenousPrices` is the shared runtime — it
re-runs the hour's dispatch through
:func:`~repro.sim.engine.dispatch_with_degradation` against regenerated
policies and, on convergence, installs a per-site policy override so
:meth:`Engine._realize` bills the hour at the endogenous prices.
:class:`EndogenousPriceMiddleware` wraps it as a
:class:`~repro.sim.engine.StageMiddleware` for ``Engine.run`` /
``Engine.resume``; the streaming control plane
(:class:`repro.service.ControlLoop`) calls the runtime directly.

When the fixed point falls back (iteration budget exhausted, e.g. a
genuine price oscillation, or an infeasible operating point under an
N-1 outage), the hour settles on the unchanged exogenous path: original
decision, original policies, no override. Runs without the feature
never construct any of this and stay bit-identical.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable

from ..powermarket.closedloop import (
    ClosedLoopConfig,
    EndogenousPricer,
    FixedPointResult,
    MarketCoupling,
    get_grid,
)
from ..powermarket.network import Grid
from .engine import (
    Engine,
    HourContext,
    RunState,
    StageMiddleware,
    dispatch_with_degradation,
)

__all__ = ["EndogenousPrices", "EndogenousPriceMiddleware"]


class EndogenousPrices:
    """Closed-loop pricing runtime bound to one engine.

    Parameters
    ----------
    engine:
        The engine whose sites inject power into the grid.
    grid:
        Registry name or :class:`Grid`; resolved through
        :func:`repro.powermarket.closedloop.get_grid`.
    config:
        Fixed-point tuning (damping, iteration budget, sweep window,
        operators). Defaults to :class:`ClosedLoopConfig`.
    site_buses:
        Explicit ``{site: bus}`` mapping; when omitted it is inferred
        from each site's pricing-policy region name
        (:meth:`MarketCoupling.infer`).
    mutate:
        Optional grid mutation hook (e.g.
        :func:`repro.powermarket.closedloop.line_outage`) applied
        before coupling — the N-1 contingency axis.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        grid: "str | Grid" = "pjm5bus",
        config: ClosedLoopConfig | None = None,
        site_buses: dict[str, str] | None = None,
        mutate: Callable[[Grid], Grid] | None = None,
    ):
        resolved = get_grid(grid, mutate=mutate)
        if site_buses is not None:
            coupling = MarketCoupling(grid=resolved, site_buses=site_buses)
        else:
            coupling = MarketCoupling.infer(engine.sites, resolved)
        self.engine = engine
        self.pricer = EndogenousPricer(coupling, config)
        self._sites = {s.name: s for s in engine.sites}
        self.last: FixedPointResult | None = None

    # -- the per-hour pass -------------------------------------------------

    def apply(self, ctx: HourContext, state: RunState) -> FixedPointResult:
        """Run the hour's fixed point; install the realize override.

        Must be called after the exogenous dispatch has set
        ``ctx.decision``. On convergence ``ctx.decision`` holds the
        re-dispatched allocation and ``engine.policy_override`` the
        endogenous policies (the caller clears the override once the
        hour is realized); on fallback both are restored to the
        exogenous state.
        """
        t = ctx.hour
        coupled = self.pricer.coupling.site_buses
        background = {
            name: float(self._sites[name].background_mw[t]) for name in coupled
        }
        exo_decision = ctx.decision
        exo_site_hours = list(ctx.site_hours)

        def realized(decision) -> dict[str, float]:
            return {
                name: float(
                    self._sites[name].datacenter_at(t).power_mw(
                        decision.rate_for(name)
                    )
                )
                for name in coupled
            }

        def redispatch(policies, injections, rivals):
            hours = []
            for sh in exo_site_hours:
                bus = coupled.get(sh.name)
                if bus is None or bus not in policies:
                    hours.append(sh)
                    continue
                extra = rivals.get(sh.name, 0.0)
                hours.append(
                    dataclasses.replace(
                        sh,
                        policy=policies[bus],
                        background_mw=sh.background_mw + extra,
                    )
                )
            ctx.site_hours = hours
            return realized(dispatch_with_degradation(ctx, state))

        result = self.pricer.solve_hour(
            background, realized(exo_decision), redispatch
        )
        self.last = result
        if result.converged:
            # Bill at the endogenous prices the converged dispatch saw.
            self.engine.policy_override = {
                name: result.policies[bus]
                for name, bus in coupled.items()
                if bus in result.policies
            }
        else:
            # Exogenous fallback: the hour proceeds as if the loop were off.
            ctx.decision = exo_decision
            self.engine.policy_override = None
        ctx.site_hours = exo_site_hours
        if ctx.span is not None:
            ctx.span.set(
                closedloop_iterations=result.iterations,
                closedloop_converged=result.converged,
                closedloop_oscillated=result.oscillated,
            )
        return result

    def clear(self) -> None:
        """Drop the realize override (call after the hour is billed)."""
        self.engine.policy_override = None


class EndogenousPriceMiddleware(StageMiddleware):
    """Stage middleware running the fixed point after each dispatch.

    Compose into ``Engine.run(..., middleware=[mw])``; the override is
    installed right after the ``dispatch`` stage (so ``realize`` bills
    endogenously) and dropped when the hour closes, whether or not the
    hour settled cleanly.
    """

    def __init__(self, runtime: EndogenousPrices):
        self.runtime = runtime

    @classmethod
    def for_engine(
        cls,
        engine: Engine,
        *,
        grid: "str | Grid" = "pjm5bus",
        config: ClosedLoopConfig | None = None,
        site_buses: dict[str, str] | None = None,
        mutate: Callable[[Grid], Grid] | None = None,
    ) -> "EndogenousPriceMiddleware":
        return cls(
            EndogenousPrices(
                engine,
                grid=grid,
                config=config,
                site_buses=site_buses,
                mutate=mutate,
            )
        )

    @contextlib.contextmanager
    def hour(self, ctx: HourContext, state: RunState):
        try:
            yield
        finally:
            self.runtime.clear()

    @contextlib.contextmanager
    def stage(self, name: str, ctx: HourContext, state: RunState):
        yield
        if name == "dispatch":
            self.runtime.apply(ctx, state)
