"""Built-in dispatch strategies, registered with :mod:`repro.sim.registry`.

Each class adapts one of the repo's dispatchers to the
:class:`~repro.sim.engine.DispatchStrategy` protocol the engine drives:

* :class:`CappingStrategy` — the paper's two-step
  :class:`~repro.core.BillCapper` (``capping``);
* :class:`MinOnlyStrategy` — the Min-Only price-taker baseline in its
  three price modes (``min-only-avg`` / ``min-only-low`` /
  ``min-only-current``);
* :class:`HierarchicalStrategy` — the Section IX two-level
  :class:`~repro.core.HierarchicalBillCapper` (``hierarchical``).

Importing this module populates the registry; entry points go through
:func:`repro.sim.registry.get_strategy` and never instantiate these
directly. A custom strategy needs only the protocol plus one
``register_strategy`` call — see ``docs/TUTORIAL.md`` for a worked
example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import (
    BillCapper,
    CappingStep,
    HierarchicalBillCapper,
    HourlyDecision,
    MinOnlyDispatcher,
    PriceMode,
    regions_of,
)
from ..resilience import DegradationPolicy
from .engine import Engine, HourContext
from .registry import register_strategy

__all__ = ["CappingStrategy", "MinOnlyStrategy", "HierarchicalStrategy"]


@dataclass
class CappingStrategy:
    """The paper's two-step Cost Capping algorithm as an engine strategy.

    Degradation stays *inside* the :class:`~repro.core.BillCapper` (its
    ``capper.degraded`` counters are part of the telemetry contract):
    the run-level policy from the engine is resolved here and passed as
    a per-call override, so a caller-supplied capper is never mutated.
    """

    name = "capping"
    result_name = "cost-capping"
    wants_budget = True

    capper: BillCapper = field(default_factory=BillCapper)

    def prepare(self, world: Engine) -> None:
        pass

    def decide(self, ctx: HourContext) -> HourlyDecision:
        effective = ctx.degradation or self.capper.degradation
        if effective is None and ctx.faults_active:
            effective = DegradationPolicy.PROPORTIONAL
        # A demand charge in the run's tariff exposes its linearized
        # peak term ((cycle peak, $/MW penalty)); the energy-only
        # default yields None and the capper's flow is untouched.
        peak_term = (
            ctx.ledger.peak_term(ctx.hour) if ctx.ledger is not None else None
        )
        if peak_term is None:
            return self.capper.decide(
                ctx.site_hours,
                ctx.demand_premium_rps,
                ctx.demand_ordinary_rps,
                ctx.budget,
                forced_failure=ctx.forced_failure,
                degradation=effective,
            )
        return self.capper.decide(
            ctx.site_hours,
            ctx.demand_premium_rps,
            ctx.demand_ordinary_rps,
            ctx.budget,
            forced_failure=ctx.forced_failure,
            degradation=effective,
            peak_term=peak_term,
        )

    # The capper's hold-last history is run state: without it a resumed
    # HOLD_LAST run would degrade differently than the straight-through
    # one on its first post-resume failure.
    def state_dict(self) -> dict:
        return {
            "last_good": (
                self.capper._last_good.to_dict()
                if self.capper._last_good is not None
                else None
            )
        }

    def load_state(self, state: dict) -> None:
        last = state.get("last_good")
        self.capper._last_good = (
            HourlyDecision.from_dict(last) if last is not None else None
        )


@dataclass
class MinOnlyStrategy:
    """A Min-Only price-taker baseline as an engine strategy.

    The dispatcher is built in :meth:`prepare` from the world's sites
    (server-only affine slopes) unless one is supplied. Min-Only is
    class-blind; the decision is re-wrapped with the true customer mix
    so throughput comparisons stay apples to apples, exactly as the
    legacy ``Simulator.run_min_only`` did.
    """

    mode: PriceMode
    dispatcher: MinOnlyDispatcher | None = None

    wants_budget = False

    @property
    def name(self) -> str:
        return f"min-only-{self.mode.value}"

    @property
    def result_name(self) -> str:
        return f"min-only-{self.mode.value}"

    def prepare(self, world: Engine) -> None:
        if self.dispatcher is None:
            self.dispatcher = MinOnlyDispatcher.for_sites(
                world.sites, self.mode
            )

    def decide(self, ctx: HourContext) -> HourlyDecision:
        if ctx.forced_failure is not None:
            raise ctx.forced_failure
        decision = self.dispatcher.solve(ctx.site_hours, ctx.total_rps)
        return HourlyDecision(
            step=CappingStep.BASELINE,
            allocations=decision.allocations,
            served_premium_rps=ctx.demand_premium_rps,
            served_ordinary_rps=ctx.demand_ordinary_rps,
            demand_premium_rps=ctx.demand_premium_rps,
            demand_ordinary_rps=ctx.demand_ordinary_rps,
            predicted_cost=decision.predicted_cost,
        )


@dataclass
class HierarchicalStrategy:
    """The Section IX hierarchical bill capper as an engine strategy.

    Sites are grouped into fixed contiguous regions of
    ``sites_per_region``; each hour the regions bid sampled cost curves
    and the coordinator splits the load (see
    :mod:`repro.core.hierarchical`). Far more expensive per hour than
    the flat capper — meant for short comparative runs, not full months.
    """

    capper: HierarchicalBillCapper = field(
        default_factory=HierarchicalBillCapper
    )
    sites_per_region: int = 3

    name = "hierarchical"
    result_name = "hierarchical"
    wants_budget = True

    def prepare(self, world: Engine) -> None:
        pass

    def decide(self, ctx: HourContext) -> HourlyDecision:
        if ctx.forced_failure is not None:
            raise ctx.forced_failure
        regions = regions_of(ctx.site_hours, self.sites_per_region)
        return self.capper.decide(
            regions,
            ctx.demand_premium_rps,
            ctx.demand_ordinary_rps,
            ctx.budget,
        )


register_strategy("capping", CappingStrategy)
register_strategy("min-only-avg", lambda: MinOnlyStrategy(PriceMode.AVG))
register_strategy("min-only-low", lambda: MinOnlyStrategy(PriceMode.LOW))
register_strategy(
    "min-only-current", lambda: MinOnlyStrategy(PriceMode.CURRENT)
)
register_strategy("hierarchical", HierarchicalStrategy)
