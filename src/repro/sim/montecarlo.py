"""Multi-seed (Monte-Carlo) robustness studies.

One synthetic month is one draw; conclusions like "Cost Capping saves
~20% versus Min-Only" should hold across workload/noise seeds, not just
seed 7. This module runs a metric across seeds and aggregates:

* :func:`run_study` — evaluate ``metric(seed)`` over seeds into a
  :class:`SeedStudy` (mean/std/min/max/CI); seeds are independent, so
  ``workers > 1`` fans them out over a process pool (the metric must
  then be picklable — a module-level function, not a closure);
* :func:`savings_study` — the canonical use: capping-vs-baseline
  savings per seed on freshly generated paper worlds (parallel-ready).

The normal-approximation confidence interval is deliberately simple —
these are smoke-level robustness checks, not publication statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["SeedStudy", "run_study", "savings_study"]


@dataclass(frozen=True)
class SeedStudy:
    """Aggregated metric values across seeds."""

    name: str
    seeds: tuple[int, ...]
    values: np.ndarray

    def __post_init__(self):
        if self.values.size != len(self.seeds) or self.values.size == 0:
            raise ValueError("one value per seed required (>= 1)")

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if self.values.size > 1 else 0.0

    @property
    def min(self) -> float:
        return float(self.values.min())

    @property
    def max(self) -> float:
        return float(self.values.max())

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean."""
        half = z * self.std / np.sqrt(self.values.size)
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        lo, hi = self.confidence_interval()
        return (
            f"{self.name}: mean={self.mean:.4f} std={self.std:.4f} "
            f"range=[{self.min:.4f}, {self.max:.4f}] "
            f"CI95=[{lo:.4f}, {hi:.4f}] over {self.values.size} seeds"
        )


def _seed_task(scenario, metric) -> float:
    """Sweep-engine adapter: the user metric is the shared payload."""
    return float(metric(scenario["seed"]))


def run_study(
    name: str,
    metric: Callable[[int], float],
    seeds: Iterable[int],
    workers: int = 1,
) -> SeedStudy:
    """Evaluate ``metric`` for every seed and aggregate.

    A seed study is a one-axis sweep; this routes through
    :func:`repro.sim.sweep.run_sweep`, which fans ``workers > 1`` out
    over a process pool (``metric`` must then be picklable — a
    module-level function or ``functools.partial`` over one). Results
    are deterministic and order-preserving at any worker count, and
    telemetry counters recorded by the metric are merged back into the
    ambient bundle.
    """
    from .sweep import run_sweep

    seeds = tuple(seeds)
    if not seeds:
        raise ValueError("at least one seed required")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    values = np.array(run_sweep(
        _seed_task,
        [{"seed": seed} for seed in seeds],
        workers=workers,
        payload=metric,
    ))
    return SeedStudy(name, seeds, values)


def _savings_metric(
    seed: int, hours: int, policy_id: int, max_servers: int | None
) -> float:
    """Capping-vs-Min-Only(Avg) savings for one seed (picklable)."""
    from ..experiments import paper_world
    from .engine import Engine

    kwargs = {"seed": seed}
    if max_servers is not None:
        kwargs["max_servers"] = max_servers
    world = paper_world(policy_id, **kwargs)
    engine = Engine(world.sites, world.workload, world.mix)
    capping = engine.run("capping", hours=hours)
    baseline = engine.run("min-only-avg", hours=hours)
    return 1.0 - capping.total_cost / baseline.total_cost


def savings_study(
    seeds: Sequence[int] = (1, 2, 3),
    hours: int = 96,
    *,
    policy_id: int = 1,
    max_servers: int | None = None,
    workers: int = 1,
) -> SeedStudy:
    """Capping-vs-Min-Only(Avg) savings across freshly seeded worlds.

    Each seed regenerates the workload and background-demand traces;
    hardware and pricing stay fixed. Seeds are independent, so
    ``workers=N`` parallelizes across processes.
    """
    from functools import partial

    metric = partial(
        _savings_metric, hours=hours, policy_id=policy_id, max_servers=max_servers
    )
    return run_study(f"capping-savings-policy{policy_id}", metric, seeds, workers)
