"""Multi-strategy comparison runs over the scenario-sweep engine.

``repro compare`` replays the *same* world under several dispatch
strategies. Strategy names resolve through
:mod:`repro.sim.registry` — any registered strategy (built-in or user
code) can join the comparison. The strategies are independent given
the world — no strategy observes another's decisions — so, exactly
like the seed fan-out in :mod:`repro.sim.montecarlo`, they are a
one-axis sweep for :func:`repro.sim.sweep.run_sweep`. Each worker
regenerates the (deterministic, seed-keyed) world locally instead of
pickling simulators across the pool, keeping the task payload to a
handful of scalars.

Budgeted comparisons (``budget_fraction``) need an uncapped anchor
month to scale the budget from. :func:`compare_strategies` resolves the
anchor **once** and ships the resolved monthly budget in each task
payload — pool workers never re-run the anchor.

Telemetry note: counters recorded by the strategies are merged back
into the ambient bundle at any worker count; spans are per-process,
so trace with ``workers=1`` when you need them end to end.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "STRATEGIES",
    "compare_strategies",
    "run_one_strategy",
    "resolve_monthly_budget",
]

#: Default strategy set of ``repro compare``, in the order it reports
#: them. The registry (:func:`repro.sim.registry.available_strategies`)
#: accepts more — ``hierarchical`` is excluded here only because its
#: per-hour cost makes it unsuitable for default-length comparisons.
STRATEGIES: tuple[str, ...] = (
    "capping",
    "min-only-avg",
    "min-only-low",
    "min-only-current",
)


def resolve_monthly_budget(
    world, budget_fraction: float, hours: int = 168, engine=None
):
    """The monthly budget implied by ``budget_fraction``.

    Runs the uncapped Cost Capping anchor over ``hours`` and scales its
    spend to the world's full horizon — the same anchor every budgeted
    entry point (CLI, pool tasks, sweeps) used to compute inline.
    """
    from .engine import Engine

    if engine is None:
        engine = Engine(world.sites, world.workload, world.mix)
    anchor = engine.run("capping", hours=hours)
    return anchor.total_cost * world.hours / hours * budget_fraction


def run_one_strategy(
    strategy: str,
    policy_id: int = 1,
    seed: int = 7,
    hours: int = 168,
    budget_fraction: float | None = None,
    monthly_budget: float | None = None,
    tariff: str | None = None,
):
    """Run one registered strategy on a freshly built paper world.

    Module-level by design: :class:`~concurrent.futures.
    ProcessPoolExecutor` tasks must be picklable. Returns the
    strategy's :class:`~repro.sim.records.SimulationResult`.

    ``monthly_budget`` (when the caller already resolved one — see
    :func:`resolve_monthly_budget`) takes precedence over
    ``budget_fraction``, which otherwise triggers a local uncapped
    anchor run. Budget parameters only apply to strategies that consume
    a budget; price takers ignore them, as they always have. ``tariff``
    is a :func:`repro.billing.make_ledger` spec string (default: the
    paper's energy-only bill).
    """
    from ..experiments import paper_world
    from .engine import Engine
    from .registry import get_strategy

    strat = get_strategy(strategy)
    world = paper_world(policy_id, seed=seed)
    engine = Engine(world.sites, world.workload, world.mix)
    budgeter = None
    if strat.wants_budget:
        if monthly_budget is None and budget_fraction is not None:
            monthly_budget = resolve_monthly_budget(
                world, budget_fraction, hours=hours, engine=engine
            )
        if monthly_budget is not None:
            budgeter = world.budgeter(monthly_budget)
    return engine.run(strat, budgeter=budgeter, hours=hours, tariff=tariff)


def compare_strategies(
    policy_id: int = 1,
    seed: int = 7,
    hours: int = 168,
    strategies: Sequence[str] = STRATEGIES,
    workers: int = 1,
    budget_fraction: float | None = None,
    tariff: str | None = None,
):
    """Run several strategies over the same world; optionally in parallel.

    Returns ``{strategy: SimulationResult}`` in the order given.
    ``workers > 1`` fans the strategies out over a process pool; the
    serial path produces identical results (each worker regenerates the
    identical seed-keyed world), which the test suite pins. With
    ``budget_fraction`` set, the uncapped anchor month is run exactly
    once here and the resolved monthly budget rides in the task
    payloads.
    """
    from .registry import available_strategies, get_strategy
    from .sweep import run_sweep, strategy_metric

    strategies = tuple(strategies)
    if not strategies:
        raise ValueError("at least one strategy required")
    known = available_strategies()
    unknown = [s for s in strategies if s not in known]
    if unknown:
        raise ValueError(f"unknown strategies {unknown}; expected among {known}")
    if workers < 1:
        raise ValueError("workers must be >= 1")

    monthly_budget = None
    if budget_fraction is not None and any(
        get_strategy(s).wants_budget for s in strategies
    ):
        from ..experiments import paper_world

        monthly_budget = resolve_monthly_budget(
            paper_world(policy_id, seed=seed), budget_fraction, hours=hours
        )

    scenarios = [
        {
            "strategy": s,
            "policy_id": policy_id,
            "seed": seed,
            "hours": hours,
            "monthly_budget": monthly_budget,
            "tariff": tariff,
        }
        for s in strategies
    ]
    results = run_sweep(strategy_metric, scenarios, workers=workers)
    return dict(zip(strategies, results))
