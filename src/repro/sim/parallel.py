"""Multi-strategy comparison runs over the scenario-sweep engine.

``repro compare`` replays the *same* world under several dispatch
strategies (Cost Capping plus the Min-Only baselines). The strategies
are independent given the world — no strategy observes another's
decisions — so, exactly like the seed fan-out in
:mod:`repro.sim.montecarlo`, they are a one-axis sweep for
:func:`repro.sim.sweep.run_sweep`. Each worker regenerates the
(deterministic, seed-keyed) world locally instead of pickling
simulators across the pool, keeping the task payload to a handful of
scalars.

Telemetry note: counters recorded by the strategies are merged back
into the ambient bundle at any worker count; spans are per-process,
so trace with ``workers=1`` when you need them end to end.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["STRATEGIES", "compare_strategies", "run_one_strategy"]

#: Strategy names accepted by :func:`compare_strategies`, in the order
#: ``repro compare`` reports them.
STRATEGIES: tuple[str, ...] = (
    "capping",
    "min-only-avg",
    "min-only-low",
    "min-only-current",
)


def run_one_strategy(
    strategy: str,
    policy_id: int = 1,
    seed: int = 7,
    hours: int = 168,
    budget_fraction: float | None = None,
):
    """Run one strategy on a freshly built paper world (picklable task).

    Module-level by design: :class:`~concurrent.futures.
    ProcessPoolExecutor` tasks must be picklable. Returns the
    strategy's :class:`~repro.sim.records.SimulationResult`.
    """
    from ..core import PriceMode
    from ..experiments import paper_world
    from .simulator import Simulator

    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    world = paper_world(policy_id, seed=seed)
    sim = Simulator(world.sites, world.workload, world.mix)
    if strategy == "capping":
        budgeter = None
        if budget_fraction is not None:
            anchor = sim.run_capping(hours=hours)
            monthly = anchor.total_cost * world.hours / hours * budget_fraction
            budgeter = world.budgeter(monthly)
        return sim.run_capping(budgeter, hours=hours)
    mode = PriceMode(strategy.removeprefix("min-only-"))
    return sim.run_min_only(mode, hours=hours)


def compare_strategies(
    policy_id: int = 1,
    seed: int = 7,
    hours: int = 168,
    strategies: Sequence[str] = STRATEGIES,
    workers: int = 1,
    budget_fraction: float | None = None,
):
    """Run several strategies over the same world; optionally in parallel.

    Returns ``{strategy: SimulationResult}`` in the order given.
    ``workers > 1`` fans the strategies out over a process pool; the
    serial path produces identical results (each worker regenerates the
    identical seed-keyed world), which the test suite pins.
    """
    from .sweep import run_sweep, strategy_metric

    strategies = tuple(strategies)
    if not strategies:
        raise ValueError("at least one strategy required")
    unknown = [s for s in strategies if s not in STRATEGIES]
    if unknown:
        raise ValueError(f"unknown strategies {unknown}; expected among {STRATEGIES}")
    if workers < 1:
        raise ValueError("workers must be >= 1")

    scenarios = [
        {
            "strategy": s,
            "policy_id": policy_id,
            "seed": seed,
            "hours": hours,
            "budget_fraction": budget_fraction,
        }
        for s in strategies
    ]
    results = run_sweep(strategy_metric, scenarios, workers=workers)
    return dict(zip(strategies, results))
