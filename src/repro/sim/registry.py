"""Central registry of dispatch strategies.

Every policy the repo can simulate — Cost Capping, the three Min-Only
price-taker modes, the hierarchical capper, and anything a user
registers — is a named factory here. All entry points (``repro
compare``/``repro run``, :class:`~repro.sim.simulator.Simulator`,
:mod:`repro.sim.parallel`, :mod:`repro.sim.sweep`,
:mod:`repro.sim.montecarlo`) resolve strategies through this module, so
adding a policy is one :func:`register_strategy` call instead of five
``if/elif`` chains.

Factories take no arguments and return a *fresh*
:class:`~repro.sim.engine.DispatchStrategy` per :func:`get_strategy`
call — strategies are stateful across the hours of one run (model
caches, hold-last history) and must never be shared between runs.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["register_strategy", "get_strategy", "available_strategies"]

_FACTORIES: dict[str, Callable[[], object]] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Load the built-in strategies exactly once, lazily.

    Lazy because :mod:`repro.sim.strategies` imports the engine (which
    imports this module back for name resolution), and because pool
    workers that unpickle a task must see the same registry without any
    explicit initialization.
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from . import strategies  # noqa: F401  (registers on import)


def register_strategy(
    name: str, factory: Callable[[], object], *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name``.

    ``factory`` must return a fresh :class:`~repro.sim.engine.
    DispatchStrategy` each call. Re-registering an existing name raises
    unless ``replace=True`` — shadowing a built-in silently is almost
    always a bug in user code.
    """
    if not name or not isinstance(name, str):
        raise ValueError("strategy name must be a non-empty string")
    if not callable(factory):
        raise TypeError("strategy factory must be callable")
    _ensure_builtins()
    if name in _FACTORIES and not replace:
        raise ValueError(
            f"strategy {name!r} is already registered; pass replace=True "
            "to override it"
        )
    _FACTORIES[name] = factory


def get_strategy(name: str):
    """A fresh strategy instance for ``name``.

    Raises :class:`ValueError` with the list of registered names when
    the name is unknown — the message every CLI/pool entry point
    surfaces verbatim.
    """
    _ensure_builtins()
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of "
            f"{available_strategies()}"
        )
    strategy = factory()
    got = getattr(strategy, "name", None)
    if got != name:
        raise ValueError(
            f"factory for {name!r} built a strategy named {got!r}"
        )
    return strategy


def available_strategies() -> tuple[str, ...]:
    """All registered strategy names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_FACTORIES))
