"""Simulation of dispatch strategies over workload months.

The hourly control loop lives in :class:`~repro.sim.engine.Engine`;
strategies resolve by name through :mod:`repro.sim.registry`
(:func:`register_strategy` / :func:`get_strategy` /
:func:`available_strategies`). :class:`Simulator` remains the
compatibility facade over the engine.
"""

from .analysis import (
    BudgetAdherence,
    budget_adherence,
    compare,
    format_comparison,
    price_level_occupancy,
    savings,
    site_breakdown,
)
from .engine import DispatchStrategy, Engine, HourContext
from .montecarlo import SeedStudy, run_study, savings_study
from .parallel import (
    STRATEGIES,
    compare_strategies,
    resolve_monthly_budget,
    run_one_strategy,
)
from .records import HourRecord, SimulationResult, SiteRecord
from .endogenous import EndogenousPriceMiddleware, EndogenousPrices
from .registry import available_strategies, get_strategy, register_strategy
from .simulator import Simulator
from .sweep import closedloop_metric, derive_seed, run_sweep, sweep_grid

__all__ = [
    "Simulator",
    "Engine",
    "DispatchStrategy",
    "HourContext",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "SimulationResult",
    "HourRecord",
    "SiteRecord",
    "savings",
    "BudgetAdherence",
    "budget_adherence",
    "price_level_occupancy",
    "site_breakdown",
    "compare",
    "format_comparison",
    "SeedStudy",
    "run_study",
    "savings_study",
    "STRATEGIES",
    "compare_strategies",
    "resolve_monthly_budget",
    "run_one_strategy",
    "sweep_grid",
    "run_sweep",
    "derive_seed",
    "closedloop_metric",
    "EndogenousPrices",
    "EndogenousPriceMiddleware",
]
