"""Simulation of dispatch strategies over workload months."""

from .analysis import (
    BudgetAdherence,
    budget_adherence,
    compare,
    format_comparison,
    price_level_occupancy,
    savings,
    site_breakdown,
)
from .montecarlo import SeedStudy, run_study, savings_study
from .parallel import STRATEGIES, compare_strategies, run_one_strategy
from .records import HourRecord, SimulationResult, SiteRecord
from .simulator import Simulator
from .sweep import derive_seed, run_sweep, sweep_grid

__all__ = [
    "Simulator",
    "SimulationResult",
    "HourRecord",
    "SiteRecord",
    "savings",
    "BudgetAdherence",
    "budget_adherence",
    "price_level_occupancy",
    "site_breakdown",
    "compare",
    "format_comparison",
    "SeedStudy",
    "run_study",
    "savings_study",
    "STRATEGIES",
    "compare_strategies",
    "run_one_strategy",
    "sweep_grid",
    "run_sweep",
    "derive_seed",
]
