"""Analysis utilities over simulation results.

Everything the evaluation section computes from raw hourly records
lives here, so benchmarks, examples and the CLI share one
implementation:

* :func:`savings` — relative bill reduction between two strategies;
* :func:`budget_adherence` — violation counts/magnitudes vs a budgeter;
* :func:`price_level_occupancy` — how many site-hours were billed at
  each price level (the "did we cross the steps?" diagnostic);
* :func:`site_breakdown` — per-site energy, cost and share;
* :func:`compare` — a strategy-comparison table as plain dicts;
* :func:`format_comparison` — text rendering for reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import CappingStep, Site
from .records import SimulationResult

__all__ = [
    "savings",
    "BudgetAdherence",
    "budget_adherence",
    "price_level_occupancy",
    "site_breakdown",
    "compare",
    "format_comparison",
]


def savings(strategy: SimulationResult, baseline: SimulationResult) -> float:
    """Relative bill reduction of ``strategy`` vs ``baseline`` (0.2 = 20%)."""
    if baseline.total_cost <= 0:
        raise ValueError("baseline has non-positive total cost")
    return 1.0 - strategy.total_cost / baseline.total_cost


@dataclass(frozen=True)
class BudgetAdherence:
    """Budget-discipline statistics for a capped run."""

    monthly_budget: float
    total_spent: float
    hours_over: int
    mandatory_hours_over: int  # violations in premium-only hours
    worst_hourly_overshoot: float  # max (cost - budget), $; 0 if none

    @property
    def utilization(self) -> float:
        return self.total_spent / self.monthly_budget

    @property
    def within_monthly_budget(self) -> bool:
        return self.total_spent <= self.monthly_budget * (1 + 1e-9)


def budget_adherence(result: SimulationResult, monthly_budget: float) -> BudgetAdherence:
    """Compute budget-discipline statistics for a capped simulation."""
    if monthly_budget <= 0:
        raise ValueError("monthly budget must be positive")
    hours_over = 0
    mandatory = 0
    worst = 0.0
    for h in result.hours:
        overshoot = h.realized_cost - h.budget
        if overshoot > 1e-9 * max(1.0, h.budget):
            hours_over += 1
            if h.step is CappingStep.PREMIUM_ONLY:
                mandatory += 1
            worst = max(worst, overshoot)
    return BudgetAdherence(
        monthly_budget=monthly_budget,
        total_spent=result.total_cost,
        hours_over=hours_over,
        mandatory_hours_over=mandatory,
        worst_hourly_overshoot=worst,
    )


def price_level_occupancy(
    result: SimulationResult, sites: list[Site]
) -> dict[str, np.ndarray]:
    """Site-hours billed at each price level, per site.

    Returns ``{site: counts}`` where ``counts[k]`` is the number of
    hours the site's market cleared at its policy's level ``k``. The
    price-maker effect is visible here: Cost Capping occupies lower
    levels than the baselines under the same workload.
    """
    by_name = {s.name: s for s in sites}
    out = {
        s.name: np.zeros(s.policy.n_levels, dtype=int) for s in sites
    }
    for h in result.hours:
        for rec in h.sites:
            site = by_name.get(rec.site)
            if site is None:
                raise KeyError(f"record for unknown site {rec.site!r}")
            market = float(site.background_mw[h.hour]) + rec.power_mw
            out[rec.site][site.policy.level_index(market)] += 1
    return out


def site_breakdown(result: SimulationResult) -> dict[str, dict[str, float]]:
    """Per-site totals: energy (MWh), cost ($), cost share, mean price."""
    energy: dict[str, float] = {}
    cost: dict[str, float] = {}
    for h in result.hours:
        for rec in h.sites:
            energy[rec.site] = energy.get(rec.site, 0.0) + rec.power_mw
            cost[rec.site] = cost.get(rec.site, 0.0) + rec.cost
    total_cost = sum(cost.values()) or 1.0
    return {
        site: {
            "energy_mwh": energy[site],
            "cost": cost[site],
            "cost_share": cost[site] / total_cost,
            "mean_price": cost[site] / energy[site] if energy[site] > 0 else 0.0,
        }
        for site in energy
    }


def compare(results: dict[str, SimulationResult]) -> list[dict[str, float | str]]:
    """Strategy-comparison rows (dicts keyed by metric name)."""
    if not results:
        raise ValueError("no results to compare")
    cheapest = min(r.total_cost for r in results.values())
    rows = []
    for name, res in results.items():
        rows.append(
            {
                "strategy": name,
                "total_cost": res.total_cost,
                "vs_cheapest": res.total_cost / cheapest - 1.0,
                "premium_throughput": res.premium_throughput_fraction,
                "ordinary_throughput": res.ordinary_throughput_fraction,
                "hours_over_budget": float(res.hours_over_budget),
                "peak_power_mw": float(res.hourly_power_mw.max()) if len(res) else 0.0,
            }
        )
    return rows


def format_comparison(results: dict[str, SimulationResult]) -> str:
    """Render :func:`compare` as a fixed-width text table."""
    rows = compare(results)
    header = (
        f"{'strategy':<24} {'cost $':>12} {'vs best':>8} "
        f"{'prem':>6} {'ord':>6} {'over-budget':>11}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['strategy']:<24} {r['total_cost']:>12,.0f} "
            f"{r['vs_cheapest']:>7.1%} {r['premium_throughput']:>6.1%} "
            f"{r['ordinary_throughput']:>6.1%} {int(r['hours_over_budget']):>11}"
        )
    return "\n".join(lines)
