"""Hour-by-hour simulation of a month of operation.

Drives any dispatcher (the bill capper or a Min-Only baseline) through a
workload trace, one invocation period at a time, exactly as Section VI
describes:

1. the budgeter produces the hour's budget (capping runs only);
2. the dispatcher allocates the hour's offered load across the sites
   using its *decision* models;
3. each site's local optimizer provisions servers for its allocation,
   shedding load only if the dispatch overshoots the site's physical
   or contractual limits (model mismatch);
4. the *realized* bill is evaluated with the exact stepped power models
   and the true locational prices, and fed back to the budgeter.

The gap between predicted and realized cost is precisely what separates
Cost Capping from the price-taker baselines in the paper's Figures 3-4
and 9: all strategies are billed by the same ground truth.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from ..core import (
    BillCapper,
    Budgeter,
    CappingStep,
    HourlyDecision,
    MinOnlyDispatcher,
    PriceMode,
    Site,
    SiteHour,
)
from ..datacenter import (
    LocalDecision,
    LocalOptimizer,
    SiteBank,
    required_servers,
    response_time,
    supports_batching,
)
from ..powermarket import CurveBank
from ..resilience import DegradationPolicy, FaultInjector
from ..telemetry import Telemetry, get_telemetry, use_telemetry
from ..workload import CustomerMix, Trace
from .records import HourRecord, SimulationResult, SiteRecord

__all__ = ["Simulator"]


@dataclass
class Simulator:
    """Simulates dispatch strategies over a workload month.

    Parameters
    ----------
    sites:
        The data-center network with markets bound.
    workload:
        Total offered load (premium + ordinary) per hour.
    mix:
        Premium/ordinary customer mix.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle. When set,
        it is installed as the active bundle for the duration of every
        run, so each simulated hour emits a ``hour`` span with
        ``budget``/``dispatch``/``local_optimization``/``billing``
        children and the solver stack records per-solve MILP stats into
        the same registry. When unset, runs record into whatever
        :func:`repro.telemetry.get_telemetry` returns (the no-op NULL
        bundle by default).
    """

    sites: list[Site]
    workload: Trace
    mix: CustomerMix
    telemetry: Telemetry | None = None
    #: Evaluate realized billing through the vectorized physics/pricing
    #: layer (:class:`~repro.datacenter.SiteBank` +
    #: :class:`~repro.powermarket.CurveBank`). Bit-identical to the
    #: scalar per-site path (pinned by ``tests/sim/test_batched_realize``);
    #: set False to force the scalar reference path. Heterogeneous sites
    #: fall back to scalar automatically.
    batched: bool = True

    def __post_init__(self):
        if not self.sites:
            raise ValueError("at least one site required")
        horizon = min(len(s.background_mw) for s in self.sites)
        if self.workload.hours > horizon:
            raise ValueError(
                f"workload ({self.workload.hours} h) exceeds background "
                f"demand traces ({horizon} h)"
            )
        self._local = {s.name: LocalOptimizer(s.datacenter) for s in self.sites}
        # Hour-keyed memos shared by every strategy run on this instance:
        # SiteHour snapshots are immutable and weather-hour optimizers
        # are deterministic, so building either once per (site, hour) is
        # enough however many strategies replay the same month.
        self._hours_memo: dict[int, list[SiteHour]] = {}
        self._local_at_memo: dict[tuple[str, int], LocalOptimizer] = {}
        self._bank: SiteBank | None = None
        self._curves: CurveBank | None = None
        if self.batched and all(supports_batching(s.datacenter) for s in self.sites):
            self._bank = SiteBank.from_sites(self.sites)
            self._curves = CurveBank.from_policies([s.policy for s in self.sites])

    # -- strategies ------------------------------------------------------------

    def run_capping(
        self,
        budgeter: Budgeter | None = None,
        *,
        capper: BillCapper | None = None,
        hours: int | None = None,
        name: str = "cost-capping",
        faults: FaultInjector | None = None,
        degradation: DegradationPolicy | None = None,
    ) -> SimulationResult:
        """Run the two-step Cost Capping algorithm.

        ``budgeter=None`` disables capping — every hour gets an infinite
        budget, i.e. pure Section IV cost minimization. Build a budgeter
        from history with e.g. :meth:`repro.experiments.PaperWorld.budgeter`.

        ``faults`` injects the :class:`~repro.resilience.FaultInjector`'s
        deterministic per-hour faults: stale market snapshots, dead
        background-demand sensors, solver-stack failures, and budgeter
        state loss (recovered from an hourly checkpoint). Every faulted
        hour still carries a dispatch decision — solver failures fall
        back to ``degradation`` (default
        :attr:`~repro.resilience.DegradationPolicy.PROPORTIONAL`) and
        are recorded as :attr:`~repro.core.CappingStep.DEGRADED` hours.
        With ``faults=None`` the loop is bit-identical to a plain run.
        """
        capper = capper or BillCapper()
        horizon = self._horizon(hours)
        if budgeter is not None:
            remaining = budgeter.month_hours - budgeter.current_hour
            if horizon > remaining:
                raise ValueError(
                    f"horizon of {horizon} h exceeds the budgeter's remaining "
                    f"{remaining} budgeted hours (month_hours="
                    f"{budgeter.month_hours}, {budgeter.current_hour} already "
                    f"recorded); pass fewer hours or a longer budgeting period"
                )
        if degradation is not None:
            capper.degradation = degradation
        elif faults is not None and capper.degradation is None:
            capper.degradation = DegradationPolicy.PROPORTIONAL
        result = SimulationResult(name)
        with use_telemetry(self.telemetry or get_telemetry()) as tel:
            # Hourly checkpoint backing the budget_loss fault: a lost
            # budgeter is restored from here, exactly as a restarted
            # controller would resume from its last persisted state.
            ckpt = (
                budgeter.checkpoint()
                if budgeter is not None and faults is not None
                else None
            )
            for t in range(horizon):
                hf = faults.faults_for(t) if faults is not None else None
                with tel.span("hour", hour=t, strategy=name) as hour_span:
                    if hf is not None and hf.any:
                        for kind in hf.kinds:
                            tel.counter(f"resilience.injected.{kind}").inc()
                        hour_span.set(faults=",".join(hf.kinds))
                    if hf is not None and hf.budget_loss and budgeter is not None:
                        budgeter = Budgeter.restore(ckpt)
                        tel.counter("resilience.budgeter_restarts").inc()
                    total = float(self.workload.rates_rps[t])
                    premium = self.mix.premium_rate(total)
                    ordinary = self.mix.ordinary_rate(total)
                    with tel.span("budget"):
                        budget = (
                            budgeter.hourly_budget() if budgeter else float("inf")
                        )
                    site_hours = self._observed_site_hours(t, hf)
                    forced = hf.solver_exception() if hf is not None else None
                    with tel.span("dispatch"):
                        decision = capper.decide(
                            site_hours, premium, ordinary, budget,
                            forced_failure=forced,
                        )
                    if decision.step is CappingStep.DEGRADED:
                        tel.counter("resilience.degraded_hours").inc()
                    record = self._realize(t, decision)
                    if budgeter:
                        budgeter.record_spend(record.realized_cost)
                        if ckpt is not None:
                            ckpt = budgeter.checkpoint()
                    hour_span.set(
                        step=decision.step.value,
                        realized_cost=record.realized_cost,
                    )
                result.append(record)
        return result

    def run_min_only(
        self,
        mode: PriceMode,
        dispatcher: MinOnlyDispatcher | None = None,
        *,
        hours: int | None = None,
    ) -> SimulationResult:
        """Run a Min-Only baseline (serves everything, price taker)."""
        if dispatcher is None:
            from ..core import server_only_affine_slope

            dispatcher = MinOnlyDispatcher(
                price_mode=mode,
                server_slopes={
                    s.name: server_only_affine_slope(s.datacenter) for s in self.sites
                },
            )
        horizon = self._horizon(hours)
        name = f"min-only-{mode.value}"
        result = SimulationResult(name)
        with use_telemetry(self.telemetry or get_telemetry()) as tel:
            for t in range(horizon):
                with tel.span("hour", hour=t, strategy=name):
                    total = float(self.workload.rates_rps[t])
                    site_hours = self._site_hours(t)
                    with tel.span("dispatch"):
                        decision = dispatcher.solve(site_hours, total)
                    # Min-Only is class-blind: report demand with the true
                    # mix so throughput comparisons are apples to apples.
                    decision = HourlyDecision(
                        step=CappingStep.BASELINE,
                        allocations=decision.allocations,
                        served_premium_rps=self.mix.premium_rate(total),
                        served_ordinary_rps=self.mix.ordinary_rate(total),
                        demand_premium_rps=self.mix.premium_rate(total),
                        demand_ordinary_rps=self.mix.ordinary_rate(total),
                        predicted_cost=decision.predicted_cost,
                    )
                    result.append(self._realize(t, decision))
        return result

    # -- internals -----------------------------------------------------------------

    @staticmethod
    def _response_time(site: Site, local) -> float:
        """Realized mean response time from the exact G/G/m model.

        Heterogeneous sites track a blended figure via their slowest
        pool; for simplicity the aggregate model is evaluated with the
        site's nominal service rate when available.
        """
        dc = site.datacenter
        n = local.provisioning.n_servers
        if n == 0 or local.served_rps <= 0:
            return 0.0
        servers = getattr(dc, "servers", None)
        if servers is not None:  # homogeneous site
            return response_time(local.served_rps, n, servers.service_rate, dc.queue)
        # Heterogeneous: slowest pool under the greedy split.
        worst = 0.0
        for pool, rate in dc.split_load(local.served_rps):
            if rate <= 0:
                continue
            n_pool = min(
                pool.count,
                max(
                    int(required_servers(rate, pool.spec.service_rate,
                                         dc.target_response_s, dc.queue)),
                    math.ceil(rate / (dc.utilization_cap * pool.spec.service_rate)),
                    1,
                ),
            )
            worst = max(
                worst, response_time(rate, n_pool, pool.spec.service_rate, dc.queue)
            )
        return worst

    def _site_hours(self, t: int) -> list[SiteHour]:
        """Per-hour market snapshots, built once per hour per instance."""
        hours = self._hours_memo.get(t)
        if hours is None:
            hours = self._hours_memo[t] = [s.hour(t) for s in self.sites]
        return hours

    def _observed_site_hours(self, t: int, hf) -> list[SiteHour]:
        """The snapshots the *dispatcher* sees at hour ``t``.

        Normally the truth; under an injected sensing fault the view is
        degraded — a stale price feed serves the whole previous-hour
        snapshot, a sensor dropout serves the previous hour's background
        demand under current prices. Hour 0 has no previous snapshot to
        go stale, so faults there are no-ops. Realized billing always
        uses the true hour regardless (see :meth:`_realize`).
        """
        current = self._site_hours(t)
        if hf is None or t == 0:
            return current
        if hf.stale_prices:
            return self._site_hours(t - 1)
        if hf.sensor_dropout:
            previous = self._site_hours(t - 1)
            return [
                dataclasses.replace(sh, background_mw=prev.background_mw)
                for sh, prev in zip(current, previous)
            ]
        return current

    def _local_at(self, site: Site, t: int) -> LocalOptimizer:
        """Weather-hour local optimizer, built once per (site, hour)."""
        key = (site.name, t)
        local = self._local_at_memo.get(key)
        if local is None:
            local = self._local_at_memo[key] = LocalOptimizer(site.datacenter_at(t))
        return local

    def _horizon(self, hours: int | None) -> int:
        if hours is None:
            return self.workload.hours
        if not 0 < hours <= self.workload.hours:
            raise ValueError(f"hours must be in 1..{self.workload.hours}")
        return hours

    def _provision_scalar(self, t: int, decision: HourlyDecision):
        """Reference path: one local-optimizer call per site."""
        provisioned = []
        for site in self.sites:
            dispatched = decision.rate_for(site.name)
            if site.coe_trace is None:
                local = self._local[site.name].decide(dispatched)
            else:
                # Weather-varying cooling: the optimizer around this
                # hour's efficiency (memoized across strategy runs).
                local = self._local_at(site, t).decide(dispatched)
            provisioned.append((site, dispatched, local))
        return provisioned

    def _coe_at(self, t: int) -> np.ndarray | None:
        """Per-site cooling efficiencies for hour ``t`` (None = constants)."""
        if all(s.coe_trace is None for s in self.sites):
            return None
        return np.array(
            [
                float(s.coe_trace[t]) if s.coe_trace is not None
                else s.datacenter.cooling.coe
                for s in self.sites
            ]
        )

    def _provision_batched(self, t: int, decision: HourlyDecision):
        """Vectorized path: one :class:`SiteBank` call for all sites.

        Produces the same ``(site, dispatched, LocalDecision)`` triples
        as :meth:`_provision_scalar` — the bank's arithmetic is
        bit-identical to the scalar models, and sites whose dispatch
        overshoots their physical or contractual limits (the rare
        model-mismatch case) are handed to the scalar local optimizer,
        whose shedding search is the reference behavior.
        """
        bank = self._bank
        rates = np.array([decision.rate_for(s.name) for s in self.sites])
        n, util, server_w, network_w, cooling_w = bank.provision_arrays(
            rates, coe=self._coe_at(t), validate=False
        )
        provisioned = []
        for i, site in enumerate(self.sites):
            dispatched = float(rates[i])
            over_fleet = n[i] > bank.max_servers[i]
            if not over_fleet:
                prov = bank.provisioning(i, n, util, server_w, network_w,
                                         cooling_w)
                if prov.total_power_mw <= bank.power_cap_mw[i] + 1e-12:
                    provisioned.append((
                        site,
                        dispatched,
                        LocalDecision(served_rps=dispatched, shed_rps=0.0,
                                      provisioning=prov),
                    ))
                    continue
            local = (
                self._local[site.name] if site.coe_trace is None
                else self._local_at(site, t)
            ).decide(dispatched)
            provisioned.append((site, dispatched, local))
        return provisioned

    def _realize(self, t: int, decision: HourlyDecision) -> HourRecord:
        """Evaluate a dispatch decision against the exact physical models."""
        tel = get_telemetry()
        with tel.span("local_optimization"):
            if self._bank is not None:
                provisioned = self._provision_batched(t, decision)
            else:
                provisioned = self._provision_scalar(t, decision)
        site_records = []
        realized_cost = 0.0
        total_shed = 0.0
        with tel.span("billing"):
            if self._curves is not None:
                power = np.array([l.power_mw for _, _, l in provisioned])
                bg = np.array(
                    [float(s.background_mw[t]) for s in self.sites]
                )
                prices = self._curves.site_price(power, bg)
                served = np.array([l.served_rps for _, _, l in provisioned])
                ns = np.array(
                    [l.provisioning.n_servers for _, _, l in provisioned],
                    dtype=float,
                )
                rts = self._bank.response_time(served, ns)
                rts = np.where((ns == 0.0) | (served <= 0.0), 0.0, rts)
            for i, (site, dispatched, local) in enumerate(provisioned):
                if self._curves is not None:
                    price = float(prices[i])
                    rt = float(rts[i])
                else:
                    price = site.policy.price(
                        float(site.background_mw[t]) + local.power_mw
                    )
                    rt = self._response_time(site, local)
                cost = price * local.power_mw
                realized_cost += cost
                total_shed += local.shed_rps
                site_records.append(
                    SiteRecord(
                        site=site.name,
                        dispatched_rps=dispatched,
                        served_rps=local.served_rps,
                        power_mw=local.power_mw,
                        price=price,
                        cost=cost,
                        n_servers=local.provisioning.n_servers,
                        response_time_s=rt,
                    )
                )
        # Shedding from decision/physics mismatch hits ordinary traffic
        # first: providers protect their revenue source.
        served_ordinary = max(0.0, decision.served_ordinary_rps - total_shed)
        leftover_shed = max(0.0, total_shed - decision.served_ordinary_rps)
        served_premium = max(0.0, decision.served_premium_rps - leftover_shed)
        return HourRecord(
            hour=t,
            step=decision.step,
            budget=decision.budget,
            predicted_cost=decision.predicted_cost,
            realized_cost=realized_cost,
            demand_premium_rps=decision.demand_premium_rps,
            demand_ordinary_rps=decision.demand_ordinary_rps,
            served_premium_rps=served_premium,
            served_ordinary_rps=served_ordinary,
            sites=tuple(site_records),
        )
