"""Hour-by-hour simulation of a month of operation.

Compatibility facade: the actual control loop lives in
:class:`repro.sim.engine.Engine` (one pipeline for every registered
strategy — see :mod:`repro.sim.registry`). :class:`Simulator` keeps the
historical entry points — ``run_capping`` / ``run_min_only`` — as thin
wrappers that build the corresponding strategy and delegate, producing
bit-identical :class:`~repro.sim.records.SimulationResult`s.

The loop itself is Section VI, one invocation period at a time:

1. the budgeter produces the hour's budget (budget-aware runs only);
2. the dispatcher allocates the hour's offered load across the sites
   using its *decision* models;
3. each site's local optimizer provisions servers for its allocation,
   shedding load only if the dispatch overshoots the site's physical
   or contractual limits (model mismatch);
4. the *realized* bill is evaluated with the exact stepped power models
   and the true locational prices, and fed back to the budgeter.

The gap between predicted and realized cost is precisely what separates
Cost Capping from the price-taker baselines in the paper's Figures 3-4
and 9: all strategies are billed by the same ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import BillCapper, Budgeter, MinOnlyDispatcher, PriceMode, Site
from ..resilience import DegradationPolicy, FaultInjector
from ..telemetry import Telemetry
from ..workload import CustomerMix, Trace
from .engine import Engine
from .records import SimulationResult

__all__ = ["Simulator"]


@dataclass
class Simulator:
    """Simulates dispatch strategies over a workload month.

    Parameters
    ----------
    sites:
        The data-center network with markets bound.
    workload:
        Total offered load (premium + ordinary) per hour.
    mix:
        Premium/ordinary customer mix.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle. When set,
        it is installed as the active bundle for the duration of every
        run, so each simulated hour emits a ``hour`` span with
        ``budget``/``dispatch``/``local_optimization``/``billing``
        children and the solver stack records per-solve MILP stats into
        the same registry. When unset, runs record into whatever
        :func:`repro.telemetry.get_telemetry` returns (the no-op NULL
        bundle by default).
    """

    sites: list[Site]
    workload: Trace
    mix: CustomerMix
    telemetry: Telemetry | None = None
    #: Evaluate realized billing through the vectorized physics/pricing
    #: layer (:class:`~repro.datacenter.SiteBank` +
    #: :class:`~repro.powermarket.CurveBank`). Bit-identical to the
    #: scalar per-site path (pinned by ``tests/sim/test_batched_realize``);
    #: set False to force the scalar reference path. Heterogeneous sites
    #: fall back to scalar automatically.
    batched: bool = True

    def __post_init__(self):
        self.engine = Engine(
            self.sites,
            self.workload,
            self.mix,
            telemetry=self.telemetry,
            batched=self.batched,
        )

    # The realize-path internals are engine-owned now; these views keep
    # the historical introspection surface (and its tests) intact.
    @property
    def _bank(self):
        return self.engine._bank

    @property
    def _curves(self):
        return self.engine._curves

    # -- strategies ------------------------------------------------------------

    def run_capping(
        self,
        budgeter: Budgeter | None = None,
        *,
        capper: BillCapper | None = None,
        hours: int | None = None,
        name: str = "cost-capping",
        faults: FaultInjector | None = None,
        degradation: DegradationPolicy | None = None,
    ) -> SimulationResult:
        """Run the two-step Cost Capping algorithm.

        ``budgeter=None`` disables capping — every hour gets an infinite
        budget, i.e. pure Section IV cost minimization. Build a budgeter
        from history with e.g. :meth:`repro.experiments.PaperWorld.budgeter`.

        ``faults`` injects the :class:`~repro.resilience.FaultInjector`'s
        deterministic per-hour faults: stale market snapshots, dead
        background-demand sensors, solver-stack failures, and budgeter
        state loss (recovered from an hourly checkpoint). Every faulted
        hour still carries a dispatch decision — solver failures fall
        back to ``degradation`` (default
        :attr:`~repro.resilience.DegradationPolicy.PROPORTIONAL`) and
        are recorded as :attr:`~repro.core.CappingStep.DEGRADED` hours.
        With ``faults=None`` the loop is bit-identical to a plain run.

        A caller-supplied ``capper`` is used as-is but never mutated:
        the run-level ``degradation`` rides through a per-call override
        on :meth:`~repro.core.BillCapper.decide`.
        """
        from .strategies import CappingStrategy

        strategy = CappingStrategy(capper=capper or BillCapper())
        return self.engine.run(
            strategy,
            budgeter=budgeter,
            hours=hours,
            name=name,
            faults=faults,
            degradation=degradation,
        )

    def run_min_only(
        self,
        mode: PriceMode,
        dispatcher: MinOnlyDispatcher | None = None,
        *,
        hours: int | None = None,
    ) -> SimulationResult:
        """Run a Min-Only baseline (serves everything, price taker)."""
        from .strategies import MinOnlyStrategy

        strategy = MinOnlyStrategy(mode=mode, dispatcher=dispatcher)
        return self.engine.run(strategy, hours=hours)
