"""The strategy engine: one hourly control loop for every dispatcher.

The paper evaluates a single control loop (budget -> dispatch -> local
optimization -> billing, Sections IV-VI) under many dispatch policies.
This module is that loop, once. Every simulated hour flows through the
same five-stage pipeline::

    observe -> budget -> dispatch -> realize -> settle

* **observe** — build the hour's offered load and the market snapshots
  the *dispatcher* sees (possibly degraded by injected sensing faults);
* **budget** — ask the budgeter for the hour's budget (skipped for
  price-taker strategies that never consume one);
* **dispatch** — run the strategy's :meth:`DispatchStrategy.decide`;
  solver-stack failures degrade via the effective
  :class:`~repro.resilience.DegradationPolicy` instead of crashing;
* **realize** — evaluate the decision against the exact stepped power
  models and true locational prices (ground truth billing);
* **settle** — feed the realized bill back to the budgeter and persist
  the hour's checkpoint when one was requested.

Telemetry spans and resilience fault injection are *stage middleware*
(:class:`TelemetryMiddleware` / :class:`FaultMiddleware`) wrapped
around the pipeline rather than branches inside it, so every registered
strategy — not just Cost Capping — gets tracing, fault tolerance and
graceful degradation for free.

Strategies implement the :class:`DispatchStrategy` protocol
(``prepare(world)`` once per run, ``decide(HourContext)`` once per
hour) and are looked up by name through :mod:`repro.sim.registry`.

Checkpoint/resume: ``Engine.run(..., checkpoint_path=)`` atomically
persists ``(next hour, partial result, budgeter state, fault spec,
degradation policy, strategy state)`` after every settled hour, and
:meth:`Engine.resume` continues a killed run bit-identically to an
uninterrupted one (pinned by ``tests/sim/test_resume.py``).
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from ..billing import SettlementLedger, make_ledger, restore_ledger
from ..core import Budgeter, CappingStep, HourlyDecision, Site, SiteHour
from ..datacenter import (
    LocalDecision,
    LocalOptimizer,
    SiteBank,
    required_servers,
    response_time,
    supports_batching,
)
from ..powermarket import CurveBank
from ..resilience import (
    DegradationPolicy,
    FaultInjector,
    FaultSpec,
    HourFaults,
    atomic_write_json,
    degraded_decision,
    read_json,
)
from ..solver import SolverError
from ..telemetry import Telemetry, get_telemetry, use_telemetry
from ..workload import CustomerMix, Trace
from .records import HourRecord, SimulationResult, SiteRecord

__all__ = [
    "DispatchStrategy",
    "HourContext",
    "RunState",
    "StageMiddleware",
    "TelemetryMiddleware",
    "FaultMiddleware",
    "Engine",
    "STAGES",
    "CHECKPOINT_VERSION",
    "dispatch_with_degradation",
]

#: The per-hour pipeline, in execution order. Strategies that never
#: consume a budget (``wants_budget = False``) skip the ``budget``
#: stage entirely — and with it the ``budget`` telemetry span.
STAGES = ("observe", "budget", "dispatch", "realize", "settle")

#: Engine checkpoint schema version; bump when the payload changes.
#: Version 2: ``records`` entries carry their own ``v`` schema field
#: (see :data:`repro.sim.records.RECORD_VERSION`). Version 3: adds the
#: settlement ``ledger`` (tariff components + accruals); version-2
#: checkpoints load via migration onto the default energy-only ledger,
#: whose settles are bit-identical to the scalar spend they replace.
CHECKPOINT_VERSION = 3


@dataclass
class HourContext:
    """Everything one pipeline pass knows about its invocation period.

    Built fresh by the engine every hour; stages fill it in as they
    run. Strategies read ``site_hours`` (the *observed*, possibly
    fault-degraded snapshots), the per-class offered load, ``budget``
    and ``forced_failure``; they never see the engine's run state.
    """

    hour: int
    strategy: "DispatchStrategy"
    run_name: str
    #: Raw degradation request for this run (``None`` = policy-resolved).
    degradation: DegradationPolicy | None = None
    #: Whether a fault injector is wired into this run.
    faults_active: bool = False
    total_rps: float = 0.0
    demand_premium_rps: float = 0.0
    demand_ordinary_rps: float = 0.0
    budget: float = float("inf")
    site_hours: list[SiteHour] = field(default_factory=list)
    #: The run's settlement ledger. Demand-aware strategies read its
    #: ``peak_term(hour)`` to price peak excess into the dispatch MILP;
    #: ``None`` (and the default energy-only ledger) yields no term.
    ledger: SettlementLedger | None = None
    faults: HourFaults | None = None
    forced_failure: Exception | None = None
    decision: HourlyDecision | None = None
    record: HourRecord | None = None
    #: The hour's telemetry span (a no-op span when telemetry is off).
    span: Any = None

    @property
    def effective_degradation(self) -> DegradationPolicy | None:
        """The engine-level degradation policy for this hour.

        The explicit request wins; otherwise fault-injected runs default
        to :attr:`~repro.resilience.DegradationPolicy.PROPORTIONAL`
        (matching the legacy ``Simulator.run_capping`` behaviour), and
        clean runs keep the raise-on-failure contract.
        """
        if self.degradation is not None:
            return self.degradation
        return DegradationPolicy.PROPORTIONAL if self.faults_active else None


@runtime_checkable
class DispatchStrategy(Protocol):
    """The pluggable per-hour dispatcher the engine drives.

    Implementations are registered in :mod:`repro.sim.registry` and
    must expose:

    * ``name`` — the registry key (e.g. ``"capping"``);
    * ``wants_budget`` — whether the budget stage runs (price takers
      such as Min-Only never consume one);
    * :meth:`prepare` — called once per run with the engine (the
      "world": ``sites``, ``workload``, ``mix``) before the first hour;
    * :meth:`decide` — called once per hour with the
      :class:`HourContext`; must return an
      :class:`~repro.core.HourlyDecision`. Raising
      :class:`~repro.solver.SolverError` (including re-raising
      ``ctx.forced_failure``) hands the hour to the engine's
      degradation path.

    Optional hooks: ``result_name`` (display name for the
    :class:`~repro.sim.records.SimulationResult`), ``state_dict()`` /
    ``load_state(state)`` (JSON-serializable strategy state persisted
    into engine checkpoints, e.g. the capper's hold-last decision).
    """

    name: str
    wants_budget: bool

    def prepare(self, world: "Engine") -> None: ...

    def decide(self, ctx: HourContext) -> HourlyDecision: ...


@dataclass
class RunState:
    """Mutable engine-owned state threaded through one run.

    Also the carrier of cross-dispatch state for the streaming control
    plane (:mod:`repro.service`), whose sub-hourly re-dispatches go
    through :func:`dispatch_with_degradation` exactly like the engine's
    hourly ``dispatch`` stage.
    """

    budgeter: Budgeter | None = None
    #: The run's settlement ledger (None inside the service control
    #: loop, which owns its own ledger and settles at tick boundaries).
    ledger: SettlementLedger | None = None
    #: Budgeter snapshot backing the ``budget_loss`` fault channel.
    restore_ckpt: dict | None = None
    #: Last successfully solved decision (feeds HOLD_LAST degradation
    #: for strategies without their own degradation handling).
    last_good: HourlyDecision | None = None


def dispatch_with_degradation(
    ctx: HourContext, state: RunState
) -> HourlyDecision:
    """Run the strategy for one context; degrade instead of crashing.

    Strategies with their own degradation handling (the
    :class:`~repro.core.BillCapper`) never raise here; for the rest, a
    :class:`~repro.solver.SolverError` — genuine or fault-injected —
    falls back to the context's effective degradation policy with the
    run's last good decision as HOLD_LAST history. Shared by the
    engine's ``dispatch`` stage and every sub-hourly re-dispatch of the
    streaming control plane.
    """
    tel = get_telemetry()
    try:
        decision = ctx.strategy.decide(ctx)
    except SolverError:
        policy = ctx.effective_degradation
        if policy is None:
            raise
        tel.counter("engine.degraded").inc()
        decision = degraded_decision(
            policy,
            ctx.site_hours,
            ctx.demand_premium_rps,
            ctx.demand_ordinary_rps,
            ctx.budget,
            last=state.last_good,
        )
    ctx.decision = decision
    if decision.step is CappingStep.DEGRADED:
        tel.counter("resilience.degraded_hours").inc()
    else:
        state.last_good = decision
    return decision


class StageMiddleware:
    """Hooks wrapped around each simulated hour and each stage.

    Middleware composes outside-in in list order: the first middleware's
    :meth:`hour` context opens first and closes last. Subclasses
    override either hook; the defaults are transparent.
    """

    @contextlib.contextmanager
    def hour(self, ctx: HourContext, state: RunState) -> Iterator[None]:
        yield

    @contextlib.contextmanager
    def stage(
        self, name: str, ctx: HourContext, state: RunState
    ) -> Iterator[None]:
        yield


class TelemetryMiddleware(StageMiddleware):
    """Per-hour ``hour`` spans with ``budget``/``dispatch`` children.

    The ``realize`` stage emits its own ``local_optimization`` and
    ``billing`` spans (they bracket the two halves of
    :meth:`Engine._realize`), so only the solver-adjacent stages are
    spanned here. The hour span records the strategy, the injected
    faults (set by :class:`FaultMiddleware`), and on exit the decided
    step and realized cost.
    """

    SPANNED = ("budget", "dispatch")

    @contextlib.contextmanager
    def hour(self, ctx: HourContext, state: RunState) -> Iterator[None]:
        tel = get_telemetry()
        with tel.span("hour", hour=ctx.hour, strategy=ctx.run_name) as span:
            ctx.span = span
            yield
            span.set(
                step=ctx.decision.step.value,
                realized_cost=ctx.record.realized_cost,
            )

    @contextlib.contextmanager
    def stage(
        self, name: str, ctx: HourContext, state: RunState
    ) -> Iterator[None]:
        if name in self.SPANNED:
            with get_telemetry().span(name):
                yield
        else:
            yield


class FaultMiddleware(StageMiddleware):
    """Applies the injector's per-hour faults ahead of the pipeline.

    At hour start it draws the hour's :class:`HourFaults`, records the
    injection counters and span attribute, restores a budgeter lost to
    the ``budget_loss`` channel from the engine's rolling checkpoint,
    and arms ``ctx.forced_failure`` so the dispatch stage dies exactly
    as a genuine solver-stack failure would.
    """

    def __init__(self, injector: FaultInjector):
        self.injector = injector

    @contextlib.contextmanager
    def hour(self, ctx: HourContext, state: RunState) -> Iterator[None]:
        tel = get_telemetry()
        hf = self.injector.faults_for(ctx.hour)
        ctx.faults = hf
        if hf.any:
            for kind in hf.kinds:
                tel.counter(f"resilience.injected.{kind}").inc()
            ctx.span.set(faults=",".join(hf.kinds))
        if hf.budget_loss and state.budgeter is not None:
            state.budgeter = Budgeter.restore(state.restore_ckpt)
            tel.counter("resilience.budgeter_restarts").inc()
        ctx.forced_failure = hf.solver_exception()
        yield


class Engine:
    """Drives any registered dispatch strategy over a workload month.

    Parameters mirror :class:`~repro.sim.simulator.Simulator` (which is
    now a thin compatibility wrapper around this class): the site
    network, the offered-load trace, the customer mix, an optional
    :class:`~repro.telemetry.Telemetry` bundle, and the ``batched``
    toggle for the vectorized realize path.
    """

    def __init__(
        self,
        sites: list[Site],
        workload: Trace,
        mix: CustomerMix,
        telemetry: Telemetry | None = None,
        batched: bool = True,
    ):
        if not sites:
            raise ValueError("at least one site required")
        horizon = min(len(s.background_mw) for s in sites)
        if workload.hours > horizon:
            raise ValueError(
                f"workload ({workload.hours} h) exceeds background "
                f"demand traces ({horizon} h)"
            )
        self.sites = sites
        self.workload = workload
        self.mix = mix
        self.telemetry = telemetry
        self.batched = batched
        self._local = {s.name: LocalOptimizer(s.datacenter) for s in sites}
        # Hour-keyed memos shared by every strategy run on this instance:
        # SiteHour snapshots are immutable and weather-hour optimizers
        # are deterministic, so building either once per (site, hour) is
        # enough however many strategies replay the same month.
        self._hours_memo: dict[int, list[SiteHour]] = {}
        self._local_at_memo: dict[tuple[str, int], LocalOptimizer] = {}
        self._bank: SiteBank | None = None
        self._curves: CurveBank | None = None
        #: Per-site pricing override consulted by ``_realize`` — set by
        #: the closed-loop endogenous-pricing runtime for the hour being
        #: billed, ``None`` (bit-identical exogenous billing) otherwise.
        self.policy_override: dict[str, Any] | None = None
        if batched and all(supports_batching(s.datacenter) for s in sites):
            self._bank = SiteBank.from_sites(sites)
            self._curves = CurveBank.from_policies([s.policy for s in sites])

    def subset(self, site_names) -> "Engine":
        """A new engine over a subset of this engine's sites.

        The shard control plane (:mod:`repro.service.shard`) gives each
        market region a :class:`~repro.service.ControlLoop` over only
        its region's sites; the workload trace and customer mix are
        shared (region traffic shares are applied to the λ observations
        by the caller, not baked into the trace). Order follows this
        engine's site order, so subsetting is deterministic.
        """
        wanted = set(site_names)
        picked = [s for s in self.sites if s.name in wanted]
        if len(picked) != len(wanted):
            missing = wanted - {s.name for s in picked}
            raise ValueError(f"unknown sites: {sorted(missing)}")
        return Engine(
            picked,
            self.workload,
            self.mix,
            telemetry=self.telemetry,
            batched=self.batched,
        )

    # -- running -----------------------------------------------------------------

    def run(
        self,
        strategy: "DispatchStrategy | str",
        *,
        budgeter: Budgeter | None = None,
        hours: int | None = None,
        name: str | None = None,
        faults: FaultInjector | None = None,
        degradation: DegradationPolicy | None = None,
        tariff: "str | SettlementLedger | None" = None,
        checkpoint_path=None,
        checkpoint_meta: dict | None = None,
        middleware: "Sequence[StageMiddleware] | None" = None,
    ) -> SimulationResult:
        """Run ``strategy`` through the stage pipeline for ``hours``.

        ``strategy`` is a :class:`DispatchStrategy` instance or a
        registry name (resolved through
        :func:`repro.sim.registry.get_strategy`). ``budgeter`` is only
        legal for strategies that consume one (``wants_budget``);
        ``None`` budgets every hour at infinity. ``faults`` injects the
        deterministic per-hour fault schedule into *any* strategy —
        solver failures degrade via ``degradation`` (default
        :attr:`~repro.resilience.DegradationPolicy.PROPORTIONAL` when
        faults are wired) instead of raising, and ``faults=None`` stays
        bit-identical to a plain run.

        ``tariff`` is a spec string (``"energy"``,
        ``"energy+demand:rate=6"``) or a prebuilt
        :class:`~repro.billing.SettlementLedger`; the settle stage
        charges every component and records per-component line items on
        each hour. The default (energy-only) tariff settles
        bit-identically to the pre-ledger scalar spend.

        ``checkpoint_path`` persists the full run state after every
        settled hour with an atomic write-then-rename;
        ``checkpoint_meta`` is carried verbatim in the payload (the CLI
        stores its world parameters there so ``repro resume`` can
        rebuild the engine).

        ``middleware`` appends extra :class:`StageMiddleware` after the
        built-in telemetry/fault middleware (e.g. the closed-loop
        endogenous-pricing hook); ``None`` keeps the pipeline exactly
        as before.
        """
        strategy = self._resolve(strategy)
        horizon = self._horizon(hours)
        if budgeter is not None and not strategy.wants_budget:
            raise ValueError(
                f"strategy {strategy.name!r} does not consume a budget; "
                "run it without a budgeter"
            )
        self._check_budgeter(budgeter, horizon, needed=horizon)
        strategy.prepare(self)
        result = SimulationResult(name or self._result_name(strategy))
        ledger = (
            tariff if isinstance(tariff, SettlementLedger)
            else make_ledger(tariff)
        )
        state = RunState(budgeter=budgeter, ledger=ledger)
        return self._drive(
            strategy,
            result,
            state,
            start=0,
            horizon=horizon,
            faults=faults,
            degradation=degradation,
            checkpoint_path=checkpoint_path,
            checkpoint_meta=checkpoint_meta,
            middleware=middleware,
        )

    def resume(
        self,
        checkpoint_path,
        *,
        strategy: "DispatchStrategy | str | None" = None,
        hours: int | None = None,
        middleware: "Sequence[StageMiddleware] | None" = None,
    ) -> SimulationResult:
        """Continue a checkpointed run from its last settled hour.

        Rebuilds the budgeter, fault schedule, degradation policy,
        partial result and strategy state from the checkpoint, then
        drives the remaining hours through the identical pipeline — the
        concatenated result is field-for-field identical to a run that
        was never interrupted. ``strategy`` overrides the registry
        default when the original run used a custom-configured
        instance; ``hours`` extends (or shortens) the stored horizon.
        The resumed run keeps checkpointing to the same path.
        """
        payload = self.load_checkpoint(checkpoint_path)
        strategy = self._resolve(strategy or payload["strategy"])
        strategy.prepare(self)
        if payload.get("strategy_state") and hasattr(strategy, "load_state"):
            strategy.load_state(payload["strategy_state"])
        horizon = self._horizon(
            payload["horizon"] if hours is None else hours
        )
        start = int(payload["next_hour"])
        if start > horizon:
            raise ValueError(
                f"checkpoint already covers {start} hours; a resume "
                f"horizon of {horizon} h has nothing left to run"
            )
        records = [HourRecord.from_dict(d) for d in payload["records"]]
        if len(records) != start:
            raise ValueError(
                f"corrupt checkpoint: {len(records)} records for "
                f"next_hour={start}"
            )
        budgeter = (
            Budgeter.restore(payload["budgeter"])
            if payload.get("budgeter") is not None
            else None
        )
        self._check_budgeter(budgeter, horizon, needed=horizon - start)
        faults = (
            FaultInjector(FaultSpec(**payload["fault_spec"]))
            if payload.get("fault_spec") is not None
            else None
        )
        degradation = (
            DegradationPolicy(payload["degradation"])
            if payload.get("degradation") is not None
            else None
        )
        last_good = (
            HourlyDecision.from_dict(payload["last_good"])
            if payload.get("last_good") is not None
            else None
        )
        result = SimulationResult(payload["result_name"], records)
        # Version-2 checkpoints predate the ledger; migration restores
        # the default energy-only ledger, whose settles equal the old
        # scalar spend bit for bit.
        ledger = restore_ledger(payload.get("ledger"))
        state = RunState(
            budgeter=budgeter, ledger=ledger, last_good=last_good
        )
        return self._drive(
            strategy,
            result,
            state,
            start=start,
            horizon=horizon,
            faults=faults,
            degradation=degradation,
            checkpoint_path=checkpoint_path,
            checkpoint_meta=payload.get("meta") or None,
            middleware=middleware,
        )

    def _drive(
        self,
        strategy: "DispatchStrategy",
        result: SimulationResult,
        state: RunState,
        *,
        start: int,
        horizon: int,
        faults: FaultInjector | None,
        degradation: DegradationPolicy | None,
        checkpoint_path,
        checkpoint_meta: dict | None,
        middleware: "Sequence[StageMiddleware] | None" = None,
    ) -> SimulationResult:
        """The hour loop: stages through middleware, records appended."""
        stages = STAGES if strategy.wants_budget else tuple(
            s for s in STAGES if s != "budget"
        )
        middlewares: list[StageMiddleware] = [TelemetryMiddleware()]
        if faults is not None:
            middlewares.append(FaultMiddleware(faults))
        if middleware:
            middlewares.extend(middleware)
        with use_telemetry(self.telemetry or get_telemetry()):
            # Rolling budgeter snapshot backing the budget_loss fault: a
            # lost budgeter is restored from here, exactly as a restarted
            # controller would resume from its last persisted state.
            if state.budgeter is not None and faults is not None:
                state.restore_ckpt = state.budgeter.checkpoint()
            for t in range(start, horizon):
                ctx = HourContext(
                    hour=t,
                    strategy=strategy,
                    run_name=result.name,
                    degradation=degradation,
                    faults_active=faults is not None,
                    ledger=state.ledger,
                )
                with contextlib.ExitStack() as hour_stack:
                    for mw in middlewares:
                        hour_stack.enter_context(mw.hour(ctx, state))
                    for stage in stages:
                        with contextlib.ExitStack() as stage_stack:
                            for mw in middlewares:
                                stage_stack.enter_context(
                                    mw.stage(stage, ctx, state)
                                )
                            getattr(self, f"_stage_{stage}")(ctx, state)
                result.append(ctx.record)
                if checkpoint_path is not None:
                    self._save_checkpoint(
                        checkpoint_path,
                        strategy,
                        result,
                        state,
                        horizon=horizon,
                        next_hour=t + 1,
                        faults=faults,
                        degradation=degradation,
                        meta=checkpoint_meta,
                    )
        return result

    # -- pipeline stages -----------------------------------------------------------

    def _stage_observe(self, ctx: HourContext, state: RunState) -> None:
        """Offered load plus the snapshots the dispatcher gets to see."""
        t = ctx.hour
        total = float(self.workload.rates_rps[t])
        ctx.total_rps = total
        ctx.demand_premium_rps = self.mix.premium_rate(total)
        ctx.demand_ordinary_rps = self.mix.ordinary_rate(total)
        ctx.site_hours = self._observed_site_hours(t, ctx.faults)

    def _stage_budget(self, ctx: HourContext, state: RunState) -> None:
        """The budgeter's hourly budget (infinite when uncapped)."""
        ctx.budget = (
            state.budgeter.hourly_budget()
            if state.budgeter is not None
            else float("inf")
        )

    def _stage_dispatch(self, ctx: HourContext, state: RunState) -> None:
        """Run the strategy via :func:`dispatch_with_degradation`."""
        dispatch_with_degradation(ctx, state)

    def _stage_realize(self, ctx: HourContext, state: RunState) -> None:
        """Ground-truth billing of the decision (exact stepped models)."""
        ctx.record = self._realize(ctx.hour, ctx.decision)

    def _stage_settle(self, ctx: HourContext, state: RunState) -> None:
        """Settle the hour through the ledger; feed the bill back.

        The ledger accrues the whole hour at weight 1.0 (``x * 1.0 ==
        x`` bitwise), settles every tariff component into line items on
        the record, and the folded total — exactly ``realized_cost``
        under the energy-only default — is what the budgeter records.
        """
        spend = ctx.record.realized_cost
        if state.ledger is not None:
            state.ledger.accrue(
                ctx.record.realized_cost, ctx.record.total_power_mw
            )
            items = state.ledger.settle(ctx.hour)
            ctx.record = dataclasses.replace(
                ctx.record, line_items=tuple(items)
            )
            spend = SettlementLedger.total(items)
        if state.budgeter is not None:
            state.budgeter.record_spend(spend)
            if state.restore_ckpt is not None:
                state.restore_ckpt = state.budgeter.checkpoint()

    # -- checkpointing ---------------------------------------------------------------

    def _save_checkpoint(
        self,
        path,
        strategy: "DispatchStrategy",
        result: SimulationResult,
        state: RunState,
        *,
        horizon: int,
        next_hour: int,
        faults: FaultInjector | None,
        degradation: DegradationPolicy | None,
        meta: dict | None,
    ) -> None:
        payload = {
            "version": CHECKPOINT_VERSION,
            "kind": "engine-run",
            "strategy": strategy.name,
            "result_name": result.name,
            "horizon": horizon,
            "next_hour": next_hour,
            "records": [h.to_dict() for h in result.hours],
            "budgeter": (
                state.budgeter.checkpoint()
                if state.budgeter is not None
                else None
            ),
            "fault_spec": (
                dataclasses.asdict(faults.spec) if faults is not None else None
            ),
            "degradation": (
                degradation.value if degradation is not None else None
            ),
            "last_good": (
                state.last_good.to_dict()
                if state.last_good is not None
                else None
            ),
            "strategy_state": (
                strategy.state_dict()
                if hasattr(strategy, "state_dict")
                else None
            ),
            "ledger": (
                state.ledger.to_dict() if state.ledger is not None else None
            ),
            "meta": meta or {},
        }
        atomic_write_json(payload, path)

    @staticmethod
    def load_checkpoint(path) -> dict:
        """Read and validate an engine checkpoint written by :meth:`run`."""
        payload = read_json(path)
        if payload.get("kind") != "engine-run":
            raise ValueError(f"{path} is not an engine run checkpoint")
        version = payload.get("version")
        if version not in (2, CHECKPOINT_VERSION):
            raise ValueError(
                f"unsupported engine checkpoint version {version!r} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        for key in ("strategy", "result_name", "horizon", "next_hour", "records"):
            if key not in payload:
                raise ValueError(f"engine checkpoint missing {key!r}")
        return payload

    # -- internals -----------------------------------------------------------------

    @staticmethod
    def _resolve(strategy: "DispatchStrategy | str") -> "DispatchStrategy":
        if isinstance(strategy, str):
            from .registry import get_strategy

            return get_strategy(strategy)
        return strategy

    @staticmethod
    def _result_name(strategy: "DispatchStrategy") -> str:
        return getattr(strategy, "result_name", strategy.name)

    @staticmethod
    def _check_budgeter(
        budgeter: Budgeter | None, horizon: int, *, needed: int
    ) -> None:
        if budgeter is None:
            return
        remaining = budgeter.month_hours - budgeter.current_hour
        if needed > remaining:
            raise ValueError(
                f"horizon of {horizon} h exceeds the budgeter's remaining "
                f"{remaining} budgeted hours (month_hours="
                f"{budgeter.month_hours}, {budgeter.current_hour} already "
                f"recorded); pass fewer hours or a longer budgeting period"
            )

    @staticmethod
    def _response_time(site: Site, local) -> float:
        """Realized mean response time from the exact G/G/m model.

        Heterogeneous sites track a blended figure via their slowest
        pool; for simplicity the aggregate model is evaluated with the
        site's nominal service rate when available.
        """
        dc = site.datacenter
        n = local.provisioning.n_servers
        if n == 0 or local.served_rps <= 0:
            return 0.0
        servers = getattr(dc, "servers", None)
        if servers is not None:  # homogeneous site
            return response_time(local.served_rps, n, servers.service_rate, dc.queue)
        # Heterogeneous: slowest pool under the greedy split.
        worst = 0.0
        for pool, rate in dc.split_load(local.served_rps):
            if rate <= 0:
                continue
            n_pool = min(
                pool.count,
                max(
                    int(required_servers(rate, pool.spec.service_rate,
                                         dc.target_response_s, dc.queue)),
                    math.ceil(rate / (dc.utilization_cap * pool.spec.service_rate)),
                    1,
                ),
            )
            worst = max(
                worst, response_time(rate, n_pool, pool.spec.service_rate, dc.queue)
            )
        return worst

    def _site_hours(self, t: int) -> list[SiteHour]:
        """Per-hour market snapshots, built once per hour per instance."""
        hours = self._hours_memo.get(t)
        if hours is None:
            hours = self._hours_memo[t] = [s.hour(t) for s in self.sites]
        return hours

    def _observed_site_hours(
        self, t: int, hf: HourFaults | None
    ) -> list[SiteHour]:
        """The snapshots the *dispatcher* sees at hour ``t``.

        Normally the truth; under an injected sensing fault the view is
        degraded — a stale price feed serves the whole previous-hour
        snapshot, a sensor dropout serves the previous hour's background
        demand under current prices. Hour 0 has no previous snapshot to
        go stale, so faults there are no-ops. Realized billing always
        uses the true hour regardless (see :meth:`_realize`).
        """
        current = self._site_hours(t)
        if hf is None or t == 0:
            return current
        if hf.stale_prices:
            return self._site_hours(t - 1)
        if hf.sensor_dropout:
            previous = self._site_hours(t - 1)
            return [
                dataclasses.replace(sh, background_mw=prev.background_mw)
                for sh, prev in zip(current, previous)
            ]
        return current

    def _local_at(self, site: Site, t: int) -> LocalOptimizer:
        """Weather-hour local optimizer, built once per (site, hour)."""
        key = (site.name, t)
        local = self._local_at_memo.get(key)
        if local is None:
            local = self._local_at_memo[key] = LocalOptimizer(site.datacenter_at(t))
        return local

    def _horizon(self, hours: int | None) -> int:
        if hours is None:
            return self.workload.hours
        if not 0 < hours <= self.workload.hours:
            raise ValueError(f"hours must be in 1..{self.workload.hours}")
        return hours

    def _provision_scalar(self, t: int, decision: HourlyDecision):
        """Reference path: one local-optimizer call per site."""
        provisioned = []
        for site in self.sites:
            dispatched = decision.rate_for(site.name)
            if site.coe_trace is None:
                local = self._local[site.name].decide(dispatched)
            else:
                # Weather-varying cooling: the optimizer around this
                # hour's efficiency (memoized across strategy runs).
                local = self._local_at(site, t).decide(dispatched)
            provisioned.append((site, dispatched, local))
        return provisioned

    def _coe_at(self, t: int) -> np.ndarray | None:
        """Per-site cooling efficiencies for hour ``t`` (None = constants)."""
        if all(s.coe_trace is None for s in self.sites):
            return None
        return np.array(
            [
                float(s.coe_trace[t]) if s.coe_trace is not None
                else s.datacenter.cooling.coe
                for s in self.sites
            ]
        )

    def _provision_batched(self, t: int, decision: HourlyDecision):
        """Vectorized path: one :class:`SiteBank` call for all sites.

        Produces the same ``(site, dispatched, LocalDecision)`` triples
        as :meth:`_provision_scalar` — the bank's arithmetic is
        bit-identical to the scalar models, and sites whose dispatch
        overshoots their physical or contractual limits (the rare
        model-mismatch case) are handed to the scalar local optimizer,
        whose shedding search is the reference behavior.
        """
        bank = self._bank
        rates = np.array([decision.rate_for(s.name) for s in self.sites])
        n, util, server_w, network_w, cooling_w = bank.provision_arrays(
            rates, coe=self._coe_at(t), validate=False
        )
        provisioned = []
        for i, site in enumerate(self.sites):
            dispatched = float(rates[i])
            over_fleet = n[i] > bank.max_servers[i]
            if not over_fleet:
                prov = bank.provisioning(i, n, util, server_w, network_w,
                                         cooling_w)
                if prov.total_power_mw <= bank.power_cap_mw[i] + 1e-12:
                    provisioned.append((
                        site,
                        dispatched,
                        LocalDecision(served_rps=dispatched, shed_rps=0.0,
                                      provisioning=prov),
                    ))
                    continue
            local = (
                self._local[site.name] if site.coe_trace is None
                else self._local_at(site, t)
            ).decide(dispatched)
            provisioned.append((site, dispatched, local))
        return provisioned

    def _realize(self, t: int, decision: HourlyDecision) -> HourRecord:
        """Evaluate a dispatch decision against the exact physical models."""
        tel = get_telemetry()
        with tel.span("local_optimization"):
            if self._bank is not None:
                provisioned = self._provision_batched(t, decision)
            else:
                provisioned = self._provision_scalar(t, decision)
        site_records = []
        realized_cost = 0.0
        total_shed = 0.0
        with tel.span("billing"):
            if self._curves is not None:
                power = np.array([l.power_mw for _, _, l in provisioned])
                bg = np.array(
                    [float(s.background_mw[t]) for s in self.sites]
                )
                prices = self._curves.site_price(power, bg)
                served = np.array([l.served_rps for _, _, l in provisioned])
                ns = np.array(
                    [l.provisioning.n_servers for _, _, l in provisioned],
                    dtype=float,
                )
                rts = self._bank.response_time(served, ns)
                rts = np.where((ns == 0.0) | (served <= 0.0), 0.0, rts)
            for i, (site, dispatched, local) in enumerate(provisioned):
                if self._curves is not None:
                    price = float(prices[i])
                    rt = float(rts[i])
                else:
                    price = site.policy.price(
                        float(site.background_mw[t]) + local.power_mw
                    )
                    rt = self._response_time(site, local)
                if (
                    self.policy_override is not None
                    and site.name in self.policy_override
                ):
                    # Closed-loop endogenous pricing: bill this hour at
                    # the fixed point's regenerated curve instead.
                    price = float(
                        self.policy_override[site.name].price(
                            float(site.background_mw[t]) + local.power_mw
                        )
                    )
                cost = price * local.power_mw
                realized_cost += cost
                total_shed += local.shed_rps
                site_records.append(
                    SiteRecord(
                        site=site.name,
                        dispatched_rps=dispatched,
                        served_rps=local.served_rps,
                        power_mw=local.power_mw,
                        price=price,
                        cost=cost,
                        n_servers=local.provisioning.n_servers,
                        response_time_s=rt,
                    )
                )
        # Shedding from decision/physics mismatch hits ordinary traffic
        # first: providers protect their revenue source.
        served_ordinary = max(0.0, decision.served_ordinary_rps - total_shed)
        leftover_shed = max(0.0, total_shed - decision.served_ordinary_rps)
        served_premium = max(0.0, decision.served_premium_rps - leftover_shed)
        return HourRecord(
            hour=t,
            step=decision.step,
            budget=decision.budget,
            predicted_cost=decision.predicted_cost,
            realized_cost=realized_cost,
            demand_premium_rps=decision.demand_premium_rps,
            demand_ordinary_rps=decision.demand_ordinary_rps,
            served_premium_rps=served_premium,
            served_ordinary_rps=served_ordinary,
            sites=tuple(site_records),
        )
