"""Result types shared by the hourly dispatch algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["CappingStep", "Allocation", "HourlyDecision"]


class CappingStep(Enum):
    """Which branch of the bill-capping algorithm produced a decision."""

    COST_MIN = "cost-min"  # step 1 sufficed (cost within budget)
    THROUGHPUT_MAX = "throughput-max"  # step 2, ordinary load throttled
    PREMIUM_ONLY = "premium-only"  # budget insufficient even for premium
    BASELINE = "baseline"  # produced by a Min-Only baseline
    DEGRADED = "degraded"  # solver stack down; degradation policy dispatched


@dataclass(frozen=True)
class Allocation:
    """Dispatch decision for one site in one invocation period.

    ``rate_rps`` is the request rate routed to the site;
    ``predicted_power_mw``/``predicted_price``/``predicted_cost`` come
    from the optimizer's *decision* model (affine power, selected price
    segment) — the simulator separately evaluates realized values with
    the exact models.
    """

    site: str
    rate_rps: float
    predicted_power_mw: float
    predicted_price: float
    predicted_cost: float


@dataclass(frozen=True)
class HourlyDecision:
    """Outcome of one invocation period of a dispatch algorithm.

    Attributes
    ----------
    step:
        Which algorithm branch decided this hour.
    allocations:
        Per-site dispatch (one entry per site, zero-rate included).
    served_premium_rps / served_ordinary_rps:
        Rates admitted per customer class.
    demand_premium_rps / demand_ordinary_rps:
        Offered load per class.
    predicted_cost:
        The optimizer's estimate of the hourly bill ($).
    budget:
        The hourly budget in force (``inf`` for pure cost
        minimization and the baselines).
    """

    step: CappingStep
    allocations: tuple[Allocation, ...]
    served_premium_rps: float
    served_ordinary_rps: float
    demand_premium_rps: float
    demand_ordinary_rps: float
    predicted_cost: float
    budget: float = float("inf")

    @property
    def served_total_rps(self) -> float:
        return self.served_premium_rps + self.served_ordinary_rps

    @property
    def demand_total_rps(self) -> float:
        return self.demand_premium_rps + self.demand_ordinary_rps

    @property
    def ordinary_admission_rate(self) -> float:
        """Fraction of ordinary demand admitted (1.0 when no demand)."""
        if self.demand_ordinary_rps <= 0:
            return 1.0
        return self.served_ordinary_rps / self.demand_ordinary_rps

    @property
    def premium_fully_served(self) -> bool:
        return self.served_premium_rps >= self.demand_premium_rps * (1 - 1e-9)

    def rate_for(self, site: str) -> float:
        """Dispatched rate for ``site`` (0.0 when absent)."""
        for alloc in self.allocations:
            if alloc.site == site:
                return alloc.rate_rps
        raise KeyError(f"no allocation for site {site!r}")

    # -- serialization (engine checkpoints) ---------------------------------------
    # JSON float round-trips are exact (repr-based), so a decision
    # restored from a checkpoint is field-for-field identical.

    def to_dict(self) -> dict:
        return {
            "step": self.step.value,
            "allocations": [
                {
                    "site": a.site,
                    "rate_rps": a.rate_rps,
                    "predicted_power_mw": a.predicted_power_mw,
                    "predicted_price": a.predicted_price,
                    "predicted_cost": a.predicted_cost,
                }
                for a in self.allocations
            ],
            "served_premium_rps": self.served_premium_rps,
            "served_ordinary_rps": self.served_ordinary_rps,
            "demand_premium_rps": self.demand_premium_rps,
            "demand_ordinary_rps": self.demand_ordinary_rps,
            "predicted_cost": self.predicted_cost,
            "budget": self.budget,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HourlyDecision":
        return cls(
            step=CappingStep(data["step"]),
            allocations=tuple(Allocation(**a) for a in data["allocations"]),
            served_premium_rps=data["served_premium_rps"],
            served_ordinary_rps=data["served_ordinary_rps"],
            demand_premium_rps=data["demand_premium_rps"],
            demand_ordinary_rps=data["demand_ordinary_rps"],
            predicted_cost=data["predicted_cost"],
            budget=data["budget"],
        )
