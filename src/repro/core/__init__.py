"""Core bill-capping algorithms (the paper's primary contribution).

* :class:`CostMinimizer` — Section IV's price-maker-aware cost
  minimization MILP;
* :class:`ThroughputMaximizer` — Section V's throughput maximization
  within a cost budget;
* :class:`Budgeter` — monthly -> hourly budgets with weekly carryover;
* :class:`BillCapper` — the two-step orchestration;
* :class:`MinOnlyDispatcher` — the Min-Only (Avg/Low) baselines;
* :class:`Site` / :class:`SiteHour` — a data center bound to its local
  power market.
"""

from .allocation import Allocation, CappingStep, HourlyDecision
from .baselines import MinOnlyDispatcher, PriceMode, server_only_affine_slope
from .bill_capper import BillCapper
from .budgeter import Budgeter
from .cost_min import CostMinimizer
from .decomposition import (
    DecompositionOutcome,
    DecompositionSolver,
    decomposition_auto_sites,
    partition_market_regions,
)
from .dispatch_model import (
    DispatchModel,
    SiteVars,
    build_dispatch_model,
    piecewise_widths,
)
from .linearize import LinearizedCost, add_stepped_cost, reachable_segments
from .model_cache import DispatchModelCache, MinOnlyCache
from .hierarchical import (
    HierarchicalBillCapper,
    HierarchicalDispatcher,
    Region,
    RegionalBid,
    regions_of,
)
from .robust_budgeter import AdaptiveBudgeter
from .site import Site, SiteHour
from .storage import StorageSchedule, evaluate_schedule, plan_storage_schedule
from .throughput_max import ThroughputMaximizer

__all__ = [
    "Site",
    "SiteHour",
    "Allocation",
    "CappingStep",
    "HourlyDecision",
    "LinearizedCost",
    "add_stepped_cost",
    "reachable_segments",
    "DispatchModel",
    "SiteVars",
    "build_dispatch_model",
    "piecewise_widths",
    "DispatchModelCache",
    "MinOnlyCache",
    "DecompositionSolver",
    "DecompositionOutcome",
    "decomposition_auto_sites",
    "partition_market_regions",
    "CostMinimizer",
    "ThroughputMaximizer",
    "Budgeter",
    "BillCapper",
    "MinOnlyDispatcher",
    "PriceMode",
    "server_only_affine_slope",
    "StorageSchedule",
    "plan_storage_schedule",
    "evaluate_schedule",
    "AdaptiveBudgeter",
    "Region",
    "RegionalBid",
    "HierarchicalDispatcher",
    "HierarchicalBillCapper",
    "regions_of",
]
