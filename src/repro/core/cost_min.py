"""Step 1 of the bill-capping algorithm: electricity-cost minimization.

Implements the paper's Section IV optimization (eq. 1-2): choose
per-site request rates ``lambda_i`` that serve the entire offered load
at minimum total electricity cost, subject to per-site power caps and
response-time targets, **with the sites' impact on their own prices
modeled** via the stepped-cost MILP linearization — the price-maker
formulation that distinguishes Cost Capping from Min-Only.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..solver import InfeasibleError, SolveResult
from .allocation import Allocation, CappingStep, HourlyDecision
from .decomposition import DecompositionSolver, decomposition_auto_sites
from .dispatch_model import RATE_SCALE, build_dispatch_model
from .model_cache import DispatchModelCache
from .site import SiteHour

__all__ = ["CostMinimizer"]


def resolve_solver_backend(
    backend: object | None, solver_backend: str | None
) -> tuple[object | None, str | None]:
    """Normalize the (backend, solver_backend) pair an optimizer holds.

    ``solver_backend`` falls back to the ``REPRO_SOLVER_BACKEND``
    environment variable; the ``"decomposition"`` name is accepted in
    either slot (it is a dispatch-level backend, so ``backend=
    "decomposition"`` is rerouted out of the cold ``Model.solve`` path).
    """
    if solver_backend is None:
        solver_backend = os.environ.get("REPRO_SOLVER_BACKEND") or None
    if backend == "decomposition":
        backend = None
        solver_backend = "decomposition"
    return backend, solver_backend


def _use_decomposition(
    backend: object | None, solver_backend: str | None, n_sites: int
) -> bool:
    """Decomposition runs when asked for, or by size when nothing is."""
    if solver_backend == "decomposition":
        return True
    return (
        backend is None
        and solver_backend is None
        and n_sites >= decomposition_auto_sites()
    )


@dataclass
class CostMinimizer:
    """Price-maker-aware cost minimization (the paper's eq. 1-2).

    Parameters
    ----------
    backend:
        Solver backend name or object (see
        :meth:`repro.solver.Model.solve`); ``None`` (the default)
        enables the compiled-model hot path — the MILP structure is
        cached and patched per hour, solved by a warm-started
        branch-and-bound with SciPy/HiGHS as automatic fallback.
        Passing any explicit backend (including ``"scipy"``) forces the
        cold build-and-solve path.
    solver_backend:
        Registered backend name (see :mod:`repro.solver.registry`) the
        compiled-model hot path solves with; ``None`` reads
        ``REPRO_SOLVER_BACKEND`` and otherwise picks by problem size.
        ``"decomposition"`` routes fleets through the region-decomposed
        solver (:mod:`repro.core.decomposition`) with monolithic
        fallback; with no backend selected at all, decomposition
        auto-activates at ``decomposition_auto_sites()`` sites.
    step_margin_frac:
        Safety margin below price breakpoints as a fraction of each
        site's reachable power (guards against the smooth decision
        model under-predicting the stepped realized power; see
        :func:`repro.core.linearize.add_stepped_cost`).
    """

    backend: object | None = None
    solver_backend: str | None = None
    step_margin_frac: float = 0.01
    model_cache: DispatchModelCache | None = field(
        default=None, repr=False, compare=False
    )
    _decomposer: DecompositionSolver | None = field(
        default=None, repr=False, compare=False
    )

    def solve(
        self, site_hours: list[SiteHour], total_rate_rps: float
    ) -> HourlyDecision:
        """Dispatch ``total_rate_rps`` across the sites at minimum cost.

        Raises
        ------
        InfeasibleError
            When the offered load exceeds the sites' combined servable
            capacity (caps + fleets) — constraint (a) cannot hold.
        """
        if total_rate_rps < 0:
            raise ValueError("total rate must be >= 0")
        if total_rate_rps == 0:
            return _zero_decision(site_hours, CappingStep.COST_MIN)

        backend, solver_backend = resolve_solver_backend(
            self.backend, self.solver_backend
        )
        if _use_decomposition(backend, solver_backend, len(site_hours)):
            # Persist the solver so warm multipliers carry hour to hour.
            if self._decomposer is None:
                self._decomposer = DecompositionSolver()
            out = self._decomposer.solve_cost_min(
                site_hours, total_rate_rps, self.step_margin_frac
            )
            if out is not None:
                return out.to_decision(site_hours, CappingStep.COST_MIN)
            # Uncertified gap: fall through to the monolithic solve.

        if backend is None:
            if self.model_cache is None:
                cache_backend = (
                    None if solver_backend == "decomposition" else solver_backend
                )
                self.model_cache = DispatchModelCache(
                    solver_backend=cache_backend
                )
            dm, res = self.model_cache.solve_cost_min(
                site_hours, total_rate_rps, self.step_margin_frac
            )
            return _decision_from(dm, res, CappingStep.COST_MIN)

        dm = build_dispatch_model(
            site_hours, name="cost-min", step_margin_frac=self.step_margin_frac
        )
        dm.model.add(
            dm.total_rate_scaled == total_rate_rps / RATE_SCALE, name="serve_all"
        )
        dm.model.minimize(dm.total_cost)
        res = dm.model.solve(backend=backend, raise_on_failure=True)
        return _decision_from(dm, res, CappingStep.COST_MIN)


def _zero_decision(site_hours: list[SiteHour], step: CappingStep) -> HourlyDecision:
    allocs = tuple(
        Allocation(sh.name, 0.0, 0.0, sh.policy.price(sh.background_mw), 0.0)
        for sh in site_hours
    )
    return HourlyDecision(
        step=step,
        allocations=allocs,
        served_premium_rps=0.0,
        served_ordinary_rps=0.0,
        demand_premium_rps=0.0,
        demand_ordinary_rps=0.0,
        predicted_cost=0.0,
    )


def _decision_from(dm, res: SolveResult, step: CappingStep) -> HourlyDecision:
    """Translate a solved dispatch model into an HourlyDecision.

    Premium/ordinary accounting is filled in by the callers that know
    the class mix; here everything is reported as a single class.
    """
    allocs = []
    for sv in dm.sites:
        rate = sv.rate_rps(res)
        power = max(0.0, res.value(sv.power))
        cost = max(0.0, res.value(sv.cost_expr))
        price = cost / power if power > 1e-12 else sv.site.policy.price(
            sv.site.background_mw
        )
        allocs.append(Allocation(sv.site.name, rate, power, price, cost))
    total = sum(a.rate_rps for a in allocs)
    return HourlyDecision(
        step=step,
        allocations=tuple(allocs),
        served_premium_rps=total,
        served_ordinary_rps=0.0,
        demand_premium_rps=total,
        demand_ordinary_rps=0.0,
        # Sum of per-site bills, not res.objective: the objective is the
        # cost only for cost-min, but this helper also serves the
        # throughput-max problem whose objective is the rate.
        predicted_cost=sum(a.predicted_cost for a in allocs),
    )
