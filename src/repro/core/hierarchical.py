"""Hierarchical bill capping (the paper's Section IX scalability extension).

The paper's centralized capper solves one MILP over every site; its
complexity grows with sites x price levels, and Section IX names a
hierarchical architecture as future work: "the computational complexity
... may not scale well for much larger-scale data center networks.
Extending the electricity bill capping architecture to work in a
hierarchical way is our future work."

This module implements that architecture with a classic two-level
price/quantity decomposition:

1. **Regions bid cost curves.** Each region (a group of sites sharing a
   regional dispatcher) evaluates its own cost-minimization value
   function ``V_r(lambda)`` at a handful of sample rates — every sample
   is a small regional MILP.
2. **The coordinator splits the load.** A compact MILP over the sampled
   curves (piecewise-linear interpolation with one binary per sampled
   segment, since value functions of stepped markets are not convex)
   assigns each region a rate.
3. **Regions dispatch locally.** Each region runs its own
   :class:`~repro.core.cost_min.CostMinimizer` for its assignment.

Budget capping composes on top: the achievable-throughput function of
the hierarchy is monotone in the admitted load, so
:class:`HierarchicalBillCapper` bisects the ordinary-customer admission
rate against the hourly budget — premium customers are always admitted,
exactly like the flat capper's Section V semantics.

Accuracy/speed trade-off: with ``samples_per_region ~ 8`` the
hierarchical bill lands within a few percent of the centralized optimum
while the coordinator MILP stays tiny regardless of how many sites each
region contains (benchmarked in ``bench_ext_hierarchical.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..solver import InfeasibleError, Model, quicksum
from .allocation import Allocation, CappingStep, HourlyDecision
from .cost_min import CostMinimizer
from .site import SiteHour

__all__ = [
    "Region",
    "RegionalBid",
    "HierarchicalDispatcher",
    "HierarchicalBillCapper",
    "regions_of",
]


def regions_of(
    site_hours: list[SiteHour], per_region: int = 3, prefix: str = "region"
) -> list[Region]:
    """Group site snapshots into fixed contiguous regions.

    The paper's hierarchy assumes a static site→region assignment (a
    regional dispatcher owns its sites); contiguous chunks of
    ``per_region`` in site order reproduce that without any
    configuration. The trailing region keeps the remainder.
    """
    if per_region < 1:
        raise ValueError("per_region must be >= 1")
    if not site_hours:
        raise ValueError("at least one site required")
    return [
        Region(
            name=f"{prefix}{i // per_region}",
            sites=tuple(site_hours[i : i + per_region]),
        )
        for i in range(0, len(site_hours), per_region)
    ]


@dataclass(frozen=True)
class Region:
    """A named group of sites under one regional dispatcher."""

    name: str
    sites: tuple[SiteHour, ...]

    def __post_init__(self):
        if not self.sites:
            raise ValueError(f"region {self.name!r} has no sites")

    @property
    def capacity_rps(self) -> float:
        return sum(s.max_rate_rps for s in self.sites)


@dataclass(frozen=True)
class RegionalBid:
    """A region's sampled cost curve: ``cost[i] = V_r(rates[i])``."""

    region: Region
    rates: np.ndarray
    costs: np.ndarray

    def __post_init__(self):
        if self.rates.shape != self.costs.shape or self.rates.size < 2:
            raise ValueError("bid needs matching rate/cost samples (>= 2)")


@dataclass
class HierarchicalDispatcher:
    """Two-level cost minimization over regions of sites.

    Parameters
    ----------
    samples_per_region:
        Sample points per regional cost curve (including 0 and the
        regional capacity). More samples, tighter coordination.
    backend:
        Solver backend for the regional MILPs and the coordinator.
    """

    samples_per_region: int = 8
    backend: object | None = None
    _solver: CostMinimizer = field(init=False, repr=False)

    def __post_init__(self):
        if self.samples_per_region < 2:
            raise ValueError("need at least 2 samples per region")
        self._solver = CostMinimizer(backend=self.backend)

    # -- level 1: regional bids -------------------------------------------------

    def bid(self, region: Region) -> RegionalBid:
        """Sample the region's cost-minimization value function."""
        capacity = region.capacity_rps
        rates = np.linspace(0.0, capacity, self.samples_per_region)
        costs = np.empty_like(rates)
        for i, lam in enumerate(rates):
            costs[i] = self._solver.solve(list(region.sites), float(lam)).predicted_cost
        return RegionalBid(region, rates, costs)

    # -- level 2: coordination -----------------------------------------------------

    def coordinate(
        self, bids: list[RegionalBid], total_rate_rps: float
    ) -> dict[str, float]:
        """Split ``total_rate_rps`` across regions using their bids.

        Piecewise-linear interpolation of each (possibly non-convex)
        sampled curve, with one binary per sampled segment; the
        coordinator MILP has ``regions x samples`` variables regardless
        of the number of underlying sites.
        """
        capacity = sum(b.region.capacity_rps for b in bids)
        if total_rate_rps > capacity * (1 + 1e-9):
            raise InfeasibleError(
                f"offered load {total_rate_rps:.3e} exceeds hierarchical "
                f"capacity {capacity:.3e}"
            )
        m = Model("coordinator")
        rate_exprs = []
        cost_exprs = []
        for b in bids:
            # Lambda method on each segment: rate = sum over segments of
            # interpolated point; binaries pick exactly one segment.
            n_seg = b.rates.size - 1
            ys = [m.binary(f"y[{b.region.name},{k}]") for k in range(n_seg)]
            # theta in [0,1] positions the point inside the active segment.
            thetas = [
                m.var(f"th[{b.region.name},{k}]", lb=0.0, ub=1.0) for k in range(n_seg)
            ]
            for th, y in zip(thetas, ys):
                m.add(th <= 1.0 * y)
            m.add(quicksum(ys) == 1.0)
            scale = 1e-6  # coordinator works in Mrps for conditioning
            rate = quicksum(
                (b.rates[k] * scale) * ys[k]
                + ((b.rates[k + 1] - b.rates[k]) * scale) * thetas[k]
                for k in range(n_seg)
            )
            cost = quicksum(
                b.costs[k] * ys[k] + (b.costs[k + 1] - b.costs[k]) * thetas[k]
                for k in range(n_seg)
            )
            rate_exprs.append((b.region.name, rate))
            cost_exprs.append(cost)
        m.add(
            quicksum(expr for _, expr in rate_exprs) == total_rate_rps * 1e-6,
            name="serve_all",
        )
        m.minimize(quicksum(cost_exprs))
        res = m.solve(backend=self.backend, raise_on_failure=True)
        return {
            name: max(0.0, res.value(expr)) * 1e6 for name, expr in rate_exprs
        }

    # -- full pipeline ---------------------------------------------------------------

    def solve(self, regions: list[Region], total_rate_rps: float) -> HourlyDecision:
        """Hierarchical cost minimization for one invocation period."""
        if total_rate_rps < 0:
            raise ValueError("total rate must be >= 0")
        bids = [self.bid(r) for r in regions]
        assignment = self.coordinate(bids, total_rate_rps)
        allocations: list[Allocation] = []
        total_cost = 0.0
        for region in regions:
            lam_r = assignment[region.name]
            decision = self._solver.solve(list(region.sites), lam_r)
            allocations.extend(decision.allocations)
            total_cost += decision.predicted_cost
        served = sum(a.rate_rps for a in allocations)
        return HourlyDecision(
            step=CappingStep.COST_MIN,
            allocations=tuple(allocations),
            served_premium_rps=served,
            served_ordinary_rps=0.0,
            demand_premium_rps=served,
            demand_ordinary_rps=0.0,
            predicted_cost=total_cost,
        )


@dataclass
class HierarchicalBillCapper:
    """Budget capping on top of the hierarchical dispatcher.

    Premium demand is always admitted; the ordinary admission rate is
    bisected against the hourly budget (the hierarchy's cost is
    monotone in admitted load). Mirrors the flat
    :class:`~repro.core.bill_capper.BillCapper` semantics including the
    mandatory-premium violation case.
    """

    dispatcher: HierarchicalDispatcher = field(default_factory=HierarchicalDispatcher)
    bisection_steps: int = 12
    budget_safety: float = 0.98

    def decide(
        self,
        regions: list[Region],
        premium_rps: float,
        ordinary_rps: float,
        budget: float,
    ) -> HourlyDecision:
        if premium_rps < 0 or ordinary_rps < 0:
            raise ValueError("offered rates must be >= 0")
        if budget < 0:
            raise ValueError("budget must be >= 0")
        capacity = sum(r.capacity_rps for r in regions)
        premium_rps = min(premium_rps, capacity)
        ordinary_rps = min(ordinary_rps, capacity - premium_rps)
        effective = budget * self.budget_safety

        full = self.dispatcher.solve(regions, premium_rps + ordinary_rps)
        if full.predicted_cost <= effective:
            return self._classed(
                full, CappingStep.COST_MIN, premium_rps,
                served_ordinary=ordinary_rps, demand_ordinary=ordinary_rps,
                budget=budget,
            )

        premium_only = self.dispatcher.solve(regions, premium_rps)
        if premium_only.predicted_cost > effective:
            # Budget cannot even cover premium: violate it knowingly.
            return self._classed(
                premium_only, CappingStep.PREMIUM_ONLY, premium_rps,
                served_ordinary=0.0, demand_ordinary=ordinary_rps,
                budget=budget,
            )

        # Bisect the ordinary admission rate in (0, 1).
        lo, hi = 0.0, 1.0
        best = premium_only
        best_admission = 0.0
        for _ in range(self.bisection_steps):
            mid = 0.5 * (lo + hi)
            trial = self.dispatcher.solve(
                regions, premium_rps + mid * ordinary_rps
            )
            if trial.predicted_cost <= effective:
                best, best_admission = trial, mid
                lo = mid
            else:
                hi = mid
        return self._classed(
            best,
            CappingStep.THROUGHPUT_MAX,
            premium_rps,
            served_ordinary=best_admission * ordinary_rps,
            demand_ordinary=ordinary_rps,
            budget=budget,
        )

    @staticmethod
    def _classed(
        decision, step, premium, *, served_ordinary, demand_ordinary, budget
    ) -> HourlyDecision:
        return HourlyDecision(
            step=step,
            allocations=decision.allocations,
            served_premium_rps=premium,
            served_ordinary_rps=served_ordinary,
            demand_premium_rps=premium,
            demand_ordinary_rps=demand_ordinary,
            predicted_cost=decision.predicted_cost,
            budget=budget,
        )
