"""MILP linearization of the stepped electricity-cost term.

The cost a site pays, ``Pr_i(p_i + d_i) * p_i``, is non-linear because
the price is a piecewise-constant function of the site's own draw.
Section IV-C linearizes it with the standard technique the paper cites
(Trecate et al., "Optimization with piecewise-affine cost functions"):
one binary per price level selects the active segment, and a real
variable carries the power served under that segment's price.

Concretely, for segments ``k`` with market-load intervals
``[L_{k-1}, L_k)`` and prices ``pi_k``:

.. math::

    p_i = \\sum_k p_{ik}, \\qquad \\sum_k y_{ik} = 1, \\qquad
    \\max(0, L_{k-1} - d_i)\\, y_{ik} \\le p_{ik}
        \\le (L_k - d_i)\\, y_{ik},

and the exact hourly cost is the *linear* expression
``sum_k pi_k * p_ik`` — exact because the price is constant within a
segment, so no McCormick relaxation is needed. Segments entirely below
the background demand (``L_k <= d_i``) are unreachable and dropped,
which both shrinks the MILP and matches reality: the data center can
only ever push the market price *up* from the background level.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..solver import LinExpr, Model, Variable, quicksum
from .site import SiteHour

__all__ = ["LinearizedCost", "add_stepped_cost", "reachable_segments"]

#: Slack (MW) applied to right-open segment boundaries. It must exceed
#: the solver's feasibility tolerances (HiGHS MIP feasibility: 1e-6):
#: with a smaller epsilon the optimizer can park *exactly on* a
#: breakpoint while claiming the cheaper price, and the realized
#: (right-open) price would then jump to the next level. At 1e-5 MW
#: (ten watts) the chosen power stays strictly below the breakpoint, so
#: decision and realized prices agree.
_EDGE_EPS = 1e-5


@dataclass(frozen=True)
class LinearizedCost:
    """Variables created by :func:`add_stepped_cost` for one site.

    Attributes
    ----------
    cost:
        Linear expression equal to the site's hourly bill in $.
    segment_power:
        Per-segment power variables ``p_ik`` (MW).
    segment_active:
        Per-segment binaries ``y_ik``.
    prices:
        Price of each *reachable* segment (aligned with the variables).
    """

    cost: LinExpr
    segment_power: list[Variable]
    segment_active: list[Variable]
    prices: list[float]


def reachable_segments(
    site: SiteHour,
    max_power_mw: float | None = None,
    margin_mw: float = 0.0,
) -> list[tuple[int, float, float, float]]:
    """Segment geometry of the stepped-cost linearization for one hour.

    Returns one ``(k, price, p_lo, p_hi)`` tuple per *reachable* price
    segment: ``k`` indexes the policy's price levels, ``p_lo``/``p_hi``
    bound the site's own draw within that segment after background
    demand, edge epsilon and the safety margin are accounted for.
    Segments the market load can never fall in (entirely below the
    background demand or above the site's reachable power) are dropped.

    This is the single source of truth for the per-hour geometry: both
    :func:`add_stepped_cost` (building the MILP) and the compiled-model
    cache (patching an already-built MILP) derive their coefficients
    from it, so the patched arrays are bit-identical to a fresh build.
    """
    d = site.background_mw
    p_max = site.max_power_mw if max_power_mw is None else float(max_power_mw)
    if not p_max < float("inf"):
        raise ValueError(f"{site.name}: need a finite power upper bound")
    if margin_mw < 0:
        raise ValueError("margin_mw must be >= 0")
    shave = _EDGE_EPS + margin_mw

    out: list[tuple[int, float, float, float]] = []
    for k, (lo, hi) in enumerate(site.policy.segment_bounds()):
        if hi <= d + _EDGE_EPS:
            continue  # market load can never fall in this segment
        # Lower bound extends down by the margin so the band shaved off
        # the previous segment stays representable (at this, higher,
        # price); upper bound is shaved except for the segment that
        # contains the site's maximum power, which must stay reachable.
        p_lo = max(0.0, lo - d - margin_mw)
        if hi == float("inf") or p_max < hi - d - _EDGE_EPS:
            p_hi = p_max  # the site's top segment
        else:
            p_hi = hi - d - shave
        if p_hi < p_lo - _EDGE_EPS:
            continue  # segment above the site's reachable power
        out.append((k, site.policy.prices[k], p_lo, p_hi))
    return out


def add_stepped_cost(
    model: Model,
    power_mw: "LinExpr | Variable",
    site: SiteHour,
    max_power_mw: float | None = None,
    margin_mw: float = 0.0,
) -> LinearizedCost:
    """Attach the stepped-cost linearization for one site to ``model``.

    Parameters
    ----------
    model:
        The MILP being built.
    power_mw:
        Expression for the site's own draw ``p_i`` (MW, >= 0).
    site:
        The hour's market snapshot (policy and background demand).
    max_power_mw:
        Upper bound on ``p_i`` used to close the unbounded last
        segment; defaults to the site's reachable power. Must be
        finite.
    margin_mw:
        Safety margin below each interior breakpoint. The MILP decides
        with the *smooth* affine power model, while realized power comes
        from the exact stepped model and is slightly larger; without a
        margin the optimizer parks exactly below a breakpoint and the
        realized draw crosses it, repricing the site's whole bill one
        level up. Power inside the margin band is *conservatively*
        billed at the next level (segment lower bounds are extended down
        by the margin so no band of power becomes unrepresentable).

    Returns
    -------
    LinearizedCost
        The cost expression (add it to the objective or budget row) and
        the auxiliary variables for inspection.
    """
    seg_power: list[Variable] = []
    seg_active: list[Variable] = []
    prices: list[float] = []
    for k, price, p_lo, p_hi in reachable_segments(site, max_power_mw, margin_mw):
        y = model.binary(f"y[{site.name},{k}]")
        p = model.var(f"pseg[{site.name},{k}]", lb=0.0, ub=max(p_hi, 0.0))
        # Segment bounds gated on the selection binary.
        model.add(p <= p_hi * y, name=f"seg_ub[{site.name},{k}]")
        if p_lo > 0.0:
            model.add(p >= p_lo * y, name=f"seg_lb[{site.name},{k}]")
        seg_power.append(p)
        seg_active.append(y)
        prices.append(price)

    if not seg_power:
        raise ValueError(
            f"{site.name}: no reachable price segment (background demand "
            f"{site.background_mw} MW, max power "
            f"{site.max_power_mw if max_power_mw is None else max_power_mw} MW)"
        )
    model.add(quicksum(seg_active) == 1.0, name=f"one_segment[{site.name}]")
    model.add(
        quicksum(seg_power) == power_mw, name=f"power_split[{site.name}]"
    )
    cost = quicksum(price * p for price, p in zip(prices, seg_power))
    return LinearizedCost(cost, seg_power, seg_active, prices)
