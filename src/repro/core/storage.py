"""Day-ahead energy-storage scheduling against stepped market prices.

Extension beyond the paper (its related work explicitly studies stored
energy: Urgaonkar et al., Govindan et al.): given tomorrow's forecast
data-center power profile and the site's stepped pricing policy, plan
hourly battery charge/discharge that minimizes the bill. The planner is
a *multi-hour* MILP that reuses the same stepped-cost linearization as
the hourly dispatcher — each hour's grid draw selects a price segment,
and the battery couples hours through the state-of-charge dynamics:

.. math::

    soc_{t+1} = soc_t + \\eta_c c_t - d_t / \\eta_d, \\qquad
    g_t = p_t + c_t - d_t \\ge 0,

minimizing :math:`\\sum_t Pr_t(g_t + d^{bg}_t) \\, g_t` subject to SOC
and power limits and end-of-horizon energy neutrality (the plan must
return the battery at least to its starting charge, so savings are real
arbitrage rather than borrowed energy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datacenter.battery import Battery
from ..solver import Model, quicksum
from .linearize import add_stepped_cost
from .site import SiteHour

__all__ = ["StorageSchedule", "plan_storage_schedule", "evaluate_schedule"]


@dataclass(frozen=True)
class StorageSchedule:
    """Planned battery operation over a horizon.

    All arrays have the horizon's length; ``soc_mwh`` additionally has
    the initial state prepended (length ``T + 1``).
    """

    charge_mw: np.ndarray
    discharge_mw: np.ndarray
    grid_mw: np.ndarray
    soc_mwh: np.ndarray
    planned_cost: float
    baseline_cost: float

    @property
    def planned_saving(self) -> float:
        """Relative bill reduction vs running without the battery."""
        if self.baseline_cost <= 0:
            return 0.0
        return 1.0 - self.planned_cost / self.baseline_cost


def plan_storage_schedule(
    hours: list[SiteHour],
    base_power_mw: np.ndarray,
    battery: Battery,
    *,
    initial_soc_fraction: float = 0.5,
    require_final_soc: bool = True,
    backend=None,
) -> StorageSchedule:
    """Plan battery charge/discharge over consecutive hours of one site.

    Parameters
    ----------
    hours:
        The site's hourly market snapshots (same site, consecutive
        hours — backgrounds may differ hour to hour).
    base_power_mw:
        The data center's power profile for those hours (the dispatch
        decided elsewhere); the battery shifts *grid* draw around it.
    battery:
        The storage device.
    initial_soc_fraction:
        Starting state of charge.
    require_final_soc:
        Demand ``soc_T >= soc_0`` so the plan is energy-neutral.
    backend:
        Solver backend (default HiGHS).

    Returns
    -------
    StorageSchedule
        The optimal plan plus the no-battery baseline cost for
        comparison.
    """
    T = len(hours)
    base = np.asarray(base_power_mw, dtype=float)
    if base.shape != (T,):
        raise ValueError("base_power_mw must have one entry per hour")
    if np.any(base < 0):
        raise ValueError("base power must be >= 0")
    if T == 0:
        raise ValueError("empty horizon")

    soc0 = battery.capacity_mwh * initial_soc_fraction

    m = Model("storage-plan")
    charge = [
        m.var(f"c[{t}]", lb=0.0, ub=battery.max_charge_mw) for t in range(T)
    ]
    discharge = [
        m.var(f"d[{t}]", lb=0.0, ub=min(battery.max_discharge_mw, float(base[t])))
        for t in range(T)
    ]
    soc = [m.var(f"soc[{t}]", lb=0.0, ub=battery.capacity_mwh) for t in range(T + 1)]
    m.add(soc[0] == soc0, name="soc0")
    if require_final_soc:
        m.add(soc[T] >= soc0, name="soc_final")

    grid_vars = []
    costs = []
    for t, sh in enumerate(hours):
        m.add(
            soc[t + 1]
            == soc[t]
            + battery.charge_efficiency * charge[t]
            - (1.0 / battery.discharge_efficiency) * discharge[t],
            name=f"soc_dyn[{t}]",
        )
        g_max = float(base[t]) + battery.max_charge_mw
        g = m.var(f"g[{t}]", lb=0.0, ub=g_max)
        m.add(g == base[t] + charge[t] - discharge[t], name=f"grid[{t}]")
        lin = add_stepped_cost(m, g, sh, max_power_mw=g_max)
        grid_vars.append(g)
        costs.append(lin.cost)

    m.minimize(quicksum(costs))
    res = m.solve(backend=backend, raise_on_failure=True)

    baseline_cost = float(
        sum(sh.cost_of_power(float(p)) for sh, p in zip(hours, base))
    )
    soc_values = np.array([res.value(s) for s in soc])
    return StorageSchedule(
        charge_mw=np.array([res.value(c) for c in charge]),
        discharge_mw=np.array([res.value(d) for d in discharge]),
        grid_mw=np.array([res.value(g) for g in grid_vars]),
        soc_mwh=soc_values,
        planned_cost=float(res.objective),
        baseline_cost=baseline_cost,
    )


def evaluate_schedule(
    schedule: StorageSchedule,
    actual_hours: list[SiteHour],
    actual_base_mw: np.ndarray,
) -> tuple[float, float]:
    """Bill a planned schedule against *realized* market conditions.

    Day-ahead plans are made on forecasts; reality differs. The planned
    charge/discharge megawatts are executed verbatim against the actual
    backgrounds and data-center power profile, and both the resulting
    bill and the no-battery bill are computed — the pair quantifies how
    much of the planned arbitrage survives forecast error.

    Returns
    -------
    (with_battery, without_battery)
        Realized costs in $ over the horizon.
    """
    T = len(actual_hours)
    base = np.asarray(actual_base_mw, dtype=float)
    if base.shape != (T,) or schedule.grid_mw.shape != (T,):
        raise ValueError("schedule/actual horizons must match")
    with_battery = 0.0
    without = 0.0
    for t, sh in enumerate(actual_hours):
        # Execute the planned battery megawatts on the actual DC draw;
        # discharge can only offset load that actually exists.
        discharge = min(float(schedule.discharge_mw[t]), float(base[t]))
        grid = max(0.0, float(base[t]) + float(schedule.charge_mw[t]) - discharge)
        with_battery += sh.cost_of_power(grid)
        without += sh.cost_of_power(float(base[t]))
    return with_battery, without
