"""Adaptive budgeting under workload-prediction error.

Section IX: "the proposed electricity bill capping scheme ... is
currently based on the assumption that there is an accurate enough
prediction algorithm ... in our future work we will improve our scheme
to adapt to the situation when the workload prediction is inaccurate."

The paper's :class:`~repro.core.budgeter.Budgeter` fixes every hour's
base allocation up front from the historical weights; if the forecast
is biased, early hours burn (or hoard) budget the late month needed.
:class:`AdaptiveBudgeter` re-normalizes continuously instead:

.. math::

    B_t = (A_t - \\text{spent}_{<t}) \\cdot
          \\frac{w_t}{\\sum_{s \\ge t} w_s}

— each hour receives the *remaining allocatable budget* in proportion
to its share of the *remaining* predicted weight, so any forecast error
(or forced premium overspend) is amortized over the rest of the month
rather than silently violating the monthly total. A configurable
**contingency reserve** is withheld from the allocatable pool
``A_t`` and released over the final days, absorbing late surprises.

The class implements the same protocol as the plain budgeter
(:meth:`hourly_budget` / :meth:`record_spend` / accounting properties),
so the simulator and bill capper accept either interchangeably; the
benchmark ``bench_ext_prediction_error.py`` compares the two under
deliberately degraded forecasts.
"""

from __future__ import annotations

import numpy as np

from ..workload import HourOfWeekPredictor
from .budgeter import available_budget, month_weights

__all__ = ["AdaptiveBudgeter"]


class AdaptiveBudgeter:
    """Self-correcting monthly -> hourly budget splitter.

    Parameters
    ----------
    monthly_budget:
        Total budget for the period, $.
    predictor:
        Hour-of-week workload predictor (same as the plain budgeter).
    month_hours, start_weekday:
        Budgeting horizon and calendar alignment.
    reserve_fraction:
        Share of the monthly budget withheld as contingency, released
        linearly over the final ``release_hours`` of the month.
    release_hours:
        Tail window over which the reserve becomes allocatable
        (default: the last 3 days).
    """

    def __init__(
        self,
        monthly_budget: float,
        predictor: HourOfWeekPredictor,
        month_hours: int = 30 * 24,
        start_weekday: int = 0,
        reserve_fraction: float = 0.05,
        release_hours: int = 72,
    ):
        if monthly_budget < 0:
            raise ValueError("monthly budget must be >= 0")
        if month_hours <= 0:
            raise ValueError("month_hours must be positive")
        if not 0 <= reserve_fraction < 1:
            raise ValueError("reserve fraction must be in [0, 1)")
        if release_hours <= 0:
            raise ValueError("release_hours must be positive")
        release_hours = min(release_hours, month_hours)
        self.monthly_budget = float(monthly_budget)
        self.month_hours = int(month_hours)
        self.reserve_fraction = float(reserve_fraction)
        self.release_hours = int(release_hours)
        self._weights = month_weights(predictor, month_hours, start_weekday)
        # Suffix sums of weights: remaining predicted share per hour.
        self._suffix = np.concatenate(
            [np.cumsum(self._weights[::-1])[::-1], [0.0]]
        )
        self._spent = np.zeros(month_hours)
        self._next_hour = 0

    # -- budget protocol -------------------------------------------------------

    def _allocatable(self, hour: int) -> float:
        """Budget pool available through hour ``hour`` (reserve-aware)."""
        reserve = self.reserve_fraction * self.monthly_budget
        release_start = self.month_hours - self.release_hours
        if hour < release_start:
            released = 0.0
        else:
            released = reserve * (hour - release_start + 1) / self.release_hours
        return self.monthly_budget - reserve + released

    def hourly_budget(self) -> float:
        """Budget for the current hour: remaining pool x remaining share."""
        t = self._next_hour
        if t >= self.month_hours:
            raise RuntimeError("budgeting period exhausted")
        remaining_pool = self._allocatable(t) - self.total_spent
        share = self._weights[t] / self._suffix[t] if self._suffix[t] > 0 else 1.0
        # The shared zero floor: an overdrawn pool (late-month premium
        # overspend) publishes a 0 budget, never a negative one.
        return available_budget(remaining_pool * share, 0.0, carryover=False)

    def record_spend(self, cost: float) -> None:
        """Record the hour's realized cost and advance."""
        if cost < 0:
            raise ValueError("cost must be >= 0")
        if self._next_hour >= self.month_hours:
            raise RuntimeError("budgeting period exhausted")
        self._spent[self._next_hour] = cost
        self._next_hour += 1

    # -- accounting --------------------------------------------------------------

    @property
    def current_hour(self) -> int:
        return self._next_hour

    @property
    def total_spent(self) -> float:
        return float(self._spent[: self._next_hour].sum())

    @property
    def remaining_budget(self) -> float:
        return self.monthly_budget - self.total_spent

    def spent_through(self, hour: int) -> float:
        return float(self._spent[:hour].sum())
