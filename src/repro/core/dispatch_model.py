"""Shared MILP skeleton for the two hourly dispatch problems.

Both of the paper's optimization problems — cost minimization (eq. 1-2)
and throughput maximization within budget (eq. 8-9) — share the same
physics: per-site request rates ``lambda_i``, the affine power model
``p_i = a_i lambda_i + b_i z_i``, power caps, and the stepped-cost
linearization. :func:`build_dispatch_model` constructs that skeleton
once; the two problem classes differ only in objective and in whether
total cost is minimized or budget-constrained.

Scaling note
------------
Cloud-scale rates reach 1e9 requests/second while power slopes sit near
1e-7 MW per request/second; mixing those magnitudes in one constraint
matrix makes HiGHS's MILP presolve declare feasible models infeasible.
The skeleton therefore carries rates internally in **mega-requests per
second** (:data:`RATE_SCALE`), keeping every coefficient within a few
orders of magnitude of 1; :class:`SiteVars` converts back to
requests/second when results are read.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..solver import LinExpr, Model, SolveResult, Variable, quicksum
from .linearize import LinearizedCost, add_stepped_cost
from .site import SiteHour

__all__ = [
    "RATE_SCALE",
    "SiteVars",
    "DispatchModel",
    "build_dispatch_model",
    "piecewise_widths",
]

#: Requests/second per internal rate unit (1 unit = 1 Mrps).
RATE_SCALE = 1e6


@dataclass(frozen=True)
class SiteVars:
    """Decision variables attached to one site in the hourly MILP.

    ``rate`` is in scaled units (Mrps); use :meth:`rate_rps` to read a
    solution in requests/second.
    """

    site: SiteHour
    rate: Variable  # lambda_i / RATE_SCALE
    active: Variable  # z_i: site serves any load this hour
    power: Variable  # p_i, MW
    cost: LinearizedCost

    @property
    def cost_expr(self) -> LinExpr:
        return self.cost.cost

    def rate_rps(self, res: SolveResult) -> float:
        """Dispatched rate in requests/second at the solution."""
        return max(0.0, res.value(self.rate)) * RATE_SCALE


@dataclass(frozen=True)
class DispatchModel:
    """The compiled hourly dispatch skeleton."""

    model: Model
    sites: list[SiteVars]

    @property
    def total_cost(self) -> LinExpr:
        """Sum of the sites' hourly bills ($)."""
        return quicksum(s.cost_expr for s in self.sites)

    @property
    def total_rate_scaled(self) -> LinExpr:
        """Total served rate in scaled units (Mrps).

        Compare against ``offered_rps / RATE_SCALE`` — keeping the
        demand row in scaled units preserves the solver-friendly
        conditioning.
        """
        return quicksum(s.rate for s in self.sites)


def build_dispatch_model(
    site_hours: list[SiteHour],
    name: str = "dispatch",
    step_margin_frac: float = 0.0,
) -> DispatchModel:
    """Create the shared MILP skeleton for one invocation period.

    Per site *i* this adds:

    * ``lambda_i in [0, max_rate_i]`` (scaled) — the dispatched rate;
    * ``z_i in {0, 1}`` with ``lambda_i <= max_rate_i * z_i`` — whether
      the site is active (gates the affine intercept so an idle site
      draws nothing);
    * ``p_i = a_i lambda_i + b_i z_i`` with ``p_i <= Ps_i`` — the power
      model and the supplier cap (constraint (b) of both problems);
    * the stepped-cost linearization of
      :func:`repro.core.linearize.add_stepped_cost`.

    The QoS constraint (c) is satisfied by construction: the affine
    power model was derived from the minimum-server provisioning that
    meets the response-time target, so any ``lambda_i`` within
    ``max_rate_i`` is served within ``Rs_i``.

    ``step_margin_frac`` scales each site's reachable power into the
    breakpoint safety margin of
    :func:`repro.core.linearize.add_stepped_cost` (decision power is
    smooth, realized power is stepped and slightly larger).
    """
    if not site_hours:
        raise ValueError("at least one site required")
    m = Model(name)
    site_vars: list[SiteVars] = []
    for sh in site_hours:
        max_rate_scaled = sh.max_rate_rps / RATE_SCALE
        rate = m.var(f"lam[{sh.name}]", lb=0.0, ub=max_rate_scaled)
        active = m.binary(f"z[{sh.name}]")
        power = m.var(f"p[{sh.name}]", lb=0.0, ub=sh.max_power_mw)
        m.add(rate <= max_rate_scaled * active, name=f"gate[{sh.name}]")
        _add_power_model(m, sh, rate, active, power)
        if sh.power_cap_mw < float("inf"):
            m.add(power <= sh.power_cap_mw, name=f"cap[{sh.name}]")
        cost = add_stepped_cost(
            m, power, sh, margin_mw=step_margin_frac * sh.max_power_mw
        )
        site_vars.append(SiteVars(sh, rate, active, power, cost))
    return DispatchModel(m, site_vars)


def piecewise_widths(sh: SiteHour) -> list[tuple[float, float]]:
    """Active piecewise power segments as ``(width_scaled, slope)``.

    Truncates each segment at the site's max servable rate and stops at
    the first empty one, exactly as the LP-split construction in
    :func:`_add_power_model` does — the compiled-model cache uses this
    to patch segment bounds and slopes without rebuilding the model.
    """
    out: list[tuple[float, float]] = []
    prev_cap = 0.0
    for cap_rps, slope in sh.power_segments or ():
        width = (min(cap_rps, sh.max_rate_rps) - prev_cap) / RATE_SCALE
        prev_cap = min(cap_rps, sh.max_rate_rps)
        if width <= 0:
            break
        out.append((width, slope))
    return out


def _add_power_model(m: Model, sh: SiteHour, rate, active, power) -> None:
    """Tie ``power`` to ``rate`` with the site's decision power model.

    Homogeneous sites use the single affine slope. Sites exposing a
    piecewise-linear *convex* curve (heterogeneous fleets) get one rate
    variable per efficiency segment: because slopes are non-decreasing
    and power only ever hurts (it costs money and consumes caps), the
    optimizer fills cheaper segments first without any binaries — the
    classic convex piecewise-linear LP construction.
    """
    if not sh.power_segments:
        m.add(
            power
            == (sh.affine.slope_mw_per_rps * RATE_SCALE) * rate
            + sh.affine.intercept_mw * active,
            name=f"power[{sh.name}]",
        )
        return
    seg_rates = []
    terms = []
    for k, (width, slope) in enumerate(piecewise_widths(sh)):
        r_k = m.var(f"lamseg[{sh.name},{k}]", lb=0.0, ub=width)
        seg_rates.append(r_k)
        terms.append((slope * RATE_SCALE) * r_k)
    m.add(quicksum(seg_rates) == rate, name=f"rate_split[{sh.name}]")
    m.add(
        power == quicksum(terms) + sh.affine.intercept_mw * active,
        name=f"power[{sh.name}]",
    )
