"""The bill capper: the paper's two-step hourly control loop.

Section III: every invocation period the bill capper

1. solves *cost minimization* (Section IV) for the full offered load;
2. compares the minimized cost with the budgeter's hourly budget. If it
   fits, the step-1 allocation is enforced. Otherwise it solves
   *throughput maximization within budget* (Section V), which admits
   requests best-effort:

   * if the achievable throughput covers all premium requests, premium
     QoS is guaranteed and ordinary customers get the remainder
     (admission control on ordinary requests only);
   * if the budget cannot even cover premium requests, cost
     minimization is re-solved for the premium load alone and the
     budget is knowingly violated — "the QoS of premium customers must
     be guaranteed" (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..solver import SolverError
from ..telemetry import get_telemetry
from .allocation import CappingStep, HourlyDecision
from .cost_min import CostMinimizer
from .site import SiteHour
from .throughput_max import ThroughputMaximizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.degradation import DegradationPolicy

__all__ = ["BillCapper"]

#: Relative slack when comparing cost to budget, avoiding spurious
#: step-2 invocations on solver round-off.
_BUDGET_RTOL = 1e-9

#: Sentinel distinguishing "no per-call degradation override" from an
#: explicit ``degradation=None`` (which forces raise-on-failure).
_UNSET = object()


@dataclass
class BillCapper:
    """Two-step electricity-bill-capping dispatcher.

    Parameters
    ----------
    cost_minimizer, throughput_maximizer:
        The two optimizers; defaults use the HiGHS backend.
    shed_beyond_capacity:
        When the offered load exceeds the sites' combined servable
        capacity, clamp it (serving as much as physically possible)
        instead of raising. Premium demand is clamped first only after
        ordinary demand is fully shed.
    budget_safety:
        Fraction of the hourly budget handed to the throughput
        maximizer. Step 2 spends right up to its limit, and the
        realized bill (exact stepped models) runs slightly above the
        smooth decision estimate; reserving a small headroom keeps
        realized spending under the true budget.
    degradation:
        When set, a :class:`~repro.solver.SolverError` escaping the
        whole solver stack (past the fallback chain) no longer
        propagates: the hour is dispatched by this
        :class:`~repro.resilience.DegradationPolicy` instead, marked
        :attr:`~repro.core.allocation.CappingStep.DEGRADED`. ``None``
        (the default) preserves the raise-on-failure behaviour.
    """

    cost_minimizer: CostMinimizer = field(default_factory=CostMinimizer)
    throughput_maximizer: ThroughputMaximizer = field(
        default_factory=ThroughputMaximizer
    )
    shed_beyond_capacity: bool = True
    budget_safety: float = 0.98
    degradation: "DegradationPolicy | None" = None
    #: Last successfully solved decision, feeding the hold-last policy.
    _last_good: HourlyDecision | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def decide(
        self,
        site_hours: list[SiteHour],
        premium_rps: float,
        ordinary_rps: float,
        budget: float,
        *,
        forced_failure: Exception | None = None,
        degradation: "DegradationPolicy | None | object" = _UNSET,
        peak_term: tuple[float, float] | None = None,
    ) -> HourlyDecision:
        """Run the two-step algorithm for one invocation period.

        Parameters
        ----------
        site_hours:
            Market/power snapshot of every site.
        premium_rps, ordinary_rps:
            Offered load per customer class (requests/second).
        budget:
            The budgeter's hourly budget Cs ($); ``inf`` disables
            capping (pure cost minimization).
        forced_failure:
            Fault-injection hook: when given, the solve is skipped and
            this exception is raised in its place, exercising exactly
            the degradation path a genuine solver-stack failure takes.
        degradation:
            Per-call override of the instance's degradation policy
            (``None`` forces raise-on-failure). The instance itself is
            never mutated — run-scoped policies (the engine's
            ``degradation=`` argument) ride through here instead of
            leaking into a caller-supplied capper.
        peak_term:
            ``(cycle_peak_mw, penalty_per_mw)`` when a demand charge is
            in force (see :class:`repro.billing.DemandCharge`). Step
            1's acceptance test then reserves headroom for the demand
            charge the candidate dispatch would incur, and step 2
            prices peak excess inside the budget row so the maximizer
            actively shaves peaks. ``None`` (the default, and always
            under the ``energy`` tariff) preserves the paper's
            energy-only flow bit for bit.
        """
        if premium_rps < 0 or ordinary_rps < 0:
            raise ValueError("offered rates must be >= 0")
        if budget < 0:
            raise ValueError("budget must be >= 0")
        tel = get_telemetry()
        if not tel.enabled:
            return self._guarded(
                site_hours, premium_rps, ordinary_rps, budget, forced_failure,
                degradation, peak_term,
            )
        with tel.span("capper.decide") as sp:
            decision = self._guarded(
                site_hours, premium_rps, ordinary_rps, budget, forced_failure,
                degradation, peak_term,
            )
            sp.set(step=decision.step.value, predicted_cost=decision.predicted_cost)
        tel.counter(f"capper.step.{decision.step.value}").inc()
        tel.histogram("capper.predicted_cost").observe(decision.predicted_cost)
        return decision

    def _guarded(
        self,
        site_hours: list[SiteHour],
        premium_rps: float,
        ordinary_rps: float,
        budget: float,
        forced_failure: Exception | None,
        degradation: "DegradationPolicy | None | object" = _UNSET,
        peak_term: tuple[float, float] | None = None,
    ) -> HourlyDecision:
        """Run the two-step solve, degrading instead of crashing the hour."""
        policy = self.degradation if degradation is _UNSET else degradation
        try:
            if forced_failure is not None:
                raise forced_failure
            decision = self._decide(
                site_hours, premium_rps, ordinary_rps, budget, peak_term
            )
        except SolverError as exc:
            if policy is None:
                raise
            # Imported here: resilience depends on core's result types,
            # so a module-level import would be circular.
            from ..resilience.degradation import degraded_decision

            tel = get_telemetry()
            if tel.enabled:
                tel.counter("capper.degraded").inc()
                tel.counter(f"capper.degraded.{type(exc).__name__}").inc()
            return degraded_decision(
                policy,
                site_hours,
                premium_rps,
                ordinary_rps,
                budget,
                last=self._last_good,
            )
        self._last_good = decision
        return decision

    def _decide(
        self,
        site_hours: list[SiteHour],
        premium_rps: float,
        ordinary_rps: float,
        budget: float,
        peak_term: tuple[float, float] | None = None,
    ) -> HourlyDecision:
        demand_premium = premium_rps
        demand_ordinary = ordinary_rps
        if self.shed_beyond_capacity:
            capacity = sum(sh.max_rate_rps for sh in site_hours)
            premium_rps = min(premium_rps, capacity)
            ordinary_rps = min(ordinary_rps, capacity - premium_rps)
        total = premium_rps + ordinary_rps

        # Step 1: cost minimization for the full load. The same safety
        # factor guards the acceptance test: the realized bill runs
        # slightly above the smooth decision estimate. Under a demand
        # charge the acceptance compares the *projected hour bill* —
        # energy plus the demand charge the candidate's power peak
        # would incur — so headroom is reserved for both terms.
        step1 = self.cost_minimizer.solve(site_hours, total)
        projected = step1.predicted_cost
        if peak_term is not None:
            cycle_peak_mw, penalty_per_mw = peak_term
            step1_power = sum(
                a.predicted_power_mw for a in step1.allocations
            )
            projected += penalty_per_mw * max(0.0, step1_power - cycle_peak_mw)
        if projected <= budget * self.budget_safety * (1 + _BUDGET_RTOL) + 1e-12:
            return self._classed(
                step1,
                CappingStep.COST_MIN,
                served_premium=premium_rps,
                served_ordinary=ordinary_rps,
                demand_premium=demand_premium,
                demand_ordinary=demand_ordinary,
                budget=budget,
            )

        # Step 2: throughput maximization within the budget (shaved by
        # the safety factor so realized spending lands under the true
        # budget despite the smooth-vs-stepped model gap). The peak
        # term, when in force, rides into the budget row so the
        # maximizer shaves peaks instead of merely paying for them.
        if peak_term is None:
            # No kwargs: caller-supplied maximizers (and test stubs)
            # predating the peak term keep working under `energy`.
            step2 = self.throughput_maximizer.solve(
                site_hours, total, budget * self.budget_safety
            )
        else:
            step2 = self.throughput_maximizer.solve(
                site_hours, total, budget * self.budget_safety,
                peak_mw=peak_term[0], peak_penalty=peak_term[1],
            )
        throughput = step2.served_total_rps
        if throughput >= premium_rps * (1 - 1e-9):
            # The tolerance admits throughput a hair below premium_rps;
            # report what the maximizer actually achieved, never more.
            served_premium = min(premium_rps, throughput)
            return self._classed(
                step2,
                CappingStep.THROUGHPUT_MAX,
                served_premium=served_premium,
                served_ordinary=max(0.0, throughput - served_premium),
                demand_premium=demand_premium,
                demand_ordinary=demand_ordinary,
                budget=budget,
            )

        # Insufficient budget even for premium: guarantee premium QoS,
        # serve no ordinary requests, knowingly violate the budget.
        step3 = self.cost_minimizer.solve(site_hours, premium_rps)
        return self._classed(
            step3,
            CappingStep.PREMIUM_ONLY,
            served_premium=premium_rps,
            served_ordinary=0.0,
            demand_premium=demand_premium,
            demand_ordinary=demand_ordinary,
            budget=budget,
        )

    @staticmethod
    def _classed(
        decision: HourlyDecision,
        step: CappingStep,
        served_premium: float,
        served_ordinary: float,
        demand_premium: float,
        demand_ordinary: float,
        budget: float,
    ) -> HourlyDecision:
        return HourlyDecision(
            step=step,
            allocations=decision.allocations,
            served_premium_rps=served_premium,
            served_ordinary_rps=served_ordinary,
            demand_premium_rps=demand_premium,
            demand_ordinary_rps=demand_ordinary,
            predicted_cost=decision.predicted_cost,
            budget=budget,
        )
