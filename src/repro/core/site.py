"""Sites: a data center bound to its local power market.

A :class:`Site` pairs one :class:`~repro.datacenter.DataCenter` with the
:class:`~repro.powermarket.SteppedPricingPolicy` of its location and the
hourly background demand ``d_i`` of everyone else in that market. The
hourly optimizers consume the per-hour snapshot :class:`SiteHour`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datacenter import AffinePower, DataCenter
from ..powermarket import SteppedPricingPolicy

__all__ = ["Site", "SiteHour"]


@dataclass(frozen=True)
class SiteHour:
    """Everything the hourly MILPs need to know about one site.

    Attributes
    ----------
    name:
        Site label.
    affine:
        Smooth power model ``p_i(lambda_i)`` in MW.
    policy:
        The locational pricing policy ``F_i``.
    background_mw:
        This hour's non-data-center demand ``d_i`` (periodically
        informed by the ISO, Section IV-A).
    power_cap_mw:
        The supplier cap ``Ps_i``.
    max_rate_rps:
        Largest rate the site can serve (fleet and cap limits).
    fleet_rate_rps:
        Largest rate the *physical fleet* can serve, ignoring power
        caps. Equal to ``max_rate_rps`` when no cap binds; a dispatcher
        with an optimistic power model (e.g. Min-Only's servers-only
        slope) derives its own believed cap bound from this.
    power_segments:
        Optional piecewise-linear convex power curve as
        ``((cumulative capacity rps, slope MW/rps), ...)`` in
        efficiency order (slopes non-decreasing). When present, the
        dispatch MILP models power with one rate variable per segment —
        exact for heterogeneous fleets — instead of the single affine
        slope; the affine model still provides the intercept.
    """

    name: str
    affine: AffinePower
    policy: SteppedPricingPolicy
    background_mw: float
    power_cap_mw: float
    max_rate_rps: float
    power_segments: tuple[tuple[float, float], ...] | None = None
    fleet_rate_rps: float | None = None

    def __post_init__(self):
        if self.background_mw < 0:
            raise ValueError(f"{self.name}: negative background demand")
        if self.power_cap_mw <= 0:
            raise ValueError(f"{self.name}: power cap must be positive")
        if self.max_rate_rps < 0:
            raise ValueError(f"{self.name}: negative max rate")
        if self.power_segments is not None:
            caps = [c for c, _ in self.power_segments]
            slopes = [s for _, s in self.power_segments]
            if not caps:
                raise ValueError(f"{self.name}: empty power segments")
            if any(c <= 0 for c in caps) or caps != sorted(caps):
                raise ValueError(
                    f"{self.name}: segment capacities must be positive and increasing"
                )
            if slopes != sorted(slopes):
                raise ValueError(
                    f"{self.name}: segment slopes must be non-decreasing "
                    "(convex power curve required for the LP split)"
                )
        if self.fleet_rate_rps is not None and self.fleet_rate_rps < 0:
            raise ValueError(f"{self.name}: negative fleet rate")

    @property
    def physical_rate_rps(self) -> float:
        """Fleet capacity ignoring power caps (defaults to max_rate_rps)."""
        return (
            self.fleet_rate_rps if self.fleet_rate_rps is not None else self.max_rate_rps
        )

    @property
    def max_power_mw(self) -> float:
        """Reachable DC power: min(cap, power at the max servable rate)."""
        return min(self.power_cap_mw, self.affine.power_mw(self.max_rate_rps))

    def marginal_price(self, dc_power_mw: float) -> float:
        """Price the site pays when drawing ``dc_power_mw``."""
        return self.policy.price(self.background_mw + dc_power_mw)

    def cost_of_power(self, dc_power_mw: float) -> float:
        """Hourly bill ($) at ``dc_power_mw``: price x energy (1 h)."""
        return self.marginal_price(dc_power_mw) * dc_power_mw


@dataclass(frozen=True)
class Site:
    """A data center plus its local market, over a whole simulation.

    Attributes
    ----------
    datacenter:
        The physical site model.
    policy:
        Locational pricing policy of the site's market.
    background_mw:
        Hourly background-demand trace ``d_i(t)`` (length >= the
        simulated horizon).
    coe_trace:
        Optional hourly cooling-efficiency trace (the weather-varying
        extension; see
        :func:`repro.datacenter.cooling.synthetic_coe_trace`). When
        present, every hourly snapshot and evaluation uses that hour's
        efficiency instead of the data center's constant.
    """

    datacenter: DataCenter
    policy: SteppedPricingPolicy
    background_mw: np.ndarray
    coe_trace: np.ndarray | None = None

    def __post_init__(self):
        bg = np.asarray(self.background_mw, dtype=float)
        if bg.ndim != 1 or bg.size == 0:
            raise ValueError("background demand must be a non-empty 1-D array")
        if np.any(bg < 0) or not np.all(np.isfinite(bg)):
            raise ValueError("background demand must be finite and >= 0")
        object.__setattr__(self, "background_mw", bg)
        if self.coe_trace is not None:
            coe = np.asarray(self.coe_trace, dtype=float)
            if coe.shape != bg.shape:
                raise ValueError("coe_trace must match background_mw in length")
            if np.any(coe <= 0):
                raise ValueError("cooling efficiencies must be positive")
            object.__setattr__(self, "coe_trace", coe)

    @property
    def name(self) -> str:
        return self.datacenter.name

    def datacenter_at(self, t: int) -> DataCenter:
        """The data center with hour-``t`` weather applied (if any)."""
        if self.coe_trace is None:
            return self.datacenter
        from dataclasses import replace

        from ..datacenter import CoolingModel

        return replace(
            self.datacenter, cooling=CoolingModel(float(self.coe_trace[t]))
        )

    def hour(self, t: int) -> SiteHour:
        """Snapshot of the site at hour ``t``."""
        if not 0 <= t < self.background_mw.size:
            raise IndexError(
                f"hour {t} outside background trace of {self.background_mw.size}"
            )
        dc = self.datacenter_at(t)
        # Heterogeneous sites expose their exact piecewise-convex power
        # curve; the dispatch MILP prefers it over the secant affine model.
        segments = None
        piecewise = getattr(dc, "piecewise_power", None)
        if piecewise is not None:
            segments = tuple(piecewise())
        return SiteHour(
            name=self.name,
            affine=dc.affine_power(),
            policy=self.policy,
            background_mw=float(self.background_mw[t]),
            power_cap_mw=dc.power_cap_mw,
            max_rate_rps=dc.max_throughput_rps(),
            power_segments=segments,
            fleet_rate_rps=dc.fleet_throughput_rps(),
        )

    def evaluate_hour(self, t: int, lam_rps: float) -> tuple[float, float, float]:
        """Exact (power MW, price $/MWh, cost $) realized at hour ``t``.

        Uses the stepped physical model — integral servers, stepped
        switch counts — and the realized market price, not the MILP's
        smooth decision model. This is the simulator's ground truth.
        """
        power_mw = self.datacenter_at(t).power_mw(lam_rps)
        price = self.policy.price(float(self.background_mw[t]) + power_mw)
        return power_mw, price, price * power_mw
