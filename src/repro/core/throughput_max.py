"""Step 2 of the bill-capping algorithm: throughput maximization.

Implements the paper's Section V optimization (eq. 8-9): when the
minimized cost would bust the hourly budget ``Cs``, maximize the served
request rate subject to the *cost* staying below the budget (and the
same power-cap / QoS constraints as step 1). The served rate can fall
short of the offered load; the bill capper layers the premium/ordinary
admission policy on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..solver import InfeasibleError, quicksum
from .allocation import CappingStep, HourlyDecision
from .cost_min import (
    _decision_from,
    _use_decomposition,
    _zero_decision,
    resolve_solver_backend,
)
from .decomposition import DecompositionSolver
from .dispatch_model import RATE_SCALE, build_dispatch_model
from .model_cache import DispatchModelCache
from .site import SiteHour

__all__ = ["ThroughputMaximizer"]


@dataclass
class ThroughputMaximizer:
    """Budget-constrained throughput maximization (the paper's eq. 8-9).

    Parameters
    ----------
    backend:
        Solver backend name or object; default HiGHS.
    solver_backend:
        Registered backend name for the compiled hot path, with the
        same semantics as :class:`~repro.core.cost_min.CostMinimizer`
        (``REPRO_SOLVER_BACKEND`` env default, ``"decomposition"``
        for the region-decomposed solver, size-based auto-activation).
    cost_tiebreak_weight:
        Among maximum-throughput solutions, prefer cheaper ones: the
        objective is ``sum lambda_i - w * total_cost`` with ``w`` small
        enough (in rate-per-dollar units) never to trade throughput for
        money. Set to 0 to disable.
    """

    backend: object | None = None
    solver_backend: str | None = None
    cost_tiebreak_weight: float = 1e-6
    step_margin_frac: float = 0.01
    model_cache: DispatchModelCache | None = field(
        default=None, repr=False, compare=False
    )
    _decomposer: DecompositionSolver | None = field(
        default=None, repr=False, compare=False
    )

    def solve(
        self,
        site_hours: list[SiteHour],
        offered_rate_rps: float,
        budget: float,
        *,
        peak_mw: float | None = None,
        peak_penalty: float = 0.0,
    ) -> HourlyDecision:
        """Serve as much of ``offered_rate_rps`` as ``budget`` allows.

        Returns a decision whose ``served_total_rps`` is the achievable
        throughput ``lambda_throughput`` of Section V-A; all of it is
        reported as a single class (the bill capper splits classes).

        With a demand charge in force (``peak_mw`` = the billing
        cycle's peak average power so far, ``peak_penalty`` = its $/MW
        rate), the hour's bill inside the budget row and the cost
        tiebreak becomes ``energy + penalty * max(0, total_power -
        peak_mw)``, linearized with one ``peak_excess`` variable — the
        maximizer then shaves new peaks whenever throughput permits.
        The region decomposition and the enumeration kernel assume a
        site-separable bill, so the peak term routes around both.
        """
        if offered_rate_rps < 0:
            raise ValueError("offered rate must be >= 0")
        if budget < 0:
            raise ValueError("budget must be >= 0")
        peak_active = peak_mw is not None and peak_penalty > 0.0
        if offered_rate_rps == 0:
            decision = _zero_decision(site_hours, CappingStep.THROUGHPUT_MAX)
            return _with_budget(decision, budget)

        backend, solver_backend = resolve_solver_backend(
            self.backend, self.solver_backend
        )
        if not peak_active and _use_decomposition(
            backend, solver_backend, len(site_hours)
        ):
            if self._decomposer is None:
                self._decomposer = DecompositionSolver()
            out = self._decomposer.solve_throughput_max(
                site_hours, offered_rate_rps, budget,
                self.step_margin_frac, self.cost_tiebreak_weight,
            )
            if out is not None:
                decision = out.to_decision(
                    site_hours, CappingStep.THROUGHPUT_MAX
                )
                return _with_budget(decision, budget)
            # Uncertified gap: fall through to the monolithic solve.

        if backend is None:
            if self.model_cache is None:
                cache_backend = (
                    None if solver_backend == "decomposition" else solver_backend
                )
                self.model_cache = DispatchModelCache(
                    solver_backend=cache_backend
                )
            dm, res = self.model_cache.solve_throughput_max(
                site_hours, offered_rate_rps, budget,
                self.step_margin_frac, self.cost_tiebreak_weight,
                peak_mw=peak_mw if peak_active else None,
                peak_penalty=peak_penalty if peak_active else 0.0,
            )
            decision = _decision_from(dm, res, CappingStep.THROUGHPUT_MAX)
            return _with_budget(decision, budget)

        dm = build_dispatch_model(
            site_hours, name="throughput-max", step_margin_frac=self.step_margin_frac
        )
        dm.model.add(
            dm.total_rate_scaled <= offered_rate_rps / RATE_SCALE, name="demand"
        )
        total_bill = dm.total_cost
        if peak_active:
            peak_excess = dm.model.var("peak_excess", lb=0.0)
            dm.model.add(
                quicksum(s.power for s in dm.sites) - peak_excess <= peak_mw,
                name="peak",
            )
            total_bill = total_bill + peak_penalty * peak_excess
        dm.model.add(total_bill <= budget, name="budget")
        objective = dm.total_rate_scaled
        if self.cost_tiebreak_weight > 0:
            objective = objective - self.cost_tiebreak_weight * total_bill
        dm.model.maximize(objective)
        # All-zero dispatch is always feasible (cost 0 <= budget), so a
        # failure here is a solver error rather than a modeling outcome.
        res = dm.model.solve(backend=backend, raise_on_failure=True)
        decision = _decision_from(dm, res, CappingStep.THROUGHPUT_MAX)
        return _with_budget(decision, budget)


def _with_budget(decision: HourlyDecision, budget: float) -> HourlyDecision:
    return HourlyDecision(
        step=decision.step,
        allocations=decision.allocations,
        served_premium_rps=decision.served_premium_rps,
        served_ordinary_rps=decision.served_ordinary_rps,
        demand_premium_rps=decision.demand_premium_rps,
        demand_ordinary_rps=decision.demand_ordinary_rps,
        predicted_cost=decision.predicted_cost,
        budget=budget,
    )
