"""Compiled-structure cache for the hourly dispatch programs.

The MILP skeleton built by :func:`~repro.core.dispatch_model.
build_dispatch_model` has identical *structure* every hour for a fixed
site network: same variables, same rows, same sparsity. Only a handful
of coefficients move hour to hour — backgrounds shift the reachable
price segments' bounds, weather scales the power model, and the offered
load / budget land in right-hand sides. Yet the cold path re-runs the
whole ``Model`` → ``StandardForm`` pipeline (Python dict arithmetic per
constraint) every invocation period.

This module compiles each structure once, remembers where every
hour-varying coefficient lives in the compiled arrays, and patches
fresh values into copies of those arrays on subsequent hours — the
modeling layer is bypassed entirely on the hot path. The cache key *is*
the structure signature (site names, reachable-segment pattern,
piecewise segment count, cap presence, prices), so any change of
network shape is automatically a miss that rebuilds from scratch;
an LRU bound keeps alternating patterns from growing the cache.

Each entry also owns a warm-started branch-and-bound solver over the
pure-NumPy simplex: consecutive hours share the root LP basis and seed
each other's incumbents (see :mod:`repro.solver.simplex`), which is
where most of the measured speedup comes from. Any limit/error outcome
falls back to the SciPy/HiGHS backend on the exact same arrays, so the
hot path can never be *less* reliable than the cold one. Equivalence of
the patched arrays with a fresh compile, and of hot results with cold
SciPy solves, is pinned by ``tests/core/test_model_cache.py``.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..solver import (
    InfeasibleError,
    Model,
    SolveResult,
    SolverLimitError,
    StandardForm,
    UnboundedError,
    quicksum,
)
from ..solver.branch_bound import BranchBoundSolver
from ..solver.result import SolveStatus
from ..solver.revised_simplex import RevisedSimplexSolver, lp_solver_for_size
from ..solver.simplex import SimplexSolver
from ..telemetry import get_telemetry
from ..telemetry.instrument import record_solver_result
from . import enum_kernel
from .dispatch_model import (
    RATE_SCALE,
    DispatchModel,
    build_dispatch_model,
    piecewise_widths,
)
from .linearize import reachable_segments
from .site import SiteHour

__all__ = ["DispatchModelCache", "MinOnlyCache"]

_INF = float("inf")


@dataclass(frozen=True)
class _SiteSlots:
    """Where one site's hour-varying coefficients live in the arrays."""

    rate: int  # variable indices
    active: int
    power: int
    lamseg: tuple[int, ...]  # piecewise rate variables (empty: homogeneous)
    pseg: tuple[int, ...]  # per reachable segment: power variable
    yseg: tuple[int, ...]  # per reachable segment: selection binary
    gate_row: int  # A_ub rows
    cap_row: int | None
    seg_ub_rows: tuple[int, ...]
    seg_lb_rows: tuple[int | None, ...]  # None where p_lo == 0 (no row)
    power_row: int  # A_eq row


class _PatchIndex:
    """Fancy-index arrays for vectorized per-hour patching.

    Precomputed once per compiled entry from the slot layout, so
    :meth:`DispatchModelCache._patched` writes whole coefficient groups
    with single NumPy fancy-indexed assignments instead of a per-site
    Python loop. Flattened segment arrays iterate site-major in slot
    order — the same order the per-hour geometry is collected in.
    """

    __slots__ = (
        "rate", "active", "power", "gate",
        "cap_sites", "cap_rows",
        "hom_sites", "hom_rows", "hom_rate", "hom_active",
        "seg_site", "seg_pseg", "seg_yseg", "seg_ub_rows",
        "lb_rows", "lb_pos",
    )

    def __init__(self, slots: list[_SiteSlots]):
        idx = lambda xs: np.asarray(xs, dtype=np.intp)
        self.rate = idx([sl.rate for sl in slots])
        self.active = idx([sl.active for sl in slots])
        self.power = idx([sl.power for sl in slots])
        self.gate = idx([sl.gate_row for sl in slots])
        cap = [i for i, sl in enumerate(slots) if sl.cap_row is not None]
        self.cap_sites = idx(cap)
        self.cap_rows = idx([slots[i].cap_row for i in cap])
        hom = [i for i, sl in enumerate(slots) if not sl.lamseg]
        self.hom_sites = idx(hom)
        self.hom_rows = idx([slots[i].power_row for i in hom])
        self.hom_rate = idx([slots[i].rate for i in hom])
        self.hom_active = idx([slots[i].active for i in hom])
        seg_site, pseg, yseg, ub_rows, lb_rows, lb_pos = [], [], [], [], [], []
        for i, sl in enumerate(slots):
            for p_i, y_i, r_ub, r_lb in zip(
                sl.pseg, sl.yseg, sl.seg_ub_rows, sl.seg_lb_rows
            ):
                if r_lb is not None:
                    lb_rows.append(r_lb)
                    lb_pos.append(len(seg_site))
                seg_site.append(i)
                pseg.append(p_i)
                yseg.append(y_i)
                ub_rows.append(r_ub)
        self.seg_site = idx(seg_site)
        self.seg_pseg = idx(pseg)
        self.seg_yseg = idx(yseg)
        self.seg_ub_rows = idx(ub_rows)
        self.lb_rows = idx(lb_rows)
        self.lb_pos = idx(lb_pos)


class _Entry:
    """One compiled structure: template arrays, slots, private solver."""

    __slots__ = (
        "dm", "base", "sense_max", "slots", "patch",
        "serve_all_row", "demand_row", "budget_row", "peak_row",
        "solver", "last_x", "warm",
    )

    def __init__(self, dm: DispatchModel, base: StandardForm, sense_max: bool,
                 slots: list[_SiteSlots], serve_all_row, demand_row, budget_row,
                 peak_row=None, solver_backend: str | None = None):
        self.dm = dm
        self.base = base
        self.sense_max = sense_max
        self.slots = slots
        self.patch = _PatchIndex(slots)
        self.serve_all_row = serve_all_row
        self.demand_row = demand_row
        self.budget_row = budget_row
        self.peak_row = peak_row
        # Warm-started solves carry process history (the previous hour's
        # incumbent and root basis) that a checkpoint cannot, so a
        # resumed run would branch-and-bound through a different node
        # order and land on ULP-different optima. Energy-only entries
        # never notice — their hot path is the stateless enumeration
        # kernel — but peak-row (demand charge) structures always reach
        # the MILP, so they must solve cold to keep kill/resume and
        # restart byte-identical to an uninterrupted run.
        self.warm = peak_row is None
        # Private engine so its structure cache and root warm basis are
        # never thrashed by other problems; incumbents carry over hours.
        # The LP engine is picked by problem size: dense tableau for
        # small fleets, the sparse-pricing revised simplex once the
        # tableau would not fit the cell budget.
        if solver_backend is None:
            n_rows = base.A_ub.shape[0] + base.A_eq.shape[0]
            self.solver = BranchBoundSolver(
                lp_solver=lp_solver_for_size(base.c.size, n_rows),
                warm_start=self.warm,
            )
        else:
            from ..solver.registry import get_backend

            self.solver = get_backend(solver_backend)
        self.last_x: np.ndarray | None = None


class DispatchModelCache:
    """LRU cache of compiled dispatch MILPs, patched per hour.

    One instance per optimizer (each :class:`~repro.core.cost_min.
    CostMinimizer` / :class:`~repro.core.throughput_max.
    ThroughputMaximizer` creates its own lazily); safe to share across
    hours and strategies for the same process, not across processes.
    """

    #: Process-wide default for new caches. Benchmarks flip this to
    #: time the pure branch-and-bound path without threading a flag
    #: through every optimizer constructor.
    default_use_enum_kernel = True

    def __init__(self, maxsize: int | None = None,
                 use_enum_kernel: bool | None = None,
                 solver_backend: str | None = None):
        if maxsize is None:
            maxsize = int(os.environ.get("REPRO_MODEL_CACHE_SIZE", "32"))
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        #: Registered backend name each compiled entry solves with; None
        #: picks the size-adaptive default (dense simplex B&B for small
        #: fleets, revised simplex above the tableau cell budget).
        self.solver_backend = solver_backend
        #: Try the exact segment-enumeration kernel before the MILP
        #: (see :mod:`repro.core.enum_kernel`). It bails to the MILP
        #: whenever its assumptions don't hold; set False to force the
        #: branch-and-bound path (benchmarks, fallback tests).
        self.use_enum_kernel = (
            self.default_use_enum_kernel
            if use_enum_kernel is None else use_enum_kernel
        )
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()

    # -- public API -------------------------------------------------------------

    def solve_cost_min(
        self,
        site_hours: list[SiteHour],
        total_rate_rps: float,
        step_margin_frac: float,
    ) -> tuple[DispatchModel, SolveResult]:
        """Hot-path equivalent of ``CostMinimizer``'s build-and-solve.

        Returns the (rebound) dispatch model and a result with the
        objective already fixed up exactly as ``Model.solve`` would;
        raises the same errors as ``raise_on_failure=True``.
        """
        entry = self._entry("cost-min", site_hours, step_margin_frac)
        if self.use_enum_kernel:
            res = self._try_kernel(
                enum_kernel.solve_cost_min,
                entry, site_hours, total_rate_rps / RATE_SCALE,
                step_margin_frac,
            )
            if res is not None:
                entry.last_x = res.x
                return self._rebound(entry, site_hours), res
        sf = self._patched(entry, site_hours, step_margin_frac)
        sf.b_eq[entry.serve_all_row] = total_rate_rps / RATE_SCALE
        res = self._solve(entry, sf, "cost-min")
        return self._rebound(entry, site_hours), res

    def solve_throughput_max(
        self,
        site_hours: list[SiteHour],
        offered_rate_rps: float,
        budget: float,
        step_margin_frac: float,
        cost_tiebreak_weight: float,
        peak_mw: float | None = None,
        peak_penalty: float = 0.0,
    ) -> tuple[DispatchModel, SolveResult]:
        """Hot-path equivalent of ``ThroughputMaximizer``'s solve.

        With a demand charge in force (``peak_mw`` is the billing
        cycle's peak so far, ``peak_penalty`` its $/MW rate), the
        compiled structure gains a ``peak_excess`` variable priced at
        the penalty inside the budget row and (tiebreak-weighted)
        objective, plus a ``peak`` row ``sum(p_i) - peak_excess <=
        peak_mw`` whose RHS is patched per solve. The penalty is part
        of the structure key, so energy-only callers hit the exact
        pre-existing entry — and the enumeration kernel, which assumes
        a separable bill, only runs for them.
        """
        peak_active = peak_mw is not None and peak_penalty > 0.0
        extra: tuple = (float(cost_tiebreak_weight),)
        if peak_active:
            extra = (float(cost_tiebreak_weight), float(peak_penalty))
        entry = self._entry(
            "throughput-max", site_hours, step_margin_frac, extra=extra
        )
        if self.use_enum_kernel and not peak_active:
            res = self._try_kernel(
                enum_kernel.solve_throughput_max,
                entry, site_hours, offered_rate_rps / RATE_SCALE, budget,
                step_margin_frac, cost_tiebreak_weight,
            )
            if res is not None:
                entry.last_x = res.x
                return self._rebound(entry, site_hours), res
        sf = self._patched(entry, site_hours, step_margin_frac)
        sf.b_ub[entry.demand_row] = offered_rate_rps / RATE_SCALE
        sf.b_ub[entry.budget_row] = budget
        if peak_active:
            sf.b_ub[entry.peak_row] = peak_mw
        res = self._solve(entry, sf, "throughput-max")
        return self._rebound(entry, site_hours), res

    @staticmethod
    def _try_kernel(solver_fn, *args) -> SolveResult | None:
        """Run one enumeration-kernel attempt, instrumented like a backend.

        A solved hour records under ``solver.enum-kernel.*`` alongside
        the LP/MILP engines (so per-backend telemetry tables stay
        uniform) plus the ``core.enum_kernel.solved`` counter; a bail
        records only ``core.enum_kernel.bail`` — the MILP that takes
        over does its own solver accounting.
        """
        tel = get_telemetry()
        t0 = time.perf_counter()
        res = solver_fn(*args)
        if tel.enabled:
            if res is not None:
                tel.counter("core.enum_kernel.solved").inc()
                record_solver_result(
                    tel, res.backend, res.status.value, res.iterations,
                    time.perf_counter() - t0,
                )
            else:
                tel.counter("core.enum_kernel.bail").inc()
        return res

    def __len__(self) -> int:
        return len(self._entries)

    # -- structure lookup -------------------------------------------------------

    def _entry(self, kind: str, site_hours: list[SiteHour],
               step_margin_frac: float, extra: tuple = ()) -> _Entry:
        key = self._structure_key(kind, site_hours, step_margin_frac, extra)
        tel = get_telemetry()
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            if tel.enabled:
                tel.counter("core.model_cache.hit").inc()
            return entry
        entry = self._build(kind, site_hours, step_margin_frac, extra)
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            if tel.enabled:
                tel.counter("core.model_cache.evict").inc()
        if tel.enabled:
            tel.counter("core.model_cache.miss").inc()
        return entry

    @staticmethod
    def _structure_key(kind: str, site_hours: list[SiteHour],
                       step_margin_frac: float, extra: tuple) -> tuple:
        parts: list = [kind, float(step_margin_frac), extra]
        for sh in site_hours:
            segs = reachable_segments(
                sh, sh.max_power_mw, step_margin_frac * sh.max_power_mw
            )
            parts.append((
                sh.name,
                sh.power_cap_mw < _INF,
                len(piecewise_widths(sh)) if sh.power_segments else -1,
                # Which price levels are reachable, at what price, and
                # whether each carries a lower-bound row — everything
                # that decides rows/columns; the numeric bounds are
                # patched per hour.
                tuple((k, price, p_lo > 0.0) for k, price, p_lo, _ in segs),
            ))
        return tuple(parts)

    # -- compilation ------------------------------------------------------------

    def _build(self, kind: str, site_hours: list[SiteHour],
               step_margin_frac: float, extra: tuple) -> _Entry:
        dm = build_dispatch_model(
            site_hours, name=kind, step_margin_frac=step_margin_frac
        )
        m = dm.model
        if kind == "cost-min":
            # Placeholder RHS; patched every solve.
            m.add(dm.total_rate_scaled == 0.0, name="serve_all")
            m.minimize(dm.total_cost)
        else:
            m.add(dm.total_rate_scaled <= 0.0, name="demand")
            total_bill = dm.total_cost
            if len(extra) == 2:
                # Demand-charge structure: the hour's bill is energy
                # plus the penalty on power above the cycle peak. The
                # peak row's RHS (the peak itself) is patched per
                # solve; its coefficients are constant.
                weight, penalty = extra
                peak_excess = m.var("peak_excess", lb=0.0)
                m.add(
                    quicksum(s.power for s in dm.sites) - peak_excess <= 0.0,
                    name="peak",
                )
                total_bill = total_bill + penalty * peak_excess
            else:
                (weight,) = extra
            m.add(total_bill <= 0.0, name="budget")
            objective = dm.total_rate_scaled
            if weight > 0:
                objective = objective - weight * total_bill
            m.maximize(objective)

        base = m.to_standard_form()
        ub_rows, eq_rows = self._row_maps(m)
        var_idx = {v.name: v.index for v in m.variables}

        slots = []
        for sv in dm.sites:
            name = sv.site.name
            k_list = [int(v.name[v.name.rindex(",") + 1 : -1])
                      for v in sv.cost.segment_active]
            slots.append(_SiteSlots(
                rate=sv.rate.index,
                active=sv.active.index,
                power=sv.power.index,
                lamseg=tuple(
                    var_idx[f"lamseg[{name},{k}]"]
                    for k in range(len(piecewise_widths(sv.site)))
                ) if sv.site.power_segments else (),
                pseg=tuple(v.index for v in sv.cost.segment_power),
                yseg=tuple(v.index for v in sv.cost.segment_active),
                gate_row=ub_rows[f"gate[{name}]"],
                cap_row=ub_rows.get(f"cap[{name}]"),
                seg_ub_rows=tuple(ub_rows[f"seg_ub[{name},{k}]"] for k in k_list),
                seg_lb_rows=tuple(
                    ub_rows.get(f"seg_lb[{name},{k}]") for k in k_list
                ),
                power_row=eq_rows[f"power[{name}]"],
            ))
        return _Entry(
            dm=dm,
            base=base,
            sense_max=m.sense.value == "max",
            slots=slots,
            serve_all_row=eq_rows.get("serve_all"),
            demand_row=ub_rows.get("demand"),
            budget_row=ub_rows.get("budget"),
            peak_row=ub_rows.get("peak"),
            solver_backend=self.solver_backend,
        )

    @staticmethod
    def _row_maps(m: Model) -> tuple[dict[str, int], dict[str, int]]:
        """Constraint name → row index, per kind, in compile order."""
        ub_rows: dict[str, int] = {}
        eq_rows: dict[str, int] = {}
        for con in m.constraints:
            rows = ub_rows if con.kind == "<=" else eq_rows
            rows[con.name] = len(rows)
        return ub_rows, eq_rows

    # -- per-hour patching ------------------------------------------------------

    @staticmethod
    def _patched(entry: _Entry, site_hours: list[SiteHour],
                 step_margin_frac: float) -> StandardForm:
        """Copy the template arrays and write this hour's coefficients.

        The written values mirror, constraint for constraint, what
        ``build_dispatch_model`` + ``to_standard_form`` would produce
        (canonical ``<=`` orientation: a ``>=`` row is stored negated).
        ``c``, ``lb`` and ``integrality`` never vary and are shared.
        """
        base = entry.base
        pi = entry.patch
        A_ub = base.A_ub.copy()
        b_ub = base.b_ub.copy()
        A_eq = base.A_eq.copy()
        ub = base.ub.copy()

        # Whole-fleet coefficient groups in single fancy-indexed writes.
        # Every value is produced by the same elementwise expression the
        # old per-site loop used, so the arrays stay bit-identical.
        mrs = np.array([sh.max_rate_rps for sh in site_hours]) / RATE_SCALE
        max_power = np.array([sh.max_power_mw for sh in site_hours])
        ub[pi.rate] = mrs
        A_ub[pi.gate, pi.active] = -mrs  # rate <= mrs*z
        ub[pi.power] = max_power
        if pi.cap_rows.size:
            b_ub[pi.cap_rows] = [
                site_hours[i].power_cap_mw for i in pi.cap_sites
            ]
        if pi.hom_rows.size:
            slopes = np.array(
                [site_hours[i].affine.slope_mw_per_rps for i in pi.hom_sites]
            )
            A_eq[pi.hom_rows, pi.hom_rate] = (-slopes) * RATE_SCALE
            A_eq[pi.hom_rows, pi.hom_active] = [
                -site_hours[i].affine.intercept_mw for i in pi.hom_sites
            ]
        # Piecewise (heterogeneous) sites: per-segment widths and slopes.
        for sl, sh in zip(entry.slots, site_hours):
            if sl.lamseg:
                for idx, (width, slope) in zip(sl.lamseg, piecewise_widths(sh)):
                    ub[idx] = width
                    A_eq[sl.power_row, idx] = -slope * RATE_SCALE
        # Price-segment geometry, flattened site-major in slot order
        # (the same order _PatchIndex was built in).
        p_lo_flat: list[float] = []
        p_hi_flat: list[float] = []
        for sh in site_hours:
            for _, _, p_lo, p_hi in reachable_segments(
                sh, sh.max_power_mw, step_margin_frac * sh.max_power_mw
            ):
                p_lo_flat.append(p_lo)
                p_hi_flat.append(p_hi)
        p_hi_arr = np.array(p_hi_flat)
        ub[pi.seg_pseg] = np.maximum(p_hi_arr, 0.0)
        A_ub[pi.seg_ub_rows, pi.seg_yseg] = -p_hi_arr  # p <= p_hi*y
        if pi.lb_rows.size:
            # p >= p_lo*y, stored negated.
            A_ub[pi.lb_rows, pi.seg_yseg[pi.lb_pos]] = np.array(
                p_lo_flat
            )[pi.lb_pos]
        return StandardForm(
            c=base.c,
            A_ub=A_ub,
            b_ub=b_ub,
            A_eq=A_eq,
            b_eq=base.b_eq.copy(),
            lb=base.lb,
            ub=ub,
            integrality=base.integrality,
            obj_constant=base.obj_constant,
        )

    # -- solving ----------------------------------------------------------------

    def _solve(self, entry: _Entry, sf: StandardForm, name: str) -> SolveResult:
        if isinstance(entry.solver, BranchBoundSolver):
            res = entry.solver.solve(sf, warm_x=entry.last_x)
        else:
            # Registry backends expose the plain solve(StandardForm)
            # protocol; warm incumbents are a B&B-only concept.
            res = entry.solver.solve(sf)
        if not res.ok and res.status not in (
            SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED
        ):
            # Limit/error outcome: re-solve cold with the default
            # SciPy/HiGHS MILP backend on the exact same arrays.
            tel = get_telemetry()
            if tel.enabled:
                tel.counter("core.model_cache.fallback").inc()
            from ..solver.scipy_backend import ScipyBackend

            res = ScipyBackend().solve(sf)
        if res.ok:
            if entry.warm:
                entry.last_x = res.x
            value = res.objective + sf.obj_constant
            if entry.sense_max:
                value = -value
            res.objective = value
            return res
        if res.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(f"model {name!r} is infeasible")
        if res.status is SolveStatus.UNBOUNDED:
            raise UnboundedError(f"model {name!r} is unbounded")
        raise SolverLimitError(
            f"model {name!r}: {res.status.value} ({res.message})"
        )

    @staticmethod
    def _rebound(entry: _Entry, site_hours: list[SiteHour]) -> DispatchModel:
        """Rebind the cached SiteVars to *this* hour's SiteHours.

        Decision decoding reads current-hour data (e.g. the zero-power
        price at the hour's background demand) off ``SiteVars.site``.
        """
        return DispatchModel(
            entry.dm.model,
            [dataclasses.replace(sv, site=sh)
             for sv, sh in zip(entry.dm.sites, site_hours)],
        )


class MinOnlyCache:
    """Compiled-LP cache for the Min-Only baseline dispatcher.

    The baseline's problem is a tiny LP whose structure depends only on
    the site list and which sites have finite power caps; prices (in
    ``CURRENT`` mode), believed rate limits and the offered load vary
    per hour and are patched into the objective, bounds and right-hand
    sides. Consecutive hours warm-start each other's simplex basis.
    """

    def __init__(self, lp_solver=None):
        self._key: tuple | None = None
        self._base: StandardForm | None = None
        self._cap_rows: list[int | None] = []
        if isinstance(lp_solver, str):
            if lp_solver == "simplex":
                lp_solver = SimplexSolver()
            elif lp_solver == "revised-simplex":
                lp_solver = RevisedSimplexSolver()
            else:
                raise ValueError(
                    "MinOnlyCache lp_solver name must be 'simplex' or "
                    f"'revised-simplex', got {lp_solver!r}"
                )
        #: None picks per-structure via lp_solver_for_size at compile.
        self._solver = lp_solver
        self._auto_solver = lp_solver is None
        self._warm = None

    def solve(
        self,
        site_hours: list[SiteHour],
        total_rate_rps: float,
        constant_prices: list[float],
        server_slopes: dict[str, float],
    ) -> SolveResult:
        """Solve the baseline LP; ``x[i]`` is site *i*'s rate (scaled).

        Raises the same errors as ``Model.solve(raise_on_failure=True)``.
        """
        key = tuple(
            (sh.name, server_slopes[sh.name], sh.power_cap_mw < _INF)
            for sh in site_hours
        )
        tel = get_telemetry()
        if key != self._key:
            self._compile(key, site_hours, server_slopes)
            if tel.enabled:
                tel.counter("core.model_cache.miss").inc()
        elif tel.enabled:
            tel.counter("core.model_cache.hit").inc()

        base = self._base
        sf = StandardForm(
            c=base.c.copy(),
            A_ub=base.A_ub,
            b_ub=base.b_ub.copy(),
            A_eq=base.A_eq,
            b_eq=base.b_eq.copy(),
            lb=base.lb,
            ub=base.ub.copy(),
            integrality=base.integrality,
        )
        for i, (sh, price) in enumerate(zip(site_hours, constant_prices)):
            slope = server_slopes[sh.name]
            sf.c[i] = price * slope * RATE_SCALE
            believed_max = sh.physical_rate_rps
            if sh.power_cap_mw < _INF:
                believed_max = min(believed_max, sh.power_cap_mw / slope)
            sf.ub[i] = believed_max / RATE_SCALE
            if self._cap_rows[i] is not None:
                sf.b_ub[self._cap_rows[i]] = sh.power_cap_mw
        sf.b_eq[0] = total_rate_rps / RATE_SCALE

        res, warm = self._solver.solve_warm(sf, warm=self._warm)
        if warm is not None:
            warm.pin = True  # held across hours; never consume in place
            self._warm = warm
        if not res.ok and res.status not in (
            SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED
        ):
            if tel.enabled:
                tel.counter("core.model_cache.fallback").inc()
            from ..solver.scipy_backend import ScipyLpBackend

            res = ScipyLpBackend().solve(sf)
        if res.ok:
            return res
        if res.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError("model 'min-only' is infeasible")
        if res.status is SolveStatus.UNBOUNDED:
            raise UnboundedError("model 'min-only' is unbounded")
        raise SolverLimitError(
            f"model 'min-only': {res.status.value} ({res.message})"
        )

    def _compile(self, key: tuple, site_hours: list[SiteHour],
                 server_slopes: dict[str, float]) -> None:
        n = len(site_hours)
        cap_rows: list[int | None] = []
        rows = []
        for i, sh in enumerate(site_hours):
            if sh.power_cap_mw < _INF:
                row = np.zeros(n)
                row[i] = server_slopes[sh.name] * RATE_SCALE  # MW per Mrps
                cap_rows.append(len(rows))
                rows.append(row)
            else:
                cap_rows.append(None)
        A_ub = np.array(rows) if rows else np.zeros((0, n))
        self._base = StandardForm(
            c=np.zeros(n),
            A_ub=A_ub,
            b_ub=np.zeros(len(rows)),
            A_eq=np.ones((1, n)),
            b_eq=np.zeros(1),
            lb=np.zeros(n),
            ub=np.zeros(n),
            integrality=np.zeros(n, dtype=bool),
        )
        self._cap_rows = cap_rows
        self._key = key
        if self._auto_solver:
            self._solver = lp_solver_for_size(n, len(rows) + 1)
        self._warm = None  # structure changed: stale basis is useless
