"""Min-Only: the state-of-the-art cost-minimization baseline.

Section VII-A: Min-Only "is an optimization-based cost minimization
algorithm designed for Internet-scale data centers [Rao et al.,
INFOCOM 2010]". It differs from Cost Capping in exactly three ways, all
reproduced here:

1. **Price taker** — it assumes its dispatch does not move prices, so
   each site has a *constant* price. Two variants simulate how such an
   algorithm would be parameterized against a stepped real market:
   ``Min-Only (Avg)`` uses the mean of the step prices and
   ``Min-Only (Low)`` the lowest step price.
2. **Servers only** — its decision model ignores cooling and networking
   power.
3. **No budget** — it always serves the full offered load, however
   expensive.

With constant prices and affine power, the baseline's problem is an LP.
The *realized* bill is later evaluated by the simulator against the
true stepped prices and the full power model — which is where the
baseline underperforms, exactly as in the paper's Figures 3-4 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..datacenter import DataCenter, WATTS_PER_MW
from ..solver import Model, quicksum
from .allocation import Allocation, CappingStep, HourlyDecision
from .site import SiteHour

__all__ = ["PriceMode", "MinOnlyDispatcher"]


class PriceMode(Enum):
    """How Min-Only summarizes a stepped policy into one constant price.

    ``AVG`` and ``LOW`` are the paper's two variants (Section VII-A).
    ``CURRENT`` is an extension: the most informed price taker
    possible — it observes the *current* market price at the hour's
    background demand, but still assumes its own dispatch cannot move
    it. Even this best-case price taker loses to the price-maker
    formulation whenever its concentrated dispatch crosses a step.
    """

    AVG = "avg"
    LOW = "low"
    CURRENT = "current"

    def constant_price(self, site: SiteHour) -> float:
        if self is PriceMode.AVG:
            return site.policy.average_price
        if self is PriceMode.CURRENT:
            return site.policy.price(site.background_mw)
        return site.policy.lowest_price


def server_only_affine_slope(dc) -> float:
    """MW per (request/second) counting *server* power only.

    The baseline's decision model (difference 2 above): the affine
    slope without the networking share and without the cooling
    overhead factor. Heterogeneous sites get the capacity-weighted
    (secant) server slope across their pools.
    """
    u = dc.utilization_cap
    servers = getattr(dc, "servers", None)
    if servers is not None:
        return servers.power_w(u) / (u * servers.service_rate) / WATTS_PER_MW
    # Heterogeneous: total server watts over total capacity.
    total_w = sum(p.count * p.spec.power_w(u) for p in dc.pools)
    capacity = sum(p.capacity_rps(u) for p in dc.pools)
    return total_w / capacity / WATTS_PER_MW


@dataclass
class MinOnlyDispatcher:
    """The Min-Only baseline dispatcher.

    Parameters
    ----------
    price_mode:
        ``PriceMode.AVG`` or ``PriceMode.LOW``.
    server_slopes:
        Per-site server-only power slopes (MW per rps), in site order —
        build them with :func:`server_only_affine_slope`. These define
        the baseline's *decision* model; realized cost still uses the
        full physics.
    backend:
        Solver backend; the problem is an LP, any backend works.
    solver_backend:
        LP engine for the compiled hot path: ``"simplex"``,
        ``"revised-simplex"`` or ``None`` (size-adaptive default).
    """

    price_mode: PriceMode
    server_slopes: dict[str, float]
    backend: object | None = None
    solver_backend: str | None = None
    model_cache: object | None = field(default=None, repr=False, compare=False)

    @classmethod
    def for_sites(cls, sites, mode: PriceMode, **kwargs) -> "MinOnlyDispatcher":
        """A dispatcher parameterized against ``sites``.

        Builds the per-site server-only slopes the baseline's decision
        model needs — the one piece of world-dependent configuration.
        """
        return cls(
            price_mode=mode,
            server_slopes={
                s.name: server_only_affine_slope(s.datacenter) for s in sites
            },
            **kwargs,
        )

    def solve(
        self, site_hours: list[SiteHour], total_rate_rps: float
    ) -> HourlyDecision:
        """Serve the full offered load at (believed) minimum cost."""
        if total_rate_rps < 0:
            raise ValueError("total rate must be >= 0")
        from .dispatch_model import RATE_SCALE

        if self.backend is None:
            return self._solve_cached(site_hours, total_rate_rps)

        m = Model("min-only")
        rates = []
        costs = []
        for sh in site_hours:
            if sh.name not in self.server_slopes:
                raise KeyError(f"no server slope for site {sh.name!r}")
            slope = self.server_slopes[sh.name] * RATE_SCALE  # MW per Mrps
            price = self.price_mode.constant_price(sh)
            # The baseline converts the contractual power cap to a rate
            # bound with its *own* (servers-only) model — difference 2
            # of Section VII-A. Underestimating power, it believes the
            # cap admits more load than it physically does; the local
            # optimizers shed the excess at dispatch time.
            believed_max = sh.physical_rate_rps
            if sh.power_cap_mw < float("inf"):
                believed_max = min(
                    believed_max, sh.power_cap_mw / self.server_slopes[sh.name]
                )
            rate = m.var(f"lam[{sh.name}]", lb=0.0, ub=believed_max / RATE_SCALE)
            if sh.power_cap_mw < float("inf"):
                m.add(slope * rate <= sh.power_cap_mw, name=f"cap[{sh.name}]")
            rates.append(rate)
            costs.append(price * slope * rate)
        m.add(quicksum(rates) == total_rate_rps / RATE_SCALE, name="serve_all")
        m.minimize(quicksum(costs))
        res = m.solve(backend=self.backend, raise_on_failure=True)

        lams = [max(0.0, res.value(rate)) * RATE_SCALE for rate in rates]
        return self._decision(site_hours, total_rate_rps, lams)

    def _solve_cached(
        self, site_hours: list[SiteHour], total_rate_rps: float
    ) -> HourlyDecision:
        """Hot path: patch the compiled baseline LP instead of rebuilding.

        Same LP, same result (the equivalence is pinned by tests); the
        modeling layer is skipped and consecutive hours warm-start each
        other's simplex basis.
        """
        from .dispatch_model import RATE_SCALE
        from .model_cache import MinOnlyCache

        for sh in site_hours:
            if sh.name not in self.server_slopes:
                raise KeyError(f"no server slope for site {sh.name!r}")
        if self.model_cache is None:
            self.model_cache = MinOnlyCache(lp_solver=self.solver_backend)
        prices = [self.price_mode.constant_price(sh) for sh in site_hours]
        res = self.model_cache.solve(
            site_hours, total_rate_rps, prices, self.server_slopes
        )
        lams = [max(0.0, float(res.x[i])) * RATE_SCALE
                for i in range(len(site_hours))]
        return self._decision(site_hours, total_rate_rps, lams)

    def _decision(
        self,
        site_hours: list[SiteHour],
        total_rate_rps: float,
        lams: list[float],
    ) -> HourlyDecision:
        allocs = []
        for sh, lam in zip(site_hours, lams):
            slope = self.server_slopes[sh.name]
            price = self.price_mode.constant_price(sh)
            power = slope * lam
            allocs.append(Allocation(sh.name, lam, power, price, price * power))
        return HourlyDecision(
            step=CappingStep.BASELINE,
            allocations=tuple(allocs),
            served_premium_rps=total_rate_rps,
            served_ordinary_rps=0.0,
            demand_premium_rps=total_rate_rps,
            demand_ordinary_rps=0.0,
            predicted_cost=sum(a.predicted_cost for a in allocs),
        )
