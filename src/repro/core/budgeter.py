"""The budgeter: monthly cost budget -> hourly budgets.

Section III + VI-B: "When the budgeter receives a monthly budget at the
beginning of the budgeting period ... it breaks the monthly budget into
hourly budgets based on the historical incoming workload data." The
hourly budget reflects (i) the monthly budget, (ii) what was already
spent, and (iii) hour-of-week workload weights from the trailing weeks
of history. Unused budget is carried over "from previous invocation
periods to the remaining invocation periods in the same week" — which
is why Figure 6's hourly budget grows over each week.

:class:`Budgeter` is stateful across the month: call
:meth:`hourly_budget` at the start of each hour and
:meth:`record_spend` with the realized cost afterwards.
"""

from __future__ import annotations

import numpy as np

from ..telemetry import get_telemetry
from ..workload import HOURS_PER_WEEK, HourOfWeekPredictor

__all__ = [
    "Budgeter",
    "available_budget",
    "clawed_back_carry",
    "month_weights",
]


def month_weights(
    predictor: HourOfWeekPredictor, month_hours: int, start_weekday: int
) -> np.ndarray:
    """Per-hour budget weights over the month, summing to 1.

    The hour-of-week profile tiled across the month and normalized,
    falling back to uniform weights on an all-zero profile. Shared by
    :class:`Budgeter` and
    :class:`~repro.core.robust_budgeter.AdaptiveBudgeter` so the two
    splitters can never disagree on what an hour's predicted share is.
    """
    weekly = predictor.weekly_profile()
    idx = (np.arange(month_hours) + start_weekday * 24) % HOURS_PER_WEEK
    profile = weekly[idx]
    total = profile.sum()
    if total <= 0:
        return np.full(month_hours, 1.0 / month_hours)
    return profile / total


def available_budget(base: float, carry: float, *, carryover: bool) -> float:
    """The zero-floored budget an hour actually hands the dispatcher.

    ``base`` plus the week's carryover (when enabled), floored at zero:
    a claw-back-driven negative balance must never surface as a
    negative hourly budget. Both budgeters route every budget they
    publish — and every overspend test — through this one floor.
    """
    budget = base
    if carryover:
        budget += carry
    return max(0.0, budget)


def clawed_back_carry(
    available: float, cost: float, *, claw_back_deficit: bool
) -> float:
    """Carryover left after settling an hour that was handed ``available``.

    Unused budget rolls forward; a deficit is forgotten (the paper's
    behaviour — overspent hours simply violate the budget) unless
    ``claw_back_deficit`` keeps it negative to starve later hours.
    """
    carry = available - cost
    if not claw_back_deficit:
        carry = max(0.0, carry)
    return carry


class Budgeter:
    """Splits a monthly electricity budget into carryover-aware hourly ones.

    Parameters
    ----------
    monthly_budget:
        Total budget for the budgeting period, $.
    predictor:
        Hour-of-week workload predictor built from history (the paper's
        two trailing weeks).
    month_hours:
        Invocation periods in the budgeting period (default 30 days).
    start_weekday:
        Weekday of the month's first hour (0 = Monday); aligns the
        weight profile with the real calendar.
    carryover:
        Roll unused budget forward within each week (paper behaviour);
        disable for the ablation study.
    claw_back_deficit:
        When an hour overspends (the mandatory-premium case of Section
        V-B), subtract the deficit from later hours' budgets. The paper
        carries over only *unused* budget — overspent hours simply
        violate the budget (Figure 8) — so this defaults to off; it is
        exposed for the ablation study (aggressive claw-back starves
        ordinary customers for the rest of the week).
    """

    def __init__(
        self,
        monthly_budget: float,
        predictor: HourOfWeekPredictor,
        month_hours: int = 30 * 24,
        start_weekday: int = 0,
        carryover: bool = True,
        claw_back_deficit: bool = False,
    ):
        if monthly_budget < 0:
            raise ValueError("monthly budget must be >= 0")
        if month_hours <= 0:
            raise ValueError("month_hours must be positive")
        self.monthly_budget = float(monthly_budget)
        self.month_hours = int(month_hours)
        self.start_weekday = int(start_weekday)
        self.carryover = carryover
        self.claw_back_deficit = claw_back_deficit
        self._weights = month_weights(predictor, month_hours, start_weekday)
        self._base = self.monthly_budget * self._weights
        self._spent = np.zeros(month_hours)
        self._next_hour = 0
        self._carry = 0.0

    # -- the hourly protocol ----------------------------------------------------

    @property
    def current_hour(self) -> int:
        """Index of the next hour to be budgeted."""
        return self._next_hour

    def base_budget(self, hour: int) -> float:
        """The hour's weight-proportional share of the monthly budget."""
        return float(self._base[hour])

    def hourly_budget(self) -> float:
        """Budget available for the current hour (base + carryover)."""
        if self._next_hour >= self.month_hours:
            raise RuntimeError("budgeting period exhausted")
        return available_budget(
            self.base_budget(self._next_hour),
            self._carry,
            carryover=self.carryover,
        )

    def record_spend(self, cost: float) -> None:
        """Record the hour's realized cost and advance to the next hour.

        Unused budget is carried to the next hour of the same week; an
        overspent hour (the mandatory-premium case of Section V-B)
        simply violates the budget unless ``claw_back_deficit`` is on.
        """
        if cost < 0:
            raise ValueError("cost must be >= 0")
        hour = self._next_hour
        if hour >= self.month_hours:
            raise RuntimeError("budgeting period exhausted")
        self._spent[hour] = cost
        # Same floor as hourly_budget(): carry and the overspend test are
        # relative to the budget the capper was actually handed, not to a
        # claw-back-driven negative balance it never saw.
        available = available_budget(
            self.base_budget(hour), self._carry, carryover=self.carryover
        )
        self._carry = clawed_back_carry(
            available, cost, claw_back_deficit=self.claw_back_deficit
        )
        self._next_hour += 1
        # Weeks are budgeted independently: carryover resets at calendar
        # week edges (aligned with the start weekday).
        if (self.start_weekday * 24 + self._next_hour) % HOURS_PER_WEEK == 0:
            self._carry = 0.0
        tel = get_telemetry()
        if tel.enabled:
            tel.histogram("budgeter.hourly_budget").observe(available)
            tel.histogram("budgeter.spend").observe(cost)
            tel.gauge("budgeter.carryover").set(self._carry)
            if cost > available:
                tel.counter("budgeter.overspend_hours").inc()

    # -- checkpoint / restore ----------------------------------------------------

    #: Checkpoint schema version; bump when the payload shape changes.
    CHECKPOINT_VERSION = 1

    def checkpoint(self) -> dict:
        """Snapshot the full budgeting state as a JSON-serializable dict.

        A budgeter restored from this snapshot produces exactly the
        same remaining hourly budgets as the original: the month
        weights, per-hour spend, carryover and position all round-trip.
        """
        return {
            "version": self.CHECKPOINT_VERSION,
            "monthly_budget": self.monthly_budget,
            "month_hours": self.month_hours,
            "start_weekday": self.start_weekday,
            "carryover": self.carryover,
            "claw_back_deficit": self.claw_back_deficit,
            "weights": self._weights.tolist(),
            "spent": self._spent.tolist(),
            "next_hour": self._next_hour,
            "carry": self._carry,
        }

    @classmethod
    def restore(cls, state: dict) -> "Budgeter":
        """Rebuild a budgeter from a :meth:`checkpoint` snapshot.

        No predictor is needed: the derived month weights are part of
        the snapshot. Raises :class:`ValueError` on version or shape
        mismatches rather than resuming from corrupt state.
        """
        version = state.get("version")
        if version != cls.CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported budgeter checkpoint version {version!r} "
                f"(expected {cls.CHECKPOINT_VERSION})"
            )
        month_hours = int(state["month_hours"])
        weights = np.asarray(state["weights"], dtype=float)
        spent = np.asarray(state["spent"], dtype=float)
        next_hour = int(state["next_hour"])
        if month_hours <= 0:
            raise ValueError("checkpoint month_hours must be positive")
        if weights.shape != (month_hours,) or spent.shape != (month_hours,):
            raise ValueError(
                "checkpoint weights/spent do not match month_hours "
                f"({weights.shape}/{spent.shape} vs {month_hours})"
            )
        if not 0 <= next_hour <= month_hours:
            raise ValueError(f"checkpoint next_hour {next_hour} out of range")
        b = cls.__new__(cls)
        b.monthly_budget = float(state["monthly_budget"])
        b.month_hours = month_hours
        b.start_weekday = int(state["start_weekday"])
        b.carryover = bool(state["carryover"])
        b.claw_back_deficit = bool(state["claw_back_deficit"])
        b._weights = weights
        b._base = b.monthly_budget * weights
        b._spent = spent
        b._next_hour = next_hour
        b._carry = float(state["carry"])
        return b

    # -- reporting ----------------------------------------------------------------

    @property
    def total_spent(self) -> float:
        return float(self._spent[: self._next_hour].sum())

    @property
    def remaining_budget(self) -> float:
        return self.monthly_budget - self.total_spent

    def spent_through(self, hour: int) -> float:
        """Cumulative spend through hour ``hour`` (exclusive)."""
        return float(self._spent[:hour].sum())
