"""Exact segment-enumeration solver for the hourly dispatch MILPs.

Profiling a simulated capping month puts ~85% of wall time inside
branch-and-bound LP solves. Yet for the common homogeneous-fleet case
the MILP's combinatorial core is tiny: per site, exactly one price
segment binary is selected (``one_segment``), the active gate ``z``
either holds the site at zero or admits the affine power model
``p = a lam + b``, and *for a fixed selection* the continuous problem
collapses to a one- or two-constraint LP over boxed per-site rates
whose greedy solution is exact:

* **cost-min** — minimize ``sum m_i lam_i`` subject to
  ``sum lam_i = L`` and ``lam_i in [lo_i, hi_i]``, with marginal cost
  ``m_i = price_i * a_i``. Forcing every ``lam_i`` to its lower bound
  and filling the remainder in ascending-marginal order is the classic
  transportation greedy (exchange argument: moving load from a larger
  to a smaller marginal never increases cost).
* **throughput-max** — maximize ``sum lam_i - w * cost`` subject to a
  demand row and a budget row. Ascending-marginal filling is again
  exact because a smaller ``m_i`` simultaneously has the larger
  objective gain ``1 - w m_i`` *and* the smaller budget consumption
  per unit of rate — the two greedy orders coincide.

This module enumerates every per-site choice combination (one array
axis per combination, solved simultaneously with NumPy), evaluates each
fixed-selection subproblem in closed form, and returns the best — the
exact MILP optimum — without touching the simplex. Decision equivalence
with the branch-and-bound and SciPy engines is pinned by
``tests/core/test_enum_kernel.py`` (objective and served totals; per-
site splits may legitimately differ between engines at alternate
optima).

The kernel *bails out* (returns ``None``; the caller proceeds with the
compiled MILP) whenever its assumptions don't hold: piecewise-power
(heterogeneous) sites, non-positive slopes, negative prices or
intercepts, a tie-break weight large enough to make rate unprofitable,
or more than :data:`MAX_COMBOS` combinations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..solver.result import SolveResult, SolveStatus
from .dispatch_model import RATE_SCALE
from .linearize import reachable_segments
from .site import SiteHour

__all__ = [
    "MAX_COMBOS",
    "SiteChoices",
    "site_choices",
    "combo_index",
    "cost_min_fill",
    "throughput_max_fill",
    "solve_cost_min",
    "solve_throughput_max",
]

#: Enumeration ceiling: beyond this many per-site choice combinations
#: the branch-and-bound MILP (whose search is *not* exhaustive) wins.
MAX_COMBOS = 4096

#: Constraint-feasibility slack, matching MILP feasibility tolerances.
_FEAS_TOL = 1e-9


@dataclass(frozen=True)
class SiteChoices:
    """One site's admissible (segment | inactive) choices.

    Arrays are aligned per choice: ``lo``/``hi`` bound the scaled rate,
    ``m`` is the marginal cost per scaled rate unit, ``f`` the fixed
    cost of being active in that segment, ``price`` the segment price.
    ``pos[j] >= 0`` indexes the entry's segment variables; a negative
    ``pos`` encodes the inactive choice, selecting segment
    ``-pos - 1`` with zero power.
    """

    a: float  # MW per scaled rate unit
    b: float  # intercept MW
    lo: np.ndarray
    hi: np.ndarray
    m: np.ndarray
    f: np.ndarray
    price: np.ndarray
    pos: tuple[int, ...]


# Backwards-friendly private alias (the class predates the public name).
_SiteChoices = SiteChoices


def site_choices(sh: SiteHour, step_margin_frac: float) -> SiteChoices | None:
    """One site's choice set, or None on any per-site bail condition.

    Shared by the enumeration kernel and the dual-decomposition solver
    (:mod:`repro.core.decomposition`) so both price segment geometry
    identically — :func:`~repro.core.linearize.reachable_segments` is
    the single source of truth.
    """
    if sh.power_segments:
        return None
    a = sh.affine.slope_mw_per_rps * RATE_SCALE
    b = sh.affine.intercept_mw
    if not a > 0.0 or b < 0.0:
        return None
    mrs = sh.max_rate_rps / RATE_SCALE
    segs = reachable_segments(
        sh, sh.max_power_mw, step_margin_frac * sh.max_power_mw
    )
    lo, hi, m, f, price, pos = [], [], [], [], [], []
    inactive_at = None
    for j, (_, seg_price, p_lo, p_hi) in enumerate(segs):
        if seg_price < 0.0:
            return None
        if inactive_at is None and p_lo == 0.0:
            inactive_at = j
        lam_lo = max(0.0, (p_lo - b) / a)
        lam_hi = min(mrs, (p_hi - b) / a)
        if lam_hi < lam_lo:
            continue
        lo.append(lam_lo)
        hi.append(lam_hi)
        m.append(seg_price * a)
        f.append(seg_price * b)
        price.append(seg_price)
        pos.append(j)
    if inactive_at is not None:
        # z = 0: rate and power pinned at zero, the slack segment's
        # binary absorbs the one_segment equality at no cost.
        lo.append(0.0)
        hi.append(0.0)
        m.append(0.0)
        f.append(0.0)
        price.append(0.0)
        pos.append(-(inactive_at + 1))
    if not lo:
        return None
    return SiteChoices(
        a=a, b=b,
        lo=np.array(lo), hi=np.array(hi),
        m=np.array(m), f=np.array(f), price=np.array(price),
        pos=tuple(pos),
    )


def combo_index(
    sites: list[SiteChoices], max_combos: int = MAX_COMBOS
) -> np.ndarray | None:
    """The (n_combos, n_sites) choice-index matrix, or None above the cap."""
    n_combos = 1
    for sc in sites:
        n_combos *= sc.lo.size
        if n_combos > max_combos:
            return None
    grids = np.meshgrid(
        *[np.arange(sc.lo.size) for sc in sites], indexing="ij"
    )
    return np.stack([g.ravel() for g in grids], axis=1)


def _prepare(
    site_hours: list[SiteHour], step_margin_frac: float
) -> tuple[list[SiteChoices], np.ndarray] | None:
    """Per-site choice sets and the combination index matrix.

    Returns None when any bail-out condition triggers, including a site
    with *no* admissible choice (the MILP then owns the infeasibility
    diagnosis).
    """
    sites: list[SiteChoices] = []
    for sh in site_hours:
        sc = site_choices(sh, step_margin_frac)
        if sc is None:
            return None
        sites.append(sc)
    idx = combo_index(sites)
    if idx is None:
        return None
    return sites, idx


def _gather(sites: list[_SiteChoices], idx: np.ndarray, field: str) -> np.ndarray:
    """(n_combos, n_sites) matrix of one choice attribute."""
    return np.stack(
        [getattr(sc, field)[idx[:, i]] for i, sc in enumerate(sites)], axis=1
    )


def _unsort(order_row: np.ndarray, values_row: np.ndarray) -> np.ndarray:
    out = np.empty_like(values_row)
    out[order_row] = values_row
    return out


def _result(
    entry, sites: list[_SiteChoices], idx_row: np.ndarray, lam: np.ndarray,
    objective: float,
) -> SolveResult:
    """Materialize the winning combination as a full solution vector."""
    x = np.zeros(entry.base.c.size)
    for i, (sc, sl) in enumerate(zip(sites, entry.slots)):
        pos = sc.pos[idx_row[i]]
        if pos < 0:
            x[sl.yseg[-pos - 1]] = 1.0
            continue
        li = float(lam[i])
        p = sc.a * li + sc.b
        x[sl.rate] = li
        x[sl.active] = 1.0
        x[sl.power] = p
        x[sl.pseg[pos]] = p
        x[sl.yseg[pos]] = 1.0
    return SolveResult(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        x=x,
        backend="enum-kernel",
    )


def _exact_cost(
    sites: list[SiteChoices], idx: np.ndarray, best: int, lam: np.ndarray
) -> float:
    """Re-derive the bill exactly as the MILP prices it:
    ``sum_i price_i * (a_i lam_i + b_i)`` over active sites."""
    cost = 0.0
    for i, sc in enumerate(sites):
        j = idx[best, i]
        if sc.pos[j] >= 0:
            cost += float(sc.price[j]) * (sc.a * float(lam[i]) + sc.b)
    return cost


def cost_min_fill(
    sites: list[SiteChoices], idx: np.ndarray, total_rate_scaled: float
) -> tuple[int, np.ndarray, float] | None:
    """Exact min-cost fill over the enumerated combinations.

    Returns ``(best_combo_row, lam_per_site, exact_cost)``; None when no
    combination can serve ``total_rate_scaled``. Entry-free so the
    decomposition solver can run it per region.
    """
    LO, HI, M, F = (_gather(sites, idx, k) for k in ("lo", "hi", "m", "f"))
    sum_lo = LO.sum(axis=1)
    feasible = (sum_lo <= total_rate_scaled + _FEAS_TOL) & (
        HI.sum(axis=1) >= total_rate_scaled - _FEAS_TOL
    )
    if not feasible.any():
        return None
    remaining = np.maximum(total_rate_scaled - sum_lo, 0.0)
    order = np.argsort(M, axis=1, kind="stable")
    caps = np.take_along_axis(HI - LO, order, axis=1)
    m_sorted = np.take_along_axis(M, order, axis=1)
    before = np.concatenate(
        [np.zeros((caps.shape[0], 1)), np.cumsum(caps, axis=1)[:, :-1]], axis=1
    )
    take = np.clip(remaining[:, None] - before, 0.0, caps)
    cost = F.sum(axis=1) + (M * LO).sum(axis=1) + (m_sorted * take).sum(axis=1)
    cost = np.where(feasible, cost, np.inf)
    best = int(np.argmin(cost))
    lam = LO[best] + _unsort(order[best], take[best])
    return best, lam, _exact_cost(sites, idx, best, lam)


def solve_cost_min(
    entry, site_hours: list[SiteHour], total_rate_scaled: float,
    step_margin_frac: float,
) -> SolveResult | None:
    """Exact minimum-cost dispatch of ``total_rate_scaled`` (Mrps)."""
    prep = _prepare(site_hours, step_margin_frac)
    if prep is None:
        return None
    sites, idx = prep
    fill = cost_min_fill(sites, idx, total_rate_scaled)
    if fill is None:
        return None  # the MILP owns the infeasibility diagnosis
    best, lam, objective = fill
    return _result(entry, sites, idx[best], lam, objective)


def throughput_max_fill(
    sites: list[SiteChoices], idx: np.ndarray, demand_scaled: float,
    budget: float, weight: float,
) -> tuple[int, np.ndarray, float, float] | None:
    """Exact budget-capped throughput fill over the combinations.

    Returns ``(best_combo_row, lam_per_site, served, exact_cost)``; None
    when no combination is admissible (or the tie-break weight breaks
    the greedy order). Entry-free for the decomposition solver.
    """
    LO, HI, M, F = (_gather(sites, idx, k) for k in ("lo", "hi", "m", "f"))
    if weight < 0.0 or (weight > 0.0 and weight * M.max(initial=0.0) >= 1.0):
        return None  # rate would be unprofitable: greedy order invalid
    base_cost = F.sum(axis=1) + (M * LO).sum(axis=1)
    sum_lo = LO.sum(axis=1)
    feasible = (base_cost <= budget + _FEAS_TOL) & (
        sum_lo <= demand_scaled + _FEAS_TOL
    )
    if not feasible.any():
        return None
    order = np.argsort(M, axis=1, kind="stable")
    caps = np.take_along_axis(HI - LO, order, axis=1)
    m_sorted = np.take_along_axis(M, order, axis=1)
    budget_left = np.maximum(budget - base_cost, 0.0)
    demand_left = np.maximum(demand_scaled - sum_lo, 0.0)
    take = np.zeros_like(caps)
    for j in range(caps.shape[1]):
        m_j = m_sorted[:, j]
        by_budget = np.divide(
            budget_left, m_j, out=np.full_like(m_j, np.inf), where=m_j > 0.0
        )
        t = np.minimum(caps[:, j], np.minimum(demand_left, by_budget))
        take[:, j] = t
        demand_left = np.maximum(demand_left - t, 0.0)
        budget_left = np.maximum(budget_left - m_j * t, 0.0)
    served = sum_lo + take.sum(axis=1)
    cost = base_cost + (m_sorted * take).sum(axis=1)
    value = np.where(feasible, served - weight * cost, -np.inf)
    best = int(np.argmax(value))
    lam = LO[best] + _unsort(order[best], take[best])
    return best, lam, float(lam.sum()), _exact_cost(sites, idx, best, lam)


def solve_throughput_max(
    entry, site_hours: list[SiteHour], demand_scaled: float, budget: float,
    step_margin_frac: float, weight: float,
) -> SolveResult | None:
    """Exact budget-capped throughput maximization (rates in Mrps)."""
    prep = _prepare(site_hours, step_margin_frac)
    if prep is None:
        return None
    sites, idx = prep
    fill = throughput_max_fill(sites, idx, demand_scaled, budget, weight)
    if fill is None:
        return None
    best, lam, served, exact_cost = fill
    # Objective exactly as the MILP prices it (user sense: maximize).
    objective = float(served - weight * exact_cost)
    return _result(entry, sites, idx[best], lam, objective)
