"""Dual decomposition of the dispatch MILPs across market regions.

The hourly cost-min / throughput-max programs couple otherwise
independent sites only through fleet-wide rows: ``sum lam_i = L``
(serve-all), ``sum lam_i <= D`` (demand) and ``sum cost_i <= B``
(budget). Relaxing those rows with Lagrange multipliers makes the
problem *separable per site* — each site's best response to a rate
price ``mu`` (or ``alpha``/``beta`` pair) is a closed-form scan of its
admissible segment choices, the same choice sets the enumeration kernel
builds (:func:`repro.core.enum_kernel.site_choices`). That turns the
monolithic MILP — whose dense standard form is memory-infeasible beyond
a few hundred sites — into:

1. **Dual stage** — bisection on the scalar serve-all multiplier
   (cost-min) or nested bisection on the demand/budget multiplier pair
   (throughput-max). Every evaluation is one vectorized pass over all
   site choices; multipliers are warm-started hour to hour.
2. **Primal recovery** — the dual responses are completed into a
   feasible dispatch, then *re-optimized exactly per market region*
   with the entry-free enumeration greedy
   (:func:`~repro.core.enum_kernel.cost_min_fill` /
   :func:`~repro.core.enum_kernel.throughput_max_fill`), each region
   sized to keep its choice product under the combination cap.
3. **Gap check** — the dual value bounds the monolithic optimum, so
   ``|primal - dual| <= gap_tol * |primal|`` *proves* the recovered
   dispatch is within tolerance of the monolithic answer. On failure
   the caller falls back to the monolithic MILP (small fleets), or —
   beyond ``force_accept_sites``, where no monolithic solve is
   practical — the best recovered primal is accepted and the residual
   gap is recorded in telemetry.

Decision construction bypasses the compiled model entirely: outcomes
materialize straight into :class:`~repro.core.allocation.
HourlyDecision`, so no dense array ever scales with fleet size.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..telemetry import get_telemetry
from .allocation import Allocation, CappingStep, HourlyDecision
from .dispatch_model import RATE_SCALE
from .enum_kernel import (
    MAX_COMBOS,
    SiteChoices,
    combo_index,
    cost_min_fill,
    site_choices,
    throughput_max_fill,
)
from .site import SiteHour

__all__ = [
    "DecompositionSolver",
    "DecompositionOutcome",
    "partition_market_regions",
    "decomposition_auto_sites",
    "DECOMP_AUTO_SITES",
]

_FEAS_TOL = 1e-9

#: Fleets at or above this many sites route through the decomposition
#: automatically (override with ``REPRO_DECOMP_AUTO_SITES``).
DECOMP_AUTO_SITES = 100


def decomposition_auto_sites() -> int:
    """The auto-activation fleet size, honoring the env override."""
    return int(os.environ.get("REPRO_DECOMP_AUTO_SITES", DECOMP_AUTO_SITES))


def partition_market_regions(
    site_hours: list[SiteHour],
    choices: list[SiteChoices],
    max_region_combos: int = 512,
) -> list[list[int]]:
    """Partition site indices into exactly-solvable market regions.

    Sites are grouped by their price policy (the market they bid into),
    then each group is chunked so the product of per-site choice counts
    stays under ``max_region_combos`` — the bound that keeps the
    per-region enumeration greedy exact *and* cheap. Any partition is
    correct (the coupling is fully relaxed); market grouping keeps
    same-curve sites together so regional re-optimization can trade
    load across the sites that actually share price steps.
    """
    groups: dict[int, list[int]] = {}
    for i, sh in enumerate(site_hours):
        groups.setdefault(id(sh.policy), []).append(i)
    ordered = [i for idxs in groups.values() for i in idxs]
    regions: list[list[int]] = []
    cur: list[int] = []
    prod = 1
    for i in ordered:
        k = choices[i].lo.size
        if cur and prod * k > max_region_combos:
            regions.append(cur)
            cur, prod = [], 1
        cur.append(i)
        prod *= k
    if cur:
        regions.append(cur)
    return regions


@dataclass
class DecompositionOutcome:
    """A recovered dispatch plus its optimality certificate."""

    choices: list[SiteChoices]
    choice_idx: np.ndarray  # per-site chosen choice row
    lam: np.ndarray  # per-site scaled rate (Mrps)
    cost: float  # exact bill of the recovered dispatch
    served_scaled: float
    bound: float  # dual bound on the monolithic optimum
    rel_gap: float
    n_regions: int
    converged: bool  # True: gap within tolerance (proven near-optimal)

    def to_decision(
        self, site_hours: list[SiteHour], step: CappingStep
    ) -> HourlyDecision:
        """Materialize directly into an HourlyDecision (no model arrays)."""
        allocs = []
        for i, (sh, sc) in enumerate(zip(site_hours, self.choices)):
            j = int(self.choice_idx[i])
            if sc.pos[j] < 0:
                allocs.append(Allocation(
                    sh.name, 0.0, 0.0, sh.policy.price(sh.background_mw), 0.0
                ))
                continue
            li = float(self.lam[i])
            power = sc.a * li + sc.b
            price = float(sc.price[j])
            allocs.append(Allocation(
                sh.name, li * RATE_SCALE, power, price, price * power
            ))
        total = sum(a.rate_rps for a in allocs)
        return HourlyDecision(
            step=step,
            allocations=tuple(allocs),
            served_premium_rps=total,
            served_ordinary_rps=0.0,
            demand_premium_rps=total,
            demand_ordinary_rps=0.0,
            predicted_cost=sum(a.predicted_cost for a in allocs),
        )


@dataclass
class _Padded:
    """All sites' choice arrays, padded to a rectangle for vector math."""

    LO: np.ndarray  # (n_sites, k_max)
    HI: np.ndarray
    M: np.ndarray
    F: np.ndarray  # +inf on padding, so padded rows never win a min
    valid: np.ndarray


def _pad(choices: list[SiteChoices]) -> _Padded:
    n = len(choices)
    k = max(sc.lo.size for sc in choices)
    LO = np.zeros((n, k))
    HI = np.zeros((n, k))
    M = np.zeros((n, k))
    F = np.full((n, k), np.inf)
    valid = np.zeros((n, k), dtype=bool)
    for i, sc in enumerate(choices):
        w = sc.lo.size
        LO[i, :w] = sc.lo
        HI[i, :w] = sc.hi
        M[i, :w] = sc.m
        F[i, :w] = sc.f
        valid[i, :w] = True
    return _Padded(LO=LO, HI=HI, M=M, F=F, valid=valid)


@dataclass
class DecompositionSolver:
    """Region-decomposed dispatch with gap-certified primal recovery.

    Parameters
    ----------
    gap_tol:
        Relative duality gap below which the recovered dispatch is
        accepted as (provably) matching the monolithic optimum. The
        default is half the 0.1% equivalence tolerance the test suite
        pins.
    max_region_combos:
        Choice-combination cap per region for the exact regional
        re-optimization.
    bisect_iters:
        Multiplier bisection depth per stage.
    force_accept_sites:
        Beyond this many sites a failed gap check no longer falls back
        to the monolithic MILP (whose dense arrays would not fit) —
        the best recovered primal is returned with
        ``converged=False`` and counted in telemetry.
    """

    gap_tol: float = 5e-4
    max_region_combos: int = 512
    bisect_iters: int = 60
    force_accept_sites: int = 256
    _mu: float | None = field(default=None, repr=False)

    # -- shared plumbing --------------------------------------------------------

    def _choices(
        self, site_hours: list[SiteHour], step_margin_frac: float
    ) -> list[SiteChoices] | None:
        choices = []
        for sh in site_hours:
            sc = site_choices(sh, step_margin_frac)
            if sc is None:
                return None  # piecewise/degenerate site: monolithic owns it
            choices.append(sc)
        return choices

    @staticmethod
    def _tel_outcome(which: str, rel_gap: float | None = None) -> None:
        tel = get_telemetry()
        if not tel.enabled:
            return
        tel.counter(f"core.decomposition.{which}").inc()
        if rel_gap is not None:
            tel.histogram("core.decomposition.rel_gap").observe(rel_gap)

    # -- cost minimization ------------------------------------------------------

    def solve_cost_min(
        self,
        site_hours: list[SiteHour],
        total_rate_rps: float,
        step_margin_frac: float,
    ) -> DecompositionOutcome | None:
        """Min-cost dispatch of the full offered load, or None to fall back."""
        choices = self._choices(site_hours, step_margin_frac)
        if choices is None:
            self._tel_outcome("fallback")
            return None
        L = total_rate_rps / RATE_SCALE
        pad = _pad(choices)

        bracket = self._bisect_mu(pad, L)
        if bracket is None:
            self._tel_outcome("fallback")
            return None
        mu_lo, mu_hi, lower_bound = bracket

        primal = self._recover_cost_min(site_hours, choices, pad, (mu_lo, mu_hi), L)
        if primal is None:
            self._tel_outcome("fallback")
            return None
        choice_idx, lam, cost, n_regions = primal
        self._mu = 0.5 * (mu_lo + mu_hi)  # warm-start the next hour's bracket

        rel_gap = (cost - lower_bound) / max(abs(cost), 1e-12)
        converged = rel_gap <= self.gap_tol
        if not converged and len(site_hours) <= self.force_accept_sites:
            self._tel_outcome("fallback", rel_gap)
            return None
        self._tel_outcome("solved" if converged else "gap_accept", rel_gap)
        return DecompositionOutcome(
            choices=choices,
            choice_idx=choice_idx,
            lam=lam,
            cost=cost,
            served_scaled=float(lam.sum()),
            bound=lower_bound,
            rel_gap=rel_gap,
            n_regions=n_regions,
            converged=converged,
        )

    @staticmethod
    def _site_response_cost_min(pad: _Padded, mu: float):
        """Per-site best choice and rate interval at rate price ``mu``.

        Each site independently minimizes ``(m - mu) lam + f`` over its
        choices; the response rate is ``lo`` when the reduced marginal
        is positive and ``hi`` when negative, with both endpoints
        returned for the tie (step) case.
        """
        coef = pad.M - mu
        V = np.minimum(coef * pad.LO, coef * pad.HI) + pad.F
        j = np.argmin(V, axis=1)
        rows = np.arange(V.shape[0])
        coef_j = coef[rows, j]
        lo_j = pad.LO[rows, j]
        hi_j = pad.HI[rows, j]
        lam_low = np.where(coef_j < 0.0, hi_j, lo_j)
        lam_high = np.where(coef_j <= 0.0, hi_j, lo_j)
        return j, V[rows, j], lam_low, lam_high

    def _dual_value_cost_min(self, pad: _Padded, mu: float, L: float) -> float:
        _, vbest, _, _ = self._site_response_cost_min(pad, mu)
        return float(vbest.sum() + mu * L)

    def _bisect_mu(self, pad: _Padded, L: float):
        """Bracket the serve-all multiplier; return (mu_lo, mu_hi, best_lb).

        The site responses are step functions of ``mu`` (the fixed-cost
        nonconvexity), so the aggregate response typically *jumps over*
        ``L`` at the optimal multiplier rather than crossing it. The
        bisection therefore converges a bracket, and the best dual value
        seen at any evaluated multiplier is the lower bound.
        """
        m_valid = pad.M[pad.valid]
        mu_lo = min(0.0, float(m_valid.min())) - 1.0
        mu_hi = float(m_valid.max()) + 1.0
        # Warm start: last hour's multiplier usually brackets this hour.
        if self._mu is not None and mu_lo < self._mu < mu_hi:
            width = 0.05 * (mu_hi - mu_lo)
            w_lo, w_hi = self._mu - width, self._mu + width
            _, _, low, _ = self._site_response_cost_min(pad, w_lo)
            _, _, _, high = self._site_response_cost_min(pad, w_hi)
            if float(low.sum()) <= L <= float(high.sum()):
                mu_lo, mu_hi = w_lo, w_hi
        _, _, low, _ = self._site_response_cost_min(pad, mu_lo)
        if float(low.sum()) > L + _FEAS_TOL:
            return None  # even the cheapest-response floor overshoots
        for _ in range(20):
            _, _, _, high = self._site_response_cost_min(pad, mu_hi)
            if float(high.sum()) >= L - _FEAS_TOL:
                break
            mu_hi = 2.0 * mu_hi + 1.0
        else:
            return None  # capacity short of L: the MILP owns the diagnosis
        best_lb = max(
            self._dual_value_cost_min(pad, mu_lo, L),
            self._dual_value_cost_min(pad, mu_hi, L),
        )
        for _ in range(self.bisect_iters):
            mu = 0.5 * (mu_lo + mu_hi)
            _, vbest, lam_low, lam_high = self._site_response_cost_min(pad, mu)
            best_lb = max(best_lb, float(vbest.sum() + mu * L))
            if float(lam_low.sum()) > L:
                mu_hi = mu
            elif float(lam_high.sum()) < L:
                mu_lo = mu
            else:
                mu_lo = mu_hi = mu
                break  # L sits inside the response interval at mu
        return mu_lo, mu_hi, best_lb

    def _cost_min_candidates(self, pad: _Padded, mu: float, L: float):
        """Feasible completions of the dual response at one multiplier.

        Two recovery moves, both exact given the choice vector:

        * **greedy** — keep every site's best choice, ascending-marginal
          fill of the remaining load between the choice bounds;
        * **one-swap** — with one coupling constraint the convexified
          optimum re-chooses at most *one* site, so for every site try
          "everyone else at their response floor, this site absorbs the
          residual in whichever of its choices admits it".
        """
        j, _, _, _ = self._site_response_cost_min(pad, mu)
        rows = np.arange(pad.LO.shape[0])
        lo_j = pad.LO[rows, j]
        hi_j = pad.HI[rows, j]
        m_j = pad.M[rows, j]
        f_j = np.where(pad.valid[rows, j], pad.F[rows, j], 0.0)
        out = []
        base = float(lo_j.sum())
        if base <= L + _FEAS_TOL and float(hi_j.sum()) >= L - _FEAS_TOL:
            order = np.argsort(m_j, kind="stable")
            caps = (hi_j - lo_j)[order]
            before = np.concatenate([[0.0], np.cumsum(caps)[:-1]])
            take = np.clip(max(L - base, 0.0) - before, 0.0, caps)
            lam = lo_j.copy()
            lam[order] += take
            out.append((j.copy(), lam))
        # One-swap: everyone else pinned at one end of their best
        # choice, site i absorbs the residual in whichever of its
        # choices admits it; pick the cheapest (i, choice) pair.
        f_safe = np.where(pad.valid, pad.F, 0.0)
        for anchor in (lo_j, hi_j):
            resid = (L - float(anchor.sum())) + anchor  # if i alone deviates
            fits = (
                pad.valid
                & (pad.LO <= resid[:, None] + _FEAS_TOL)
                & (pad.HI >= resid[:, None] - _FEAS_TOL)
            )
            swap_cost = np.where(fits, pad.M * resid[:, None] + f_safe, np.inf)
            j_swap = np.argmin(swap_cost, axis=1)
            delta = swap_cost[rows, j_swap] - (m_j * anchor + f_j)
            cand = np.where(np.isfinite(delta))[0]
            if not cand.size:
                continue
            i = int(cand[np.argmin(delta[cand])])
            j2 = j.copy()
            j2[i] = int(j_swap[i])
            lam2 = anchor.copy()
            lam2[i] = float(np.clip(resid[i], pad.LO[i, j2[i]], pad.HI[i, j2[i]]))
            if abs(float(lam2.sum()) - L) <= max(1e-7, 1e-9 * abs(L)):
                out.append((j2, lam2))
        return out

    def _recover_cost_min(self, site_hours, choices, pad, bracket, L):
        """Best feasible completion at either bracket end, then exact
        per-region re-optimization at the resulting regional targets."""
        candidates = []
        for mu in dict.fromkeys(bracket):
            candidates.extend(self._cost_min_candidates(pad, mu, L))
        if not candidates:
            return None

        def exact(j, lam):
            rows = np.arange(lam.size)
            return float(
                (pad.M[rows, j] * lam).sum() + pad.F[rows, j].sum()
            )

        j, lam = min(candidates, key=lambda c: exact(*c))

        # Exact per-region re-optimization at the regional targets: each
        # region may flip segment/activity choices the site-separable
        # dual could not price (the fixed-cost nonconvexity).
        regions = partition_market_regions(
            site_hours, choices, self.max_region_combos
        )
        n_r = len(regions)
        subs = [[choices[i] for i in reg] for reg in regions]
        idxs = [combo_index(sub, self.max_region_combos) for sub in subs]
        if any(idx is None for idx in idxs):
            return None
        choice_idx = j.astype(np.int64)
        lam = lam.copy()
        targets = np.array([float(lam[reg].sum()) for reg in regions])
        cost_r = np.zeros(n_r)

        def apply(r: int, target: float, fill) -> None:
            best, lam_f, cost_f = fill
            targets[r] = target
            cost_r[r] = cost_f
            lam[regions[r]] = lam_f
            choice_idx[regions[r]] = idxs[r][best]

        for r in range(n_r):
            fill = cost_min_fill(subs[r], idxs[r], float(targets[r]))
            if fill is None:
                return None
            apply(r, float(targets[r]), fill)

        # Inter-region load transfers: the dual splits the fleet load
        # well but not perfectly; move a shrinking tranche of load from
        # the region that sheds it cheapest to the region that absorbs
        # it cheapest, keeping only net-saving moves.
        cost_tol = 1e-9 * max(float(cost_r.sum()), 1.0)
        delta = L / max(n_r, 1)
        for _ in range(6):
            if delta <= 1e-12 * max(L, 1.0):
                break
            saves = np.full(n_r, -np.inf)
            adds = np.full(n_r, np.inf)
            shed_fill: dict[int, tuple] = {}
            grow_fill: dict[int, tuple] = {}
            for r in range(n_r):
                t_down = float(targets[r]) - delta
                if t_down >= -_FEAS_TOL:
                    p = cost_min_fill(subs[r], idxs[r], max(t_down, 0.0))
                    if p is not None:
                        saves[r] = float(cost_r[r]) - p[2]
                        shed_fill[r] = p
                p = cost_min_fill(subs[r], idxs[r], float(targets[r]) + delta)
                if p is not None:
                    adds[r] = p[2] - float(cost_r[r])
                    grow_fill[r] = p
            best_pair = None
            for d in np.argsort(-saves)[:2]:
                for q in np.argsort(adds)[:2]:
                    if d == q or d not in shed_fill or q not in grow_fill:
                        continue
                    net = saves[d] - adds[q]
                    if best_pair is None or net > best_pair[0]:
                        best_pair = (net, int(d), int(q))
            if best_pair is not None and best_pair[0] > cost_tol:
                _, d, q = best_pair
                apply(d, max(float(targets[d]) - delta, 0.0), shed_fill[d])
                apply(q, float(targets[q]) + delta, grow_fill[q])
            else:
                delta *= 0.5
        return choice_idx, lam, float(cost_r.sum()), len(regions)

    # -- throughput maximization ------------------------------------------------

    def solve_throughput_max(
        self,
        site_hours: list[SiteHour],
        offered_rate_rps: float,
        budget: float,
        step_margin_frac: float,
        weight: float,
    ) -> DecompositionOutcome | None:
        """Budget-capped throughput maximization, or None to fall back."""
        choices = self._choices(site_hours, step_margin_frac)
        if choices is None:
            self._tel_outcome("fallback")
            return None
        pad = _pad(choices)
        if weight < 0.0 or (
            weight > 0.0 and weight * float(pad.M[pad.valid].max(initial=0.0)) >= 1.0
        ):
            self._tel_outcome("fallback")
            return None
        D = offered_rate_rps / RATE_SCALE
        B = budget

        found = self._search_alpha_beta(pad, D, B, weight)
        if found is None:
            self._tel_outcome("fallback")
            return None
        dual_ub, j, lam = found
        j, lam = self._swap_repair_tp(pad, j, lam, D, B, weight)

        primal = self._recover_throughput(site_hours, choices, pad, j, lam, D, B, weight)
        if primal is None:
            self._tel_outcome("fallback")
            return None
        choice_idx, lam, served, cost, n_regions = primal

        value = served - weight * cost
        rel_gap = (dual_ub - value) / max(abs(value), 1.0)
        converged = rel_gap <= self.gap_tol
        if not converged and len(site_hours) <= self.force_accept_sites:
            self._tel_outcome("fallback", rel_gap)
            return None
        self._tel_outcome("solved" if converged else "gap_accept", rel_gap)
        return DecompositionOutcome(
            choices=choices,
            choice_idx=choice_idx,
            lam=lam,
            cost=cost,
            served_scaled=served,
            bound=dual_ub,
            rel_gap=rel_gap,
            n_regions=n_regions,
            converged=converged,
        )

    @staticmethod
    def _site_response_tp(pad: _Padded, alpha: float, beta: float, weight: float):
        """Per-site best choice for demand price alpha / budget price beta.

        Each site maximizes ``(1 - alpha) lam - (w + beta)(m lam + f)``
        over its choices; padding has ``f = +inf`` so it never wins.
        """
        wb = weight + beta
        coef = (1.0 - alpha) - wb * pad.M
        f_safe = np.where(pad.valid, pad.F, 0.0)  # avoid 0 * inf at wb == 0
        V = np.maximum(coef * pad.LO, coef * pad.HI) - wb * f_safe
        V[~pad.valid] = -np.inf
        j = np.argmax(V, axis=1)
        rows = np.arange(V.shape[0])
        coef_j = coef[rows, j]
        # Ties take lo: the conservative (demand/budget-light) endpoint.
        lam = np.where(coef_j > 0.0, pad.HI[rows, j], pad.LO[rows, j])
        cost = pad.M[rows, j] * lam + f_safe[rows, j]
        return j, lam, V[rows, j], cost

    def _search_alpha_beta(self, pad: _Padded, D: float, B: float, weight: float):
        """Nested bisection: alpha clears demand, beta clears the budget.

        Every dual evaluation doubles as a primal probe: a response whose
        served rate and cost already satisfy both coupling rows is a
        feasible dispatch, and the best one seen anywhere in the search
        becomes the recovery seed. Returns ``(dual_ub, j, lam)``, or
        None when no evaluated response was feasible.
        """
        state = {"ub": np.inf, "val": -np.inf, "seed": None}

        def evaluate(alpha: float, beta: float):
            j, lam, v, cost = self._site_response_tp(pad, alpha, beta, weight)
            served = float(lam.sum())
            tot_cost = float(cost.sum())
            state["ub"] = min(
                state["ub"], float(v.sum()) + alpha * D + beta * B
            )
            if (
                served <= D + _FEAS_TOL
                and tot_cost <= B * (1.0 + 1e-9) + _FEAS_TOL
            ):
                val = served - weight * tot_cost
                if val > state["val"]:
                    state["val"] = val
                    state["seed"] = (j.copy(), lam.copy())
            return served, tot_cost

        def inner(beta: float) -> float:
            """Bisect alpha >= 0 until the served response meets D."""
            served, cost = evaluate(0.0, beta)
            if served <= D + _FEAS_TOL:
                return cost
            a_lo = 0.0
            a_hi = 1.0 + (weight + beta) * float(pad.M[pad.valid].max(initial=0.0))
            for _ in range(self.bisect_iters):
                a = 0.5 * (a_lo + a_hi)
                served, _ = evaluate(a, beta)
                if served > D:
                    a_lo = a
                else:
                    a_hi = a
            _, cost = evaluate(a_hi, beta)
            return cost

        cost = inner(0.0)
        if cost > B * (1.0 + 1e-9) + _FEAS_TOL:
            m_pos = pad.M[pad.valid & (pad.M > 0.0)]
            if m_pos.size == 0:
                return None
            b_lo, b_hi = 0.0, 1.0 / float(m_pos.min()) + 1.0
            for _ in range(self.bisect_iters):
                beta = 0.5 * (b_lo + b_hi)
                if inner(beta) > B:
                    b_lo = beta
                else:
                    b_hi = beta
        if state["seed"] is None:
            return None
        j, lam = state["seed"]
        return state["ub"], j, lam

    def _swap_repair_tp(self, pad: _Padded, j, lam, D, B, weight, rounds=16):
        """Hill-climb the feasible seed with single-site re-choices.

        The convexified optimum re-chooses at most two sites relative
        to a dual response (one per coupling row), so repeatedly
        applying the best single-site move — re-choose site ``i`` to
        choice ``j'`` and let it absorb as much leftover demand as the
        leftover budget admits — recovers most of the remaining value.
        Every move keeps both coupling rows satisfied.
        """
        j = np.asarray(j).copy()
        lam = np.asarray(lam, dtype=float).copy()
        rows = np.arange(lam.size)
        f_safe = np.where(pad.valid, pad.F, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            for _ in range(rounds):
                cost_i = pad.M[rows, j] * lam + f_safe[rows, j]
                d_left = max(D - float(lam.sum()), 0.0)
                b_left = max(B - float(cost_i.sum()), 0.0)
                # Budget available to site i under choice j': the global
                # leftover plus what the site currently spends.
                avail = b_left + cost_i[:, None] - f_safe
                cap_budget = np.where(
                    pad.M > 0.0, avail / np.where(pad.M > 0.0, pad.M, 1.0),
                    np.inf,
                )
                lam_new = np.minimum(
                    pad.HI, np.minimum(lam[:, None] + d_left, cap_budget)
                )
                ok = pad.valid & (avail >= -_FEAS_TOL) & (
                    lam_new >= pad.LO - _FEAS_TOL
                )
                lam_new = np.clip(lam_new, pad.LO, pad.HI)
                cost_new = pad.M * lam_new + f_safe
                gain = (lam_new - lam[:, None]) - weight * (
                    cost_new - cost_i[:, None]
                )
                gain = np.where(ok, gain, -np.inf)
                i, jn = np.unravel_index(np.argmax(gain), gain.shape)
                if not np.isfinite(gain[i, jn]) or gain[i, jn] <= max(
                    1e-9 * max(D, 1.0), 1e-12
                ):
                    break
                j[i] = jn
                lam[i] = lam_new[i, jn]
        return j, lam

    def _recover_throughput(self, site_hours, choices, pad, j, lam, D, B, weight):
        """Water-fill the feasible seed across exactly-solved regions.

        Each round hands every region its previous usage plus an equal
        share of the unspent demand and budget, then re-solves the
        region exactly. A region's previous dispatch stays feasible
        under its new allotment, so regional (and total) objective
        value is non-decreasing; a few rounds route the slack to the
        regions that can convert it into throughput.
        """
        rows = np.arange(len(choices))
        f_j = np.where(pad.valid[rows, j], pad.F[rows, j], 0.0)
        cost_site = pad.M[rows, j] * lam + f_j

        regions = partition_market_regions(
            site_hours, choices, self.max_region_combos
        )
        n_r = max(len(regions), 1)
        subs = [[choices[i] for i in reg] for reg in regions]
        idxs = [combo_index(sub, self.max_region_combos) for sub in subs]
        if any(idx is None for idx in idxs):
            return None
        targets = np.array([float(lam[reg].sum()) for reg in regions])
        budgets = np.array([float(cost_site[reg].sum()) for reg in regions])
        targets += max(D - targets.sum(), 0.0) / n_r
        budgets += max(B - budgets.sum(), 0.0) / n_r

        choice_idx = np.asarray(j, dtype=np.int64).copy()
        lam_out = np.asarray(lam, dtype=float).copy()
        served_r = np.zeros(n_r)
        cost_r = np.zeros(n_r)
        value_r = np.full(n_r, -np.inf)
        d_tol = max(1e-9 * D, 1e-9)

        def probe(r: int, target: float, budget: float):
            return throughput_max_fill(
                subs[r], idxs[r], target, budget, weight
            )

        def refill(r: int, target: float, budget: float) -> bool:
            fill = probe(r, target, budget)
            if fill is None:
                return False
            best, lam_f, served_f, cost_f = fill
            served_r[r] = served_f
            cost_r[r] = cost_f
            value_r[r] = served_f - weight * cost_f
            lam_out[regions[r]] = lam_f
            choice_idx[regions[r]] = idxs[r][best]
            return True

        for r in range(n_r):
            if not refill(r, float(targets[r]), float(budgets[r])):
                return None
        # Greedy slack routing: with fixed costs a region's binding
        # constraint is not identifiable from its fill (extra budget can
        # unlock a combo whose base cost exceeded the old allotment), so
        # probe every region with the full leftover and grant it to the
        # best converter. Allotments never drop below usage, so regional
        # values are non-decreasing round over round.
        for _ in range(8):
            d_left = max(D - float(served_r.sum()), 0.0)
            b_left = max(B - float(cost_r.sum()), 0.0)
            if d_left <= d_tol:
                break
            gains = np.zeros(n_r)
            for r in range(n_r):
                p = probe(
                    r, float(served_r[r]) + d_left, float(cost_r[r]) + b_left
                )
                if p is not None:
                    _, _, served_p, cost_p = p
                    gains[r] = (served_p - weight * cost_p) - value_r[r]
            r_star = int(np.argmax(gains))
            if gains[r_star] <= d_tol:
                break
            if not refill(
                r_star, float(served_r[r_star]) + d_left,
                float(cost_r[r_star]) + b_left,
            ):
                return None

        # Inter-region budget transfers: once the budget is fully spent
        # the slack router is powerless, but the seed may still hold
        # budget in a region whose marginal throughput per dollar is
        # lower than another's. Move a shrinking tranche from the
        # cheapest donor to the best receiver, keeping the move only on
        # net objective gain — total value stays non-decreasing.
        delta = B / max(n_r, 1)
        for _ in range(6):
            if delta <= 1e-9 * max(B, 1.0):
                break
            d_left = max(D - float(served_r.sum()), 0.0)
            b_left = max(B - float(cost_r.sum()), 0.0)
            if d_left <= d_tol:
                break
            losses = np.full(n_r, np.inf)
            for r in range(n_r):
                give = min(delta, float(cost_r[r]))
                if give <= 0.0:
                    losses[r] = 0.0 if cost_r[r] == 0.0 else np.inf
                    continue
                p = probe(r, float(served_r[r]), float(cost_r[r]) - give)
                if p is not None:
                    _, _, served_p, cost_p = p
                    losses[r] = value_r[r] - (served_p - weight * cost_p)
            d_star = int(np.argmin(losses))
            if not np.isfinite(losses[d_star]):
                delta *= 0.5
                continue
            prev = (
                served_r.copy(), cost_r.copy(), value_r.copy(),
                lam_out.copy(), choice_idx.copy(),
            )
            give = min(delta, float(cost_r[d_star]))
            refill(d_star, float(served_r[d_star]), float(cost_r[d_star]) - give)
            freed_b = b_left + float(prev[1].sum() - cost_r.sum())
            freed_d = d_left + max(float(prev[0].sum() - served_r.sum()), 0.0)
            gains = np.full(n_r, -np.inf)
            for r in range(n_r):
                if r == d_star:
                    continue
                p = probe(
                    r, float(served_r[r]) + freed_d, float(cost_r[r]) + freed_b
                )
                if p is not None:
                    _, _, served_p, cost_p = p
                    gains[r] = (served_p - weight * cost_p) - value_r[r]
            r_star = int(np.argmax(gains))
            net = gains[r_star] - losses[d_star]
            if np.isfinite(net) and net > d_tol and refill(
                r_star, float(served_r[r_star]) + freed_d,
                float(cost_r[r_star]) + freed_b,
            ):
                continue
            served_r, cost_r, value_r, lam_out, choice_idx = prev
            delta *= 0.5
        return (
            choice_idx, lam_out, float(served_r.sum()), float(cost_r.sum()),
            len(regions),
        )
