"""Fault injection and graceful degradation for the hourly control loop.

The ROADMAP's "handles as many scenarios as you can imagine" includes
the ugly ones: stale price feeds, dead demand sensors, a solver stack
that gives up, a budgeter process restarted mid-month. This subpackage
makes those scenarios first-class:

* :mod:`repro.resilience.faults` — :class:`FaultInjector`, a
  deterministic seed-keyed per-hour fault schedule
  (:class:`FaultSpec` / :class:`HourFaults`);
* :mod:`repro.resilience.degradation` — :class:`DegradationPolicy` and
  :func:`degraded_decision`, the no-solver dispatch policies the
  :class:`~repro.core.BillCapper` falls back to;
* :mod:`repro.resilience.checkpoint` — JSON persistence for
  :meth:`repro.core.Budgeter.checkpoint` snapshots.

Typical chaos run::

    from repro.resilience import DegradationPolicy, FaultInjector, FaultSpec

    faults = FaultInjector(FaultSpec(price_stale=0.1, solver_error=0.05, seed=3))
    result = simulator.run_capping(
        budgeter, faults=faults, degradation=DegradationPolicy.PROPORTIONAL
    )
    assert all(len(h.sites) > 0 for h in result.hours)  # every hour dispatched
"""

from .checkpoint import (
    atomic_write_json,
    load_checkpoint,
    read_json,
    save_checkpoint,
)
from .degradation import DegradationPolicy, degraded_decision
from .faults import FAULT_KINDS, FaultInjector, FaultSpec, HourFaults

__all__ = [
    "FaultSpec",
    "HourFaults",
    "FaultInjector",
    "FAULT_KINDS",
    "DegradationPolicy",
    "degraded_decision",
    "atomic_write_json",
    "read_json",
    "save_checkpoint",
    "load_checkpoint",
]
