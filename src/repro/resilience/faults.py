"""Deterministic fault injection for the hourly control loop.

The paper's controller runs in an environment that *will* misbehave:
ISO price feeds lag, background-demand telemetry drops out, a MILP
backend occasionally dies or times out, and the budgeter process can be
restarted mid-month. :class:`FaultInjector` turns those failure modes
into a reproducible schedule: every fault channel is an independent
Bernoulli draw per simulated hour, keyed by ``(seed, hour)``, so the
same spec always perturbs the same hours — runs are replayable, and a
chaos CI job can pin its expectations.

The injector is stateless: :meth:`FaultInjector.faults_for` may be
called any number of times, in any order, and always returns the same
:class:`HourFaults` for a given hour.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from ..solver.errors import SolverError, SolverLimitError

__all__ = ["FaultSpec", "HourFaults", "FaultInjector", "FAULT_KINDS"]

#: Fault channels in draw order. The order is part of the reproducibility
#: contract: changing it re-shuffles every seeded schedule.
FAULT_KINDS = (
    "price_stale",
    "sensor_dropout",
    "solver_error",
    "solver_timeout",
    "budget_loss",
)


@dataclass(frozen=True)
class FaultSpec:
    """Per-hour fault probabilities plus the schedule seed.

    Attributes
    ----------
    price_stale:
        The locational price feed did not refresh: the dispatcher sees
        the *previous* hour's full market snapshot (prices and
        background demand) while the realized bill uses the truth.
    sensor_dropout:
        The background-demand sensors dropped out: the dispatcher sees
        the previous hour's background demand under current prices.
    solver_error:
        The whole solver stack (past the fallback chain) raises.
    solver_timeout:
        The solver stack exceeds its time/node limits and gives up.
    budget_loss:
        The budgeter process is restarted and loses its in-memory
        state; it must resume from its last checkpoint.
    seed:
        Schedule seed; the per-hour draws are keyed by ``(seed, hour)``.
    """

    price_stale: float = 0.0
    sensor_dropout: float = 0.0
    solver_error: float = 0.0
    solver_timeout: float = 0.0
    budget_loss: float = 0.0
    seed: int = 0

    def __post_init__(self):
        for kind in FAULT_KINDS:
            p = getattr(self, kind)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{kind} must be a probability in [0, 1], got {p}")

    @classmethod
    def parse(cls, spec: str) -> "FaultSpec":
        """Build a spec from a CLI string.

        Format: comma-separated ``key=value`` pairs, e.g.
        ``"price_stale=0.1,solver_error=0.05,seed=3"``. Unknown keys
        raise with the list of valid ones.
        """
        kwargs: dict[str, float | int] = {}
        valid = {f.name for f in fields(cls)}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(f"malformed fault spec entry {part!r}: expected key=value")
            if key not in valid:
                raise ValueError(
                    f"unknown fault channel {key!r}; valid keys: "
                    + ", ".join(sorted(valid))
                )
            try:
                kwargs[key] = int(value) if key == "seed" else float(value)
            except ValueError:
                raise ValueError(f"bad value for {key!r}: {value!r}") from None
        return cls(**kwargs)

    @property
    def any_enabled(self) -> bool:
        return any(getattr(self, kind) > 0 for kind in FAULT_KINDS)


@dataclass(frozen=True)
class HourFaults:
    """The faults injected into one simulated hour."""

    stale_prices: bool = False
    sensor_dropout: bool = False
    solver_error: bool = False
    solver_timeout: bool = False
    budget_loss: bool = False

    @property
    def any(self) -> bool:
        return (
            self.stale_prices
            or self.sensor_dropout
            or self.solver_error
            or self.solver_timeout
            or self.budget_loss
        )

    @property
    def kinds(self) -> tuple[str, ...]:
        """Names of the injected fault channels (spec key names)."""
        out = []
        if self.stale_prices:
            out.append("price_stale")
        if self.sensor_dropout:
            out.append("sensor_dropout")
        if self.solver_error:
            out.append("solver_error")
        if self.solver_timeout:
            out.append("solver_timeout")
        if self.budget_loss:
            out.append("budget_loss")
        return tuple(out)

    def solver_exception(self) -> SolverError | None:
        """The exception this hour's solver stack should die with."""
        if self.solver_timeout:
            return SolverLimitError("injected fault: solver timed out")
        if self.solver_error:
            return SolverError("injected fault: solver stack failure")
        return None


#: No faults; shared by every clean hour.
_CLEAN = HourFaults()


class FaultInjector:
    """Seed-keyed deterministic fault schedule over simulated hours."""

    def __init__(self, spec: FaultSpec):
        self.spec = spec

    def faults_for(self, hour: int) -> HourFaults:
        """The faults injected into ``hour`` (same answer every call)."""
        if hour < 0:
            raise ValueError("hour must be >= 0")
        if not self.spec.any_enabled:
            return _CLEAN
        # One generator per (seed, hour): the schedule is independent of
        # call order and of how many hours the caller simulates.
        draws = np.random.default_rng([self.spec.seed, hour]).random(len(FAULT_KINDS))
        flags = {
            kind: bool(draw < getattr(self.spec, kind))
            for kind, draw in zip(FAULT_KINDS, draws)
        }
        return HourFaults(
            stale_prices=flags["price_stale"],
            sensor_dropout=flags["sensor_dropout"],
            solver_error=flags["solver_error"],
            solver_timeout=flags["solver_timeout"],
            budget_loss=flags["budget_loss"],
        )

    def schedule_counts(self, hours: int) -> dict[str, int]:
        """Tally of injected faults per channel over ``hours`` hours."""
        counts = dict.fromkeys(FAULT_KINDS, 0)
        for t in range(hours):
            for kind in self.faults_for(t).kinds:
                counts[kind] += 1
        return counts
