"""Budgeter checkpoint files: durable month state across restarts.

A real deployment's budgeter is a long-lived process holding the
month's spend and carryover in memory; losing it mid-month would reset
the hourly budgets to the no-history split. These helpers persist the
:meth:`repro.core.Budgeter.checkpoint` payload as JSON so a restarted
controller resumes with the exact carryover and spend state, and the
simulator's ``budget_loss`` fault can prove the round trip.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.budgeter import Budgeter

__all__ = [
    "atomic_write_json",
    "read_json",
    "save_checkpoint",
    "load_checkpoint",
]


def atomic_write_json(payload: dict, path) -> Path:
    """Write ``payload`` as JSON to ``path`` with write-then-rename.

    A crash mid-write never leaves a truncated file: the previous
    checkpoint stays intact until the new one is whole. The engine
    calls this once per settled hour, so non-finite floats (``inf``
    budgets) must survive — Python's JSON dialect round-trips them.
    """
    path = Path(path)
    text = json.dumps(payload, sort_keys=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text + "\n")
    tmp.replace(path)
    return path


def read_json(path) -> dict:
    """Read a JSON object written by :func:`atomic_write_json`.

    Raises :class:`ValueError` (never a bare decode error) when the
    file is not a JSON object, so callers surface a checkpoint-shaped
    message instead of a parser traceback.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path} is not a JSON checkpoint (line {exc.lineno}: {exc.msg})"
        ) from None
    if not isinstance(payload, dict):
        raise ValueError(f"{path} is not a JSON checkpoint (not an object)")
    return payload


def save_checkpoint(budgeter: Budgeter, path) -> Path:
    """Write the budgeter's checkpoint to ``path`` (atomic replace)."""
    return atomic_write_json(budgeter.checkpoint(), path)


def load_checkpoint(path) -> Budgeter:
    """Rebuild a budgeter from a checkpoint file written by
    :func:`save_checkpoint`."""
    path = Path(path)
    try:
        state = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path} is not a budgeter checkpoint (line {exc.lineno}: {exc.msg})"
        ) from None
    if not isinstance(state, dict):
        raise ValueError(f"{path} is not a budgeter checkpoint (not an object)")
    return Budgeter.restore(state)
