"""Budgeter checkpoint files: durable month state across restarts.

A real deployment's budgeter is a long-lived process holding the
month's spend and carryover in memory; losing it mid-month would reset
the hourly budgets to the no-history split. These helpers persist the
:meth:`repro.core.Budgeter.checkpoint` payload as JSON so a restarted
controller resumes with the exact carryover and spend state, and the
simulator's ``budget_loss`` fault can prove the round trip.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.budgeter import Budgeter

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(budgeter: Budgeter, path) -> Path:
    """Write the budgeter's checkpoint to ``path`` (atomic replace)."""
    path = Path(path)
    payload = json.dumps(budgeter.checkpoint(), sort_keys=True)
    # Write-then-rename so a crash mid-write never leaves a truncated
    # checkpoint: the previous one stays intact until the new is whole.
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(payload + "\n")
    tmp.replace(path)
    return path


def load_checkpoint(path) -> Budgeter:
    """Rebuild a budgeter from a checkpoint file written by
    :func:`save_checkpoint`."""
    path = Path(path)
    try:
        state = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path} is not a budgeter checkpoint (line {exc.lineno}: {exc.msg})"
        ) from None
    if not isinstance(state, dict):
        raise ValueError(f"{path} is not a budgeter checkpoint (not an object)")
    return Budgeter.restore(state)
