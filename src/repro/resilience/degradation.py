"""Degraded dispatch: what the control loop does when it cannot solve.

The two-step bill-capping algorithm needs a working MILP stack; when
the whole solver chain fails (or is fault-injected to fail), the loop
must still emit *some* dispatch for the hour. The policies here trade
optimality for availability — none of them touches a solver:

* ``HOLD_LAST`` — repeat the last successful allocation, clamped to
  this hour's capacities (the classic "freeze the actuators" fallback;
  falls back to ``PROPORTIONAL`` on the first hour).
* ``PROPORTIONAL`` — split the offered load across the sites in
  proportion to their servable capacity. Price-blind but always
  feasible and serves everything that physically fits.
* ``PREMIUM_SHED`` — serve premium traffic only (capacity-proportional)
  and shed all ordinary requests: the cheapest safe hour when budget
  state is unknown, mirroring the paper's "premium QoS must be
  guaranteed" priority.

Degraded decisions carry :attr:`~repro.core.allocation.CappingStep.DEGRADED`
so records, telemetry and plots can separate them from solved hours.
"""

from __future__ import annotations

import enum

from ..core.allocation import Allocation, CappingStep, HourlyDecision
from ..core.site import SiteHour

__all__ = ["DegradationPolicy", "degraded_decision"]


class DegradationPolicy(enum.Enum):
    """Which no-solver dispatch policy a degraded hour uses."""

    HOLD_LAST = "hold-last"
    PROPORTIONAL = "proportional"
    PREMIUM_SHED = "premium-shed"


def degraded_decision(
    policy: DegradationPolicy,
    site_hours: list[SiteHour],
    premium_rps: float,
    ordinary_rps: float,
    budget: float,
    last: HourlyDecision | None = None,
) -> HourlyDecision:
    """Build this hour's dispatch without solving anything.

    Parameters
    ----------
    policy:
        The degradation policy to apply.
    site_hours:
        This hour's market/power snapshots (possibly themselves stale).
    premium_rps, ordinary_rps:
        Offered load per customer class.
    budget:
        The hourly budget in force (recorded, not enforced: degraded
        hours are availability-first).
    last:
        The most recent successfully solved decision, for ``HOLD_LAST``.
    """
    if premium_rps < 0 or ordinary_rps < 0:
        raise ValueError("offered rates must be >= 0")
    if policy is DegradationPolicy.HOLD_LAST and last is not None:
        rates = _held_rates(site_hours, last)
    elif policy is DegradationPolicy.PREMIUM_SHED:
        rates = _proportional_rates(site_hours, premium_rps)
    else:  # PROPORTIONAL, or HOLD_LAST with no history yet
        rates = _proportional_rates(site_hours, premium_rps + ordinary_rps)

    allocations = tuple(
        _allocation(sh, rate) for sh, rate in zip(site_hours, rates)
    )
    total_served = sum(rates)
    served_premium = min(premium_rps, total_served)
    if policy is DegradationPolicy.PREMIUM_SHED:
        served_ordinary = 0.0
    else:
        served_ordinary = min(ordinary_rps, max(0.0, total_served - served_premium))
    return HourlyDecision(
        step=CappingStep.DEGRADED,
        allocations=allocations,
        served_premium_rps=served_premium,
        served_ordinary_rps=served_ordinary,
        demand_premium_rps=premium_rps,
        demand_ordinary_rps=ordinary_rps,
        predicted_cost=sum(a.predicted_cost for a in allocations),
        budget=budget,
    )


def _proportional_rates(site_hours: list[SiteHour], total_rps: float) -> list[float]:
    """Capacity-proportional split of ``total_rps``, clamped to capacity."""
    caps = [max(0.0, sh.max_rate_rps) for sh in site_hours]
    capacity = sum(caps)
    if capacity <= 0 or total_rps <= 0:
        return [0.0] * len(site_hours)
    served = min(total_rps, capacity)
    return [served * cap / capacity for cap in caps]


def _held_rates(site_hours: list[SiteHour], last: HourlyDecision) -> list[float]:
    """The last decision's per-site rates, clamped to today's limits."""
    previous = {a.site: a.rate_rps for a in last.allocations}
    return [
        min(max(0.0, previous.get(sh.name, 0.0)), sh.max_rate_rps)
        for sh in site_hours
    ]


def _allocation(sh: SiteHour, rate_rps: float) -> Allocation:
    """Predicted power/price/cost for ``rate_rps`` at ``sh`` (smooth model)."""
    power = sh.affine.power_mw(rate_rps) if rate_rps > 0 else 0.0
    power = min(power, sh.power_cap_mw)
    price = sh.marginal_price(power)
    return Allocation(
        site=sh.name,
        rate_rps=rate_rps,
        predicted_power_mw=power,
        predicted_price=price,
        predicted_cost=price * power,
    )
