"""The paper's Section VI experimental setup, assembled end to end.

Three geographically distributed data centers (up to 300,000 servers
each), the Section VI-A server/switch/cooling parameters, the PJM
5-bus-derived locational pricing policies at buses B, C, D, synthetic
RECO-like background demand, and the two-month Wikipedia-like workload.

The helpers here are what the examples and every benchmark build on, so
each figure reproduction runs against an identical world.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import (
    BillCapper,
    Budgeter,
    MinOnlyDispatcher,
    PriceMode,
    Site,
    server_only_affine_slope,
)
from ..datacenter import (
    PAPER_COOLING_EFFICIENCIES,
    CoolingModel,
    DataCenter,
    paper_server_specs,
    paper_switch_powers,
)
from ..powermarket import (
    SteppedPricingPolicy,
    background_for_policy,
    flat_policy,
    paper_policies,
    scale_increments,
)
from ..workload import (
    CustomerMix,
    FlashCrowd,
    HourOfWeekPredictor,
    Trace,
    paper_two_month_workload,
)

__all__ = [
    "PaperWorld",
    "paper_datacenters",
    "paper_heterogeneous_datacenters",
    "paper_pricing",
    "paper_world",
    "PAPER_BUDGET_LEVELS",
    "DEFAULT_MAX_SERVERS",
]

#: The paper's Figure 10 budget sweep, expressed as fractions of the
#: *uncapped* Cost Capping monthly bill (our trace differs from 2007
#: Wikipedia, so absolute dollars are re-anchored). Serving premium
#: traffic alone costs ~75% of the full bill in this world, which pins
#: the interesting range: $0.5M was severely insufficient (premium-only
#: almost everywhere), $1.5M tight (ordinary partially admitted), $2.0M
#: nearly enough (~1% ordinary loss from imperfect hourly budgeting),
#: $2.5M abundant.
PAPER_BUDGET_LEVELS: dict[str, float] = {
    "500K": 0.55,
    "1.0M": 0.72,
    "1.5M": 0.85,
    "2.0M": 0.97,
    "2.5M": 1.15,
}


#: Default fleet size per site. The paper quotes "up to 300,000 servers"
#: per site, but with its own per-server wattages that fleet tops out
#: near 45 MW — too small to traverse the PJM-5-bus price ladder whose
#: steps sit at 100-237 MW of locational load. We scale the fleet (not
#: the Figure 1 policies) so each site peaks at 130-280 MW, squarely in
#: the "tens to hundreds of megawatts ... price maker" regime the paper
#: argues for. See DESIGN.md, Substitutions.
DEFAULT_MAX_SERVERS = 2_000_000


def paper_datacenters(
    max_servers: int = DEFAULT_MAX_SERVERS,
    target_response_s: float = 0.5,
    power_cap_mw: float = float("inf"),
) -> list[DataCenter]:
    """The three data centers with Section VI-A parameters."""
    specs = paper_server_specs()
    switches = paper_switch_powers()
    out = []
    for i, (spec, sw, coe) in enumerate(
        zip(specs, switches, PAPER_COOLING_EFFICIENCIES)
    ):
        out.append(
            DataCenter(
                name=f"DC{i + 1}",
                servers=spec,
                max_servers=max_servers,
                switch_powers=sw,
                cooling=CoolingModel(coe),
                target_response_s=target_response_s,
                power_cap_mw=power_cap_mw,
            )
        )
    return out


def paper_heterogeneous_datacenters(
    max_servers: int = DEFAULT_MAX_SERVERS,
    target_response_s: float = 0.5,
    power_cap_mw: float = float("inf"),
    legacy_fraction: float = 0.5,
) -> list:
    """Section IX variant: each site mixes two server generations.

    Models "data center repair, replacement, and expansion": each site
    keeps ``legacy_fraction`` of its fleet on its own Section VI-A spec
    and runs the remainder on the next site's spec, so every site has
    two service rates and two power profiles. Drop-in replacement for
    :func:`paper_datacenters` (duck-typed sites).
    """
    from ..datacenter import HeterogeneousDataCenter, ServerPool

    if not 0 < legacy_fraction < 1:
        raise ValueError("legacy_fraction must be in (0, 1)")
    specs = paper_server_specs()
    switches = paper_switch_powers()
    out = []
    for i, (spec, sw, coe) in enumerate(
        zip(specs, switches, PAPER_COOLING_EFFICIENCIES)
    ):
        other = specs[(i + 1) % len(specs)]
        n_legacy = max(1, int(max_servers * legacy_fraction))
        out.append(
            HeterogeneousDataCenter(
                name=f"DC{i + 1}",
                pools=(
                    ServerPool(spec, n_legacy),
                    ServerPool(other, max(1, max_servers - n_legacy)),
                ),
                switch_powers=sw,
                cooling=CoolingModel(coe),
                target_response_s=target_response_s,
                power_cap_mw=power_cap_mw,
            )
        )
    return out


def paper_pricing(policy_id: int = 1) -> list[SteppedPricingPolicy]:
    """Pricing Policies 0-3 of Section VII-B for the three locations.

    Policy 0: flat at each location's base price (price-taker world);
    Policy 1: the basic PJM-5-bus-derived locational policies;
    Policies 2/3: increments over the base doubled / tripled.
    """
    base = paper_policies()
    if policy_id == 0:
        return [flat_policy(p.name, p.prices[0]) for p in base]
    if policy_id == 1:
        return base
    if policy_id in (2, 3):
        return [scale_increments(p, float(policy_id)) for p in base]
    raise ValueError(f"unknown pricing policy {policy_id}")


@dataclass
class PaperWorld:
    """A fully assembled evaluation scenario.

    Attributes
    ----------
    sites:
        One per data center, with policy and background demand bound.
    history, workload:
        The budgeter's history month and the evaluated month.
    mix:
        The 80/20 premium/ordinary split.
    """

    sites: list[Site]
    history: Trace
    workload: Trace
    mix: CustomerMix

    @property
    def datacenters(self) -> list[DataCenter]:
        return [s.datacenter for s in self.sites]

    @property
    def hours(self) -> int:
        return self.workload.hours

    def predictor(self, history_weeks: int = 2) -> HourOfWeekPredictor:
        """The budgeter's hour-of-week predictor over the history month."""
        return HourOfWeekPredictor(self.history, history_weeks=history_weeks)

    def budgeter(
        self,
        monthly_budget: float,
        carryover: bool = True,
        claw_back_deficit: bool = False,
    ) -> Budgeter:
        """A budgeter for the evaluated month."""
        return Budgeter(
            monthly_budget,
            self.predictor(),
            month_hours=self.hours,
            start_weekday=self.workload.start_weekday,
            carryover=carryover,
            claw_back_deficit=claw_back_deficit,
        )

    def bill_capper(self) -> BillCapper:
        return BillCapper()

    def min_only(self, mode: PriceMode) -> MinOnlyDispatcher:
        """A Min-Only baseline with server-only decision slopes."""
        slopes = {
            dc.name: server_only_affine_slope(dc) for dc in self.datacenters
        }
        return MinOnlyDispatcher(price_mode=mode, server_slopes=slopes)


def paper_world(
    policy_id: int = 1,
    *,
    max_servers: int = DEFAULT_MAX_SERVERS,
    demand_fraction: float = 0.50,
    seed: int = 7,
    flash_crowds: tuple[FlashCrowd, ...] = (),
    power_cap_mw: float = float("inf"),
    heterogeneous: bool = False,
) -> PaperWorld:
    """Assemble the full Section VI scenario.

    Parameters
    ----------
    policy_id:
        Pricing Policy 0-3.
    max_servers:
        Fleet size per site.
    demand_fraction:
        Busiest-hour offered load as a fraction of the fleet's combined
        throughput capacity — the calibration knob replacing the
        paper's "x10 Wikipedia sample" scaling (see DESIGN.md).
    seed:
        Workload RNG seed.
    flash_crowds:
        Optional breaking-news spikes in the evaluated month.
    power_cap_mw:
        Per-site supplier power cap.
    heterogeneous:
        Use the Section IX mixed-generation fleets
        (:func:`paper_heterogeneous_datacenters`) instead of the
        homogeneous Section VI-A sites.
    """
    if not 0 < demand_fraction <= 1:
        raise ValueError("demand_fraction must be in (0, 1]")
    builder = (
        paper_heterogeneous_datacenters if heterogeneous else paper_datacenters
    )
    dcs = builder(max_servers=max_servers, power_cap_mw=power_cap_mw)
    policies = paper_pricing(policy_id)
    capacity = sum(dc.max_throughput_rps() for dc in dcs)
    peak = demand_fraction * capacity
    history, workload = paper_two_month_workload(
        peak, seed=seed, flash_crowds=flash_crowds
    )
    hours = max(history.hours, workload.hours)
    sites = [
        Site(
            datacenter=dc,
            policy=policy,
            background_mw=background_for_policy(policy, hours, seed=seed + 100 + i),
        )
        for i, (dc, policy) in enumerate(zip(dcs, policies))
    ]
    return PaperWorld(sites=sites, history=history, workload=workload, mix=CustomerMix())


def scaled_paper_world(
    n_sites: int,
    *,
    policy_id: int = 1,
    max_servers: int = DEFAULT_MAX_SERVERS,
    demand_fraction: float = 0.50,
    seed: int = 7,
) -> PaperWorld:
    """A fleet of ``n_sites`` Section VI-A sites for scale-out runs.

    Sites cycle the three data-center specs and locational policies
    (DC4 repeats DC1's hardware at bus B, and so on) but every site
    gets its *own* policy object and background-demand trace — each is
    an independent market the decomposition and shard machinery treats
    as its own region. Workload peak is calibrated to the enlarged
    fleet's combined capacity, exactly as :func:`paper_world` does.
    """
    import dataclasses as _dc

    if n_sites < 1:
        raise ValueError("n_sites must be >= 1")
    base_dcs = paper_datacenters(max_servers=max_servers)
    base_policies = paper_pricing(policy_id)
    dcs = [
        _dc.replace(base_dcs[i % len(base_dcs)], name=f"DC{i + 1}")
        for i in range(n_sites)
    ]
    policies = [
        SteppedPricingPolicy.from_dict(
            base_policies[i % len(base_policies)].to_dict()
        )
        for i in range(n_sites)
    ]
    capacity = sum(dc.max_throughput_rps() for dc in dcs)
    peak = demand_fraction * capacity
    history, workload = paper_two_month_workload(peak, seed=seed)
    hours = max(history.hours, workload.hours)
    sites = [
        Site(
            datacenter=dc,
            policy=policy,
            background_mw=background_for_policy(policy, hours, seed=seed + 100 + i),
        )
        for i, (dc, policy) in enumerate(zip(dcs, policies))
    ]
    return PaperWorld(sites=sites, history=history, workload=workload, mix=CustomerMix())
