"""Canonical experimental setups matching the paper's Section VI."""

from .paper_setup import (
    DEFAULT_MAX_SERVERS,
    PAPER_BUDGET_LEVELS,
    PaperWorld,
    paper_datacenters,
    paper_heterogeneous_datacenters,
    paper_pricing,
    paper_world,
    scaled_paper_world,
)

__all__ = [
    "PaperWorld",
    "paper_world",
    "scaled_paper_world",
    "paper_datacenters",
    "paper_heterogeneous_datacenters",
    "paper_pricing",
    "PAPER_BUDGET_LEVELS",
    "DEFAULT_MAX_SERVERS",
]
