"""repro — reproduction of "Electricity Bill Capping for Cloud-Scale
Data Centers that Impact the Power Markets" (ICPP 2012).

Subpackages
-----------
- :mod:`repro.solver` — self-contained LP/MILP optimization stack;
- :mod:`repro.powermarket` — grids, DC-OPF/LMP, stepped pricing;
- :mod:`repro.datacenter` — server/queueing/network/cooling models;
- :mod:`repro.workload` — traces, synthetic generation, prediction;
- :mod:`repro.core` — the bill-capping algorithms and baselines;
- :mod:`repro.sim` — month-scale simulation;
- :mod:`repro.experiments` — the paper's Section VI setup;
- :mod:`repro.telemetry` — metrics, tracing and solver instrumentation;
- :mod:`repro.resilience` — fault injection and graceful degradation.

The most common entry points are re-exported here.
"""

from .core import (
    BillCapper,
    Budgeter,
    CostMinimizer,
    MinOnlyDispatcher,
    PriceMode,
    Site,
    ThroughputMaximizer,
)
from .experiments import PaperWorld, paper_world
from .resilience import DegradationPolicy, FaultInjector, FaultSpec
from .sim import SimulationResult, Simulator
from .telemetry import Telemetry, get_telemetry, use_telemetry

__version__ = "1.2.0"

__all__ = [
    "BillCapper",
    "Budgeter",
    "CostMinimizer",
    "ThroughputMaximizer",
    "MinOnlyDispatcher",
    "PriceMode",
    "Site",
    "Simulator",
    "SimulationResult",
    "PaperWorld",
    "paper_world",
    "Telemetry",
    "get_telemetry",
    "use_telemetry",
    "FaultSpec",
    "FaultInjector",
    "DegradationPolicy",
    "__version__",
]
