"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``lmp-sweep``
    Print the PJM five-bus LMP step curves (the paper's Figure 1).
``simulate`` (alias ``run``)
    Simulate any registered strategy over the paper world and print the
    summary. ``--faults SPEC`` runs the month under deterministic fault
    injection (stale prices, sensor dropout, solver failures, budgeter
    restarts) with graceful degradation instead of crashes — for every
    strategy, not just capping. ``--checkpoint PATH`` persists the run
    state each hour for ``repro resume``.
``resume``
    Continue a checkpointed ``simulate --checkpoint`` run from its last
    settled hour, bit-identically to an uninterrupted run.
``serve``
    Run the always-on streaming control plane: replayed or synthetic
    bursty λ/price ticks drive sub-hourly re-dispatch through the
    engine pipeline, decisions append to a JSONL log, and a thin
    HTTP/JSON API (``/status``, ``/decision``, ``/routing``, ...)
    serves the live state. ``--checkpoint`` persists every settled
    hour; after SIGTERM, ``serve --resume --checkpoint PATH`` continues
    with a byte-identical decision log.
``compare``
    Run several registered strategies side by side
    (``--strategies capping,min-only-avg,...``; defaults to Cost
    Capping plus the Min-Only baselines).
``tariffs``
    List the registered tariff components. ``simulate``, ``serve``,
    ``compare`` and ``sweep`` accept ``--tariff SPEC`` to settle the run
    against a multi-component tariff (e.g. ``energy+demand:rate=6``)
    instead of the paper's energy-only bill.
``headroom``
    LMPs plus single-solve load-growth headroom per consumer bus.
``study``
    Multi-seed robustness of the capping-vs-baseline savings.
``sweep``
    Grid sweep of one strategy over seeds x budget fractions via the
    scenario-sweep engine (``--workers`` fans scenarios over a process
    pool; solver counters merge back into ``--trace``).
``telemetry``
    Summarize (``summary``) or aggregate-export (``export``) a JSONL
    telemetry trace produced with ``--trace``.

The simulation commands (``simulate``, ``compare``, ``study``) accept
``--trace PATH``: the run then records spans and solver metrics and
writes a JSONL sidecar to ``PATH`` on completion.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

import numpy as np

__all__ = ["main"]


@contextlib.contextmanager
def _tracing(args: argparse.Namespace):
    """Enable telemetry for a command when ``--trace PATH`` was given."""
    if getattr(args, "trace", None) is None:
        yield None
        return
    if not args.trace:
        raise SystemExit("error: --trace requires a non-empty path")
    from .telemetry import Telemetry, use_telemetry, write_jsonl

    tel = Telemetry()
    with use_telemetry(tel):
        yield tel
    # The run's results are already printed; a bad trace path must not
    # look like a failed simulation.
    try:
        path = write_jsonl(tel, args.trace)
    except OSError as exc:
        print(f"\ncannot write telemetry trace to {args.trace}: "
              f"{exc.strerror or exc}")
        return
    print(f"\ntelemetry trace written to {path} "
          f"({len(tel.tracer.finished)} spans, {len(tel.registry)} metrics)")


def _cmd_lmp_sweep(args: argparse.Namespace) -> int:
    from .powermarket import DcOpf, LOAD_SHARES, pjm5bus

    opf = DcOpf(pjm5bus())
    loads = np.arange(args.step, args.max_load + args.step / 2, args.step)
    sweep = opf.lmp_sweep(LOAD_SHARES, loads)
    print(f"{'system MW':>10} {'LMP B':>8} {'LMP C':>8} {'LMP D':>8}")
    for i, load in enumerate(loads):
        vals = [sweep[bus][i] for bus in ("B", "C", "D")]
        cells = " ".join(f"{v:8.2f}" if np.isfinite(v) else "     inf" for v in vals)
        print(f"{load:>10.0f} {cells}")
    return 0


def _build_world(args: argparse.Namespace):
    from .experiments import paper_world

    return paper_world(args.policy, seed=args.seed)


def _print_summary(name: str, result) -> None:
    s = result.summary()
    print(f"\n[{name}]")
    print(f"  total cost:          ${s['total_cost']:,.0f}")
    print(f"  mean hourly cost:    ${s['mean_hourly_cost']:,.0f}")
    print(f"  premium throughput:  {s['premium_throughput']:.2%}")
    print(f"  ordinary throughput: {s['ordinary_throughput']:.2%}")
    print(f"  hours over budget:   {int(s['hours_over_budget'])}")
    if s.get("degraded_hours"):
        print(f"  degraded hours:      {int(s['degraded_hours'])}")
    print(f"  peak power:          {s['peak_power_mw']:.1f} MW")


def _apply_solver_backend(args: argparse.Namespace) -> int | None:
    """Validate --solver-backend and export it to the optimizers.

    The name is published via ``REPRO_SOLVER_BACKEND`` so every
    optimizer constructed anywhere inside the run (strategies build
    their own) resolves it without threading a parameter through each
    layer. Returns an exit code on a bad name, None to proceed.
    """
    name = getattr(args, "solver_backend", None)
    if not name:
        return None
    from .solver.registry import backend_spec

    try:
        backend_spec(name)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    os.environ["REPRO_SOLVER_BACKEND"] = name
    return None


def _validate_tariff(args: argparse.Namespace) -> int | None:
    """Validate --tariff before any expensive work.

    Parses the spec once through :func:`repro.billing.make_ledger` so a
    typo'd component or parameter fails with the registry's error
    message instead of mid-run. Returns an exit code on a bad spec,
    None to proceed.
    """
    spec = getattr(args, "tariff", None)
    if spec is None:
        return None
    from .billing import make_ledger

    try:
        make_ledger(spec)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    return None


def _print_bill_components(hours) -> None:
    """Per-component bill totals for a settled run.

    Silent for energy-only runs (the component total would just repeat
    the headline cost); any other tariff gets one line per component
    plus the settled total.
    """
    totals: dict[str, float] = {}
    settled = 0.0
    for h in hours:
        for item in h.line_items:
            totals[item.component] = totals.get(item.component, 0.0) + item.amount
            settled += item.amount
    if set(totals) <= {"energy"}:
        return
    breakdown = " + ".join(
        f"{name} ${totals[name]:,.0f}" for name in sorted(totals)
    )
    print(f"  settled bill:        ${settled:,.0f} ({breakdown})")


def _cmd_tariffs(args: argparse.Namespace) -> int:
    """List the registered tariff components (mirrors ``repro solvers``)."""
    from .billing import DEFAULT_TARIFF, available_tariffs, get_tariff

    names = available_tariffs()
    width = max(len("component"), *(len(n) for n in names))
    rows = []
    for name in names:
        component = get_tariff(name)
        doc = (type(component).__doc__ or "").strip().splitlines()
        desc = doc[0].rstrip(".") if doc else ""
        if name == DEFAULT_TARIFF:
            desc += " (default)"
        rows.append((name, desc))
    print(f"{'component':<{width}}  description")
    for name, desc in rows:
        print(f"{name:<{width}}  {desc}")
    print("\ncompose specs with '+', parameters with ':key=value,...' — "
          "e.g. --tariff energy+demand:rate=6,cycle=168")
    return 0


def _cmd_solvers(args: argparse.Namespace) -> int:
    """List the registered solver backends with capability flags."""
    from .solver.registry import available_backends, backend_spec

    names = available_backends()
    width = max(len(n) for n in names)
    flag_names = ("milp", "warm_start", "sparse", "dispatch")
    rows = []
    for name in names:
        spec = backend_spec(name)
        flags = ",".join(f for f in flag_names if getattr(spec, f)) or "-"
        rows.append((name, flags, spec.description))
    fwidth = max(len(f) for _, f, _ in rows)
    print(f"{'backend':<{width}}  {'capabilities':<{fwidth}}  description")
    for name, flags, desc in rows:
        print(f"{name:<{width}}  {flags:<{fwidth}}  {desc}")
    return 0


def _endogenous_runtime(args: argparse.Namespace, engine):
    """Build the closed-loop pricing runtime when the flag is set.

    Returns ``None`` when ``--endogenous-prices`` is off, keeping the
    exogenous pipeline byte-identical (no closed-loop objects are even
    constructed).
    """
    if not getattr(args, "endogenous_prices", False):
        return None
    from .powermarket import ClosedLoopConfig, get_grid
    from .sim.endogenous import EndogenousPrices

    try:
        grid = get_grid(args.grid)
        config = ClosedLoopConfig(damping=args.damping)
        return EndogenousPrices(engine, grid=grid, config=config)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .sim import Engine, get_strategy, resolve_monthly_budget

    code = _apply_solver_backend(args) or _validate_tariff(args)
    if code is not None:
        return code

    faults = None
    degradation = None
    if args.faults:
        from .resilience import DegradationPolicy, FaultInjector, FaultSpec

        try:
            spec = FaultSpec.parse(args.faults)
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        faults = FaultInjector(spec)
        degradation = DegradationPolicy(args.degradation)
    world = _build_world(args)
    engine = Engine(world.sites, world.workload, world.mix)
    strategy = get_strategy(args.strategy)
    budgeter = None
    if args.budget_fraction is not None:
        if not strategy.wants_budget:
            print(f"note: {args.strategy} is a price taker; "
                  "--budget-fraction has no effect")
        else:
            # The anchor run is untraced on purpose: it exists only to
            # scale the budget, and would double every solver metric.
            monthly = resolve_monthly_budget(
                world, args.budget_fraction, hours=args.hours, engine=engine
            )
            print(f"monthly budget: ${monthly:,.0f} "
                  f"({args.budget_fraction:.0%} of uncapped spend)")
            budgeter = world.budgeter(monthly)
    meta = None
    if args.checkpoint:
        # Everything 'repro resume' needs to rebuild the same world.
        meta = {"policy": args.policy, "seed": args.seed}
    middleware = None
    runtime = _endogenous_runtime(args, engine)
    if runtime is not None:
        from .sim.endogenous import EndogenousPriceMiddleware

        middleware = [EndogenousPriceMiddleware(runtime)]
        print(f"endogenous prices: grid={args.grid} "
              f"damping={args.damping:g}")
    with _tracing(args):
        result = engine.run(
            strategy,
            budgeter=budgeter,
            hours=args.hours,
            faults=faults,
            degradation=degradation,
            tariff=args.tariff,
            checkpoint_path=args.checkpoint or None,
            checkpoint_meta=meta,
            middleware=middleware,
        )
    _print_summary(args.strategy, result)
    _print_bill_components(result.hours)
    if args.checkpoint:
        print(f"  checkpoint:          {args.checkpoint} "
              f"(resume with 'repro resume {args.checkpoint}')")
    if faults is not None:
        injected = {
            k: v for k, v in faults.schedule_counts(args.hours).items() if v
        }
        print(f"  injected faults:     "
              + (", ".join(f"{k}={v}" for k, v in injected.items()) or "none")
              + f" (policy={degradation.value})")
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from .experiments import paper_world
    from .sim import Engine

    try:
        payload = Engine.load_checkpoint(args.checkpoint)
    except (OSError, ValueError) as exc:
        print(f"error: {getattr(exc, 'strerror', None) or exc}")
        return 2
    meta = payload.get("meta") or {}
    world = paper_world(meta.get("policy", 1), seed=meta.get("seed", 7))
    engine = Engine(world.sites, world.workload, world.mix)
    done = payload["next_hour"]
    horizon = args.hours if args.hours is not None else payload["horizon"]
    print(f"resuming {payload['strategy']} from {args.checkpoint}: "
          f"{done}/{horizon} hours already settled")
    with _tracing(args):
        result = engine.resume(args.checkpoint, hours=args.hours)
    _print_summary(payload["strategy"], result)
    _print_bill_components(result.hours)
    return 0


def _serve_fresh(args: argparse.Namespace):
    """Build (loop, ticks, world, meta, start_tick, logged) for a new run."""
    from .experiments import paper_world
    from .resilience import DegradationPolicy
    from .service import ControlLoop, TriggerPolicy, build_ticks
    from .sim import Engine, get_strategy, resolve_monthly_budget
    from .workload import read_trace_csv

    world = paper_world(args.policy, seed=args.seed)
    engine = Engine(world.sites, world.workload, world.mix)
    lam_trace = (
        read_trace_csv(args.trace_file) if args.trace_file
        else world.workload
    )
    hours = min(args.hours, lam_trace.hours, world.hours)
    if hours < args.hours:
        print(f"note: horizon clipped to {hours} h (trace length)")
    site_names = [s.name for s in world.sites]
    source = {
        "kind": args.source,
        "ticks_per_hour": args.ticks_per_hour,
        "hours": hours,
        "seed": args.tick_seed,
        "jitter": args.jitter,
        "ca2": args.ca2,
        "price_jitter": args.price_jitter,
        "sites": site_names if args.price_jitter > 0 else [],
        "trace_file": args.trace_file or None,
    }
    ticks = build_ticks(lam_trace, source)
    strategy = get_strategy(args.strategy)
    budgeter = None
    monthly = args.monthly_budget
    if monthly is None and args.budget_fraction is not None:
        if not strategy.wants_budget:
            print(f"note: {args.strategy} is a price taker; "
                  "--budget-fraction has no effect")
        else:
            monthly = resolve_monthly_budget(
                world, args.budget_fraction, hours=hours, engine=engine
            )
            print(f"monthly budget: ${monthly:,.0f} "
                  f"({args.budget_fraction:.0%} of uncapped spend)")
    if monthly is not None and strategy.wants_budget:
        budgeter = world.budgeter(monthly)
    loop = ControlLoop(
        engine,
        strategy,
        trigger=TriggerPolicy(
            lambda_delta=args.lambda_delta,
            price_delta=args.price_delta,
            debounce_s=args.debounce,
            max_staleness_s=args.max_staleness,
        ),
        budgeter=budgeter,
        hours=hours,
        degradation=DegradationPolicy(args.degradation),
        endogenous=_endogenous_runtime(args, engine),
        tariff=args.tariff,
    )
    meta = {
        "policy": args.policy,
        "seed": args.seed,
        "decision_log": str(args.decision_log),
        "monthly_budget": monthly,
        "source": source,
    }
    return loop, ticks, world, meta, 0, 0


def _serve_resumed(args: argparse.Namespace):
    """Rebuild the service state from a ``serve --checkpoint`` file."""
    from .experiments import paper_world
    from .service import (
        build_ticks,
        load_service_checkpoint,
        restore_loop,
        truncate_jsonl,
    )
    from .sim import Engine
    from .workload import read_trace_csv

    payload = load_service_checkpoint(args.checkpoint)
    if payload["loop"]["settled_hours"] >= payload["horizon"]:
        raise ValueError(
            f"checkpoint {args.checkpoint} already covers its whole "
            f"{payload['horizon']} h horizon; nothing left to serve"
        )
    meta = payload["meta"]
    world = paper_world(meta["policy"], seed=meta["seed"])
    engine = Engine(world.sites, world.workload, world.mix)
    source = meta["source"]
    lam_trace = (
        read_trace_csv(source["trace_file"]) if source.get("trace_file")
        else world.workload
    )
    ticks = build_ticks(lam_trace, source)
    loop = restore_loop(engine, payload)
    loop.endogenous = _endogenous_runtime(args, engine)
    kept = truncate_jsonl(meta["decision_log"], payload["decisions_logged"])
    print(f"resuming {payload['strategy']} from {args.checkpoint}: "
          f"{payload['loop']['settled_hours']}/{payload['horizon']} hours "
          f"settled, {kept} decisions kept in {meta['decision_log']}")
    return loop, ticks, world, meta, payload["next_tick"], kept


def _serve_sharded(args: argparse.Namespace) -> int:
    """The ``--workers N`` / shard-checkpoint path: the multi-process
    sharded control plane (:mod:`repro.service.shard`)."""
    import asyncio

    from .service import ShardedControlPlane
    from .service.shard import build_world
    from .sim import Engine, get_strategy, resolve_monthly_budget
    from .telemetry import Telemetry, use_telemetry

    if getattr(args, "endogenous_prices", False):
        print("error: --endogenous-prices is not supported with --workers "
              "(endogenous LMPs couple regions within the hour)")
        return 2
    try:
        if args.resume:
            service = ShardedControlPlane.resume(
                args.checkpoint,
                workers=args.workers,
                host=args.host,
                port=args.port,
                http=not args.no_http,
                pace_s_per_hour=args.pace,
            )
            print(f"resuming {service.spec['strategy']} from "
                  f"{args.checkpoint}: "
                  f"{service.coordinator.settled_hours}/"
                  f"{service.coordinator.horizon} hours settled, "
                  f"{service.n_workers} workers")
        else:
            n_sites = args.sites
            if n_sites is not None and n_sites != 3:
                world_spec = {"kind": "scaled", "sites": n_sites,
                              "policy": args.policy, "seed": args.seed}
            else:
                world_spec = {"kind": "paper", "policy": args.policy,
                              "seed": args.seed}
            world = build_world(world_spec)
            engine = Engine(world.sites, world.workload, world.mix)
            hours = min(args.hours, world.hours)
            if args.trace_file:
                from .workload import read_trace_csv

                hours = min(hours, read_trace_csv(args.trace_file).hours)
            if hours < args.hours:
                print(f"note: horizon clipped to {hours} h (trace length)")
            site_names = [s.name for s in world.sites]
            strategy = get_strategy(args.strategy)
            monthly = args.monthly_budget
            if monthly is None and args.budget_fraction is not None:
                if not strategy.wants_budget:
                    print(f"note: {args.strategy} is a price taker; "
                          "--budget-fraction has no effect")
                else:
                    monthly = resolve_monthly_budget(
                        world, args.budget_fraction, hours=hours,
                        engine=engine,
                    )
                    print(f"monthly budget: ${monthly:,.0f} "
                          f"({args.budget_fraction:.0%} of uncapped spend)")
            spec = {
                "world": world_spec,
                "source": {
                    "kind": args.source,
                    "ticks_per_hour": args.ticks_per_hour,
                    "hours": hours,
                    "seed": args.tick_seed,
                    "jitter": args.jitter,
                    "ca2": args.ca2,
                    "price_jitter": args.price_jitter,
                    "sites": site_names if args.price_jitter > 0 else [],
                    "trace_file": args.trace_file or None,
                },
                "strategy": args.strategy,
                "trigger": {
                    "lambda_delta": args.lambda_delta,
                    "price_delta": args.price_delta,
                    "debounce_s": args.debounce,
                    "max_staleness_s": args.max_staleness,
                },
                "degradation": args.degradation,
                "horizon": hours,
                "monthly_budget": (
                    monthly if strategy.wants_budget else None
                ),
                "tariff": args.tariff,
            }
            service = ShardedControlPlane(
                spec,
                workers=args.workers,
                decision_log=args.decision_log,
                checkpoint_path=args.checkpoint or None,
                host=args.host,
                port=args.port,
                http=not args.no_http,
                pace_s_per_hour=args.pace,
            )
    except (OSError, ValueError) as exc:
        print(f"error: {getattr(exc, 'strerror', None) or exc}")
        return 2

    async def _run() -> dict:
        if service.http_server is not None:
            await service.http_server.start()
            print(f"serving http://{args.host}:{service.port} "
                  f"(/healthz /status /decision /decisions/stream "
                  f"/regions /hours /telemetry)",
                  flush=True)
        return await service.run_async()

    with use_telemetry(Telemetry()):
        summary = asyncio.run(_run())

    print(f"\n[serve {summary['strategy']} "
          f"x{summary['workers']} workers, {summary['regions']} regions]")
    print(f"  hours settled:       {summary['hours']}"
          f"/{service.coordinator.horizon}")
    print(f"  decisions:           {summary['decisions']}")
    print(f"  total cost:          ${summary['total_cost']:,.0f}")
    print(f"  premium throughput:  {summary['premium_throughput']:.2%}")
    print(f"  ordinary throughput: {summary['ordinary_throughput']:.2%}")
    print(f"  hours over budget:   {summary['hours_over_budget']}")
    if summary["merged_log_lines"] is not None:
        print(f"  decision log:        {service.decision_log} "
              f"({summary['merged_log_lines']} lines merged)")
    for wid, msg in summary["worker_errors"].items():
        print(f"  worker {wid} error:    {msg}")
    if summary["stopped"]:
        where = f" --checkpoint {args.checkpoint}" if args.checkpoint else ""
        print(f"  stopped by signal; resume with 'repro serve --resume{where}'")
    return 1 if summary["worker_errors"] else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .routing import ResolverPopulation, WeightedDnsDispatcher
    from .service import ControlPlaneService
    from .telemetry import RotatingJsonlWriter, Telemetry, use_telemetry

    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint")
        return 2
    code = _apply_solver_backend(args) or _validate_tariff(args)
    if code is not None:
        return code
    if args.resume and args.tariff is not None:
        print("note: --resume reads the tariff from the checkpoint; "
              "--tariff ignored")
    if args.resume:
        # The checkpoint kind decides which plane resumes it — a shard
        # checkpoint resumes sharded whether or not --workers is given.
        from .resilience import read_json

        try:
            kind = read_json(args.checkpoint).get("kind")
        except (OSError, ValueError) as exc:
            print(f"error: {getattr(exc, 'strerror', None) or exc}")
            return 2
        if kind == "shard-run":
            return _serve_sharded(args)
    elif args.workers is not None:
        return _serve_sharded(args)
    if args.workers is not None:
        print("note: this checkpoint is a single-process run; "
              "--workers ignored")
    try:
        loop, ticks, world, meta, start_tick, logged = (
            _serve_resumed(args) if args.resume else _serve_fresh(args)
        )
    except (OSError, ValueError) as exc:
        print(f"error: {getattr(exc, 'strerror', None) or exc}")
        return 2
    dns = WeightedDnsDispatcher(
        [s.name for s in world.sites],
        ResolverPopulation(ttl_s=args.dns_ttl),
        seed=meta["seed"],
    )
    writer = (
        RotatingJsonlWriter(args.telemetry) if args.telemetry else None
    )
    service = ControlPlaneService(
        loop,
        ticks,
        host=args.host,
        port=args.port,
        http=not args.no_http,
        decision_log=meta["decision_log"],
        checkpoint_path=args.checkpoint or None,
        meta=meta,
        pace_s_per_hour=args.pace,
        dns=dns,
        telemetry_writer=writer,
        start_tick=start_tick,
        decisions_logged=logged,
        sse=args.sse,
    )

    async def _run() -> dict:
        if service.http_server is not None:
            # Bind before replay starts so the port line is printed
            # (and parseable by scripts) ahead of any decision work.
            await service.http_server.start()
            stream = " /decisions/stream" if args.sse else ""
            print(f"serving http://{args.host}:{service.port} "
                  f"(/healthz /status /decision{stream} /routing /hours "
                  f"/telemetry)",
                  flush=True)
        return await service.run()

    tel = Telemetry() if args.telemetry else None
    if tel is not None:
        with use_telemetry(tel):
            summary = asyncio.run(_run())
    else:
        summary = asyncio.run(_run())

    print(f"\n[serve {summary['strategy']}]")
    print(f"  hours settled:       {summary['hours']}/{loop.horizon}")
    print(f"  decisions:           {summary['decisions']} "
          f"({summary['ticks']} ticks)")
    print(f"  total cost:          ${summary['total_cost']:,.0f}")
    print(f"  premium throughput:  {summary['premium_throughput']:.2%}")
    print(f"  ordinary throughput: {summary['ordinary_throughput']:.2%}")
    print(f"  hours over budget:   {summary['hours_over_budget']}")
    if summary["stopped"]:
        where = f" --checkpoint {args.checkpoint}" if args.checkpoint else ""
        print(f"  stopped by signal; resume with 'repro serve --resume{where}'")
    if args.telemetry and writer is not None:
        print(f"  telemetry:           {args.telemetry} "
              f"({writer.records_written} records, "
              f"{writer.rotations} rotations)")
    return 0


def _cmd_headroom(args: argparse.Namespace) -> int:
    from .powermarket import DcOpf, LOAD_BUSES, pjm5bus

    opf = DcOpf(pjm5bus())
    loads = {b: args.load / 3.0 for b in LOAD_BUSES}
    base = opf.dispatch(loads)
    if not base.feasible:
        print(f"system load {args.load} MW is infeasible")
        return 1
    print(f"PJM 5-bus at {args.load:.0f} MW system load "
          f"({args.load / 3:.0f} MW per consumer bus):")
    print(f"{'bus':>4} {'LMP $/MWh':>10} {'headroom MW':>12}")
    for bus in LOAD_BUSES:
        headroom = opf.load_growth_headroom(loads, bus)
        print(f"{bus:>4} {base.lmp_at(bus):>10.2f} {headroom:>12.2f}")
    print("\nheadroom = extra load at that bus alone before any LMP can "
          "change\n(single-solve simplex RHS ranging; conservative)")
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from .sim import savings_study

    with _tracing(args):
        study = savings_study(
            seeds=tuple(range(args.seeds)),
            hours=args.hours,
            policy_id=args.policy,
        )
    print(study)
    print(
        f"\nCost Capping beats Min-Only (Avg) on "
        f"{(study.values > 0).sum()}/{study.values.size} seeds."
    )
    return 0


def _report_comparison(ordered: "dict[str, object]") -> None:
    """Print per-strategy summaries plus savings vs the capping run."""
    reference = ordered.get("capping")
    for name, res in ordered.items():
        label = "cost-capping (uncapped)" if name == "capping" else name
        _print_summary(label, res)
        _print_bill_components(res.hours)
        if reference is not None and name != "capping":
            saving = 1 - reference.total_cost / res.total_cost
            print(f"  -> capping saves {saving:.1%} vs this baseline")


def _cmd_compare(args: argparse.Namespace) -> int:
    from .sim import STRATEGIES, available_strategies

    code = _apply_solver_backend(args) or _validate_tariff(args)
    if code is not None:
        return code
    if args.strategies is None:
        strategies = list(STRATEGIES)
    else:
        strategies = [s.strip() for s in args.strategies.split(",") if s.strip()]
        known = available_strategies()
        unknown = [s for s in strategies if s not in known]
        if not strategies:
            print("error: --strategies needs at least one name")
            return 2
        if unknown:
            print(f"error: unknown strategies {unknown}; "
                  f"expected among {known}")
            return 2
    workers = args.workers
    if workers > 1 and args.trace is not None:
        # Telemetry is recorded in-process; a fanned-out run would
        # produce an empty trace. Tracing wins.
        print("--trace requires in-process runs; ignoring --workers")
        workers = 1
    if workers > 1:
        from .sim import compare_strategies

        results = compare_strategies(
            policy_id=args.policy,
            seed=args.seed,
            hours=args.hours,
            strategies=strategies,
            workers=workers,
            tariff=args.tariff,
        )
        _report_comparison({name: results[name] for name in strategies})
        return 0

    # Serial path: one engine, every strategy resolved through the
    # registry, all sharing the world's memoized snapshots — and the
    # whole comparison inside one trace when --trace is given.
    from .sim import Engine, get_strategy

    world = _build_world(args)
    engine = Engine(world.sites, world.workload, world.mix)
    with _tracing(args):
        results = {
            name: engine.run(
                get_strategy(name), hours=args.hours, tariff=args.tariff
            )
            for name in strategies
        }
        _report_comparison(results)
    return 0


def _sweep_tariff_axis(args: argparse.Namespace) -> "list[str | None] | int":
    """The sweep's tariff axis from --tariff/--demand-rates/--cycle-hours.

    Without either axis flag the axis is the single base spec (--tariff,
    possibly None = default energy). Each demand rate x cycle length
    otherwise appends a parameterized ``demand`` component to the base
    spec; the rate token 'none' keeps an energy-only scenario in the
    grid as the comparison point. Returns an exit code on a bad value.
    """
    base = args.tariff or "energy"
    rates: list[float | None] | None = None
    if args.demand_rates is not None:
        rates = []
        for token in args.demand_rates.split(","):
            token = token.strip()
            if not token:
                continue
            if token.lower() in ("none", "energy"):
                rates.append(None)
                continue
            try:
                value = float(token)
            except ValueError:
                print(f"error: bad demand rate {token!r}")
                return 2
            if value < 0.0:
                print(f"error: demand rates must be >= 0, got {token}")
                return 2
            rates.append(value)
        if not rates:
            print("error: --demand-rates needs at least one value")
            return 2
    cycles: list[int] | None = None
    if args.cycle_hours is not None:
        cycles = []
        for token in args.cycle_hours.split(","):
            token = token.strip()
            if not token:
                continue
            try:
                value = int(token)
            except ValueError:
                print(f"error: bad billing-cycle length {token!r}")
                return 2
            if value < 1:
                print(f"error: cycle hours must be >= 1, got {token}")
                return 2
            cycles.append(value)
        if not cycles:
            print("error: --cycle-hours needs at least one value")
            return 2
    if rates is None and cycles is None:
        return [args.tariff]
    tariffs: list[str | None] = []
    for rate in rates if rates is not None else [None]:
        if rate is None and rates is not None:
            # 'none': the energy-only comparison point, once.
            if base not in tariffs:
                tariffs.append(base)
            continue
        for cycle in cycles if cycles is not None else [None]:
            params = []
            if rate is not None:
                params.append(f"rate={rate:g}")
            if cycle is not None:
                params.append(f"cycle={cycle}")
            spec = f"{base}+demand"
            if params:
                spec += ":" + ",".join(params)
            tariffs.append(spec)
    return tariffs


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sim.sweep import run_sweep, strategy_metric, sweep_grid

    code = _apply_solver_backend(args) or _validate_tariff(args)
    if code is not None:
        return code
    tariffs = _sweep_tariff_axis(args)
    if isinstance(tariffs, int):
        return tariffs
    from .billing import make_ledger

    for spec in tariffs:
        try:
            make_ledger(spec)
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
    fractions: list[float | None] = []
    for token in args.budget_fractions.split(","):
        token = token.strip()
        if not token:
            continue
        if token.lower() in ("none", "uncapped"):
            fractions.append(None)
            continue
        try:
            value = float(token)
        except ValueError:
            print(f"error: bad budget fraction {token!r}")
            return 2
        if value <= 0.0:
            print(f"error: budget fractions must be positive, got {token}")
            return 2
        fractions.append(value)
    if not fractions:
        print("error: --budget-fractions needs at least one value")
        return 2
    if args.seeds < 1:
        print("error: --seeds must be >= 1")
        return 2

    scenarios = sweep_grid(
        seed=[args.seed + i for i in range(args.seeds)],
        budget_fraction=fractions,
        tariff=tariffs,
    )
    for sc in scenarios:
        sc.update(
            strategy=args.strategy, policy_id=args.policy, hours=args.hours
        )
    with _tracing(args):
        results = run_sweep(strategy_metric, scenarios, workers=args.workers)

    multi_tariff = len(tariffs) > 1
    axes = f"{args.seeds} seeds x {len(fractions)} budgets"
    if multi_tariff:
        axes += f" x {len(tariffs)} tariffs"
    print(f"{len(scenarios)} scenarios ({axes}), "
          f"strategy={args.strategy}, {args.hours}h, "
          f"workers={args.workers}")
    twidth = max(len(t or "energy") for t in tariffs) if multi_tariff else 0
    tariff_head = f" {'tariff':<{twidth}}" if multi_tariff else ""
    peak_head = f" {'peak MW':>8}" if multi_tariff else ""
    print(f"{'seed':>6} {'budget':>8} {'total $':>14} {'premium':>8} "
          f"{'ordinary':>9} {'over':>5}" + peak_head + tariff_head)
    for sc, res in zip(scenarios, results):
        s = res.summary()
        frac = (
            "   -" if sc["budget_fraction"] is None
            else f"{sc['budget_fraction']:.2f}"
        )
        # Under multi-component tariffs the headline cost is the full
        # settled bill; energy-only settles identically to total_cost.
        total = sum(h.settled_cost for h in res.hours)
        extra = ""
        if multi_tariff:
            extra = (f" {s['peak_power_mw']:>8.1f}"
                     f" {sc['tariff'] or 'energy':<{twidth}}")
        print(f"{sc['seed']:>6} {frac:>8} {total:>14,.0f} "
              f"{s['premium_throughput']:>8.2%} "
              f"{s['ordinary_throughput']:>9.2%} "
              f"{int(s['hours_over_budget']):>5}" + extra)
    return 0


def _read_trace(path: str):
    """Read a trace file for the ``telemetry`` subcommands.

    Returns the snapshot, or ``None`` (after printing a one-line error)
    when the file is missing or is not JSONL.
    """
    import json

    from .telemetry import read_jsonl

    try:
        return read_jsonl(path)
    except OSError as exc:
        print(f"cannot read trace file {path}: {exc.strerror or exc}")
    except json.JSONDecodeError as exc:
        print(f"{path} is not a JSONL telemetry trace (line {exc.lineno}: {exc.msg})")
    return None


def _cmd_telemetry_summary(args: argparse.Namespace) -> int:
    from .telemetry import format_summary

    snap = _read_trace(args.trace_file)
    if snap is None:
        return 1
    if snap.empty:
        print("(no telemetry recorded)")
        return 1
    print(format_summary(snap))
    return 0


def _cmd_telemetry_export(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .telemetry import summarize

    snap = _read_trace(args.trace_file)
    if snap is None:
        return 1
    payload = json.dumps(summarize(snap), indent=2, sort_keys=True)
    if args.out:
        pathlib.Path(args.out).write_text(payload + "\n")
        print(f"aggregate summary written to {args.out}")
    else:
        print(payload)
    return 0


def build_parser() -> argparse.ArgumentParser:
    # Strategy choices come from the registry, so a newly registered
    # strategy is immediately addressable from every command.
    from .sim.registry import available_strategies

    strategy_names = available_strategies()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Electricity bill capping for cloud-scale data centers "
        "(ICPP 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_lmp = sub.add_parser("lmp-sweep", help="PJM 5-bus LMP step curves (Fig. 1)")
    p_lmp.add_argument("--max-load", type=float, default=900.0)
    p_lmp.add_argument("--step", type=float, default=25.0)
    p_lmp.set_defaults(func=_cmd_lmp_sweep)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--policy", type=int, default=1, choices=(0, 1, 2, 3))
    common.add_argument("--hours", type=int, default=168)
    common.add_argument("--seed", type=int, default=7)
    common.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record telemetry (spans + solver metrics) and write a "
        "JSONL trace to PATH; inspect with 'repro telemetry summary PATH'",
    )
    common.add_argument(
        "--solver-backend",
        metavar="NAME",
        default=None,
        help="registered solver backend for the dispatch optimizers "
        "(see 'repro solvers'); 'decomposition' enables the "
        "region-decomposed large-fleet path explicitly",
    )

    tariff = argparse.ArgumentParser(add_help=False)
    tariff.add_argument(
        "--tariff",
        metavar="SPEC",
        default=None,
        help="tariff the run settles against: '+'-joined registered "
        "components, each optionally parameterized — e.g. 'energy' "
        "(default, the paper's bill) or 'energy+demand:rate=6,cycle=168' "
        "(see 'repro tariffs')",
    )

    endo = argparse.ArgumentParser(add_help=False)
    endo.add_argument(
        "--endogenous-prices",
        action="store_true",
        help="close the loop: after each hour's dispatch, re-run the "
        "DC-OPF with the fleet's realized power injected, regenerate "
        "the stepped price curves from the fresh LMPs, and iterate to "
        "a damped fixed point (bills the hour at the endogenous "
        "prices; off = exogenous curves, bit-identical to before)",
    )
    endo.add_argument(
        "--grid",
        metavar="NAME",
        default="pjm5bus",
        help="registered grid for the closed-loop OPF (see "
        "repro.powermarket.available_grids; default: pjm5bus)",
    )
    endo.add_argument(
        "--damping",
        type=float,
        default=0.5,
        metavar="BETA",
        help="relaxation weight of the dispatch<->OPF fixed point in "
        "(0, 1]; 1.0 is the undamped best response, which can "
        "oscillate across congestion steps (default: 0.5)",
    )

    p_sim = sub.add_parser(
        "simulate", aliases=["run"], parents=[common, endo, tariff],
        help="run one registered strategy",
    )
    p_sim.add_argument(
        "--strategy",
        default="capping",
        choices=strategy_names,
    )
    p_sim.add_argument(
        "--budget-fraction",
        type=float,
        default=None,
        help="monthly budget as a fraction of the uncapped spend "
        "(budget-aware strategies only; omit for pure cost minimization)",
    )
    p_sim.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection, e.g. "
        "'price_stale=0.1,solver_error=0.05,budget_loss=0.02,seed=3' "
        "(channels: price_stale, sensor_dropout, solver_error, "
        "solver_timeout, budget_loss; applies to every strategy)",
    )
    p_sim.add_argument(
        "--degradation",
        default="proportional",
        choices=("hold-last", "proportional", "premium-shed"),
        help="dispatch policy for hours whose solver stack fails "
        "(used with --faults; also applies to genuine solver failures)",
    )
    p_sim.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="persist the run state to PATH (atomic write) after every "
        "settled hour; continue a killed run with 'repro resume PATH'",
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_res = sub.add_parser(
        "resume", help="continue a checkpointed simulate run"
    )
    p_res.add_argument(
        "checkpoint", help="checkpoint file from 'simulate --checkpoint'"
    )
    p_res.add_argument(
        "--hours",
        type=int,
        default=None,
        help="override the stored horizon (extend or shorten the run)",
    )
    p_res.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record telemetry for the resumed hours and write a JSONL "
        "trace to PATH",
    )
    p_res.set_defaults(func=_cmd_resume)

    # serve has its own argument set (not the `common` parent: its
    # --trace telemetry flag would collide with serve's streaming
    # telemetry, and half the shared knobs live in the checkpoint).
    p_srv = sub.add_parser(
        "serve", parents=[endo, tariff],
        help="run the streaming control plane (sub-hourly "
        "re-dispatch, HTTP API, checkpointed)"
    )
    p_srv.add_argument("--policy", type=int, default=1, choices=(0, 1, 2, 3))
    p_srv.add_argument("--seed", type=int, default=7, help="world RNG seed")
    p_srv.add_argument("--hours", type=int, default=24)
    p_srv.add_argument(
        "--strategy", default="capping",
        help="registered dispatch strategy (default: capping)",
    )
    p_srv.add_argument(
        "--budget-fraction", type=float, default=None,
        help="monthly budget as a fraction of uncapped spend "
        "(runs the anchor simulation once)",
    )
    p_srv.add_argument(
        "--monthly-budget", type=float, default=None,
        help="monthly budget in dollars (skips the anchor run)",
    )
    p_srv.add_argument(
        "--source", choices=("replay", "bursty"), default="replay",
        help="tick source: replay the hourly trace or synthesize "
        "hyperexponential bursts",
    )
    p_srv.add_argument(
        "--trace-file", default=None,
        help="CSV workload trace to replay (default: the world's month)",
    )
    p_srv.add_argument("--ticks-per-hour", type=int, default=12)
    p_srv.add_argument(
        "--tick-seed", type=int, default=0, help="tick-stream RNG seed"
    )
    p_srv.add_argument(
        "--jitter", type=float, default=0.02,
        help="relative lambda noise for --source replay",
    )
    p_srv.add_argument(
        "--ca2", type=float, default=4.0,
        help="burst CA2 for --source bursty (must be > 1)",
    )
    p_srv.add_argument(
        "--price-jitter", type=float, default=0.0,
        help="per-site price-feed random-walk step (0 disables price ticks)",
    )
    p_srv.add_argument(
        "--lambda-delta", type=float, default=0.05,
        help="relative lambda change that triggers re-dispatch",
    )
    p_srv.add_argument(
        "--price-delta", type=float, default=0.05,
        help="relative price-scale change that triggers re-dispatch",
    )
    p_srv.add_argument(
        "--debounce", type=float, default=120.0,
        help="minimum seconds between delta-triggered dispatches",
    )
    p_srv.add_argument(
        "--max-staleness", type=float, default=900.0,
        help="refresh any dispatch older than this many seconds",
    )
    p_srv.add_argument(
        "--degradation", default="proportional",
        choices=("proportional", "hold-last", "premium-shed"),
        help="solver-failure fallback policy",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=0,
        help="HTTP port (0 = ephemeral; the bound port is printed)",
    )
    p_srv.add_argument(
        "--no-http", action="store_true", help="disable the HTTP API"
    )
    p_srv.add_argument(
        "--decision-log", default="service_decisions.jsonl",
        help="JSONL file appended with one line per dispatch decision",
    )
    p_srv.add_argument(
        "--checkpoint", default=None,
        help="checkpoint file written at every settled hour",
    )
    p_srv.add_argument(
        "--resume", action="store_true",
        help="continue from --checkpoint (world/source/trigger settings "
        "are read from the checkpoint, not the command line)",
    )
    p_srv.add_argument(
        "--pace", type=float, default=0.0,
        help="wall seconds per simulated hour (0 = replay at full speed)",
    )
    p_srv.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard the control plane across N worker processes (one "
        "market region per control loop, hourly budget barrier); "
        "omit for the single-process service",
    )
    p_srv.add_argument(
        "--sse", action="store_true",
        help="serve the /decisions/stream server-sent-events endpoint "
        "and the /decision?since= long-poll (always on with --workers)",
    )
    p_srv.add_argument(
        "--sites", type=int, default=None, metavar="M",
        help="with --workers: number of sites (default 3 = the paper "
        "world; more cycles the Section VI-A specs into extra regions)",
    )
    p_srv.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="stream spans/metrics to a size-rotated JSONL file",
    )
    p_srv.add_argument(
        "--dns-ttl", type=float, default=300.0,
        help="resolver TTL for the realized-routing model",
    )
    p_srv.add_argument(
        "--solver-backend",
        metavar="NAME",
        default=None,
        help="registered solver backend for the dispatch optimizers "
        "(see 'repro solvers')",
    )
    p_srv.set_defaults(func=_cmd_serve)

    p_sol = sub.add_parser(
        "solvers", help="list the registered solver backends"
    )
    p_sol.set_defaults(func=_cmd_solvers)

    p_trf = sub.add_parser(
        "tariffs", help="list the registered tariff components"
    )
    p_trf.set_defaults(func=_cmd_tariffs)

    p_cmp = sub.add_parser(
        "compare", parents=[common, tariff], help="capping vs all baselines"
    )
    p_cmp.add_argument(
        "--strategies",
        metavar="NAMES",
        default=None,
        help="comma-separated registered strategies to compare "
        f"(default: {','.join(('capping', 'min-only-avg', 'min-only-low', 'min-only-current'))}; "
        f"registered: {', '.join(strategy_names)})",
    )
    p_cmp.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run the strategies in a process pool of this size "
        "(they are independent given the world; incompatible with --trace)",
    )
    p_cmp.set_defaults(func=_cmd_compare)

    p_sweep = sub.add_parser(
        "sweep",
        parents=[common, tariff],
        help="grid sweep of one strategy over seeds x budget fractions "
        "(x demand-charge tariffs)",
    )
    p_sweep.add_argument(
        "--strategy",
        default="capping",
        choices=strategy_names,
    )
    p_sweep.add_argument(
        "--seeds",
        type=int,
        default=3,
        help="number of consecutive seeds starting at --seed",
    )
    p_sweep.add_argument(
        "--budget-fractions",
        default="none,0.95,0.85",
        help="comma-separated monthly budgets as fractions of the "
        "uncapped spend; 'none' runs uncapped (capping only)",
    )
    p_sweep.add_argument(
        "--demand-rates",
        metavar="RATES",
        default=None,
        help="comma-separated demand-charge rates ($/kW of billing-cycle "
        "peak) appended to the base --tariff as a tariff axis; 'none' "
        "keeps an energy-only scenario as the comparison point",
    )
    p_sweep.add_argument(
        "--cycle-hours",
        metavar="HOURS",
        default=None,
        help="comma-separated billing-cycle lengths (hours) for the "
        "demand-charge axis (default: the component's 720 h month)",
    )
    p_sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="evaluate scenarios in a process pool of this size; "
        "telemetry counters are merged back into --trace either way",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_head = sub.add_parser(
        "headroom", help="LMPs + load-growth headroom on the 5-bus system"
    )
    p_head.add_argument("--load", type=float, default=450.0,
                        help="system load in MW")
    p_head.set_defaults(func=_cmd_headroom)

    p_study = sub.add_parser(
        "study", parents=[common], help="multi-seed robustness of the savings"
    )
    p_study.add_argument("--seeds", type=int, default=3)
    p_study.set_defaults(func=_cmd_study)

    p_tel = sub.add_parser(
        "telemetry", help="inspect JSONL telemetry traces"
    )
    tel_sub = p_tel.add_subparsers(dest="telemetry_command", required=True)
    p_tel_sum = tel_sub.add_parser(
        "summary", help="aggregate a trace into human-readable tables"
    )
    p_tel_sum.add_argument("trace_file", help="JSONL trace (from --trace)")
    p_tel_sum.set_defaults(func=_cmd_telemetry_summary)
    p_tel_exp = tel_sub.add_parser(
        "export", help="aggregate a trace into machine-readable JSON"
    )
    p_tel_exp.add_argument("trace_file", help="JSONL trace (from --trace)")
    p_tel_exp.add_argument(
        "--out", default=None, help="write JSON here instead of stdout"
    )
    p_tel_exp.set_defaults(func=_cmd_telemetry_export)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like a
        # well-behaved unix filter. devnull keeps the interpreter from
        # complaining again while flushing stdout at shutdown.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
