"""Exception types raised by the :mod:`repro.solver` optimization layer.

The solver layer distinguishes *modeling* errors (the user built an
ill-formed model: mixing variables of different models, non-linear
operations, malformed bounds) from *solve* errors (the model is fine but
the optimization could not produce an optimal point: infeasible,
unbounded, or resource limits).
"""

from __future__ import annotations

__all__ = [
    "SolverError",
    "ModelingError",
    "InfeasibleError",
    "UnboundedError",
    "SolverLimitError",
]


class SolverError(Exception):
    """Base class for all errors raised by :mod:`repro.solver`."""


class ModelingError(SolverError):
    """An optimization model was constructed incorrectly.

    Examples: adding a constraint that references variables of another
    model, using a strict inequality, multiplying two variables, or
    specifying ``lb > ub``.
    """


class InfeasibleError(SolverError):
    """The model has no feasible point.

    Raised by :meth:`repro.solver.model.Model.solve` when
    ``raise_on_failure=True``; otherwise the returned
    :class:`~repro.solver.result.SolveResult` carries
    :attr:`~repro.solver.result.SolveStatus.INFEASIBLE`.
    """


class UnboundedError(SolverError):
    """The objective can be improved without bound."""


class SolverLimitError(SolverError):
    """An iteration or node limit was reached before proving optimality."""
