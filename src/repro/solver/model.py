"""A small algebraic modeling layer for linear and mixed-integer programs.

This module plays the role that ``lp_solve`` (used by the paper) or PuLP
would play: it lets the optimization code in :mod:`repro.core` state
problems in terms of named variables and linear expressions, then hands
a compiled standard form to any of the interchangeable backends in
:mod:`repro.solver.scipy_backend` or
:mod:`repro.solver.branch_bound`.

Example
-------
>>> from repro.solver import Model
>>> m = Model("toy")
>>> x = m.var("x", lb=0.0, ub=4.0)
>>> y = m.binary("y")
>>> m.add(x + 3.0 * y <= 5.0)
>>> m.minimize(-x - 2.0 * y)
>>> res = m.solve()
>>> round(res.objective, 6)
-6.0

Only *linear* expressions are supported; multiplying two variables
raises :class:`~repro.solver.errors.ModelingError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from .errors import (
    InfeasibleError,
    ModelingError,
    SolverLimitError,
    UnboundedError,
)
from .result import SolveResult, SolveStatus

__all__ = [
    "VarType",
    "Sense",
    "Variable",
    "LinExpr",
    "Constraint",
    "StandardForm",
    "Model",
]

#: Tolerance used when validating bounds.
_BOUND_EPS = 1e-12


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Sense(enum.Enum):
    """Optimization direction."""

    MIN = "min"
    MAX = "max"


class LinExpr:
    """An affine expression ``sum(coeffs[i] * x_i) + constant``.

    Instances are immutable from the caller's perspective; arithmetic
    operators return new expressions. Coefficients are stored sparsely
    in a dict keyed by variable index.
    """

    __slots__ = ("coeffs", "constant", "model")

    def __init__(
        self,
        model: "Model | None" = None,
        coeffs: Mapping[int, float] | None = None,
        constant: float = 0.0,
    ) -> None:
        self.model = model
        self.coeffs: dict[int, float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _coerce(other: "LinExpr | Variable | float | int") -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return other.to_expr()
        if isinstance(other, (int, float, np.integer, np.floating)):
            return LinExpr(None, None, float(other))
        raise ModelingError(
            f"cannot combine a linear expression with {type(other)!r}"
        )

    def _merged_model(self, other: "LinExpr") -> "Model | None":
        if self.model is not None and other.model is not None:
            if self.model is not other.model:
                raise ModelingError(
                    "cannot mix variables from different models in one "
                    "expression"
                )
        return self.model or other.model

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other):
        other = self._coerce(other)
        model = self._merged_model(other)
        coeffs = dict(self.coeffs)
        for idx, coef in other.coeffs.items():
            coeffs[idx] = coeffs.get(idx, 0.0) + coef
        return LinExpr(model, coeffs, self.constant + other.constant)

    __radd__ = __add__

    def __sub__(self, other):
        return self + (-1.0) * self._coerce(other)

    def __rsub__(self, other):
        return self._coerce(other) + (-1.0) * self

    def __mul__(self, scalar):
        if isinstance(scalar, (LinExpr, Variable)):
            raise ModelingError("products of variables are not linear")
        s = float(scalar)
        return LinExpr(
            self.model,
            {idx: s * coef for idx, coef in self.coeffs.items()},
            s * self.constant,
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        return self * (1.0 / float(scalar))

    def __neg__(self):
        return self * -1.0

    # -- comparisons build constraints ----------------------------------------

    def __le__(self, other):
        return Constraint.build(self, self._coerce(other), "<=")

    def __ge__(self, other):
        return Constraint.build(self, self._coerce(other), ">=")

    def __eq__(self, other):  # type: ignore[override]
        return Constraint.build(self, self._coerce(other), "==")

    __hash__ = None  # type: ignore[assignment]

    # -- utilities -------------------------------------------------------------

    def evaluate(self, x: Sequence[float] | np.ndarray) -> float:
        """Evaluate the expression at the point ``x`` (full variable vector)."""
        total = self.constant
        for idx, coef in self.coeffs.items():
            total += coef * x[idx]
        return float(total)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{coef:+g}*x{idx}" for idx, coef in sorted(self.coeffs.items())]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


def quicksum(terms: Iterable["LinExpr | Variable | float"]) -> LinExpr:
    """Sum an iterable of expressions/variables/constants efficiently.

    Unlike the builtin :func:`sum`, this builds a single accumulator
    dict instead of one intermediate :class:`LinExpr` per term, which
    matters when summing thousands of terms.
    """
    model: Model | None = None
    coeffs: dict[int, float] = {}
    constant = 0.0
    for term in terms:
        expr = LinExpr._coerce(term)
        if expr.model is not None:
            if model is not None and expr.model is not model:
                raise ModelingError(
                    "cannot mix variables from different models in quicksum"
                )
            model = expr.model
        for idx, coef in expr.coeffs.items():
            coeffs[idx] = coeffs.get(idx, 0.0) + coef
        constant += expr.constant
    return LinExpr(model, coeffs, constant)


class Variable:
    """A decision variable belonging to a :class:`Model`.

    Supports the same arithmetic as :class:`LinExpr`. Variables compare
    with ``<=``, ``>=``, ``==`` to build constraints.
    """

    __slots__ = ("model", "index", "name", "vtype", "lb", "ub")

    def __init__(
        self,
        model: "Model",
        index: int,
        name: str,
        vtype: VarType,
        lb: float,
        ub: float,
    ) -> None:
        self.model = model
        self.index = index
        self.name = name
        self.vtype = vtype
        self.lb = lb
        self.ub = ub

    def to_expr(self) -> LinExpr:
        """Return this variable as a single-term linear expression."""
        return LinExpr(self.model, {self.index: 1.0}, 0.0)

    # Delegate arithmetic to LinExpr.
    def __add__(self, other):
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return LinExpr._coerce(other) - self.to_expr()

    def __mul__(self, scalar):
        return self.to_expr() * scalar

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        return self.to_expr() / scalar

    def __neg__(self):
        return self.to_expr() * -1.0

    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self.to_expr() == other

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r}, {self.vtype.value}, [{self.lb}, {self.ub}])"


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|==) rhs`` in canonical form.

    Canonicalization performed by :meth:`build`:

    * ``a >= b`` is stored as ``-a <= -b``;
    * the constant of the left expression is folded into the rhs;
    * the stored ``expr`` therefore has ``constant == 0``.
    """

    expr: LinExpr
    rhs: float
    kind: str  # "<=" or "=="
    name: str = ""

    @staticmethod
    def build(lhs: LinExpr, rhs: LinExpr, op: str) -> "Constraint":
        model = lhs._merged_model(rhs)
        diff = lhs - rhs  # diff.coeffs * x + diff.constant (op) 0
        bound = -diff.constant
        body = LinExpr(model, diff.coeffs, 0.0)
        if op == "<=":
            return Constraint(body, bound, "<=")
        if op == ">=":
            return Constraint(body * -1.0, -bound, "<=")
        if op == "==":
            return Constraint(body, bound, "==")
        raise ModelingError(f"unsupported constraint operator {op!r}")

    def violation(self, x: Sequence[float] | np.ndarray) -> float:
        """Amount by which ``x`` violates the constraint (0 if satisfied)."""
        lhs = self.expr.evaluate(x)
        if self.kind == "<=":
            return max(0.0, lhs - self.rhs)
        return abs(lhs - self.rhs)


@dataclass
class StandardForm:
    """Compiled arrays for ``min c @ x`` subject to linear constraints.

    ``A_ub x <= b_ub``, ``A_eq x = b_eq``, ``lb <= x <= ub``;
    ``integrality[i]`` is truthy when ``x_i`` must be integral. The
    objective ``c`` is always a *minimization*; :class:`Model` negates
    coefficients for maximization models and the backends never need to
    know the user's sense.
    """

    c: np.ndarray
    A_ub: np.ndarray
    b_ub: np.ndarray
    A_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    obj_constant: float = 0.0

    @property
    def n_vars(self) -> int:
        return self.c.shape[0]

    @property
    def has_integers(self) -> bool:
        return bool(np.any(self.integrality))


class Model:
    """A linear / mixed-integer optimization model.

    Variables are created with :meth:`var`, :meth:`integer` and
    :meth:`binary`; constraints with :meth:`add`; the objective with
    :meth:`minimize` / :meth:`maximize`; then :meth:`solve` dispatches
    to a backend.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._vars: list[Variable] = []
        self._constrs: list[Constraint] = []
        self._objective: LinExpr = LinExpr(self)
        self._sense: Sense = Sense.MIN

    # -- variable creation ------------------------------------------------

    def var(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: float = float("inf"),
        vtype: VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create a decision variable and return it.

        Parameters
        ----------
        name:
            Optional label used in error messages and debugging output.
        lb, ub:
            Bounds; ``lb=-inf``/``ub=inf`` are allowed. ``lb > ub``
            raises :class:`~repro.solver.errors.ModelingError`.
        vtype:
            Variable domain.
        """
        lb = float(lb)
        ub = float(ub)
        if lb > ub + _BOUND_EPS:
            raise ModelingError(f"variable {name!r}: lb={lb} > ub={ub}")
        if vtype is VarType.BINARY:
            lb = max(lb, 0.0)
            ub = min(ub, 1.0)
        v = Variable(self, len(self._vars), name or f"x{len(self._vars)}", vtype, lb, ub)
        self._vars.append(v)
        return v

    def integer(self, name: str = "", lb: float = 0.0, ub: float = float("inf")) -> Variable:
        """Create an integer variable."""
        return self.var(name, lb, ub, VarType.INTEGER)

    def binary(self, name: str = "") -> Variable:
        """Create a 0/1 variable."""
        return self.var(name, 0.0, 1.0, VarType.BINARY)

    def vars_array(
        self, count: int, prefix: str, lb: float = 0.0, ub: float = float("inf"),
        vtype: VarType = VarType.CONTINUOUS,
    ) -> list[Variable]:
        """Create ``count`` homogeneous variables named ``prefix[i]``."""
        return [self.var(f"{prefix}[{i}]", lb, ub, vtype) for i in range(count)]

    # -- constraints and objective ------------------------------------------

    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with ``<=``, ``>=`` or ``==``."""
        if not isinstance(constraint, Constraint):
            raise ModelingError(
                "Model.add expects a Constraint; did you compare with "
                "'<' or '>' instead of '<=' / '>='?"
            )
        if constraint.expr.model is not None and constraint.expr.model is not self:
            raise ModelingError("constraint references variables of another model")
        constraint.name = name or f"c{len(self._constrs)}"
        self._constrs.append(constraint)
        return constraint

    def minimize(self, expr: "LinExpr | Variable | float") -> None:
        """Set a minimization objective."""
        self._set_objective(expr, Sense.MIN)

    def maximize(self, expr: "LinExpr | Variable | float") -> None:
        """Set a maximization objective."""
        self._set_objective(expr, Sense.MAX)

    def _set_objective(self, expr, sense: Sense) -> None:
        expr = LinExpr._coerce(expr)
        if expr.model is not None and expr.model is not self:
            raise ModelingError("objective references variables of another model")
        self._objective = expr
        self._sense = sense

    # -- introspection ---------------------------------------------------------

    @property
    def variables(self) -> Sequence[Variable]:
        return tuple(self._vars)

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constrs)

    @property
    def sense(self) -> Sense:
        return self._sense

    @property
    def num_vars(self) -> int:
        return len(self._vars)

    @property
    def num_constraints(self) -> int:
        return len(self._constrs)

    @property
    def num_integer_vars(self) -> int:
        return sum(v.vtype is not VarType.CONTINUOUS for v in self._vars)

    # -- compilation -----------------------------------------------------------

    def to_standard_form(self) -> StandardForm:
        """Compile the model to dense arrays for the backends.

        The compiled objective is always a minimization; for a
        maximization model the coefficient vector is negated here and
        the optimal value is negated back in :meth:`solve`.
        """
        n = len(self._vars)
        c = np.zeros(n)
        for idx, coef in self._objective.coeffs.items():
            c[idx] = coef
        obj_constant = self._objective.constant
        if self._sense is Sense.MAX:
            c = -c
            obj_constant = -obj_constant

        ub_rows = [k for k in self._constrs if k.kind == "<="]
        eq_rows = [k for k in self._constrs if k.kind == "=="]

        def stack(rows: list[Constraint]) -> tuple[np.ndarray, np.ndarray]:
            A = np.zeros((len(rows), n))
            b = np.zeros(len(rows))
            for i, row in enumerate(rows):
                for idx, coef in row.expr.coeffs.items():
                    A[i, idx] = coef
                b[i] = row.rhs
            return A, b

        A_ub, b_ub = stack(ub_rows)
        A_eq, b_eq = stack(eq_rows)
        lb = np.array([v.lb for v in self._vars])
        ub = np.array([v.ub for v in self._vars])
        integrality = np.array(
            [v.vtype is not VarType.CONTINUOUS for v in self._vars], dtype=bool
        )
        return StandardForm(c, A_ub, b_ub, A_eq, b_eq, lb, ub, integrality, obj_constant)

    # -- solving ---------------------------------------------------------------

    def solve(
        self,
        backend: "str | object | None" = None,
        raise_on_failure: bool = False,
        **kwargs,
    ) -> SolveResult:
        """Solve the model and return a :class:`SolveResult`.

        Parameters
        ----------
        backend:
            ``None`` (auto: HiGHS), any registered backend name from
            :func:`repro.solver.registry.available_backends` (e.g.
            ``"scipy"``, ``"simplex"``, ``"revised-simplex"``), or any
            object with a ``solve(StandardForm) -> SolveResult`` method.
        raise_on_failure:
            When true, raise :class:`InfeasibleError` /
            :class:`UnboundedError` / :class:`SolverLimitError` instead
            of returning a failed result.
        kwargs:
            Forwarded to the backend constructor when ``backend`` is a
            string or None.
        """
        resolved = self._resolve_backend(backend, **kwargs)
        sf = self.to_standard_form()
        result = resolved.solve(sf)
        if result.ok:
            value = result.objective + sf.obj_constant
            if self._sense is Sense.MAX:
                value = -value
            result.objective = value
        elif raise_on_failure:
            if result.status is SolveStatus.INFEASIBLE:
                raise InfeasibleError(f"model {self.name!r} is infeasible")
            if result.status is SolveStatus.UNBOUNDED:
                raise UnboundedError(f"model {self.name!r} is unbounded")
            raise SolverLimitError(
                f"model {self.name!r}: {result.status.value} ({result.message})"
            )
        return result

    @staticmethod
    def _resolve_backend(backend, **kwargs):
        if backend is None:
            from .scipy_backend import ScipyBackend

            return ScipyBackend(**kwargs)
        if isinstance(backend, str):
            from . import registry

            try:
                spec = registry.backend_spec(backend)
            except ValueError as exc:
                raise ModelingError(str(exc)) from None
            if spec.dispatch:
                raise ModelingError(
                    f"backend {backend!r} operates on dispatch problems, "
                    "not compiled standard forms; pass it to the "
                    "repro.core optimizers instead"
                )
            return spec.make(**kwargs)
        if hasattr(backend, "solve"):
            return backend
        raise ModelingError(f"unknown backend {backend!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Model({self.name!r}, vars={self.num_vars}, "
            f"constraints={self.num_constraints}, "
            f"integers={self.num_integer_vars}, sense={self._sense.value})"
        )
