"""Best-first branch-and-bound MILP solver over a pluggable LP engine.

This is the reproduction's stand-in for the ``lp_solve`` MILP solver the
paper runs on-line every invocation period (Section IV-C: "lp_solver
uses a branch-and-bound algorithm to solve MILP problems"). It works on
the compiled :class:`~repro.solver.model.StandardForm`, relaxing
integrality, and branches on fractional integer variables by splitting
their bounds.

Design
------
* **Best-first search**: nodes are popped from a priority queue ordered
  by their parent LP bound, so the global lower bound is always known
  and a relative-gap termination criterion is available.
* **Most-fractional branching** (default): among fractional integer
  variables, branch on the one whose fractional part is closest to 0.5.
* **Depth-first tie-break** keeps the queue shallow on problems — like
  the paper's pricing MILPs — where an incumbent is found quickly.
* Any LP engine with ``solve(StandardForm) -> SolveResult`` can be
  plugged in; the default is HiGHS via
  :class:`~repro.solver.scipy_backend.ScipyLpBackend`, and the pure
  NumPy :class:`~repro.solver.simplex.SimplexSolver` is supported for a
  fully self-contained stack.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..telemetry import get_telemetry
from ..telemetry.instrument import record_solver_result
from .model import StandardForm
from .result import SolveResult, SolveStatus

__all__ = ["BranchBoundSolver"]


class _BBStats:
    """Per-solve accounting threaded through the search loop."""

    __slots__ = ("enabled", "incumbents", "lp_time_s", "seeded", "warm_nodes")

    def __init__(self, enabled: bool):
        self.enabled = enabled
        self.incumbents = 0
        self.lp_time_s = 0.0
        self.seeded = 0
        self.warm_nodes = 0


#: Shared stats sink for uninstrumented solves (attribute writes only).
_NO_STATS = _BBStats(enabled=False)


@dataclass(order=True)
class _Node:
    """Heap entry; ordered by (bound, depth, tie) only.

    ``tie`` is always distinct, so the array payloads below never take
    part in comparisons (``compare=False`` keeps them out of the
    generated ordering methods).
    """

    bound: float  # LP bound of the parent (priority key)
    depth: int
    tie: int
    lb: np.ndarray = field(default=None, compare=False)  # type: ignore[assignment]
    ub: np.ndarray = field(default=None, compare=False)  # type: ignore[assignment]
    #: Parent's optimal basis (a simplex WarmBasis token), when available.
    warm: object = field(default=None, compare=False, repr=False)


class BranchBoundSolver:
    """MILP solver: LP relaxation + best-first branch and bound.

    Parameters
    ----------
    lp_solver:
        LP engine used for node relaxations (default HiGHS ``linprog``).
    int_tol:
        A value within ``int_tol`` of an integer counts as integral.
    rel_gap:
        Terminate when ``(incumbent - bound) / max(1, |incumbent|)``
        drops below this.
    max_nodes:
        Hard node limit; exceeding it returns the incumbent (if any)
        with :attr:`SolveStatus.NODE_LIMIT`, or a failed result.
    warm_start:
        When the LP engine supports basis reuse (``solve_warm``, as
        :class:`~repro.solver.simplex.SimplexSolver` does), re-solve
        each node LP from its parent's optimal basis with dual simplex
        pivots instead of a cold two-phase solve, and remember the root
        basis across ``solve`` calls so consecutive hourly dispatches
        warm-start each other. Results are engine-identical; this only
        changes how the node LPs are solved.
    """

    name = "branch-bound"

    def __init__(
        self,
        lp_solver=None,
        int_tol: float = 1e-6,
        rel_gap: float = 1e-9,
        max_nodes: int = 100_000,
        cover_cuts: bool = False,
        cut_rounds: int = 3,
        warm_start: bool = True,
    ):
        if lp_solver is None:
            from .scipy_backend import ScipyLpBackend

            lp_solver = ScipyLpBackend()
        self.lp = lp_solver
        self.int_tol = int_tol
        self.rel_gap = rel_gap
        self.max_nodes = max_nodes
        self.cover_cuts = cover_cuts
        self.cut_rounds = cut_rounds
        self.warm_start = warm_start
        self._root_warm = None  # last root basis, reused across solves

    # -- public API --------------------------------------------------------------

    def solve(self, sf: StandardForm, warm_x: np.ndarray | None = None) -> SolveResult:
        """Solve ``sf``; ``warm_x`` optionally seeds the incumbent.

        ``warm_x`` is a full solution vector from a structurally
        identical previous solve (e.g. last hour's dispatch). Its
        integer pattern is fixed and completed with one LP; when
        feasible, the completion becomes the starting incumbent, which
        tightens pruning from the first node. Optimality is unaffected.
        """
        if not sf.has_integers:
            res = self.lp.solve(sf)
            res.backend = f"{self.name}({self.lp.name})"
            return res
        tel = get_telemetry()
        if not tel.enabled:
            return self._solve_milp(sf, _NO_STATS, warm_x)
        stats = _BBStats(enabled=True)
        t0 = time.perf_counter()
        res = self._solve_milp(sf, stats, warm_x)
        record_solver_result(
            tel, "branch-bound", res.status.value, res.iterations,
            time.perf_counter() - t0,
        )
        tel.histogram("solver.branch-bound.nodes").observe(res.iterations)
        tel.histogram("solver.branch-bound.lp_time_s").observe(stats.lp_time_s)
        tel.counter("solver.branch-bound.incumbent_updates").inc(stats.incumbents)
        tel.counter("solver.branch-bound.seeded_incumbents").inc(stats.seeded)
        tel.counter("solver.branch-bound.warm_nodes").inc(stats.warm_nodes)
        if res.ok:
            tel.histogram("solver.branch-bound.gap").observe(res.gap)
        return res

    def _solve_milp(
        self, sf: StandardForm, stats: _BBStats, warm_x: np.ndarray | None = None
    ) -> SolveResult:
        if self.cover_cuts:
            sf = self._tighten_root(sf)

        int_idx = np.flatnonzero(sf.integrality)
        use_warm = self.warm_start and hasattr(self.lp, "solve_warm")
        tie = itertools.count()
        root = _Node(bound=-math.inf, depth=0, tie=next(tie))
        root.lb = sf.lb.copy()
        root.ub = sf.ub.copy()
        if use_warm:
            # Consecutive solves of the same network shape (the hourly
            # dispatch loop) warm-start each other's root; solve_warm
            # validates compatibility and falls back to cold otherwise.
            root.warm = self._root_warm
        heap: list[_Node] = [root]

        incumbent_x: np.ndarray | None = None
        incumbent_obj = math.inf
        best_bound = -math.inf
        nodes = 0
        limit_dropped = 0  # subtrees dropped on a non-INFEASIBLE LP failure

        if warm_x is not None and int_idx.size and warm_x.shape == sf.lb.shape:
            seeded = self._seed_incumbent(sf, warm_x, int_idx)
            if seeded is not None:
                incumbent_obj, incumbent_x = seeded
                stats.incumbents += 1
                stats.seeded += 1

        while heap:
            node = heapq.heappop(heap)
            if node.warm is not None:
                # Release this node's claim on the parent tableau; the
                # last user may consume it in place instead of copying.
                node.warm.refs -= 1
            if node.bound >= incumbent_obj - self._abs_gap(incumbent_obj):
                continue  # pruned by bound
            if nodes >= self.max_nodes:
                if incumbent_x is not None:
                    return self._finish(
                        SolveStatus.NODE_LIMIT, incumbent_obj, incumbent_x, nodes, node.bound
                    )
                return SolveResult(
                    status=SolveStatus.NODE_LIMIT, iterations=nodes, backend=self.name
                )
            nodes += 1

            relaxed = replace(sf, lb=node.lb, ub=node.ub)
            t_lp = time.perf_counter() if stats.enabled else 0.0
            if use_warm:
                res, warm_out = self.lp.solve_warm(relaxed, warm=node.warm)
                if node.warm is not None:
                    stats.warm_nodes += 1
            else:
                res = self.lp.solve(relaxed)
                warm_out = None
            if stats.enabled:
                stats.lp_time_s += time.perf_counter() - t_lp
            if use_warm and node.depth == 0:
                self._root_warm = warm_out
                if warm_out is not None:
                    # The root basis is reused by the next solve; never
                    # let a child consume its tableau in place.
                    warm_out.pin = True
            if res.status is SolveStatus.UNBOUNDED and node.depth == 0:
                return SolveResult(
                    status=SolveStatus.UNBOUNDED, iterations=nodes, backend=self.name
                )
            if not res.ok:
                if res.status is not SolveStatus.INFEASIBLE:
                    limit_dropped += 1
                continue  # infeasible (or unsolvable) subtree
            if res.objective >= incumbent_obj - self._abs_gap(incumbent_obj):
                continue  # bound-pruned after solving

            frac_var = self._most_fractional(res.x, int_idx)
            if frac_var is None:
                # Integral solution: new incumbent.
                if res.objective < incumbent_obj:
                    incumbent_obj = res.objective
                    incumbent_x = self._round_integers(res.x, int_idx)
                    stats.incumbents += 1
                continue

            # Branch: x_j <= floor(v)  /  x_j >= ceil(v).
            v = res.x[frac_var]
            down = _Node(bound=res.objective, depth=node.depth + 1, tie=next(tie))
            down.lb = node.lb
            down.ub = node.ub.copy()
            down.ub[frac_var] = math.floor(v)
            down.warm = warm_out
            up = _Node(bound=res.objective, depth=node.depth + 1, tie=next(tie))
            up.lb = node.lb.copy()
            up.lb[frac_var] = math.ceil(v)
            up.ub = node.ub
            up.warm = warm_out
            if warm_out is not None:
                warm_out.refs += 2
            heapq.heappush(heap, down)
            heapq.heappush(heap, up)

        if incumbent_x is None:
            if limit_dropped:
                # Some subtrees were dropped on iteration/node limits or
                # solver errors, not proven infeasible — the search hit a
                # limit, so infeasibility cannot be claimed.
                return SolveResult(
                    status=SolveStatus.NODE_LIMIT,
                    iterations=nodes,
                    backend=self.name,
                    message=(
                        f"{limit_dropped} node LP(s) failed with solver limits; "
                        "no incumbent found"
                    ),
                )
            return SolveResult(
                status=SolveStatus.INFEASIBLE, iterations=nodes, backend=self.name
            )
        best_bound = incumbent_obj  # queue exhausted: proven optimal
        return self._finish(SolveStatus.OPTIMAL, incumbent_obj, incumbent_x, nodes, best_bound)

    # -- helpers ------------------------------------------------------------------

    def _seed_incumbent(self, sf: StandardForm, warm_x: np.ndarray, int_idx: np.ndarray):
        """Fix ``warm_x``'s integer pattern, complete with one LP.

        Returns ``(objective, x)`` of a feasible integral solution, or
        ``None`` when last hour's pattern is no longer feasible.
        """
        vals = np.round(np.clip(warm_x[int_idx], sf.lb[int_idx], sf.ub[int_idx]))
        vals = np.clip(vals, sf.lb[int_idx], sf.ub[int_idx])
        lb = sf.lb.copy()
        ub = sf.ub.copy()
        lb[int_idx] = vals
        ub[int_idx] = vals
        fixed = replace(sf, lb=lb, ub=ub)
        if self.warm_start and self._root_warm is not None:
            # Fixing integer bounds is a bounds-only change from last
            # hour's root, so its (pinned, never consumed) basis makes a
            # dual-feasible start; solve_warm falls back to cold when the
            # structure no longer matches.
            res, _ = self.lp.solve_warm(fixed, warm=self._root_warm)
        else:
            res = self.lp.solve(fixed)
        if not res.ok:
            return None
        return float(res.objective), self._round_integers(res.x, int_idx)

    def _tighten_root(self, sf: StandardForm) -> StandardForm:
        """Root-node cover-cut rounds: separate, append, re-solve.

        Cover inequalities never exclude integer points, so the MILP's
        optimum is unchanged; they cut fractional LP vertices, which
        raises the root bound and shrinks the tree (tested on knapsack
        families). Bounded by ``cut_rounds`` rounds.
        """
        from .cuts import apply_cuts, find_cover_cuts

        for _ in range(self.cut_rounds):
            relax = self.lp.solve(sf)
            if not relax.ok:
                return sf  # infeasible/unbounded roots handled downstream
            cuts = find_cover_cuts(sf, relax.x)
            if not cuts:
                break
            sf = apply_cuts(sf, cuts)
        return sf

    def _abs_gap(self, incumbent: float) -> float:
        if not math.isfinite(incumbent):
            return 0.0
        return self.rel_gap * max(1.0, abs(incumbent))

    def _most_fractional(self, x: np.ndarray, int_idx: np.ndarray):
        vals = x[int_idx]
        frac = np.abs(vals - np.round(vals))
        candidates = frac > self.int_tol
        if not np.any(candidates):
            return None
        # Distance of the fractional part from 0.5 — smaller is "more fractional".
        dist = np.abs((vals - np.floor(vals)) - 0.5)
        dist[~candidates] = np.inf
        return int(int_idx[int(np.argmin(dist))])

    @staticmethod
    def _round_integers(x: np.ndarray, int_idx: np.ndarray) -> np.ndarray:
        out = x.copy()
        out[int_idx] = np.round(out[int_idx])
        return out

    def _finish(self, status, obj, x, nodes, bound) -> SolveResult:
        gap = 0.0
        if math.isfinite(bound) and math.isfinite(obj):
            gap = abs(obj - bound) / max(1.0, abs(obj))
        return SolveResult(
            status=status,
            objective=obj,
            x=x,
            iterations=nodes,
            gap=gap,
            backend=f"{self.name}({self.lp.name})",
        )
