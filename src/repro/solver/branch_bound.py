"""Best-first branch-and-bound MILP solver over a pluggable LP engine.

This is the reproduction's stand-in for the ``lp_solve`` MILP solver the
paper runs on-line every invocation period (Section IV-C: "lp_solver
uses a branch-and-bound algorithm to solve MILP problems"). It works on
the compiled :class:`~repro.solver.model.StandardForm`, relaxing
integrality, and branches on fractional integer variables by splitting
their bounds.

Design
------
* **Best-first search**: nodes are popped from a priority queue ordered
  by their parent LP bound, so the global lower bound is always known
  and a relative-gap termination criterion is available.
* **Most-fractional branching** (default): among fractional integer
  variables, branch on the one whose fractional part is closest to 0.5.
* **Depth-first tie-break** keeps the queue shallow on problems — like
  the paper's pricing MILPs — where an incumbent is found quickly.
* Any LP engine with ``solve(StandardForm) -> SolveResult`` can be
  plugged in; the default is HiGHS via
  :class:`~repro.solver.scipy_backend.ScipyLpBackend`, and the pure
  NumPy :class:`~repro.solver.simplex.SimplexSolver` is supported for a
  fully self-contained stack.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, replace

import numpy as np

from ..telemetry import get_telemetry
from ..telemetry.instrument import record_solver_result
from .model import StandardForm
from .result import SolveResult, SolveStatus

__all__ = ["BranchBoundSolver"]


class _BBStats:
    """Per-solve accounting threaded through the search loop."""

    __slots__ = ("enabled", "incumbents", "lp_time_s")

    def __init__(self, enabled: bool):
        self.enabled = enabled
        self.incumbents = 0
        self.lp_time_s = 0.0


#: Shared stats sink for uninstrumented solves (attribute writes only).
_NO_STATS = _BBStats(enabled=False)


@dataclass(order=True)
class _Node:
    bound: float  # LP bound of the parent (priority key)
    depth: int
    tie: int
    lb: np.ndarray = None  # type: ignore[assignment]
    ub: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self):
        # heapq compares the dataclass fields in order; arrays must not
        # take part in comparisons, hence they are excluded via order
        # fields only (bound, depth, tie are always distinct by `tie`).
        pass


class BranchBoundSolver:
    """MILP solver: LP relaxation + best-first branch and bound.

    Parameters
    ----------
    lp_solver:
        LP engine used for node relaxations (default HiGHS ``linprog``).
    int_tol:
        A value within ``int_tol`` of an integer counts as integral.
    rel_gap:
        Terminate when ``(incumbent - bound) / max(1, |incumbent|)``
        drops below this.
    max_nodes:
        Hard node limit; exceeding it returns the incumbent (if any)
        with :attr:`SolveStatus.NODE_LIMIT`, or a failed result.
    """

    name = "branch-bound"

    def __init__(
        self,
        lp_solver=None,
        int_tol: float = 1e-6,
        rel_gap: float = 1e-9,
        max_nodes: int = 100_000,
        cover_cuts: bool = False,
        cut_rounds: int = 3,
    ):
        if lp_solver is None:
            from .scipy_backend import ScipyLpBackend

            lp_solver = ScipyLpBackend()
        self.lp = lp_solver
        self.int_tol = int_tol
        self.rel_gap = rel_gap
        self.max_nodes = max_nodes
        self.cover_cuts = cover_cuts
        self.cut_rounds = cut_rounds

    # -- public API --------------------------------------------------------------

    def solve(self, sf: StandardForm) -> SolveResult:
        if not sf.has_integers:
            res = self.lp.solve(sf)
            res.backend = f"{self.name}({self.lp.name})"
            return res
        tel = get_telemetry()
        if not tel.enabled:
            return self._solve_milp(sf, _NO_STATS)
        stats = _BBStats(enabled=True)
        t0 = time.perf_counter()
        res = self._solve_milp(sf, stats)
        record_solver_result(
            tel, "branch-bound", res.status.value, res.iterations,
            time.perf_counter() - t0,
        )
        tel.histogram("solver.branch-bound.nodes").observe(res.iterations)
        tel.histogram("solver.branch-bound.lp_time_s").observe(stats.lp_time_s)
        tel.counter("solver.branch-bound.incumbent_updates").inc(stats.incumbents)
        if res.ok:
            tel.histogram("solver.branch-bound.gap").observe(res.gap)
        return res

    def _solve_milp(self, sf: StandardForm, stats: _BBStats) -> SolveResult:
        if self.cover_cuts:
            sf = self._tighten_root(sf)

        int_idx = np.flatnonzero(sf.integrality)
        tie = itertools.count()
        root = _Node(bound=-math.inf, depth=0, tie=next(tie))
        root.lb = sf.lb.copy()
        root.ub = sf.ub.copy()
        heap: list[_Node] = [root]

        incumbent_x: np.ndarray | None = None
        incumbent_obj = math.inf
        best_bound = -math.inf
        nodes = 0
        lp_infeasible_everywhere = True

        while heap:
            node = heapq.heappop(heap)
            if node.bound >= incumbent_obj - self._abs_gap(incumbent_obj):
                continue  # pruned by bound
            if nodes >= self.max_nodes:
                if incumbent_x is not None:
                    return self._finish(
                        SolveStatus.NODE_LIMIT, incumbent_obj, incumbent_x, nodes, node.bound
                    )
                return SolveResult(
                    status=SolveStatus.NODE_LIMIT, iterations=nodes, backend=self.name
                )
            nodes += 1

            relaxed = replace(sf, lb=node.lb, ub=node.ub)
            if stats.enabled:
                t_lp = time.perf_counter()
                res = self.lp.solve(relaxed)
                stats.lp_time_s += time.perf_counter() - t_lp
            else:
                res = self.lp.solve(relaxed)
            if res.status is SolveStatus.UNBOUNDED and node.depth == 0:
                return SolveResult(
                    status=SolveStatus.UNBOUNDED, iterations=nodes, backend=self.name
                )
            if not res.ok:
                continue  # infeasible subtree
            lp_infeasible_everywhere = False
            if res.objective >= incumbent_obj - self._abs_gap(incumbent_obj):
                continue  # bound-pruned after solving

            frac_var = self._most_fractional(res.x, int_idx)
            if frac_var is None:
                # Integral solution: new incumbent.
                if res.objective < incumbent_obj:
                    incumbent_obj = res.objective
                    incumbent_x = self._round_integers(res.x, int_idx)
                    stats.incumbents += 1
                continue

            # Branch: x_j <= floor(v)  /  x_j >= ceil(v).
            v = res.x[frac_var]
            down = _Node(bound=res.objective, depth=node.depth + 1, tie=next(tie))
            down.lb = node.lb
            down.ub = node.ub.copy()
            down.ub[frac_var] = math.floor(v)
            up = _Node(bound=res.objective, depth=node.depth + 1, tie=next(tie))
            up.lb = node.lb.copy()
            up.lb[frac_var] = math.ceil(v)
            up.ub = node.ub
            heapq.heappush(heap, down)
            heapq.heappush(heap, up)

        if incumbent_x is None:
            status = (
                SolveStatus.INFEASIBLE if lp_infeasible_everywhere else SolveStatus.INFEASIBLE
            )
            return SolveResult(status=status, iterations=nodes, backend=self.name)
        best_bound = incumbent_obj  # queue exhausted: proven optimal
        return self._finish(SolveStatus.OPTIMAL, incumbent_obj, incumbent_x, nodes, best_bound)

    # -- helpers ------------------------------------------------------------------

    def _tighten_root(self, sf: StandardForm) -> StandardForm:
        """Root-node cover-cut rounds: separate, append, re-solve.

        Cover inequalities never exclude integer points, so the MILP's
        optimum is unchanged; they cut fractional LP vertices, which
        raises the root bound and shrinks the tree (tested on knapsack
        families). Bounded by ``cut_rounds`` rounds.
        """
        from .cuts import apply_cuts, find_cover_cuts

        for _ in range(self.cut_rounds):
            relax = self.lp.solve(sf)
            if not relax.ok:
                return sf  # infeasible/unbounded roots handled downstream
            cuts = find_cover_cuts(sf, relax.x)
            if not cuts:
                break
            sf = apply_cuts(sf, cuts)
        return sf

    def _abs_gap(self, incumbent: float) -> float:
        if not math.isfinite(incumbent):
            return 0.0
        return self.rel_gap * max(1.0, abs(incumbent))

    def _most_fractional(self, x: np.ndarray, int_idx: np.ndarray):
        vals = x[int_idx]
        frac = np.abs(vals - np.round(vals))
        candidates = frac > self.int_tol
        if not np.any(candidates):
            return None
        # Distance of the fractional part from 0.5 — smaller is "more fractional".
        dist = np.abs((vals - np.floor(vals)) - 0.5)
        dist[~candidates] = np.inf
        return int(int_idx[int(np.argmin(dist))])

    @staticmethod
    def _round_integers(x: np.ndarray, int_idx: np.ndarray) -> np.ndarray:
        out = x.copy()
        out[int_idx] = np.round(out[int_idx])
        return out

    def _finish(self, status, obj, x, nodes, bound) -> SolveResult:
        gap = 0.0
        if math.isfinite(bound) and math.isfinite(obj):
            gap = abs(obj - bound) / max(1.0, abs(obj))
        return SolveResult(
            status=status,
            objective=obj,
            x=x,
            iterations=nodes,
            gap=gap,
            backend=f"{self.name}({self.lp.name})",
        )
