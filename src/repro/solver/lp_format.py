"""CPLEX LP-format writer and reader for :class:`~repro.solver.model.Model`.

Lets any hourly dispatch MILP be dumped to a human-readable ``.lp``
file (debugging, cross-checking against external solvers) and read
back. The supported subset covers everything this library generates:

* ``Minimize`` / ``Maximize`` with a single linear objective,
* ``Subject To`` rows with ``<=``, ``>=``, ``=``,
* a ``Bounds`` section (including ``free`` and ``-inf``/``+inf``),
* ``General`` (integer) and ``Binary`` sections,
* ``\\``-prefixed comments.

Round-trip fidelity (write → read → identical standard form) is
property-tested in ``tests/solver/test_lp_format.py``.
"""

from __future__ import annotations

import io
import math
import re
from pathlib import Path

from .errors import ModelingError
from .model import LinExpr, Model, VarType

__all__ = ["write_lp", "model_to_lp_string", "read_lp", "parse_lp_string"]

_INF = float("inf")


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------

def _sanitize(name: str, index: int, prefix: str) -> str:
    """LP-format-safe identifier (falls back to ``prefix<index>``)."""
    clean = re.sub(r"[^A-Za-z0-9_.]", "_", name or "")
    if not clean or clean[0].isdigit() or clean[0] == ".":
        clean = f"{prefix}{index}"
    return clean


def _expr_terms(expr: LinExpr, names: list[str]) -> str:
    parts = []
    for idx in sorted(expr.coeffs):
        coef = expr.coeffs[idx]
        if coef == 0:
            continue
        sign = "-" if coef < 0 else "+"
        mag = abs(coef)
        parts.append(f"{sign} {mag:.17g} {names[idx]}")
    if not parts:
        return "0 " + (names[0] if names else "x0")
    joined = " ".join(parts)
    return joined[2:] if joined.startswith("+ ") else joined


def model_to_lp_string(model: Model) -> str:
    """Serialize ``model`` to CPLEX LP format."""
    names = [
        _sanitize(v.name, i, "x") for i, v in enumerate(model.variables)
    ]
    if len(set(names)) != len(names):  # collision after sanitizing
        names = [f"x{i}" for i in range(len(names))]

    out = io.StringIO()
    out.write(f"\\ Model: {model.name}\n")
    sense = "Minimize" if model.sense.value == "min" else "Maximize"
    out.write(f"{sense}\n obj: {_expr_terms(model._objective, names)}\n")
    out.write("Subject To\n")
    for k, con in enumerate(model.constraints):
        op = "=" if con.kind == "==" else "<="
        label = _sanitize(con.name, k, "c")
        out.write(f" {label}: {_expr_terms(con.expr, names)} {op} {con.rhs:.17g}\n")

    out.write("Bounds\n")
    for i, v in enumerate(model.variables):
        lo, hi = v.lb, v.ub
        if lo == 0.0 and hi == _INF:
            continue  # LP default
        if lo == -_INF and hi == _INF:
            out.write(f" {names[i]} free\n")
        elif hi == _INF:
            out.write(f" {names[i]} >= {lo:.17g}\n")
        elif lo == -_INF:
            out.write(f" {names[i]} <= {hi:.17g}\n")
        else:
            out.write(f" {lo:.17g} <= {names[i]} <= {hi:.17g}\n")

    generals = [names[i] for i, v in enumerate(model.variables) if v.vtype is VarType.INTEGER]
    binaries = [names[i] for i, v in enumerate(model.variables) if v.vtype is VarType.BINARY]
    if generals:
        out.write("General\n " + " ".join(generals) + "\n")
    if binaries:
        out.write("Binary\n " + " ".join(binaries) + "\n")
    out.write("End\n")
    return out.getvalue()


def write_lp(model: Model, path: "str | Path") -> Path:
    """Write ``model`` to ``path`` in LP format; returns the path."""
    path = Path(path)
    path.write_text(model_to_lp_string(model))
    return path


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

_SECTION_RE = re.compile(
    r"^(minimize|maximize|min|max|subject to|such that|st|s\.t\.|bounds|"
    r"general|generals|gen|binary|binaries|bin|end)$",
    re.IGNORECASE,
)

_TOKEN_RE = re.compile(
    r"(?P<num>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)"
    r"|(?P<name>[A-Za-z_.][A-Za-z0-9_.\[\],]*)"
    r"|(?P<op><=|>=|=<|=>|=|\+|-|:)"
)


def _tokenize(text: str):
    for m in _TOKEN_RE.finditer(text):
        kind = m.lastgroup
        yield kind, m.group(0)


def _parse_linear(tokens, model, var_of):
    """Parse ``[+-] [coef] name ...`` into (LinExpr, leftover tokens)."""
    expr = LinExpr(model)
    sign = 1.0
    coef: float | None = None
    i = 0
    while i < len(tokens):
        kind, tok = tokens[i]
        if kind == "op" and tok in "+-":
            sign = 1.0 if tok == "+" else -1.0
            if coef is not None:
                raise ModelingError(f"dangling coefficient before {tok!r}")
            i += 1
        elif kind == "num":
            if coef is not None:
                raise ModelingError("two consecutive numbers in expression")
            coef = float(tok)
            i += 1
        elif kind == "name":
            v = var_of(tok)
            c = sign * (coef if coef is not None else 1.0)
            expr = expr + c * v
            sign, coef = 1.0, None
            i += 1
        else:
            break
    if coef is not None:
        expr = expr + sign * coef  # trailing constant
    return expr, tokens[i:]


def parse_lp_string(text: str) -> Model:
    """Parse an LP-format string into a fresh :class:`Model`."""
    model = Model("parsed-lp")
    vars_by_name: dict[str, object] = {}

    def var_of(name: str):
        if name not in vars_by_name:
            vars_by_name[name] = model.var(name, lb=0.0, ub=_INF)
        return vars_by_name[name]

    # Strip comments, split logical lines, find sections.
    lines = []
    for raw in text.splitlines():
        line = raw.split("\\")[0].strip()
        if line:
            lines.append(line)

    section = None
    sense = "min"
    objective_tokens: list = []
    constraint_lines: list[str] = []
    bounds_lines: list[str] = []
    general_names: list[str] = []
    binary_names: list[str] = []

    for line in lines:
        low = line.lower()
        if _SECTION_RE.match(low):
            if low in ("minimize", "min"):
                section, sense = "obj", "min"
            elif low in ("maximize", "max"):
                section, sense = "obj", "max"
            elif low in ("subject to", "such that", "st", "s.t."):
                section = "cons"
            elif low == "bounds":
                section = "bounds"
            elif low in ("general", "generals", "gen"):
                section = "general"
            elif low in ("binary", "binaries", "bin"):
                section = "binary"
            elif low == "end":
                section = "end"
            continue
        if section == "obj":
            objective_tokens.extend(_tokenize(line))
        elif section == "cons":
            constraint_lines.append(line)
        elif section == "bounds":
            bounds_lines.append(line)
        elif section == "general":
            general_names.extend(line.split())
        elif section == "binary":
            binary_names.extend(line.split())
        elif section is None:
            raise ModelingError(f"content before any LP section: {line!r}")

    # Objective (may carry an 'obj:' label).
    obj_tokens = list(objective_tokens)
    if len(obj_tokens) >= 2 and obj_tokens[0][0] == "name" and obj_tokens[1][1] == ":":
        obj_tokens = obj_tokens[2:]
    obj_expr, leftover = _parse_linear(obj_tokens, model, var_of)
    if leftover:
        raise ModelingError(f"trailing tokens in objective: {leftover}")
    if sense == "min":
        model.minimize(obj_expr)
    else:
        model.maximize(obj_expr)

    # Constraints.
    for line in constraint_lines:
        tokens = list(_tokenize(line))
        name = ""
        if len(tokens) >= 2 and tokens[0][0] == "name" and tokens[1][1] == ":":
            name = tokens[0][1]
            tokens = tokens[2:]
        lhs, rest = _parse_linear(tokens, model, var_of)
        if not rest or rest[0][0] != "op":
            raise ModelingError(f"constraint without comparison: {line!r}")
        op = rest[0][1].replace("=<", "<=").replace("=>", ">=")
        rhs_expr, leftover = _parse_linear(rest[1:], model, var_of)
        if leftover:
            raise ModelingError(f"trailing tokens in constraint: {line!r}")
        if op == "<=":
            model.add(lhs <= rhs_expr, name=name)
        elif op == ">=":
            model.add(lhs >= rhs_expr, name=name)
        elif op == "=":
            model.add(lhs == rhs_expr, name=name)
        else:
            raise ModelingError(f"unknown comparison {op!r}")

    # Bounds.
    for line in bounds_lines:
        _apply_bound(line, vars_by_name, var_of)

    for name in general_names:
        v = var_of(name)
        v.vtype = VarType.INTEGER
    for name in binary_names:
        v = var_of(name)
        v.vtype = VarType.BINARY
        v.lb = max(v.lb, 0.0)
        v.ub = min(v.ub, 1.0)
    return model


def _parse_number(tok: str) -> float:
    low = tok.lower()
    if low in ("inf", "+inf", "infinity", "+infinity"):
        return _INF
    if low in ("-inf", "-infinity"):
        return -_INF
    return float(tok)


def _apply_bound(line: str, vars_by_name, var_of) -> None:
    parts = line.split()
    if len(parts) == 2 and parts[1].lower() == "free":
        v = var_of(parts[0])
        v.lb, v.ub = -_INF, _INF
        return
    m = re.match(
        r"^\s*(?P<lo>[^\s<>=]+)\s*<=\s*(?P<name>[A-Za-z_.][^\s<>=]*)\s*<=\s*(?P<hi>[^\s<>=]+)\s*$",
        line,
    )
    if m:
        v = var_of(m.group("name"))
        v.lb = _parse_number(m.group("lo"))
        v.ub = _parse_number(m.group("hi"))
        return
    m = re.match(
        r"^\s*(?P<name>[A-Za-z_.][^\s<>=]*)\s*(?P<op><=|>=)\s*(?P<val>[^\s<>=]+)\s*$",
        line,
    )
    if m:
        v = var_of(m.group("name"))
        val = _parse_number(m.group("val"))
        if m.group("op") == "<=":
            v.ub = val
        else:
            v.lb = val
        return
    m = re.match(
        r"^\s*(?P<val>[^\s<>=]+)\s*(?P<op><=|>=)\s*(?P<name>[A-Za-z_.][^\s<>=]*)\s*$",
        line,
    )
    if m:
        v = var_of(m.group("name"))
        val = _parse_number(m.group("val"))
        if m.group("op") == "<=":
            v.lb = val
        else:
            v.ub = val
        return
    raise ModelingError(f"unparseable bounds line: {line!r}")


def read_lp(path: "str | Path") -> Model:
    """Read an LP-format file into a :class:`Model`."""
    return parse_lp_string(Path(path).read_text())
