"""SciPy (HiGHS) backends behind the :class:`~repro.solver.model.Model` API.

Two entry points:

* :class:`ScipyLpBackend` — wraps :func:`scipy.optimize.linprog` and
  ignores integrality (useful as the LP engine inside branch & bound,
  and for pure LPs such as the DC-OPF where dual marginals are needed).
* :class:`ScipyBackend` — the default full backend: dispatches to
  :func:`scipy.optimize.milp` when the model has integer variables and
  to :func:`scipy.optimize.linprog` otherwise.
"""

from __future__ import annotations

import contextlib
import os
import sys
import tempfile
import time

import numpy as np
from scipy import optimize as sciopt

from ..telemetry import get_telemetry
from ..telemetry.instrument import record_solver_result
from .model import StandardForm
from .result import SolveResult, SolveStatus

__all__ = ["ScipyLpBackend", "ScipyBackend"]


@contextlib.contextmanager
def _silence_native_stdout():
    """Suppress stdout writes from native code (HiGHS debug prints).

    Some HiGHS builds print ``HighsMipSolverData::transformNewInteger
    FeasibleSolution tmpSolver.run();`` straight to fd 1, bypassing
    ``sys.stdout``; redirecting the fd is the only way to keep solver
    runs quiet. Restores the fd even on exceptions. Falls back to a
    no-op when fd 1 is not duplicable (exotic embedding).
    """
    try:
        sys.stdout.flush()
        saved_fd = os.dup(1)
    except (OSError, ValueError):  # pragma: no cover - exotic runtimes
        yield
        return
    try:
        with tempfile.TemporaryFile() as sink:
            os.dup2(sink.fileno(), 1)
            try:
                yield
            finally:
                os.dup2(saved_fd, 1)
    finally:
        os.close(saved_fd)

_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def _bounds(sf: StandardForm):
    return sciopt.Bounds(sf.lb, sf.ub)


def _constraints(sf: StandardForm):
    cons = []
    if sf.A_ub.size:
        cons.append(sciopt.LinearConstraint(sf.A_ub, -np.inf, sf.b_ub))
    if sf.A_eq.size:
        cons.append(sciopt.LinearConstraint(sf.A_eq, sf.b_eq, sf.b_eq))
    return cons


class ScipyLpBackend:
    """LP-only backend using ``linprog`` (HiGHS); integrality is ignored.

    Exposes equality and inequality dual marginals, which
    :mod:`repro.powermarket.dcopf` uses to compute LMPs.
    """

    name = "scipy-linprog"

    def __init__(self, method: str = "highs"):
        self.method = method

    def solve(self, sf: StandardForm) -> SolveResult:
        tel = get_telemetry()
        if not tel.enabled:
            return self._solve_impl(sf)
        t0 = time.perf_counter()
        res = self._solve_impl(sf)
        record_solver_result(
            tel, self.name, res.status.value, res.iterations,
            time.perf_counter() - t0,
        )
        return res

    def _solve_impl(self, sf: StandardForm) -> SolveResult:
        # Rows with an infinite rhs can never bind; linprog rejects them,
        # so they are dropped (duals for dropped rows are restored as 0).
        finite_rows = np.isfinite(sf.b_ub)
        if not finite_rows.all():
            A_ub = sf.A_ub[finite_rows]
            b_ub = sf.b_ub[finite_rows]
        else:
            A_ub, b_ub = sf.A_ub, sf.b_ub
        res = sciopt.linprog(
            sf.c,
            A_ub=A_ub if A_ub.size else None,
            b_ub=b_ub if A_ub.size else None,
            A_eq=sf.A_eq if sf.A_eq.size else None,
            b_eq=sf.b_eq if sf.A_eq.size else None,
            bounds=np.column_stack([sf.lb, sf.ub]),
            method=self.method,
        )
        status = _STATUS_MAP.get(res.status, SolveStatus.ERROR)
        if status is not SolveStatus.OPTIMAL:
            return SolveResult(status=status, backend=self.name, message=res.message)
        duals_eq = (
            np.asarray(res.eqlin.marginals)
            if sf.A_eq.size
            else np.empty(0)
        )
        duals_ub = np.zeros(sf.A_ub.shape[0])
        if A_ub.size:
            duals_ub[finite_rows] = np.asarray(res.ineqlin.marginals)
        return SolveResult(
            status=status,
            objective=float(res.fun),
            x=np.asarray(res.x),
            duals_eq=duals_eq,
            duals_ub=duals_ub,
            iterations=int(getattr(res, "nit", 0)),
            backend=self.name,
        )


class ScipyBackend:
    """Default backend: HiGHS MILP for integer models, LP otherwise."""

    name = "scipy"

    def __init__(self, mip_rel_gap: float = 1e-9, time_limit: float | None = None):
        self.mip_rel_gap = mip_rel_gap
        self.time_limit = time_limit

    def solve(self, sf: StandardForm) -> SolveResult:
        if not sf.has_integers:
            return ScipyLpBackend().solve(sf)
        tel = get_telemetry()
        if not tel.enabled:
            return self._solve_milp(sf)
        t0 = time.perf_counter()
        res = self._solve_milp(sf)
        record_solver_result(
            tel, self.name, res.status.value, res.iterations,
            time.perf_counter() - t0,
        )
        tel.histogram(f"solver.{self.name}.nodes").observe(res.iterations)
        if res.ok:
            tel.histogram(f"solver.{self.name}.gap").observe(res.gap)
        return res

    def _solve_milp(self, sf: StandardForm) -> SolveResult:
        options: dict = {"mip_rel_gap": self.mip_rel_gap}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit
        with _silence_native_stdout():
            res = sciopt.milp(
                sf.c,
                constraints=_constraints(sf),
                bounds=_bounds(sf),
                integrality=sf.integrality.astype(int),
                options=options,
            )
        status = _STATUS_MAP.get(res.status, SolveStatus.ERROR)
        if status is not SolveStatus.OPTIMAL:
            return SolveResult(status=status, backend=self.name, message=str(res.message))
        return SolveResult(
            status=status,
            objective=float(res.fun),
            x=np.asarray(res.x),
            # B&B nodes, where this HiGHS build exposes them.
            iterations=int(getattr(res, "mip_node_count", 0) or 0),
            gap=float(getattr(res, "mip_gap", 0.0) or 0.0),
            backend=self.name,
        )
