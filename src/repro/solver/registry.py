"""Pluggable solver-backend registry (the pyomo ``SolverFactory`` pattern).

Every LP/MILP engine the repo can run — SciPy/HiGHS, the own
branch-and-bound over either simplex, the presolving and fallback-chain
wrappers, and the dual-decomposition dispatch path — is a named factory
here, exactly as dispatch strategies are named factories in
:mod:`repro.sim.registry`. All entry points (``Model.solve``, the
compiled-model caches, ``repro run --solver-backend``, ``repro
serve --solver-backend``, ``repro solvers``) resolve backends through
this module, so adding an engine is one :func:`register_backend` call
instead of an ``if/elif`` chain per call site.

Each registration carries *capability flags* so callers can check what
they are getting before they depend on it:

``milp``
    Solves mixed-integer programs (otherwise LP relaxations only).
``warm_start``
    Supports ``solve_warm`` basis reuse across structurally similar
    solves (the hourly hot path).
``sparse``
    Prices columns sparsely / factorizes the basis instead of carrying
    a dense tableau — the large-fleet engines.
``dispatch``
    Operates on the *dispatch problem* (site hours) rather than a
    compiled :class:`~repro.solver.model.StandardForm`; such backends
    cannot be passed to ``Model.solve`` and are resolved by the
    optimizers in :mod:`repro.core` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = [
    "BackendSpec",
    "register_backend",
    "get_backend",
    "backend_spec",
    "available_backends",
]


@dataclass(frozen=True)
class BackendSpec:
    """One registered solver backend: factory plus capability flags."""

    name: str
    factory: Callable[..., object]
    milp: bool = False
    warm_start: bool = False
    sparse: bool = False
    dispatch: bool = False
    description: str = ""

    def make(self, **kwargs) -> object:
        """A fresh backend instance (kwargs go to the factory)."""
        return self.factory(**kwargs)


_SPECS: dict[str, BackendSpec] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Register the built-in backends exactly once, lazily.

    Lazy so that importing :mod:`repro.solver` stays cheap and so the
    decomposition entry (which lives in :mod:`repro.core`, a package
    that imports this one) can be declared without a circular import:
    its factory only touches ``repro.core`` when actually called.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True

    def scipy_factory(**kw):
        from .scipy_backend import ScipyBackend

        return ScipyBackend(**kw)

    def scipy_lp_factory(**kw):
        from .scipy_backend import ScipyLpBackend

        return ScipyLpBackend(**kw)

    def branch_bound_factory(**kw):
        from .branch_bound import BranchBoundSolver

        return BranchBoundSolver(**kw)

    def simplex_factory(**kw):
        from .branch_bound import BranchBoundSolver
        from .simplex import SimplexSolver

        return BranchBoundSolver(lp_solver=SimplexSolver(), **kw)

    def revised_simplex_factory(**kw):
        from .branch_bound import BranchBoundSolver
        from .revised_simplex import RevisedSimplexSolver

        return BranchBoundSolver(lp_solver=RevisedSimplexSolver(), **kw)

    def presolve_factory(**kw):
        from .presolve import PresolvingBackend

        return PresolvingBackend(**kw)

    def fallback_factory(**kw):
        from .branch_bound import BranchBoundSolver
        from .fallback import FallbackBackend
        from .scipy_backend import ScipyBackend

        return FallbackBackend(ScipyBackend(), BranchBoundSolver(), **kw)

    def decomposition_factory(**kw):
        from ..core.decomposition import DecompositionSolver

        return DecompositionSolver(**kw)

    register_backend(
        "scipy", scipy_factory, milp=True,
        description="SciPy HiGHS (milp/linprog); the external reference",
    )
    register_backend(
        "scipy-lp", scipy_lp_factory,
        description="SciPy HiGHS linprog; LP relaxations with duals",
    )
    register_backend(
        "branch-bound", branch_bound_factory, milp=True, warm_start=True,
        description="own best-first B&B over HiGHS LP nodes",
    )
    register_backend(
        "simplex", simplex_factory, milp=True, warm_start=True,
        description="own B&B over the dense-tableau NumPy simplex",
    )
    register_backend(
        "revised-simplex", revised_simplex_factory, milp=True,
        warm_start=True, sparse=True,
        description="own B&B over the sparse-pricing revised simplex "
        "(factorized basis; built for 100+ site fleets)",
    )
    register_backend(
        "presolve", presolve_factory, milp=True,
        description="bound-tightening presolve in front of HiGHS",
    )
    register_backend(
        "fallback", fallback_factory, milp=True,
        description="HiGHS with automatic failover to the own B&B",
    )
    register_backend(
        "decomposition", decomposition_factory, milp=True, warm_start=True,
        sparse=True, dispatch=True,
        description="dual decomposition across market regions "
        "(exact region subproblems, gap-checked, monolithic fallback)",
    )


def register_backend(
    name: str,
    factory: Callable[..., object],
    *,
    milp: bool = False,
    warm_start: bool = False,
    sparse: bool = False,
    dispatch: bool = False,
    description: str = "",
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name`` with its capability flags.

    ``factory(**kwargs)`` must return a fresh backend object — for
    standard-form backends, anything with ``solve(StandardForm) ->
    SolveResult``. Re-registering an existing name raises unless
    ``replace=True``, mirroring :func:`repro.sim.registry.
    register_strategy`.
    """
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")
    if not callable(factory):
        raise TypeError("backend factory must be callable")
    _ensure_builtins()
    if name in _SPECS and not replace:
        raise ValueError(
            f"solver backend {name!r} is already registered; pass "
            "replace=True to override it"
        )
    _SPECS[name] = BackendSpec(
        name=name,
        factory=factory,
        milp=milp,
        warm_start=warm_start,
        sparse=sparse,
        dispatch=dispatch,
        description=description,
    )


def backend_spec(name: str) -> BackendSpec:
    """The :class:`BackendSpec` registered under ``name``.

    Raises :class:`ValueError` listing the registered names when the
    name is unknown — the message every CLI entry point surfaces.
    """
    _ensure_builtins()
    spec = _SPECS.get(name)
    if spec is None:
        raise ValueError(
            f"unknown solver backend {name!r}; expected one of "
            f"{available_backends()}"
        )
    return spec


def get_backend(name: str, **kwargs) -> object:
    """A fresh backend instance for ``name`` (kwargs to the factory)."""
    return backend_spec(name).make(**kwargs)


def available_backends() -> tuple[str, ...]:
    """All registered backend names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_SPECS))
