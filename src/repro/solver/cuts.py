"""Cover-cut generation for 0/1 knapsack rows.

A classic MILP tightening: a ``<=`` row ``sum(a_j x_j) <= b`` over
binary variables with ``a_j > 0`` is a *knapsack*; a **cover** is a set
``C`` with ``sum_{j in C} a_j > b``, and every integer point satisfies
the *cover inequality* ``sum_{j in C} x_j <= |C| - 1``. Adding covers
violated by the LP relaxation cuts fractional vertices without
excluding any integer solution, shrinking the branch-and-bound tree.

:func:`find_cover_cuts` separates violated minimal covers greedily from
an LP point; :class:`repro.solver.branch_bound.BranchBoundSolver`
applies them in root-node rounds when ``cover_cuts=True``.
"""

from __future__ import annotations

import numpy as np

from .model import StandardForm

__all__ = ["CoverCut", "find_cover_cuts", "apply_cuts"]


class CoverCut:
    """A cover inequality ``sum_{j in cover} x_j <= len(cover) - 1``."""

    __slots__ = ("cover",)

    def __init__(self, cover: tuple[int, ...]):
        if len(cover) < 2:
            raise ValueError("a cover needs at least two members")
        self.cover = tuple(sorted(cover))

    @property
    def rhs(self) -> int:
        return len(self.cover) - 1

    def violation(self, x: np.ndarray) -> float:
        """LP-point violation (positive = cut is active)."""
        return float(sum(x[j] for j in self.cover) - self.rhs)

    def __eq__(self, other) -> bool:
        return isinstance(other, CoverCut) and self.cover == other.cover

    def __hash__(self) -> int:
        return hash(self.cover)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoverCut({self.cover}, <= {self.rhs})"


def _binary_mask(sf: StandardForm) -> np.ndarray:
    return sf.integrality & (sf.lb >= -1e-9) & (sf.ub <= 1.0 + 1e-9)


def find_cover_cuts(
    sf: StandardForm,
    x: np.ndarray,
    max_cuts: int = 20,
    min_violation: float = 1e-4,
) -> list[CoverCut]:
    """Separate violated minimal cover inequalities at the LP point ``x``.

    Greedy separation (Crowder-Johnson-Padberg style): for each
    knapsack row, order candidates by decreasing ``x_j``, grow the
    cover until its weight exceeds the rhs, then minimalize by dropping
    members that are not needed. Only rows whose binary-variable part
    can actually exceed the remaining rhs yield covers.
    """
    binary = _binary_mask(sf)
    cuts: list[CoverCut] = []
    seen: set[CoverCut] = set()
    for i in range(sf.A_ub.shape[0]):
        row = sf.A_ub[i]
        # Continuous/general-integer terms at their *lower* activity
        # free the most room for the binaries; use that conservative rhs.
        others = ~binary & (np.abs(row) > 1e-12)
        lo_activity = 0.0
        if np.any(others):
            contrib = np.where(row[others] > 0, sf.lb[others], sf.ub[others])
            if not np.all(np.isfinite(contrib)):
                continue  # unbounded slack: no valid knapsack
            lo_activity = float(row[others] @ contrib)
        rhs = sf.b_ub[i] - lo_activity
        cand = np.flatnonzero(binary & (row > 1e-12))
        if cand.size < 2 or float(row[cand].sum()) <= rhs + 1e-12:
            continue
        # Greedy: most fractional-active first.
        order = cand[np.argsort(-x[cand])]
        cover: list[int] = []
        weight = 0.0
        for j in order:
            cover.append(int(j))
            weight += float(row[j])
            if weight > rhs + 1e-12:
                break
        if weight <= rhs + 1e-12:
            continue
        # Minimalize: drop members whose removal keeps it a cover.
        k = 0
        while k < len(cover):
            j = cover[k]
            if weight - float(row[j]) > rhs + 1e-12:
                weight -= float(row[j])
                cover.pop(k)
            else:
                k += 1
        if len(cover) < 2:
            continue
        cut = CoverCut(tuple(cover))
        if cut in seen:
            continue
        if cut.violation(x) >= min_violation:
            cuts.append(cut)
            seen.add(cut)
            if len(cuts) >= max_cuts:
                break
    return cuts


def apply_cuts(sf: StandardForm, cuts: list[CoverCut]) -> StandardForm:
    """Return a new standard form with the cover rows appended."""
    if not cuts:
        return sf
    n = sf.n_vars
    extra = np.zeros((len(cuts), n))
    rhs = np.empty(len(cuts))
    for k, cut in enumerate(cuts):
        extra[k, list(cut.cover)] = 1.0
        rhs[k] = cut.rhs
    return StandardForm(
        c=sf.c,
        A_ub=np.vstack([sf.A_ub, extra]) if sf.A_ub.size else extra,
        b_ub=np.concatenate([sf.b_ub, rhs]),
        A_eq=sf.A_eq,
        b_eq=sf.b_eq,
        lb=sf.lb,
        ub=sf.ub,
        integrality=sf.integrality,
        obj_constant=sf.obj_constant,
    )
