"""Self-contained LP/MILP optimization layer.

Public API:

* :class:`Model`, :class:`Variable`, :class:`LinExpr`, :func:`quicksum`
  — algebraic model construction;
* :class:`SolveResult`, :class:`SolveStatus` — results;
* Backends: :class:`ScipyBackend` (HiGHS, default),
  :class:`ScipyLpBackend` (LP + duals),
  :class:`BranchBoundSolver` (own B&B), :class:`SimplexSolver`
  (pure-NumPy LP engine), :class:`RevisedSimplexSolver` (factorized
  basis + sparse pricing, for 100+-site fleets);
* Registry: :func:`register_backend` / :func:`get_backend` /
  :func:`available_backends` — named backend factories with capability
  flags, the resolution point for ``--solver-backend``;
* Errors: :class:`SolverError` and friends.
"""

from .branch_bound import BranchBoundSolver
from .errors import (
    InfeasibleError,
    ModelingError,
    SolverError,
    SolverLimitError,
    UnboundedError,
)
from .model import (
    Constraint,
    LinExpr,
    Model,
    Sense,
    StandardForm,
    Variable,
    VarType,
    quicksum,
)
from .cuts import CoverCut, apply_cuts, find_cover_cuts
from .fallback import FallbackBackend
from .lp_format import model_to_lp_string, parse_lp_string, read_lp, write_lp
from .presolve import PresolveReport, PresolvingBackend, presolve
from .registry import (
    BackendSpec,
    available_backends,
    backend_spec,
    get_backend,
    register_backend,
)
from .result import SolveResult, SolveStatus
from .revised_simplex import (
    RevisedSimplexSolver,
    RevisedWarmBasis,
    lp_solver_for_size,
)
from .scipy_backend import ScipyBackend, ScipyLpBackend
from .simplex import SimplexSolver

__all__ = [
    "Model",
    "Variable",
    "LinExpr",
    "Constraint",
    "VarType",
    "Sense",
    "StandardForm",
    "quicksum",
    "SolveResult",
    "SolveStatus",
    "ScipyBackend",
    "ScipyLpBackend",
    "BranchBoundSolver",
    "SimplexSolver",
    "RevisedSimplexSolver",
    "RevisedWarmBasis",
    "lp_solver_for_size",
    "BackendSpec",
    "register_backend",
    "get_backend",
    "backend_spec",
    "available_backends",
    "SolverError",
    "ModelingError",
    "InfeasibleError",
    "UnboundedError",
    "SolverLimitError",
    "presolve",
    "PresolveReport",
    "PresolvingBackend",
    "FallbackBackend",
    "CoverCut",
    "find_cover_cuts",
    "apply_cuts",
    "write_lp",
    "read_lp",
    "model_to_lp_string",
    "parse_lp_string",
]
