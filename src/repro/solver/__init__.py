"""Self-contained LP/MILP optimization layer.

Public API:

* :class:`Model`, :class:`Variable`, :class:`LinExpr`, :func:`quicksum`
  — algebraic model construction;
* :class:`SolveResult`, :class:`SolveStatus` — results;
* Backends: :class:`ScipyBackend` (HiGHS, default),
  :class:`ScipyLpBackend` (LP + duals),
  :class:`BranchBoundSolver` (own B&B), :class:`SimplexSolver`
  (pure-NumPy LP engine);
* Errors: :class:`SolverError` and friends.
"""

from .branch_bound import BranchBoundSolver
from .errors import (
    InfeasibleError,
    ModelingError,
    SolverError,
    SolverLimitError,
    UnboundedError,
)
from .model import (
    Constraint,
    LinExpr,
    Model,
    Sense,
    StandardForm,
    Variable,
    VarType,
    quicksum,
)
from .cuts import CoverCut, apply_cuts, find_cover_cuts
from .fallback import FallbackBackend
from .lp_format import model_to_lp_string, parse_lp_string, read_lp, write_lp
from .presolve import PresolveReport, PresolvingBackend, presolve
from .result import SolveResult, SolveStatus
from .scipy_backend import ScipyBackend, ScipyLpBackend
from .simplex import SimplexSolver

__all__ = [
    "Model",
    "Variable",
    "LinExpr",
    "Constraint",
    "VarType",
    "Sense",
    "StandardForm",
    "quicksum",
    "SolveResult",
    "SolveStatus",
    "ScipyBackend",
    "ScipyLpBackend",
    "BranchBoundSolver",
    "SimplexSolver",
    "SolverError",
    "ModelingError",
    "InfeasibleError",
    "UnboundedError",
    "SolverLimitError",
    "presolve",
    "PresolveReport",
    "PresolvingBackend",
    "FallbackBackend",
    "CoverCut",
    "find_cover_cuts",
    "apply_cuts",
    "write_lp",
    "read_lp",
    "model_to_lp_string",
    "parse_lp_string",
]
