"""Backend resilience: try a primary solver, fall back on failure.

The hourly control loop must produce *some* dispatch every invocation
period — a solver hiccup (numerical trouble in one backend, an
iteration limit, an ``ERROR`` status) must not take the data-center
network down with it. :class:`FallbackBackend` chains backends: each is
tried in order until one returns a usable answer.

A genuinely infeasible or unbounded model is *not* retried by default —
every correct backend will agree, so retrying only wastes the control
period. Statuses treated as "try the next backend" are the resource/
error ones (``ITERATION_LIMIT``, ``NODE_LIMIT``, ``ERROR``), plus any
exception escaping the backend. Set ``retry_infeasible=True`` to also
re-check claimed infeasibility (useful when a backend is known to
misreport it on badly scaled inputs — we met exactly that with HiGHS's
MILP presolve, see ``repro.core.dispatch_model``).
"""

from __future__ import annotations

import dataclasses

from ..telemetry import get_telemetry
from .model import StandardForm
from .result import SolveResult, SolveStatus

__all__ = ["FallbackBackend"]

#: Statuses after which the next backend is tried.
_RETRYABLE = (
    SolveStatus.ITERATION_LIMIT,
    SolveStatus.NODE_LIMIT,
    SolveStatus.ERROR,
)


class FallbackBackend:
    """Try each backend in order until one produces a usable result.

    Parameters
    ----------
    backends:
        Two or more backend objects (each with ``solve(StandardForm)``).
    retry_infeasible:
        Also hand claimed-infeasible results to the next backend.
    """

    def __init__(self, *backends, retry_infeasible: bool = False):
        if len(backends) < 2:
            raise ValueError("need at least two backends to fall back between")
        self.backends = backends
        self.retry_infeasible = retry_infeasible
        self.name = "fallback(" + ",".join(b.name for b in backends) + ")"

    def _retryable(self, result: SolveResult) -> bool:
        if result.status in _RETRYABLE:
            return True
        if self.retry_infeasible and result.status is SolveStatus.INFEASIBLE:
            return True
        return False

    def solve(self, sf: StandardForm) -> SolveResult:
        tel = get_telemetry()
        last: SolveResult | None = None
        errors: list[str] = []
        for backend in self.backends:
            try:
                result = backend.solve(sf)
            except Exception as exc:  # noqa: BLE001 - resilience layer
                errors.append(f"{backend.name}: {exc!r}")
                tel.counter("solver.fallback.failovers").inc()
                tel.counter(f"solver.fallback.failover.{backend.name}").inc()
                continue
            if not self._retryable(result):
                return result
            last = result
            errors.append(f"{backend.name}: {result.status.value}")
            tel.counter("solver.fallback.failovers").inc()
            tel.counter(f"solver.fallback.failover.{backend.name}").inc()
        tel.counter("solver.fallback.exhausted").inc()
        if last is not None:
            # Callers (and model-cache diagnostics) may still hold the
            # backend's own result object; report the exhausted chain on
            # a copy rather than mutating it behind their back.
            return dataclasses.replace(last, message="; ".join(errors))
        return SolveResult(
            status=SolveStatus.ERROR,
            backend=self.name,
            message="all backends raised: " + "; ".join(errors),
        )
