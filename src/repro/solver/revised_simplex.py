"""Revised simplex with a factorized basis and sparse column pricing.

The dense-tableau :class:`~repro.solver.simplex.SimplexSolver` carries
an ``m x (n + 2m)`` tableau and touches all of it on every pivot — at
dispatch-fleet scale (200 sites is ~5k rows after bound reduction) the
tableau alone is hundreds of megabytes and each pivot sweeps it. The
revised method stores only the ``m x m`` basis inverse plus the sparse
constraint columns: pivots are one rank-1 update of ``B^{-1}``, entering
columns are priced through a CSC matrix (the dispatch constraint matrix
is ~99% zeros — every constraint touches one site), and the inverse is
refactorized periodically to shed accumulated float drift.

The solver subclasses :class:`SimplexSolver` to reuse the whole
bound-reduction layer (structure cache, shift/split recovery, dual row
conventions) so results are interchangeable with the dense engine, and
it exposes the same ``solve``/``solve_warm`` API so
:class:`~repro.solver.branch_bound.BranchBoundSolver` can sit on top of
either engine unchanged. Warm tokens carry the optimal *basis* only —
re-entry refactorizes once and then re-optimizes with a handful of
dual/primal pivots, exactly like the tableau engine's warm path.

Telemetry: ``solver.revised-simplex.refactorizations`` counts basis
refreshes (periodic + warm re-entry), ``solver.revised-simplex.
pricing_passes`` counts full reduced-cost sweeps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse as _sparse

from ..telemetry import get_telemetry
from .model import StandardForm
from .result import SolveResult, SolveStatus
from .simplex import SimplexSolver, _Prepared, _Structure

__all__ = [
    "RevisedSimplexSolver",
    "RevisedWarmBasis",
    "lp_solver_for_size",
    "DENSE_TABLEAU_CELL_LIMIT",
]

_INF = float("inf")

#: Above this many dense-tableau cells the revised engine is picked by
#: :func:`lp_solver_for_size` (override with ``REPRO_DENSE_TABLEAU_CELLS``).
DENSE_TABLEAU_CELL_LIMIT = 4_000_000


def lp_solver_for_size(
    n_vars: int, n_rows: int, cell_limit: int | None = None
) -> SimplexSolver:
    """Pick the LP engine for a model of the given (pre-reduction) size.

    The dense tableau for a model with ``n_vars`` variables and
    ``n_rows`` constraints is roughly ``m x (n + m)`` with ``m ≈ n_rows
    + n_vars`` (finite upper bounds become explicit rows). Below the
    cell limit the dense engine wins — smaller constant factors, BLAS
    rank-1 pivots; above it the tableau's memory traffic dominates and
    the factorized/sparse engine takes over. The 3–13-site dispatch
    models stay dense; 100+-site fleets go revised.
    """
    if cell_limit is None:
        cell_limit = int(
            os.environ.get("REPRO_DENSE_TABLEAU_CELLS", DENSE_TABLEAU_CELL_LIMIT)
        )
    m = n_rows + n_vars
    cells = m * (n_vars + m + 1)
    if cells > cell_limit:
        return RevisedSimplexSolver()
    return SimplexSolver()


@dataclass
class RevisedWarmBasis:
    """Warm-start token of :class:`RevisedSimplexSolver`: the basis only.

    Unlike the tableau engine's :class:`~repro.solver.simplex.WarmBasis`
    there is no tableau to carry — re-entry refactorizes ``B^{-1}`` from
    the column indices, so the token is a few kilobytes and never
    mutated in place. ``refs``/``pin`` exist for the branch-and-bound
    bookkeeping protocol and are otherwise inert.
    """

    structure: _Structure = field(repr=False)
    basis: np.ndarray = field(repr=False)
    refs: int = 0
    pin: bool = False


@dataclass
class _RevisedState:
    """Final basis snapshot for warm export."""

    basis: np.ndarray
    export_ok: bool


class RevisedSimplexSolver(SimplexSolver):
    """Factorized-basis revised simplex over :class:`StandardForm` LPs.

    Parameters are those of :class:`SimplexSolver` plus
    ``refactor_every``: pivots between full refactorizations of the
    basis inverse (accuracy refresh; each refresh increments the
    ``solver.revised-simplex.refactorizations`` counter).
    """

    name = "revised-simplex"

    def __init__(
        self,
        tol: float = 1e-9,
        max_iters: int = 20_000,
        bland_after: int = 5_000,
        refactor_every: int = 64,
    ):
        super().__init__(tol=tol, max_iters=max_iters, bland_after=bland_after)
        self.refactor_every = refactor_every
        # id(structure) -> (structure, CSC, CSR of A.T); the structure
        # object is held in the value so the id cannot be recycled, and
        # identity is re-checked on lookup.
        self._sparse: dict[int, tuple[_Structure, object, object]] = {}

    # -- sparse constraint-matrix cache ---------------------------------------

    def _sparse_for(self, st: _Structure):
        hit = self._sparse.get(id(st))
        if hit is not None and hit[0] is st:
            return hit[1], hit[2]
        A_s = _sparse.csc_matrix(st.A)
        A_sT = _sparse.csr_matrix(A_s.T)
        self._sparse[id(st)] = (st, A_s, A_sT)
        if len(self._sparse) > 2 * len(self._structures) + 2:
            live = {id(s) for s in self._structures}
            for key in [k for k in self._sparse if k not in live]:
                del self._sparse[key]
        return A_s, A_sT

    # -- solve implementations ------------------------------------------------

    def _solve_impl(self, sf: StandardForm, ranging: bool) -> SolveResult:
        if ranging:
            # RHS ranging reads B^{-1} off the full final tableau; the
            # ranging callers (DC-OPF) run at dense-friendly sizes.
            return super()._solve_impl(sf, ranging)
        tel = get_telemetry()
        st = self._structure_for(sf, tel)
        prep = self._prepare_from(st, sf)
        run = _Run(self, st, prep)
        status, y, duals, iters, _state = run.cold()
        run.flush_counters(tel)
        if status is not SolveStatus.OPTIMAL:
            return SolveResult(status=status, iterations=iters, backend=self.name)
        x = self._recover(prep, y, sf)
        return SolveResult(
            status=SolveStatus.OPTIMAL,
            objective=float(sf.c @ x),
            x=x,
            duals_eq=duals[prep.n_ub : prep.n_ub + prep.n_eq],
            duals_ub=duals[: prep.n_ub],
            iterations=iters,
            backend=self.name,
        )

    def _solve_warm_impl(self, sf: StandardForm, warm, tel):
        st = self._structure_for(sf, tel)
        prep = self._prepare_from(st, sf)
        run = _Run(self, st, prep)
        out = None
        if isinstance(warm, RevisedWarmBasis):
            out = run.warm(warm)
            if tel.enabled:
                which = "reused" if out is not None else "fallback"
                tel.counter(f"solver.revised-simplex.warm.{which}").inc()
        if out is None:
            out = run.cold()
        run.flush_counters(tel)
        status, y, duals, iters, state = out
        warm_out = None
        if state is not None and state.export_ok:
            warm_out = RevisedWarmBasis(structure=st, basis=state.basis.copy())
        if status is not SolveStatus.OPTIMAL:
            return (
                SolveResult(status=status, iterations=iters, backend=self.name),
                warm_out,
            )
        x = self._recover(prep, y, sf)
        res = SolveResult(
            status=SolveStatus.OPTIMAL,
            objective=float(sf.c @ x),
            x=x,
            duals_eq=duals[prep.n_ub : prep.n_ub + prep.n_eq],
            duals_ub=duals[: prep.n_ub],
            iterations=iters,
            backend=self.name,
        )
        return res, warm_out


class _Run:
    """One revised-simplex solve over a prepared bound reduction.

    Column universe: ``[0, n)`` structural, ``[n, n+m)`` row slacks
    (enterable only on inequality rows), ``[n+m, n+2m)`` artificials —
    one per row with coefficient ``sign(b_i) * e_i`` so the initial
    basic solution ``|b|`` is feasible without flipping any row; they
    never re-enter once left.
    """

    def __init__(self, solver: RevisedSimplexSolver, st: _Structure, prep: _Prepared):
        self.solver = solver
        self.prep = prep
        self.m, self.n = prep.A.shape
        self.A_s, self.A_sT = solver._sparse_for(st)
        self.indptr = self.A_s.indptr
        self.indices = self.A_s.indices
        self.data = self.A_s.data
        self.slack_ok = ~prep.is_eq
        self.feas_tol = solver.tol * max(1.0, float(np.abs(prep.b).max(initial=0.0)))
        self.refactorizations = 0
        self.pricing_passes = 0
        self.pivots_since_refactor = 0
        self.basis: np.ndarray | None = None
        self.Binv: np.ndarray | None = None
        self.xB: np.ndarray | None = None
        self.in_basis = np.zeros(self.n + 2 * self.m, dtype=bool)
        self.art_sign = np.ones(self.m)

    def flush_counters(self, tel) -> None:
        if not tel.enabled:
            return
        if self.refactorizations:
            tel.counter("solver.revised-simplex.refactorizations").inc(
                self.refactorizations
            )
        if self.pricing_passes:
            tel.counter("solver.revised-simplex.pricing_passes").inc(
                self.pricing_passes
            )

    # -- linear algebra kernels ------------------------------------------------

    def _ftran(self, j: int) -> np.ndarray:
        """``B^{-1} @ column_j`` through the sparse column (FTRAN)."""
        if j < self.n:
            lo, hi = self.indptr[j], self.indptr[j + 1]
            idx = self.indices[lo:hi]
            if idx.size == 0:
                return np.zeros(self.m)
            return self.Binv[:, idx] @ self.data[lo:hi]
        return self.Binv[:, j - self.n].copy()

    def _refactorize(self) -> bool:
        """Rebuild ``B^{-1}`` (and the basic solution) from scratch."""
        m, n = self.m, self.n
        basis = self.basis
        B = np.zeros((m, m))
        struct = basis < n
        if struct.any():
            B[:, struct] = self.prep.A[:, basis[struct]]
        slack = np.flatnonzero((basis >= n) & (basis < n + m))
        if slack.size:
            B[basis[slack] - n, slack] = 1.0
        art = np.flatnonzero(basis >= n + m)
        if art.size:
            rows = basis[art] - n - m
            B[rows, art] = self.art_sign[rows]
        try:
            self.Binv = np.linalg.inv(B)
        except np.linalg.LinAlgError:
            return False
        if not np.isfinite(self.Binv).all():
            return False
        self.xB = self.Binv @ self.prep.b
        self.refactorizations += 1
        self.pivots_since_refactor = 0
        return True

    def _pivot(self, i: int, j: int, d: np.ndarray) -> None:
        """Replace basis row ``i`` with column ``j`` (``d = B^{-1} A_j``)."""
        piv = d[i]
        self.in_basis[self.basis[i]] = False
        self.in_basis[j] = True
        self.basis[i] = j
        theta = self.xB[i] / piv
        self.xB -= theta * d
        self.xB[i] = theta
        self.Binv[i] /= piv
        dd = d.copy()
        dd[i] = 0.0
        self.Binv -= np.outer(dd, self.Binv[i])
        self.pivots_since_refactor += 1
        if self.pivots_since_refactor >= self.solver.refactor_every:
            # Periodic accuracy refresh; on the (pathological) singular
            # case keep the product-form inverse and retry later.
            if not self._refactorize():
                self.pivots_since_refactor = 0

    # -- pricing and ratio tests -----------------------------------------------

    def _reduced_costs(self, cost: np.ndarray) -> np.ndarray:
        """Reduced costs over the enterable universe (inf = barred)."""
        y = cost[self.basis] @ self.Binv
        self.pricing_passes += 1
        n, m = self.n, self.m
        r = np.full(n + m, _INF)
        r[:n] = cost[:n] - self.A_sT @ y
        rs = cost[n : n + m] - y
        r[n:][self.slack_ok] = rs[self.slack_ok]
        r[self.in_basis[: n + m]] = _INF
        return r

    def _ratio_test(self, d: np.ndarray, bland: bool) -> int:
        tol = self.solver.tol
        art_rows = self.basis >= self.n + self.m
        elig_pos = d > tol
        # A zero-level basic artificial whose value would grow must
        # leave at theta = 0 instead (it would re-violate its row);
        # positive-level artificials (mid phase 1) follow the normal rule.
        elig_art = art_rows & (d < -tol) & (np.abs(self.xB) <= self.feas_tol)
        if not (elig_pos.any() or elig_art.any()):
            return -1
        ratios = np.full(self.m, _INF)
        ratios[elig_pos] = self.xB[elig_pos] / d[elig_pos]
        np.maximum(ratios, 0.0, out=ratios)
        ratios[elig_art] = 0.0
        i = int(np.argmin(ratios))
        if bland:
            best = ratios[i]
            ties = np.flatnonzero(ratios <= best + tol * (1 + abs(best)))
            i = int(min(ties, key=lambda k: self.basis[k]))
        return i

    # -- simplex loops ----------------------------------------------------------

    def _primal(self, cost: np.ndarray):
        sol = self.solver
        iters = 0
        while True:
            if iters >= sol.max_iters:
                return SolveStatus.ITERATION_LIMIT, iters
            r = self._reduced_costs(cost)
            if iters < sol.bland_after:
                j = int(np.argmin(r))
                if r[j] >= -sol.tol:
                    return SolveStatus.OPTIMAL, iters
            else:
                negs = np.flatnonzero(r < -sol.tol)
                if negs.size == 0:
                    return SolveStatus.OPTIMAL, iters
                j = int(negs[0])  # Bland: smallest index
            d = self._ftran(j)
            i = self._ratio_test(d, iters >= sol.bland_after)
            if i < 0:
                return SolveStatus.UNBOUNDED, iters
            self._pivot(i, j, d)
            iters += 1

    def _dual(self, cost: np.ndarray):
        """Dual simplex: restore primal feasibility from a dual-feasible basis."""
        sol = self.solver
        n, m = self.n, self.m
        iters = 0
        while True:
            if iters >= sol.max_iters:
                return SolveStatus.ITERATION_LIMIT, iters
            i = int(np.argmin(self.xB))
            if self.xB[i] >= -self.feas_tol:
                return SolveStatus.OPTIMAL, iters
            r = self._reduced_costs(cost)
            w = self.Binv[i]
            alpha = np.zeros(n + m)
            alpha[:n] = self.A_sT @ w
            alpha[n:][self.slack_ok] = w[self.slack_ok]
            cand = (alpha < -sol.tol) & ~self.in_basis[: n + m]
            if not cand.any():
                return SolveStatus.INFEASIBLE, iters
            ratios = np.full(n + m, _INF)
            rc = np.where(np.isfinite(r), np.maximum(r, 0.0), _INF)
            ratios[cand] = rc[cand] / -alpha[cand]
            j = int(np.argmin(ratios))
            d = self._ftran(j)
            self._pivot(i, j, d)
            iters += 1

    # -- entry points ------------------------------------------------------------

    def cold(self):
        """Two-phase solve from the all-slack/artificial basis."""
        m, n = self.m, self.n
        prep = self.prep
        if m == 0:
            if n and float(prep.c.min(initial=0.0)) < -self.solver.tol:
                return SolveStatus.UNBOUNDED, None, None, 0, None
            state = _RevisedState(np.empty(0, dtype=np.int64), True)
            return SolveStatus.OPTIMAL, np.zeros(n), np.zeros(0), 0, state
        b = prep.b
        self.art_sign = np.where(b < 0, -1.0, 1.0)
        art_used = prep.is_eq | (b < 0)
        rows = np.arange(m)
        self.basis = np.where(art_used, n + m + rows, n + rows).astype(np.int64)
        self.in_basis[:] = False
        self.in_basis[self.basis] = True
        self.Binv = np.diag(self.art_sign).copy()
        self.xB = self.art_sign * b
        total = 0

        if art_used.any():
            cost1 = np.zeros(n + 2 * m)
            cost1[n + m :] = 1.0
            status, iters = self._primal(cost1)
            total += iters
            if status is not SolveStatus.OPTIMAL:
                return status, None, None, total, None
            art_basic = self.basis >= n + m
            if float(self.xB[art_basic].sum()) > 1e-7:
                return SolveStatus.INFEASIBLE, None, None, total, None
            self._drive_out_artificials()

        cost2 = np.zeros(n + 2 * m)
        cost2[:n] = prep.c
        status, iters = self._primal(cost2)
        total += iters
        if status is not SolveStatus.OPTIMAL:
            return status, None, None, total, None
        return self._finish(cost2, total)

    def _drive_out_artificials(self) -> None:
        """Pivot zero-level artificials out where a replacement exists."""
        tol = self.solver.tol
        n, m = self.n, self.m
        for i in np.flatnonzero(self.basis >= n + m):
            w = self.Binv[i]
            alpha = np.zeros(n + m)
            alpha[:n] = self.A_sT @ w
            alpha[n:][self.slack_ok] = w[self.slack_ok]
            alpha[self.in_basis[: n + m]] = 0.0
            self.pricing_passes += 1
            cand = np.flatnonzero(np.abs(alpha) > tol)
            if cand.size:
                j = int(cand[0])
                d = self._ftran(j)
                if abs(d[i]) > tol:
                    self._pivot(i, j, d)
            # Degenerate redundant row: artificial stays basic at 0.

    def warm(self, warm: RevisedWarmBasis):
        """Re-solve from a previous optimal basis; None = fall back to cold."""
        n, m = self.n, self.m
        prep = self.prep
        basis = np.asarray(warm.basis)
        if m == 0 or basis.shape != (m,):
            return None
        if not ((basis >= 0) & (basis < n + m)).all():
            return None
        slack = basis >= n
        if slack.any() and not self.slack_ok[basis[slack] - n].all():
            return None
        if np.unique(basis).size != m:
            return None
        self.basis = basis.astype(np.int64, copy=True)
        self.in_basis[:] = False
        self.in_basis[self.basis] = True
        if not self._refactorize():
            return None
        cost2 = np.zeros(n + 2 * m)
        cost2[:n] = prep.c

        if float(self.xB.min(initial=0.0)) >= -self.feas_tol:
            status, iters = self._primal(cost2)
        else:
            # Dual simplex needs a dual-feasible start; a basis optimal
            # for the same c and A qualifies for any b, but check anyway
            # since the coefficients may have been re-expanded.
            r = self._reduced_costs(cost2)
            finite = np.isfinite(r)
            if finite.any() and float(r[finite].min()) < -1e-7:
                return None
            status, iters = self._dual(cost2)
            if status is SolveStatus.OPTIMAL:
                status, extra = self._primal(cost2)
                iters += extra
        if status is SolveStatus.ITERATION_LIMIT:
            return None  # let the cold path have a clean attempt
        if status is not SolveStatus.OPTIMAL:
            return status, None, None, iters, None

        # Drift guard: the refactorized chain must still satisfy
        # A y + s = b; re-solve cold when numerics degraded.
        y = np.zeros(n)
        struct = self.basis < n
        y[self.basis[struct]] = self.xB[struct]
        slack_vals = np.zeros(m)
        sl = np.flatnonzero(self.basis >= n)
        if sl.size:
            slack_vals[self.basis[sl] - n] = self.xB[sl]
        resid = prep.A @ y + slack_vals - prep.b
        scale = 1.0 + float(np.abs(prep.b).max(initial=0.0))
        if float(np.abs(resid).max(initial=0.0)) > 1e-7 * scale:
            return None
        return self._finish(cost2, iters)

    def _finish(self, cost: np.ndarray, iters: int):
        n = self.n
        y = np.zeros(n)
        struct = self.basis < n
        y[self.basis[struct]] = self.xB[struct]
        duals = cost[self.basis] @ self.Binv
        export_ok = bool((self.basis < n + self.m).all())
        state = _RevisedState(basis=self.basis, export_ok=export_ok)
        return SolveStatus.OPTIMAL, y, duals, iters, state
