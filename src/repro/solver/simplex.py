"""A dense two-phase primal simplex solver in pure NumPy.

This is the self-contained LP engine of the reproduction: it solves the
compiled :class:`~repro.solver.model.StandardForm` (ignoring
integrality — integrality is enforced by
:class:`~repro.solver.branch_bound.BranchBoundSolver` on top) without
any external solver. ``scipy.optimize.linprog`` (HiGHS) is available as
a faster drop-in via :class:`~repro.solver.scipy_backend.ScipyLpBackend`;
the two are cross-checked in the test suite on randomized LPs.

Implementation notes
--------------------
* General bounds are reduced to the textbook form ``min c@y, A y (<=|=) b,
  y >= 0``: finite lower bounds are shifted out, free variables are
  split into positive/negative parts, and finite upper bounds become
  explicit ``<=`` rows.
* A classic dense tableau is used. All row operations are vectorized
  (one rank-1 update per pivot), per the NumPy performance guidance.
* Phase 1 minimizes the sum of artificial variables; phase 2 re-prices
  with the true objective. Dantzig pricing with a Bland's-rule fallback
  (activated after an iteration threshold) guarantees termination.
* Dual multipliers for the original equality and ``<=`` rows are
  recovered from the final tableau (``y = c_B @ B^{-1}``), matching the
  SciPy sign convention, so LMPs can be computed with either engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..telemetry import get_telemetry
from ..telemetry.instrument import record_solver_result
from .model import StandardForm
from .result import SolveResult, SolveStatus

__all__ = ["SimplexSolver"]

_INF = float("inf")


@dataclass
class _TableauState:
    """Final-tableau snapshot used for RHS sensitivity ranging."""

    T: np.ndarray
    basis: np.ndarray
    slack_cols: dict[int, int]
    art_cols: dict[int, int]
    flipped: np.ndarray
    n_structural: int


@dataclass
class _Prepared:
    """Intermediate data produced by the bound-reduction step."""

    c: np.ndarray  # objective over reduced variables
    A: np.ndarray  # all rows (ub rows then eq rows then bound rows)
    b: np.ndarray
    is_eq: np.ndarray  # bool per row
    # mapping back to original variables: x[j] = shift[j] + pos_col y - neg_col y
    shift: np.ndarray
    pos_col: np.ndarray  # column index of the positive part
    neg_col: np.ndarray  # column of negative part, -1 if none
    n_ub: int  # number of original <= rows (for dual extraction)
    n_eq: int  # number of original == rows


class SimplexSolver:
    """Two-phase dense tableau simplex for LPs in :class:`StandardForm`.

    Parameters
    ----------
    tol:
        Feasibility/optimality tolerance.
    max_iters:
        Hard pivot limit; exceeding it yields
        :attr:`SolveStatus.ITERATION_LIMIT`.
    bland_after:
        Number of Dantzig pivots after which the solver switches to
        Bland's anti-cycling rule.
    """

    name = "simplex"

    def __init__(self, tol: float = 1e-9, max_iters: int = 20_000, bland_after: int = 5_000):
        self.tol = tol
        self.max_iters = max_iters
        self.bland_after = bland_after

    # -- public API -----------------------------------------------------------

    def solve(self, sf: StandardForm, ranging: bool = False) -> SolveResult:
        """Solve the LP relaxation of ``sf`` and return a result with duals.

        With ``ranging=True`` the result also carries per-constraint
        RHS sensitivity ranges: the interval of right-hand-side change
        over which the optimal basis (and therefore every dual price)
        remains valid. For the DC-OPF this answers "how much can this
        bus's load grow before the LMP changes?" directly from one
        solve.
        """
        tel = get_telemetry()
        if not tel.enabled:
            return self._solve_impl(sf, ranging)
        t0 = time.perf_counter()
        res = self._solve_impl(sf, ranging)
        record_solver_result(
            tel, self.name, res.status.value, res.iterations,
            time.perf_counter() - t0,
        )
        return res

    def _solve_impl(self, sf: StandardForm, ranging: bool) -> SolveResult:
        prep = self._reduce_bounds(sf)
        status, y, duals, iters, state = self._two_phase(prep)
        if status is not SolveStatus.OPTIMAL:
            return SolveResult(status=status, iterations=iters, backend=self.name)
        x = self._recover(prep, y, sf.n_vars)
        obj = float(sf.c @ x)
        duals_ub = duals[: prep.n_ub]
        duals_eq = duals[prep.n_ub : prep.n_ub + prep.n_eq]
        rhs_range_ub = rhs_range_eq = None
        if ranging:
            ranges = self._rhs_ranges(state)
            rhs_range_ub = ranges[: prep.n_ub]
            rhs_range_eq = ranges[prep.n_ub : prep.n_ub + prep.n_eq]
        return SolveResult(
            status=SolveStatus.OPTIMAL,
            objective=obj,
            x=x,
            duals_eq=duals_eq,
            duals_ub=duals_ub,
            iterations=iters,
            backend=self.name,
            rhs_range_eq=rhs_range_eq,
            rhs_range_ub=rhs_range_ub,
        )

    # -- bound reduction --------------------------------------------------------

    def _reduce_bounds(self, sf: StandardForm) -> _Prepared:
        n = sf.n_vars
        shift = np.zeros(n)
        pos_col = np.full(n, -1, dtype=int)
        neg_col = np.full(n, -1, dtype=int)
        col_count = 0
        ub_rows_extra: list[tuple[int, float]] = []  # (var, ub - shift)

        for j in range(n):
            lb, ub = sf.lb[j], sf.ub[j]
            if lb == -_INF:
                # Free (or upper-bounded-only) variable: split x = y+ - y-.
                pos_col[j] = col_count
                neg_col[j] = col_count + 1
                col_count += 2
                if ub < _INF:
                    ub_rows_extra.append((j, ub))
            else:
                shift[j] = lb
                pos_col[j] = col_count
                col_count += 1
                if ub < _INF:
                    ub_rows_extra.append((j, ub - lb))

        def expand(A: np.ndarray) -> np.ndarray:
            """Map an original-variable matrix to reduced columns."""
            out = np.zeros((A.shape[0], col_count))
            for j in range(n):
                col = A[:, j]
                out[:, pos_col[j]] += col
                if neg_col[j] >= 0:
                    out[:, neg_col[j]] -= col
            return out

        A_ub = expand(sf.A_ub) if sf.A_ub.size else np.zeros((sf.A_ub.shape[0], col_count))
        A_eq = expand(sf.A_eq) if sf.A_eq.size else np.zeros((sf.A_eq.shape[0], col_count))
        # Shift contributions move to the rhs: A (shift + y) <= b.
        b_ub = sf.b_ub - sf.A_ub @ shift if sf.A_ub.size else sf.b_ub.copy()
        b_eq = sf.b_eq - sf.A_eq @ shift if sf.A_eq.size else sf.b_eq.copy()

        bound_A = np.zeros((len(ub_rows_extra), col_count))
        bound_b = np.zeros(len(ub_rows_extra))
        for i, (j, rhs) in enumerate(ub_rows_extra):
            bound_A[i, pos_col[j]] = 1.0
            if neg_col[j] >= 0:
                bound_A[i, neg_col[j]] = -1.0
            bound_b[i] = rhs

        A = np.vstack([A_ub, A_eq, bound_A])
        b = np.concatenate([b_ub, b_eq, bound_b])
        is_eq = np.concatenate(
            [
                np.zeros(A_ub.shape[0], dtype=bool),
                np.ones(A_eq.shape[0], dtype=bool),
                np.zeros(bound_A.shape[0], dtype=bool),
            ]
        )

        c = np.zeros(col_count)
        for j in range(n):
            c[pos_col[j]] += sf.c[j]
            if neg_col[j] >= 0:
                c[neg_col[j]] -= sf.c[j]
        return _Prepared(
            c=c,
            A=A,
            b=b,
            is_eq=is_eq,
            shift=shift,
            pos_col=pos_col,
            neg_col=neg_col,
            n_ub=sf.A_ub.shape[0],
            n_eq=sf.A_eq.shape[0],
        )

    # -- tableau machinery --------------------------------------------------------

    def _two_phase(self, prep: _Prepared):
        """Run phase 1 + 2; return (status, y, row_duals, iterations, state).

        ``row_duals`` are the multipliers for the rows of ``prep.A`` in
        their original (unflipped) orientation; ``state`` carries the
        final tableau for sensitivity ranging (None on failure).
        """
        A = prep.A.copy()
        b = prep.b.copy()
        is_eq = prep.is_eq
        m, n = A.shape

        # Normalize to b >= 0, remembering which rows were flipped so that
        # duals can be un-flipped at the end.
        flipped = b < 0
        A[flipped] *= -1.0
        b[flipped] *= -1.0

        # Column layout: [structural (n)] [slack/surplus (per ineq)] [artificial].
        # A <= row keeps +slack and, if never flipped, the slack is an
        # initial basis column. Flipped <= rows have surplus (-1) and need
        # an artificial; equality rows always need an artificial.
        slack_cols: dict[int, int] = {}
        art_cols: dict[int, int] = {}
        next_col = n
        for i in range(m):
            if not is_eq[i]:
                slack_cols[i] = next_col
                next_col += 1
        for i in range(m):
            needs_art = is_eq[i] or flipped[i]
            if needs_art:
                art_cols[i] = next_col
                next_col += 1

        T = np.zeros((m, next_col + 1))
        T[:, :n] = A
        T[:, -1] = b
        basis = np.empty(m, dtype=int)
        for i in range(m):
            if i in slack_cols:
                T[i, slack_cols[i]] = -1.0 if flipped[i] else 1.0
            if i in art_cols:
                T[i, art_cols[i]] = 1.0
                basis[i] = art_cols[i]
            else:
                basis[i] = slack_cols[i]

        art_set = np.zeros(next_col, dtype=bool)
        for col in art_cols.values():
            art_set[col] = True

        total_iters = 0

        # Phase 1 cost: sum of artificials.
        if art_cols:
            c1 = np.zeros(next_col)
            c1[art_set] = 1.0
            status, iters = self._optimize(T, basis, c1, allow=np.ones(next_col, dtype=bool))
            total_iters += iters
            if status is not SolveStatus.OPTIMAL:
                return status, None, None, total_iters, None
            phase1_obj = float(c1[basis] @ T[:, -1])
            if phase1_obj > 1e-7:
                return SolveStatus.INFEASIBLE, None, None, total_iters, None
            # Pivot remaining artificials out of the basis when possible.
            for i in range(m):
                if art_set[basis[i]]:
                    row = T[i, :next_col]
                    candidates = np.flatnonzero((np.abs(row) > self.tol) & ~art_set)
                    if candidates.size:
                        self._pivot(T, basis, i, int(candidates[0]))
                    # Degenerate redundant row: artificial stays basic at 0.

        # Phase 2: true objective; artificial columns are barred from entering.
        c2 = np.zeros(next_col)
        c2[:n] = prep.c
        allow = ~art_set
        status, iters = self._optimize(T, basis, c2, allow)
        total_iters += iters
        if status is not SolveStatus.OPTIMAL:
            return status, None, None, total_iters, None

        y = np.zeros(n)
        for i in range(m):
            if basis[i] < n:
                y[basis[i]] = T[i, -1]

        # Dual extraction: y_row = c_B @ B^{-1}. B^{-1}'s i-th column sits
        # under the initial basis column of row i, scaled by its initial
        # coefficient (+1 artificial / +-1 slack).
        duals = np.zeros(m)
        cB = c2[basis]
        for i in range(m):
            if i in art_cols:
                col = art_cols[i]
                scale = 1.0
            else:
                col = slack_cols[i]
                scale = -1.0 if flipped[i] else 1.0
            duals[i] = float(cB @ T[:, col]) / scale
            if flipped[i]:
                duals[i] *= -1.0
        # SciPy convention: marginals are d(obj)/d(rhs); for "<= b" rows in a
        # minimization these are <= 0. Our y = cB @ B^-1 already matches
        # d(obj)/d(b) with rows in original orientation; negate to match
        # scipy's reported sign (scipy reports the negative of the classic
        # dual for ub rows and the classic equality dual for eq rows).
        row_duals = duals
        state = _TableauState(
            T=T, basis=basis, slack_cols=slack_cols, art_cols=art_cols,
            flipped=flipped, n_structural=n,
        )
        return SolveStatus.OPTIMAL, y, row_duals, total_iters, state

    def _optimize(self, T, basis, c, allow):
        """Run primal simplex pivots on tableau ``T`` for objective ``c``."""
        m = T.shape[0]
        ncols = T.shape[1] - 1
        iters = 0
        while True:
            if iters >= self.max_iters:
                return SolveStatus.ITERATION_LIMIT, iters
            cB = c[basis]
            # Reduced costs: r = c - cB @ T[:, :-1] (vectorized).
            r = c - cB @ T[:, :-1]
            r[~allow] = _INF  # barred columns never enter
            r[basis] = _INF  # basic columns have r==0; exclude for speed
            if iters < self.bland_after:
                j = int(np.argmin(r))
                if r[j] >= -self.tol:
                    return SolveStatus.OPTIMAL, iters
            else:
                negs = np.flatnonzero(r < -self.tol)
                if negs.size == 0:
                    return SolveStatus.OPTIMAL, iters
                j = int(negs[0])  # Bland: smallest index
            col = T[:, j]
            positive = col > self.tol
            if not np.any(positive):
                return SolveStatus.UNBOUNDED, iters
            ratios = np.full(m, _INF)
            ratios[positive] = T[positive, -1] / col[positive]
            i = int(np.argmin(ratios))
            if iters >= self.bland_after:
                # Bland tie-break: leaving variable with the smallest index.
                best = ratios[i]
                ties = np.flatnonzero(np.abs(ratios - best) <= self.tol * (1 + abs(best)))
                i = int(min(ties, key=lambda k: basis[k]))
            self._pivot(T, basis, i, j)
            iters += 1

    @staticmethod
    def _pivot(T: np.ndarray, basis: np.ndarray, i: int, j: int) -> None:
        """Pivot the tableau on element (i, j) with one rank-1 update."""
        T[i] /= T[i, j]
        col = T[:, j].copy()
        col[i] = 0.0
        # T -= outer(col, T[i]) updates every other row at once.
        T -= np.outer(col, T[i])
        # Clean numerical fuzz in the pivot column.
        T[:, j] = 0.0
        T[i, j] = 1.0
        basis[i] = j

    # -- sensitivity ranging ----------------------------------------------------------

    def _rhs_ranges(self, state: _TableauState) -> np.ndarray:
        """Per-row (delta_lo, delta_hi) keeping the optimal basis feasible.

        Classic RHS ranging: perturbing row ``i``'s right-hand side by
        ``delta`` moves the basic solution by ``delta * B^{-1} e_i``;
        the basis stays optimal while all basic values remain
        non-negative. ``B^{-1} e_i`` is read off the final tableau under
        row ``i``'s initial identity column (sign-corrected for flipped
        rows). Within the returned interval every dual — for the DC-OPF,
        every LMP — is provably unchanged.
        """
        T, basis = state.T, state.basis
        m = T.shape[0]
        x_b = T[:, -1]
        ranges = np.empty((m, 2))
        for i in range(m):
            if i in state.art_cols:
                col = state.art_cols[i]
                scale = 1.0
            else:
                col = state.slack_cols[i]
                scale = -1.0 if state.flipped[i] else 1.0
            u = T[:, col] / scale
            if state.flipped[i]:
                u = -u
            lo, hi = -_INF, _INF
            for j in range(m):
                if u[j] > self.tol:
                    lo = max(lo, -x_b[j] / u[j])
                elif u[j] < -self.tol:
                    hi = min(hi, -x_b[j] / u[j])
            ranges[i] = (lo, hi)
        return ranges

    # -- recovery -------------------------------------------------------------------

    @staticmethod
    def _recover(prep: _Prepared, y: np.ndarray, n_vars: int) -> np.ndarray:
        x = prep.shift.copy()
        for j in range(n_vars):
            x[j] += y[prep.pos_col[j]]
            if prep.neg_col[j] >= 0:
                x[j] -= y[prep.neg_col[j]]
        return x
