"""A dense two-phase primal simplex solver in pure NumPy.

This is the self-contained LP engine of the reproduction: it solves the
compiled :class:`~repro.solver.model.StandardForm` (ignoring
integrality — integrality is enforced by
:class:`~repro.solver.branch_bound.BranchBoundSolver` on top) without
any external solver. ``scipy.optimize.linprog`` (HiGHS) is available as
a faster drop-in via :class:`~repro.solver.scipy_backend.ScipyLpBackend`;
the two are cross-checked in the test suite on randomized LPs.

Implementation notes
--------------------
* General bounds are reduced to the textbook form ``min c@y, A y (<=|=) b,
  y >= 0``: finite lower bounds are shifted out, free variables are
  split into positive/negative parts, and finite upper bounds become
  explicit ``<=`` rows. The reduction is fully vectorized and its
  *structure* (which variables are free / upper-bounded, hence the
  column layout and the expanded ``A``) is cached across solves: inside
  branch and bound, node problems share the exact same ``c``/``A``
  arrays and differ only in bounds, so the expansion is reused and only
  the right-hand side is recomputed per node.
* A classic dense tableau is used. All row operations are vectorized
  (one rank-1 update per pivot), per the NumPy performance guidance.
* Phase 1 minimizes the sum of artificial variables; phase 2 re-prices
  with the true objective. Dantzig pricing with a Bland's-rule fallback
  (activated after an iteration threshold) guarantees termination.
* The tableau uses a *canonical* column layout — ``[structural | one
  identity column per row | extra artificials]`` — so the final tableau
  directly contains ``B^{-1}`` under the identity block regardless of
  which rows were sign-flipped. That makes dual extraction and RHS
  ranging one matrix slice, and it is what enables warm starts: a
  parent-optimal basis stays dual-feasible when only ``b`` changes
  (bound changes reduce to RHS changes under a fixed structure), so
  :meth:`SimplexSolver.solve_warm` re-solves with a handful of dual
  simplex pivots instead of two cold phases.
* Dual multipliers for the original equality and ``<=`` rows are
  recovered from the final tableau (``y = c_B @ B^{-1}``), matching the
  SciPy sign convention, so LMPs can be computed with either engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..telemetry import get_telemetry
from ..telemetry.instrument import record_solver_result
from .model import StandardForm
from .result import SolveResult, SolveStatus

try:  # BLAS rank-1 update: in-place, no temporary allocation per pivot
    from scipy.linalg.blas import dger as _dger
except ImportError:  # pragma: no cover - scipy is a hard dependency
    _dger = None

__all__ = ["SimplexSolver", "WarmBasis"]

_INF = float("inf")

#: Incremental reduced-cost updates are refreshed from scratch this often.
_REPRICE_EVERY = 64

#: Structures kept per solver instance (branch & bound needs exactly one;
#: a couple extra tolerate interleaved problems without thrash).
_STRUCT_CACHE_SIZE = 4


@dataclass
class _Structure:
    """Bound-reduction layout shared by every LP with the same pattern.

    The pattern is (shapes, which lower bounds are -inf, which upper
    bounds are finite); ``src_*`` hold the exact arrays the expansion
    was computed from, so identical-object inputs (branch-and-bound
    nodes) skip the expansion entirely.
    """

    n_vars: int
    free: np.ndarray  # bool per var: lb == -inf (split into y+ - y-)
    fin_ub: np.ndarray  # bool per var: finite ub (explicit bound row)
    pos_col: np.ndarray
    neg_col: np.ndarray  # -1 where the variable has no negative part
    bound_vars: np.ndarray  # original var index per bound row
    col_count: int
    n_ub: int
    n_eq: int
    is_eq: np.ndarray
    A: np.ndarray  # stacked reduced rows: ub, eq, bound
    c: np.ndarray
    src_c: np.ndarray = field(repr=False)
    src_A_ub: np.ndarray = field(repr=False)
    src_A_eq: np.ndarray = field(repr=False)

    @property
    def n_rows(self) -> int:
        return self.A.shape[0]


@dataclass
class WarmBasis:
    """Opaque warm-start token returned by :meth:`SimplexSolver.solve_warm`.

    Holds the final canonical tableau and basis of a previous solve.
    Valid for re-solving any LP with the same reduction structure; the
    solver validates compatibility itself and silently falls back to a
    cold solve, so callers can hand back stale tokens freely.

    ``refs``/``pin`` let a caller opt into move semantics: when no other
    outstanding reference exists (``refs == 0``) and the token is not
    pinned, the solver mutates the stored tableau in place instead of
    copying it (branch and bound hands each parent tableau to exactly
    one surviving child most of the time).
    """

    structure: _Structure = field(repr=False)
    T: np.ndarray = field(repr=False)  # (m, col_count + m + 1), canonical
    basis: np.ndarray = field(repr=False)
    refs: int = 0
    pin: bool = False


@dataclass
class _TableauState:
    """Final-tableau snapshot used for ranging and warm-basis export.

    ``T``'s columns ``[n : n+m]`` are the canonical identity block, i.e.
    ``B^{-1}`` of the final basis; ``export_ok`` is False when a
    non-canonical (extra artificial) column is still basic.
    """

    T: np.ndarray
    basis: np.ndarray
    n_structural: int
    export_ok: bool


@dataclass
class _Prepared:
    """Intermediate data produced by the bound-reduction step."""

    c: np.ndarray  # objective over reduced variables
    A: np.ndarray  # all rows (ub rows then eq rows then bound rows)
    b: np.ndarray
    is_eq: np.ndarray  # bool per row
    # mapping back to original variables: x[j] = shift[j] + pos_col y - neg_col y
    shift: np.ndarray
    pos_col: np.ndarray  # column index of the positive part
    neg_col: np.ndarray  # column of negative part, -1 if none
    n_ub: int  # number of original <= rows (for dual extraction)
    n_eq: int  # number of original == rows


class SimplexSolver:
    """Two-phase dense tableau simplex for LPs in :class:`StandardForm`.

    Parameters
    ----------
    tol:
        Feasibility/optimality tolerance.
    max_iters:
        Hard pivot limit; exceeding it yields
        :attr:`SolveStatus.ITERATION_LIMIT`.
    bland_after:
        Number of Dantzig pivots after which the solver switches to
        Bland's anti-cycling rule.
    """

    name = "simplex"

    def __init__(self, tol: float = 1e-9, max_iters: int = 20_000, bland_after: int = 5_000):
        self.tol = tol
        self.max_iters = max_iters
        self.bland_after = bland_after
        self._structures: list[_Structure] = []

    # -- public API -----------------------------------------------------------

    def solve(self, sf: StandardForm, ranging: bool = False) -> SolveResult:
        """Solve the LP relaxation of ``sf`` and return a result with duals.

        With ``ranging=True`` the result also carries per-constraint
        RHS sensitivity ranges: the interval of right-hand-side change
        over which the optimal basis (and therefore every dual price)
        remains valid. For the DC-OPF this answers "how much can this
        bus's load grow before the LMP changes?" directly from one
        solve.
        """
        tel = get_telemetry()
        if not tel.enabled:
            return self._solve_impl(sf, ranging)
        t0 = time.perf_counter()
        res = self._solve_impl(sf, ranging)
        record_solver_result(
            tel, self.name, res.status.value, res.iterations,
            time.perf_counter() - t0,
        )
        return res

    def solve_warm(
        self, sf: StandardForm, warm: WarmBasis | None = None
    ) -> tuple[SolveResult, WarmBasis | None]:
        """Solve like :meth:`solve`, reusing and exporting a warm basis.

        ``warm`` is a token from a previous ``solve_warm`` on a
        structurally similar LP (e.g. the parent node in branch and
        bound, or last hour's dispatch). When compatible, the previous
        optimal basis is refreshed with the new right-hand side and
        re-optimized with dual simplex pivots — usually a handful —
        instead of a cold two-phase solve. Incompatible or numerically
        degraded warm data falls back to a cold solve automatically;
        results are identical either way (verified by the equivalence
        test suite).

        Returns ``(result, warm_out)``; ``warm_out`` is ``None`` when
        no reusable basis is available (failed solve or a degenerate
        basis still containing an extra artificial column).
        """
        tel = get_telemetry()
        if not tel.enabled:
            return self._solve_warm_impl(sf, warm, tel)
        t0 = time.perf_counter()
        res, warm_out = self._solve_warm_impl(sf, warm, tel)
        record_solver_result(
            tel, self.name, res.status.value, res.iterations,
            time.perf_counter() - t0,
        )
        return res, warm_out

    # -- solve implementations ------------------------------------------------

    def _solve_impl(self, sf: StandardForm, ranging: bool) -> SolveResult:
        prep = self._reduce_bounds(sf)
        status, y, duals, iters, state = self._two_phase(prep)
        if status is not SolveStatus.OPTIMAL:
            return SolveResult(status=status, iterations=iters, backend=self.name)
        x = self._recover(prep, y, sf)
        obj = float(sf.c @ x)
        duals_ub = duals[: prep.n_ub]
        duals_eq = duals[prep.n_ub : prep.n_ub + prep.n_eq]
        rhs_range_ub = rhs_range_eq = None
        if ranging:
            ranges = self._rhs_ranges(state)
            rhs_range_ub = ranges[: prep.n_ub]
            rhs_range_eq = ranges[prep.n_ub : prep.n_ub + prep.n_eq]
        return SolveResult(
            status=SolveStatus.OPTIMAL,
            objective=obj,
            x=x,
            duals_eq=duals_eq,
            duals_ub=duals_ub,
            iterations=iters,
            backend=self.name,
            rhs_range_eq=rhs_range_eq,
            rhs_range_ub=rhs_range_ub,
        )

    def _solve_warm_impl(self, sf: StandardForm, warm, tel):
        st = self._structure_for(sf, tel)
        prep = self._prepare_from(st, sf)
        out = None
        if warm is not None:
            out = self._warm_attempt(st, prep, warm)
            if tel.enabled:
                which = "reused" if out is not None else "fallback"
                tel.counter(f"solver.simplex.warm.{which}").inc()
        if out is None:
            out = self._two_phase(prep)
        status, y, duals, iters, state = out
        warm_out = None
        if state is not None and state.export_ok:
            n, m = state.n_structural, state.T.shape[0]
            if state.T.shape[1] == n + m + 1:
                T_exp = state.T  # warm-path tableau is already canonical
            else:
                T_exp = np.concatenate([state.T[:, : n + m], state.T[:, -1:]], axis=1)
            warm_out = WarmBasis(structure=st, T=T_exp, basis=state.basis)
        if status is not SolveStatus.OPTIMAL:
            return (
                SolveResult(status=status, iterations=iters, backend=self.name),
                warm_out,
            )
        x = self._recover(prep, y, sf)
        res = SolveResult(
            status=SolveStatus.OPTIMAL,
            objective=float(sf.c @ x),
            x=x,
            duals_eq=duals[prep.n_ub : prep.n_ub + prep.n_eq],
            duals_ub=duals[: prep.n_ub],
            iterations=iters,
            backend=self.name,
        )
        return res, warm_out

    # -- bound reduction --------------------------------------------------------

    def _structure_for(self, sf: StandardForm, tel) -> _Structure:
        free = np.isneginf(sf.lb)
        fin_ub = np.isfinite(sf.ub)
        for k, st in enumerate(self._structures):
            if (
                st.n_vars == sf.n_vars
                and st.n_ub == sf.A_ub.shape[0]
                and st.n_eq == sf.A_eq.shape[0]
                and np.array_equal(st.free, free)
                and np.array_equal(st.fin_ub, fin_ub)
            ):
                if st.src_c is sf.c and st.src_A_ub is sf.A_ub and st.src_A_eq is sf.A_eq:
                    # Identical arrays (branch-and-bound node): full reuse.
                    if k:
                        self._structures.insert(0, self._structures.pop(k))
                    if tel.enabled:
                        tel.counter("solver.simplex.structure_cache.hit").inc()
                    return st
                # Same pattern, new coefficient values (e.g. a patched
                # dispatch model): reuse the layout, re-expand A and c.
                # A *new* structure object is created so outstanding
                # WarmBasis tokens anchored to the old one cannot be
                # misapplied to the new coefficients.
                new = self._build_structure(sf, free, fin_ub, layout=st)
                self._structures[k] = new
                if k:
                    self._structures.insert(0, self._structures.pop(k))
                if tel.enabled:
                    tel.counter("solver.simplex.structure_cache.pattern").inc()
                return new
        st = self._build_structure(sf, free, fin_ub, layout=None)
        self._structures.insert(0, st)
        del self._structures[_STRUCT_CACHE_SIZE:]
        if tel.enabled:
            tel.counter("solver.simplex.structure_cache.miss").inc()
        return st

    def _build_structure(self, sf, free, fin_ub, layout: _Structure | None) -> _Structure:
        n = sf.n_vars
        if layout is not None:
            pos_col, neg_col = layout.pos_col, layout.neg_col
            bound_vars, col_count = layout.bound_vars, layout.col_count
        else:
            width = np.where(free, 2, 1)
            pos_col = np.cumsum(width) - width
            neg_col = np.where(free, pos_col + 1, -1)
            bound_vars = np.flatnonzero(fin_ub)
            col_count = int(width.sum())

        split = np.flatnonzero(free)

        def expand(A: np.ndarray) -> np.ndarray:
            """Map an original-variable matrix to reduced columns."""
            out = np.zeros((A.shape[0], col_count))
            if A.size:
                out[:, pos_col] = A
                if split.size:
                    out[:, neg_col[split]] = -A[:, split]
            return out

        A_ub = expand(sf.A_ub)
        A_eq = expand(sf.A_eq)
        nb = bound_vars.size
        bound_A = np.zeros((nb, col_count))
        if nb:
            rows = np.arange(nb)
            bound_A[rows, pos_col[bound_vars]] = 1.0
            bf = free[bound_vars]
            if bf.any():
                bound_A[rows[bf], neg_col[bound_vars[bf]]] = -1.0

        c = np.zeros(col_count)
        c[pos_col] = sf.c
        if split.size:
            c[neg_col[split]] = -sf.c[split]

        A = np.vstack([A_ub, A_eq, bound_A])
        is_eq = np.zeros(A.shape[0], dtype=bool)
        is_eq[sf.A_ub.shape[0] : sf.A_ub.shape[0] + sf.A_eq.shape[0]] = True
        return _Structure(
            n_vars=n,
            free=free,
            fin_ub=fin_ub,
            pos_col=pos_col,
            neg_col=neg_col,
            bound_vars=bound_vars,
            col_count=col_count,
            n_ub=sf.A_ub.shape[0],
            n_eq=sf.A_eq.shape[0],
            is_eq=is_eq,
            A=A,
            c=c,
            src_c=sf.c,
            src_A_ub=sf.A_ub,
            src_A_eq=sf.A_eq,
        )

    @staticmethod
    def _prepare_from(st: _Structure, sf: StandardForm) -> _Prepared:
        """Per-solve part of the reduction: shifts and right-hand sides."""
        shift = np.where(st.free, 0.0, sf.lb)
        b_ub = sf.b_ub - sf.A_ub @ shift if sf.A_ub.size else sf.b_ub.copy()
        b_eq = sf.b_eq - sf.A_eq @ shift if sf.A_eq.size else sf.b_eq.copy()
        bound_b = sf.ub[st.bound_vars] - shift[st.bound_vars]
        return _Prepared(
            c=st.c,
            A=st.A,
            b=np.concatenate([b_ub, b_eq, bound_b]),
            is_eq=st.is_eq,
            shift=shift,
            pos_col=st.pos_col,
            neg_col=st.neg_col,
            n_ub=st.n_ub,
            n_eq=st.n_eq,
        )

    def _reduce_bounds(self, sf: StandardForm) -> _Prepared:
        return self._prepare_from(self._structure_for(sf, get_telemetry()), sf)

    # -- tableau machinery --------------------------------------------------------

    def _two_phase(self, prep: _Prepared):
        """Run phase 1 + 2; return (status, y, row_duals, iterations, state).

        ``row_duals`` are the multipliers for the rows of ``prep.A`` in
        their original (unflipped) orientation; ``state`` carries the
        final tableau for sensitivity ranging and warm-basis export
        (None on failure).

        Column layout: ``[structural (n)] [identity (m)] [extra
        artificials]``. Row ``i``'s identity column is the canonical
        unit vector ``e_i`` — a true slack for ``<=`` rows, an
        artificial for ``==`` rows — entered with the row's flip sign,
        so the final tableau's identity block *is* ``B^{-1}`` in the
        original row orientation (the flips cancel). Flipped rows
        cannot start basic on their identity column (negative sign) and
        get an extra artificial instead.
        """
        b0 = prep.b
        is_eq = prep.is_eq
        m, n = prep.A.shape

        flipped = b0 < 0
        sign = np.where(flipped, -1.0, 1.0)
        art_rows = np.flatnonzero(flipped)
        n_extra = art_rows.size
        ncols = n + m + n_extra

        T = np.zeros((m, ncols + 1))
        T[:, :n] = prep.A * sign[:, None]
        rows = np.arange(m)
        T[rows, n + rows] = sign
        if n_extra:
            T[art_rows, n + m + np.arange(n_extra)] = 1.0
        T[:, -1] = b0 * sign

        basis = n + rows.copy()
        if n_extra:
            basis[art_rows] = n + m + np.arange(n_extra)

        # Phase-1 artificials: identity columns of unflipped eq rows plus
        # every extra column. Flipped eq identity columns are barred in
        # both phases (they exist only so B^{-1} can be read off).
        art_set = np.zeros(ncols, dtype=bool)
        art_set[n + np.flatnonzero(is_eq & ~flipped)] = True
        art_set[n + m :] = True
        barred = np.zeros(ncols, dtype=bool)
        barred[n + np.flatnonzero(is_eq & flipped)] = True

        total_iters = 0

        if art_set.any():
            c1 = np.zeros(ncols)
            c1[art_set] = 1.0
            status, iters = self._optimize(T, basis, c1, allow=~barred)
            total_iters += iters
            if status is not SolveStatus.OPTIMAL:
                return status, None, None, total_iters, None
            phase1_obj = float(c1[basis] @ T[:, -1])
            if phase1_obj > 1e-7:
                return SolveStatus.INFEASIBLE, None, None, total_iters, None
            # Pivot remaining artificials out of the basis when possible.
            for i in np.flatnonzero(art_set[basis]):
                row = T[i, :ncols]
                candidates = np.flatnonzero(
                    (np.abs(row) > self.tol) & ~art_set & ~barred
                )
                if candidates.size:
                    self._pivot(T, basis, int(i), int(candidates[0]))
                # Degenerate redundant row: artificial stays basic at 0.

        # Phase 2: true objective; artificial columns are barred from entering.
        c2 = np.zeros(ncols)
        c2[:n] = prep.c
        # Identity columns of eq rows are artificials too (art_set); the
        # identity columns of ineq rows are genuine slacks and stay allowed.
        allow = ~(art_set | barred)
        status, iters = self._optimize(T, basis, c2, allow)
        total_iters += iters
        if status is not SolveStatus.OPTIMAL:
            return status, None, None, total_iters, None

        y = np.zeros(n)
        structural = basis < n
        y[basis[structural]] = T[structural, -1]

        # Dual extraction: the identity block holds B^{-1} in canonical
        # row orientation, so y_row = c_B @ B^{-1} is one slice.
        duals = c2[basis] @ T[:, n : n + m]
        state = _TableauState(
            T=T,
            basis=basis,
            n_structural=n,
            export_ok=not bool(np.any(basis >= n + m)),
        )
        return SolveStatus.OPTIMAL, y, duals, total_iters, state

    # -- warm start ---------------------------------------------------------------

    def _warm_attempt(self, st: _Structure, prep: _Prepared, warm: WarmBasis):
        """Re-solve from a previous basis; None means 'fall back to cold'.

        Two tiers:

        * same structure object (branch-and-bound nodes): the parent's
          final tableau is reused directly — only the RHS column is
          refreshed via ``B^{-1} b`` read off the identity block;
        * same dimensions but re-expanded coefficients (consecutive
          dispatch hours): the basis is refactorized against the new
          ``A`` with one dense solve.

        Then: primal-feasible ⇒ phase-2 pivots; dual-feasible ⇒ dual
        simplex; neither ⇒ cold. A residual check guards against
        numerical drift accumulated along tableau-reuse chains.
        """
        m, n = prep.A.shape
        if warm.basis.size != m or warm.T.shape != (m, n + m + 1):
            return None
        identity_tier = warm.structure is st
        if identity_tier:
            if warm.refs <= 0 and not warm.pin:
                T, basis = warm.T, warm.basis  # move: last user of this token
            else:
                T, basis = warm.T.copy(), warm.basis.copy()
            # Reading the identity block (B^{-1}) and writing only the
            # RHS column, so the in-place move is safe.
            T[:, -1] = T[:, n : n + m] @ prep.b
        else:
            if not (warm.basis < n + m).all():
                return None
            B = np.zeros((m, m))
            struct = warm.basis < n
            B[:, struct] = prep.A[:, warm.basis[struct]]
            slack_pos = np.flatnonzero(~struct)
            B[warm.basis[slack_pos] - n, slack_pos] = 1.0
            M = np.concatenate([prep.A, np.eye(m), prep.b[:, None]], axis=1)
            try:
                T = np.linalg.solve(B, M)
            except np.linalg.LinAlgError:
                return None
            basis = warm.basis.copy()
        if not np.isfinite(T).all():
            return None

        c2 = np.zeros(n + m)
        c2[:n] = prep.c
        allow = np.ones(n + m, dtype=bool)
        allow[n + np.flatnonzero(prep.is_eq)] = False
        feas_tol = self.tol * max(1.0, float(np.abs(prep.b).max(initial=0.0)))

        if float(T[:, -1].min(initial=0.0)) >= -feas_tol:
            status, iters = self._optimize(T, basis, c2, allow)
        else:
            # A basis that was optimal for the same c and A is dual
            # feasible for any b (reduced costs do not depend on b), so
            # the identity tier goes straight to dual simplex; only the
            # refactorized tier (new coefficients) needs the check.
            if not identity_tier:
                r = c2 - c2[basis] @ T[:, :-1]
                r[basis] = 0.0
                if float(r[allow].min(initial=0.0)) < -1e-7:
                    return None  # neither primal- nor dual-feasible: cold solve
            status, iters = self._dual_optimize(T, basis, c2, allow, feas_tol)
            if status is SolveStatus.OPTIMAL:
                # Polish with primal pivots (usually zero) to enforce the
                # same optimality tolerance as the cold path.
                status, extra = self._optimize(T, basis, c2, allow)
                iters += extra
        if status is SolveStatus.ITERATION_LIMIT:
            return None  # let the cold path have a clean attempt
        if status is not SolveStatus.OPTIMAL:
            return status, None, None, iters, None

        y_full = np.zeros(n + m)
        y_full[basis] = T[:, -1]
        # Drift guard: the reused/refactorized tableau must still satisfy
        # A y + s = b; re-solve cold when numerics degraded.
        resid = prep.A @ y_full[:n] + y_full[n:] - prep.b
        scale = 1.0 + float(np.abs(prep.b).max(initial=0.0))
        if float(np.abs(resid).max(initial=0.0)) > 1e-7 * scale:
            return None
        duals = c2[basis] @ T[:, n : n + m]
        state = _TableauState(T=T, basis=basis, n_structural=n, export_ok=True)
        return SolveStatus.OPTIMAL, y_full[:n], duals, iters, state

    def _dual_optimize(self, T, basis, c, allow, feas_tol):
        """Dual simplex pivots: restore primal feasibility, keep optimality.

        The entering-column ratio test preserves dual feasibility
        (reduced costs stay non-negative); no eligible column in a
        violated row proves primal infeasibility.
        """
        ncols = T.shape[1] - 1
        iters = 0
        r = c - c[basis] @ T[:, :-1]
        while True:
            if iters >= self.max_iters:
                return SolveStatus.ITERATION_LIMIT, iters
            xB = T[:, -1]
            if iters < self.bland_after:
                i = int(np.argmin(xB))
                if xB[i] >= -feas_tol:
                    return SolveStatus.OPTIMAL, iters
            else:
                negs = np.flatnonzero(xB < -feas_tol)
                if negs.size == 0:
                    return SolveStatus.OPTIMAL, iters
                i = int(min(negs, key=lambda k: basis[k]))  # Bland-style
            row = T[i, :-1]
            cand = (row < -self.tol) & allow
            cand[basis] = False
            if not cand.any():
                return SolveStatus.INFEASIBLE, iters
            ratios = np.full(ncols, _INF)
            ratios[cand] = np.maximum(r[cand], 0.0) / -row[cand]
            j = int(np.argmin(ratios))
            if iters >= self.bland_after:
                best = ratios[j]
                ties = np.flatnonzero(ratios <= best + self.tol * (1 + abs(best)))
                j = int(ties.min())
            rj = r[j]
            self._pivot(T, basis, i, j)
            iters += 1
            # Price update: the pivoted row re-prices every column at once.
            if iters % _REPRICE_EVERY:
                r -= rj * T[i, :-1]
                r[j] = 0.0
            else:  # periodic full refresh against accumulated drift
                r = c - c[basis] @ T[:, :-1]

    def _optimize(self, T, basis, c, allow):
        """Run primal simplex pivots on tableau ``T`` for objective ``c``."""
        m = T.shape[0]
        iters = 0
        # Reduced costs are maintained incrementally (one rank-1 price
        # update per pivot) with a periodic full refresh; the selection
        # works on a masked copy so the true values survive the pivot.
        r = c - c[basis] @ T[:, :-1]
        while True:
            if iters >= self.max_iters:
                return SolveStatus.ITERATION_LIMIT, iters
            rw = np.where(allow, r, _INF)  # barred columns never enter
            rw[basis] = _INF  # basic columns have r==0; exclude for speed
            if iters < self.bland_after:
                j = int(np.argmin(rw))
                if rw[j] >= -self.tol:
                    return SolveStatus.OPTIMAL, iters
            else:
                negs = np.flatnonzero(rw < -self.tol)
                if negs.size == 0:
                    return SolveStatus.OPTIMAL, iters
                j = int(negs[0])  # Bland: smallest index
            col = T[:, j]
            positive = col > self.tol
            if not np.any(positive):
                return SolveStatus.UNBOUNDED, iters
            ratios = np.full(m, _INF)
            ratios[positive] = T[positive, -1] / col[positive]
            i = int(np.argmin(ratios))
            if iters >= self.bland_after:
                # Bland tie-break: leaving variable with the smallest index.
                best = ratios[i]
                ties = np.flatnonzero(np.abs(ratios - best) <= self.tol * (1 + abs(best)))
                i = int(min(ties, key=lambda k: basis[k]))
            rj = r[j]
            self._pivot(T, basis, i, j)
            iters += 1
            if iters % _REPRICE_EVERY:
                r -= rj * T[i, :-1]
                r[j] = 0.0
            else:
                r = c - c[basis] @ T[:, :-1]

    @staticmethod
    def _pivot(T: np.ndarray, basis: np.ndarray, i: int, j: int) -> None:
        """Pivot the tableau on element (i, j) with one rank-1 update."""
        T[i] /= T[i, j]
        col = T[:, j].copy()
        col[i] = 0.0
        # T -= outer(col, T[i]) updates every other row at once. BLAS
        # ``dger`` does the rank-1 update in place (T.T of a C-ordered
        # tableau is F-ordered, which is what dger requires), avoiding a
        # tableau-sized temporary on every pivot.
        if _dger is not None and T.flags.c_contiguous:
            _dger(-1.0, T[i], col, a=T.T, overwrite_a=1)
        else:
            T -= np.outer(col, T[i])
        # Clean numerical fuzz in the pivot column.
        T[:, j] = 0.0
        T[i, j] = 1.0
        basis[i] = j

    # -- sensitivity ranging ----------------------------------------------------------

    def _rhs_ranges(self, state: _TableauState) -> np.ndarray:
        """Per-row (delta_lo, delta_hi) keeping the optimal basis feasible.

        Classic RHS ranging: perturbing row ``i``'s right-hand side by
        ``delta`` moves the basic solution by ``delta * B^{-1} e_i``;
        the basis stays optimal while all basic values remain
        non-negative. ``B^{-1}`` is the identity block of the canonical
        final tableau, so all rows range in one vectorized pass. Within
        the returned interval every dual — for the DC-OPF, every LMP —
        is provably unchanged.
        """
        T = state.T
        m = T.shape[0]
        n = state.n_structural
        U = T[:, n : n + m]  # column i = B^{-1} e_i
        x_b = T[:, -1]
        pos = U > self.tol
        neg = U < -self.tol
        with np.errstate(divide="ignore", invalid="ignore"):
            R = np.where(pos | neg, -x_b[:, None] / U, np.nan)
        lo = np.where(pos, R, -_INF).max(axis=0)
        hi = np.where(neg, R, _INF).min(axis=0)
        return np.column_stack([lo, hi])

    # -- recovery -------------------------------------------------------------------

    def _recover(self, prep: _Prepared, y: np.ndarray, sf: StandardForm) -> np.ndarray:
        x = prep.shift + y[prep.pos_col]
        split = prep.neg_col >= 0
        if split.any():
            x[split] -= y[prep.neg_col[split]]
        # Snap values within tolerance onto their bounds. Vertex solutions
        # put variables exactly at bounds in exact arithmetic; the float
        # epsilon left by the shift/split arithmetic must not leak into
        # discrete downstream consumers (a 1e-8 rps "dispatch" would
        # still provision a server).
        snap = self.tol * np.maximum(1.0, np.abs(x))
        at_lb = np.isfinite(sf.lb) & (np.abs(x - sf.lb) <= snap)
        x[at_lb] = sf.lb[at_lb]
        at_ub = np.isfinite(sf.ub) & (np.abs(x - sf.ub) <= snap) & ~at_lb
        x[at_ub] = sf.ub[at_ub]
        return x
