"""Solve statuses and result containers for the optimization layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .model import Variable

__all__ = ["SolveStatus", "SolveResult"]


class SolveStatus(enum.Enum):
    """Terminal status of an LP/MILP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    ERROR = "error"

    @property
    def ok(self) -> bool:
        """True when an optimal solution was found."""
        return self is SolveStatus.OPTIMAL


@dataclass
class SolveResult:
    """Outcome of solving a :class:`repro.solver.model.Model`.

    Attributes
    ----------
    status:
        Terminal solve status.
    objective:
        Optimal objective value in the *user's* sense (i.e. already
        negated back for maximization models). ``nan`` when not optimal.
    x:
        Optimal variable vector indexed by variable index; empty when
        not optimal.
    duals_eq, duals_ub:
        Dual multipliers (marginals) for equality and ``<=`` constraints
        in the order the constraints were added. Only populated for pure
        LP solves with backends that expose duals; MILP solves leave
        them empty. Sign convention follows ``scipy.optimize.linprog``:
        for a minimization, the marginal is the derivative of the
        optimal objective with respect to the right-hand side.
    iterations:
        Total simplex iterations (LP) or B&B nodes processed (MILP).
    gap:
        Final relative MIP gap for branch-and-bound solves, 0.0 for LPs.
    backend:
        Name of the backend that produced the result.
    """

    status: SolveStatus
    objective: float = float("nan")
    x: np.ndarray = field(default_factory=lambda: np.empty(0))
    duals_eq: np.ndarray = field(default_factory=lambda: np.empty(0))
    duals_ub: np.ndarray = field(default_factory=lambda: np.empty(0))
    iterations: int = 0
    gap: float = 0.0
    backend: str = ""
    message: str = ""
    #: RHS sensitivity ranges (simplex with ranging=True only): per
    #: constraint, the (delta_lo, delta_hi) interval of right-hand-side
    #: change over which the optimal basis — hence every dual — stays
    #: valid. None when ranging was not requested.
    rhs_range_eq: "np.ndarray | None" = None
    rhs_range_ub: "np.ndarray | None" = None

    @property
    def ok(self) -> bool:
        """True when an optimal solution was found."""
        return self.status.ok

    def value(self, item: "Variable | Mapping[int, float] | object") -> float:
        """Evaluate a variable or linear expression at the solution.

        Accepts a :class:`~repro.solver.model.Variable` or a
        :class:`~repro.solver.model.LinExpr`.
        """
        if not self.ok:
            raise ValueError(f"no solution available (status={self.status})")
        # Local import to avoid an import cycle at module load time.
        from .model import LinExpr, Variable

        if isinstance(item, Variable):
            return float(self.x[item.index])
        if isinstance(item, LinExpr):
            total = item.constant
            for idx, coef in item.coeffs.items():
                total += coef * self.x[idx]
            return float(total)
        raise TypeError(f"cannot evaluate object of type {type(item)!r}")
