"""Presolve reductions for compiled LP/MILP standard forms.

Classic, safe reductions applied before handing a
:class:`~repro.solver.model.StandardForm` to any backend:

* **fixed variables** (``lb == ub``) are substituted into the
  constraints and objective;
* **empty rows** (all-zero coefficients) are checked for consistency
  and dropped;
* **singleton rows** (one nonzero) become variable bounds;
* **redundant rows** whose maximum possible activity cannot exceed the
  rhs are dropped;
* **bound infeasibility** (``lb > ub`` after tightening) is detected
  without invoking a solver.

The reductions matter for the hourly dispatch MILPs: the activity
binaries and per-segment variables generate many singleton and fixed
patterns, and at 13+ sites the pre-reduced model solves measurably
faster. :class:`PresolvingBackend` wraps any backend with
presolve/postsolve; postsolve restores the full-length solution vector
(duals of dropped rows are zero by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .model import StandardForm
from .result import SolveResult, SolveStatus

__all__ = ["PresolveReport", "presolve", "PresolvingBackend"]

_EPS = 1e-12
_INF = float("inf")


@dataclass
class PresolveReport:
    """Outcome of :func:`presolve`.

    Attributes
    ----------
    reduced:
        The reduced standard form (``None`` when infeasibility was
        detected during presolve).
    status:
        ``OPTIMAL`` is *not* used here; ``None`` status means "solve
        the reduced problem", ``INFEASIBLE`` means presolve proved
        infeasibility.
    kept_vars:
        Indices of original variables present in the reduced model.
    fixed_values:
        Full-length vector of values for eliminated variables (NaN for
        kept ones).
    kept_ub_rows, kept_eq_rows:
        Original row indices surviving into the reduced model.
    obj_offset:
        Constant added to the reduced objective by substitutions.
    """

    reduced: StandardForm | None
    status: SolveStatus | None
    kept_vars: np.ndarray
    fixed_values: np.ndarray
    kept_ub_rows: np.ndarray
    kept_eq_rows: np.ndarray
    obj_offset: float = 0.0

    @property
    def n_fixed(self) -> int:
        return int(np.sum(~np.isnan(self.fixed_values)))

    def restore(self, x_reduced: np.ndarray) -> np.ndarray:
        """Lift a reduced-model solution back to the original variables."""
        x = self.fixed_values.copy()
        x[self.kept_vars] = x_reduced
        return x


def _max_activity(row: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> float:
    """Largest possible value of ``row @ x`` over the variable box."""
    hi = np.where(row > 0, ub, lb)
    terms = row * hi
    # 0 * inf -> nan; zero coefficients contribute nothing.
    terms[row == 0] = 0.0
    return float(np.sum(terms))


def presolve(sf: StandardForm, int_round: bool = True) -> PresolveReport:
    """Apply the reduction loop until a fixed point (or infeasibility).

    Parameters
    ----------
    sf:
        The compiled model; not mutated.
    int_round:
        Round the bounds of integer variables inward (``ceil(lb)``,
        ``floor(ub)``) — always valid, occasionally proves
        infeasibility outright.
    """
    c = sf.c.copy()
    A_ub, b_ub = sf.A_ub.copy(), sf.b_ub.copy()
    A_eq, b_eq = sf.A_eq.copy(), sf.b_eq.copy()
    lb, ub = sf.lb.copy(), sf.ub.copy()
    integrality = sf.integrality.copy()
    n = c.size

    keep_ub = np.ones(b_ub.size, dtype=bool)
    keep_eq = np.ones(b_eq.size, dtype=bool)
    fixed = np.full(n, np.nan)
    obj_offset = 0.0

    def fail() -> PresolveReport:
        return PresolveReport(
            reduced=None,
            status=SolveStatus.INFEASIBLE,
            kept_vars=np.array([], dtype=int),
            fixed_values=fixed,
            kept_ub_rows=np.flatnonzero(keep_ub),
            kept_eq_rows=np.flatnonzero(keep_eq),
        )

    if int_round:
        ints = np.flatnonzero(integrality)
        lb[ints] = np.ceil(lb[ints] - 1e-9)
        ub[ints] = np.floor(ub[ints] + 1e-9)

    changed = True
    while changed:
        changed = False
        if np.any(lb > ub + 1e-9):
            return fail()

        # Fixed variables: substitute and zero the column.
        fixable = np.flatnonzero((ub - lb <= _EPS) & np.isnan(fixed))
        for j in fixable:
            v = lb[j]
            fixed[j] = v
            obj_offset += c[j] * v
            c[j] = 0.0
            if A_ub.size:
                b_ub -= A_ub[:, j] * v
                A_ub[:, j] = 0.0
            if A_eq.size:
                b_eq -= A_eq[:, j] * v
                A_eq[:, j] = 0.0
            changed = True

        # Row scans.
        for i in np.flatnonzero(keep_ub):
            row = A_ub[i]
            nz = np.flatnonzero(np.abs(row) > _EPS)
            if nz.size == 0:
                if b_ub[i] < -1e-9:
                    return fail()
                keep_ub[i] = False
                changed = True
            elif nz.size == 1:
                j = int(nz[0])
                coef = row[j]
                bound = b_ub[i] / coef
                if coef > 0:
                    if bound < ub[j] - _EPS:
                        ub[j] = bound
                        changed = True
                else:
                    if bound > lb[j] + _EPS:
                        lb[j] = bound
                        changed = True
                keep_ub[i] = False
            else:
                if _max_activity(row, lb, ub) <= b_ub[i] + 1e-9:
                    keep_ub[i] = False  # can never bind
                    changed = True
        for i in np.flatnonzero(keep_eq):
            row = A_eq[i]
            nz = np.flatnonzero(np.abs(row) > _EPS)
            if nz.size == 0:
                if abs(b_eq[i]) > 1e-9:
                    return fail()
                keep_eq[i] = False
                changed = True
            elif nz.size == 1:
                j = int(nz[0])
                v = b_eq[i] / row[j]
                if v < lb[j] - 1e-9 or v > ub[j] + 1e-9:
                    return fail()
                lb[j] = ub[j] = v
                keep_eq[i] = False
                changed = True

        if int_round:
            ints = np.flatnonzero(integrality & np.isnan(fixed))
            new_lb = np.ceil(lb[ints] - 1e-9)
            new_ub = np.floor(ub[ints] + 1e-9)
            if np.any(new_lb != lb[ints]) or np.any(new_ub != ub[ints]):
                changed = True
            lb[ints] = new_lb
            ub[ints] = new_ub

    kept_vars = np.flatnonzero(np.isnan(fixed))
    reduced = StandardForm(
        c=c[kept_vars],
        A_ub=A_ub[np.ix_(np.flatnonzero(keep_ub), kept_vars)]
        if A_ub.size
        else np.zeros((0, kept_vars.size)),
        b_ub=b_ub[keep_ub],
        A_eq=A_eq[np.ix_(np.flatnonzero(keep_eq), kept_vars)]
        if A_eq.size
        else np.zeros((0, kept_vars.size)),
        b_eq=b_eq[keep_eq],
        lb=lb[kept_vars],
        ub=ub[kept_vars],
        integrality=integrality[kept_vars],
        obj_constant=0.0,
    )
    return PresolveReport(
        reduced=reduced,
        status=None,
        kept_vars=kept_vars,
        fixed_values=fixed,
        kept_ub_rows=np.flatnonzero(keep_ub),
        kept_eq_rows=np.flatnonzero(keep_eq),
        obj_offset=obj_offset,
    )


class PresolvingBackend:
    """Wrap any backend with presolve/postsolve.

    Caveat: rows eliminated by presolve (singletons folded into bounds,
    redundant rows) report zero duals in the postsolved result — their
    multipliers reappear as variable reduced costs, which this layer
    does not expose. Use a bare backend where exact duals matter (the
    DC-OPF does).
    """

    def __init__(self, inner=None):
        if inner is None:
            from .scipy_backend import ScipyBackend

            inner = ScipyBackend()
        self.inner = inner
        self.name = f"presolve({inner.name})"

    def solve(self, sf: StandardForm) -> SolveResult:
        report = presolve(sf)
        if report.status is SolveStatus.INFEASIBLE:
            return SolveResult(
                status=SolveStatus.INFEASIBLE,
                backend=self.name,
                message="infeasibility detected in presolve",
            )
        assert report.reduced is not None
        if report.reduced.n_vars == 0:
            # Everything fixed: the solution is the fixed vector.
            x = report.fixed_values.copy()
            return SolveResult(
                status=SolveStatus.OPTIMAL,
                objective=report.obj_offset,
                x=x,
                backend=self.name,
            )
        res = self.inner.solve(report.reduced)
        if not res.ok:
            res.backend = self.name
            return res
        x = report.restore(res.x)
        duals_ub = np.zeros(sf.A_ub.shape[0])
        if res.duals_ub.size == report.kept_ub_rows.size:
            duals_ub[report.kept_ub_rows] = res.duals_ub
        duals_eq = np.zeros(sf.A_eq.shape[0])
        if res.duals_eq.size == report.kept_eq_rows.size:
            duals_eq[report.kept_eq_rows] = res.duals_eq
        return SolveResult(
            status=SolveStatus.OPTIMAL,
            objective=res.objective + report.obj_offset,
            x=x,
            duals_eq=duals_eq,
            duals_ub=duals_ub,
            iterations=res.iterations,
            gap=res.gap,
            backend=self.name,
        )
