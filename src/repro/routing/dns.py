"""Weighted DNS request routing (the paper's dispatch mechanism).

Section III: "the dynamic request routing mechanism in the cloud-scale
data center networks dispatches the incoming requests among data
centers based on the determined request dispatching strategy ... the
Authoritative Domain Name System (DNS) is deployed to take the request
dispatcher role by mapping the request URL hostname into the IP address
of the destined data centers."

The bill capper hands the DNS layer *target fractions*; reality
deviates from them for two mechanical reasons modeled here:

* **resolution granularity** — each resolver gets one answer per TTL
  window and sends its whole client population there, so the realized
  split is a finite-sample approximation of the weights;
* **TTL caching lag** — when the capper changes the weights at the top
  of the hour, resolvers keep using cached answers until their TTL
  expires, so the old allocation bleeds into the new hour.

:class:`WeightedDnsDispatcher` simulates both effects with seeded
randomness; :func:`routing_error` summarizes how far realized fractions
land from the targets — the input for the routing-robustness study in
``tests/routing`` (the bill capper's savings survive realistic DNS
imprecision).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ResolverPopulation", "WeightedDnsDispatcher", "routing_error"]


@dataclass(frozen=True)
class ResolverPopulation:
    """A population of recursive resolvers fronting the client base.

    Attributes
    ----------
    n_resolvers:
        Distinct resolver caches (ISPs, enterprises, public DNS).
    ttl_s:
        Answer TTL; a resolver re-queries once per TTL on average.
    skew:
        Zipf-like skew of client load across resolvers (0 = uniform;
        larger = a few resolvers dominate, making the realized split
        noisier).
    """

    n_resolvers: int = 1000
    ttl_s: float = 300.0
    skew: float = 0.8

    def __post_init__(self):
        if self.n_resolvers <= 0:
            raise ValueError("need at least one resolver")
        if self.ttl_s <= 0:
            raise ValueError("TTL must be positive")
        if self.skew < 0:
            raise ValueError("skew must be >= 0")

    def client_shares(self, rng: np.random.Generator) -> np.ndarray:
        """Per-resolver share of the client load (sums to 1)."""
        ranks = np.arange(1, self.n_resolvers + 1, dtype=float)
        weights = ranks ** (-self.skew)
        rng.shuffle(weights)
        return weights / weights.sum()


class WeightedDnsDispatcher:
    """Simulates hourly weighted-DNS dispatch with TTL caching.

    Parameters
    ----------
    site_names:
        Destination data centers (answer pool).
    population:
        Resolver population model.
    seed:
        RNG seed; the realized routing is reproducible.
    """

    def __init__(
        self,
        site_names: list[str],
        population: ResolverPopulation | None = None,
        seed: int = 0,
    ):
        if not site_names:
            raise ValueError("at least one site required")
        self.site_names = list(site_names)
        self.population = population or ResolverPopulation()
        self._rng = np.random.default_rng(seed)
        self._client_share = self.population.client_shares(self._rng)
        # Current cached answer per resolver (site index), -1 = no cache.
        self._cached = np.full(self.population.n_resolvers, -1, dtype=int)
        # Per-resolver cache-expiry schedule: resolver j re-queries at
        # _next_refresh[j] and every TTL thereafter. Deadlines (not a
        # per-window Bernoulli draw) make sub-TTL windows compose: k
        # consecutive windows summing to one TTL refresh every resolver
        # exactly once, so the realized split *converges* to new
        # weights within one TTL instead of leaving a memoryless stale
        # tail — the property the streaming control plane leans on when
        # it re-dispatches every few minutes against a 300 s TTL.
        self._clock = 0.0
        self._next_refresh = self._rng.uniform(
            0.0, self.population.ttl_s, self.population.n_resolvers
        )

    # -- mechanics ---------------------------------------------------------

    @property
    def clock_s(self) -> float:
        """Simulated seconds this dispatcher has advanced through."""
        return self._clock

    def dispatch_hour(self, target_fractions: dict[str, float]) -> dict[str, float]:
        """Realize one hour of routing toward ``target_fractions``.

        Returns the realized traffic fraction per site. Resolvers whose
        cached answer expired during the hour re-query and are steered
        by the new weights; the rest keep sending to their cached site.
        With a 300 s TTL every resolver refreshes within the hour, so
        the dominant error term is resolution granularity, not lag;
        shorter horizons (see :meth:`dispatch_window`) expose the lag.
        """
        return self.dispatch_window(target_fractions, window_s=3600.0)

    def dispatch_window(
        self, target_fractions: dict[str, float], window_s: float
    ) -> dict[str, float]:
        """Realize routing over an arbitrary window (see above).

        Advances the dispatcher's clock by ``window_s``; every resolver
        whose scheduled expiry falls inside the window re-queries once
        under the *new* weights (its next expiry moves to the first
        schedule point past the window). A window spanning several TTLs
        still re-assigns each resolver once — only the final answer of
        the window carries traffic.
        """
        if window_s <= 0:
            raise ValueError("window must be positive")
        targets = np.array(
            [target_fractions.get(name, 0.0) for name in self.site_names]
        )
        if np.any(targets < 0):
            raise ValueError("negative routing fraction")
        total = targets.sum()
        if total <= 0:
            raise ValueError("routing fractions sum to zero")
        targets = targets / total

        ttl = self.population.ttl_s
        self._clock += window_s
        due = self._next_refresh <= self._clock
        never_cached = self._cached < 0
        to_assign = due | never_cached
        n_assign = int(to_assign.sum())
        if n_assign:
            answers = self._rng.choice(
                len(self.site_names), size=n_assign, p=targets
            )
            self._cached[to_assign] = answers
        if due.any():
            behind = self._clock - self._next_refresh[due]
            self._next_refresh[due] += ttl * (np.floor(behind / ttl) + 1.0)

        realized = np.zeros(len(self.site_names))
        np.add.at(realized, self._cached, self._client_share)
        return dict(zip(self.site_names, realized.tolist()))


def routing_error(
    realized: dict[str, float], target: dict[str, float]
) -> float:
    """Total-variation distance between realized and target splits."""
    keys = set(realized) | set(target)
    t_total = sum(target.get(k, 0.0) for k in keys) or 1.0
    return 0.5 * sum(
        abs(realized.get(k, 0.0) - target.get(k, 0.0) / t_total) for k in keys
    )
