"""Request-routing substrate: weighted DNS dispatch and geo latency.

The paper assumes a DNS-based dynamic request router exists (Section
III); this package models it — including its imperfections (resolution
granularity, TTL caching lag) — and the geographic latency accounting
needed to audit cost-aware routing for latency side effects.
"""

from .dns import ResolverPopulation, WeightedDnsDispatcher, routing_error
from .geo import GeoTopology, paper_geo_topology

__all__ = [
    "WeightedDnsDispatcher",
    "ResolverPopulation",
    "routing_error",
    "GeoTopology",
    "paper_geo_topology",
]
