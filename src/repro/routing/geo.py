"""Geographic client topology and latency accounting.

The paper optimizes server-side response time; the *network* leg of
latency depends on which data center a client's request lands on. This
module quantifies that leg so the cost-aware dispatch can be audited
for latency side effects:

* :class:`GeoTopology` — client regions (with traffic shares) and an
  RTT matrix to the sites;
* :meth:`GeoTopology.mean_rtt` — expected network RTT under a
  region-agnostic dispatch split (what weighted DNS produces);
* :meth:`GeoTopology.nearest_site_split` — the latency-optimal
  assignment, the natural lower bound;
* :meth:`GeoTopology.latency_penalty_ms` — how much mean RTT a
  cost-aware split gives up versus nearest-site routing.

A distance-derived default topology for the paper's three sites is
provided by :func:`paper_geo_topology` (three US regions against the
B/C/D locations, RTTs on realistic WAN scales).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GeoTopology", "paper_geo_topology"]


@dataclass(frozen=True)
class GeoTopology:
    """Client regions, their traffic shares, and RTTs to each site.

    Attributes
    ----------
    regions:
        Region names.
    region_shares:
        Fraction of global traffic from each region (sums to 1).
    sites:
        Site names.
    rtt_ms:
        Matrix ``[region, site]`` of round-trip times in milliseconds.
    """

    regions: tuple[str, ...]
    region_shares: tuple[float, ...]
    sites: tuple[str, ...]
    rtt_ms: np.ndarray

    def __post_init__(self):
        shares = np.asarray(self.region_shares, dtype=float)
        if len(self.regions) != shares.size:
            raise ValueError("one share per region required")
        if np.any(shares < 0) or abs(shares.sum() - 1.0) > 1e-9:
            raise ValueError("region shares must be >= 0 and sum to 1")
        rtt = np.asarray(self.rtt_ms, dtype=float)
        if rtt.shape != (len(self.regions), len(self.sites)):
            raise ValueError("rtt matrix must be regions x sites")
        if np.any(rtt < 0):
            raise ValueError("negative RTT")
        object.__setattr__(self, "rtt_ms", rtt)

    # -- latency under a split ------------------------------------------------

    def _split_vector(self, split: dict[str, float]) -> np.ndarray:
        vec = np.array([split.get(s, 0.0) for s in self.sites], dtype=float)
        if np.any(vec < 0):
            raise ValueError("negative split fraction")
        total = vec.sum()
        if total <= 0:
            raise ValueError("split sums to zero")
        return vec / total

    def mean_rtt(self, split: dict[str, float]) -> float:
        """Expected RTT (ms) when every region is split identically.

        This is exactly what hourly weighted DNS does: the same answer
        distribution for everyone, regardless of origin.
        """
        vec = self._split_vector(split)
        shares = np.asarray(self.region_shares)
        return float(shares @ self.rtt_ms @ vec)

    def region_aware_mean_rtt(self, assignment: dict[str, str]) -> float:
        """Mean RTT when each region is routed to one chosen site.

        ``assignment`` maps region -> site (GeoDNS-style routing). This
        is the routing model that *can* reach :meth:`min_mean_rtt`;
        plain hourly weighted DNS (:meth:`mean_rtt`) cannot, because it
        hands every region the same answer distribution.
        """
        total = 0.0
        for region, share in zip(self.regions, self.region_shares):
            site = assignment[region]
            if site not in self.sites:
                raise KeyError(f"unknown site {site!r}")
            total += share * float(
                self.rtt_ms[self.regions.index(region), self.sites.index(site)]
            )
        return total

    def nearest_site_assignment(self) -> dict[str, str]:
        """Latency-optimal GeoDNS assignment: each region to its nearest site."""
        nearest = np.argmin(self.rtt_ms, axis=1)
        return {
            region: self.sites[int(idx)]
            for region, idx in zip(self.regions, nearest)
        }

    def nearest_site_split(self) -> dict[str, float]:
        """Aggregate traffic fractions of the nearest-site assignment.

        Note: feeding these fractions back through region-agnostic
        weighted DNS does **not** recover the optimal latency — the
        fractions land on the wrong regions. Compare
        ``mean_rtt(nearest_site_split())`` against
        ``region_aware_mean_rtt(nearest_site_assignment())`` to see the
        structural gap between weighted DNS and GeoDNS.
        """
        nearest = np.argmin(self.rtt_ms, axis=1)
        split = {s: 0.0 for s in self.sites}
        for share, site_idx in zip(self.region_shares, nearest):
            split[self.sites[site_idx]] += float(share)
        return split

    def min_mean_rtt(self) -> float:
        """Mean RTT of nearest-site routing (the lower bound)."""
        nearest = np.min(self.rtt_ms, axis=1)
        return float(np.asarray(self.region_shares) @ nearest)

    def latency_penalty_ms(self, split: dict[str, float]) -> float:
        """Extra mean RTT of ``split`` over nearest-site routing."""
        return self.mean_rtt(split) - self.min_mean_rtt()


def paper_geo_topology() -> GeoTopology:
    """Three US client regions against the paper's three sites.

    RTTs follow typical intra-US WAN latencies (same region ~15 ms,
    cross-country ~70 ms). The exact values matter less than the
    structure: each site is *somebody's* nearest, so cost-aware routing
    that abandons a site always costs some region latency.
    """
    return GeoTopology(
        regions=("east", "central", "west"),
        region_shares=(0.42, 0.25, 0.33),
        sites=("DC1", "DC2", "DC3"),
        rtt_ms=np.array(
            [
                [15.0, 42.0, 70.0],
                [40.0, 16.0, 45.0],
                [72.0, 44.0, 14.0],
            ]
        ),
    )
