"""Server specifications and the linear server power model.

Section IV-B: "the power consumption of a single server is usually a
linear function of server utilization: sp = I + D * u, where I denotes
the server idle power, D denotes the server power at 100% utilization
[minus idle], and u denotes the utilization level."

The paper's Section VI-A table gives, per data center, the power drawn
at the operating utilization and the per-server processing capacity:

=============  ===========================  =========  ==============
Data center    CPU                          Power (W)  Capacity (r/s)
=============  ===========================  =========  ==============
1              2.0 GHz AMD Athlon           88.88      500
2              1.2 GHz Intel Pentium 4 630  34.00      300
3              2.9 GHz Intel Pentium D 950  49.90      725
=============  ===========================  =========  ==============

:func:`paper_server_specs` reconstructs full linear models from those
numbers by assuming the quoted power is drawn at the paper's example
operating utilization (80%) with a standard 60% idle fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ServerSpec", "paper_server_specs", "PAPER_OPERATING_UTILIZATION"]

#: The "actual server utilization level (e.g., 80%)" of Section IV-B.
PAPER_OPERATING_UTILIZATION = 0.80

#: Idle power as a fraction of full-load power, typical for the paper's
#: era of commodity servers (non-energy-proportional hardware).
_IDLE_FRACTION = 0.60


@dataclass(frozen=True)
class ServerSpec:
    """A homogeneous server model for one data center.

    Attributes
    ----------
    name:
        Label, e.g. the CPU model.
    idle_w:
        Power drawn at zero utilization (the ``I`` of sp = I + D*u).
    dynamic_w:
        Additional power at 100% utilization (the ``D``).
    service_rate:
        Request processing capacity ``mu`` in requests/second — the
        paper's "processing capacity coefficient".
    """

    name: str
    idle_w: float
    dynamic_w: float
    service_rate: float

    def __post_init__(self):
        if self.idle_w < 0 or self.dynamic_w < 0:
            raise ValueError(f"server {self.name}: negative power")
        if self.service_rate <= 0:
            raise ValueError(f"server {self.name}: service rate must be positive")

    @property
    def peak_w(self) -> float:
        """Power at 100% utilization."""
        return self.idle_w + self.dynamic_w

    def power_w(self, utilization: float | np.ndarray) -> float | np.ndarray:
        """Power at the given utilization (``sp = I + D * u``).

        Accepts scalars or arrays; utilization must lie in [0, 1].
        """
        u = np.asarray(utilization, dtype=float)
        if np.any(u < 0) or np.any(u > 1 + 1e-9):
            raise ValueError("utilization must lie in [0, 1]")
        out = self.idle_w + self.dynamic_w * u
        return float(out) if np.isscalar(utilization) else out

    @classmethod
    def from_operating_point(
        cls,
        name: str,
        power_at_op_w: float,
        service_rate: float,
        operating_utilization: float = PAPER_OPERATING_UTILIZATION,
        idle_fraction: float = _IDLE_FRACTION,
    ) -> "ServerSpec":
        """Build a linear model from a single (utilization, power) point.

        Used to expand the paper's single per-server wattage into the
        ``I + D*u`` model: ``I = idle_fraction * peak`` and
        ``power_at_op = I + (peak - I) * u_op`` jointly determine the
        peak.
        """
        if not 0 < operating_utilization <= 1:
            raise ValueError("operating utilization must be in (0, 1]")
        if not 0 <= idle_fraction < 1:
            raise ValueError("idle fraction must be in [0, 1)")
        # power_at_op = peak * (f + (1 - f) * u)
        peak = power_at_op_w / (
            idle_fraction + (1.0 - idle_fraction) * operating_utilization
        )
        idle = idle_fraction * peak
        return cls(name, idle_w=idle, dynamic_w=peak - idle, service_rate=service_rate)


def paper_server_specs() -> list[ServerSpec]:
    """The three per-site server models of Section VI-A."""
    rows = [
        ("2.0GHz AMD Athlon", 88.88, 500.0),
        ("1.2GHz Intel Pentium 4 630", 34.00, 300.0),
        ("2.9GHz Intel Pentium D 950", 49.90, 725.0),
    ]
    return [
        ServerSpec.from_operating_point(name, watts, rate) for name, watts, rate in rows
    ]
