"""Per-site local optimizer (the inner loop of Figure 2).

Each data center runs a local optimizer that, given the request rate the
central bill capper dispatched to it, "dynamically minimize[s] the
number of active servers in the data center based on the performance
model" (Section III). :class:`LocalOptimizer` wraps a
:class:`~repro.datacenter.datacenter.DataCenter` and adds the site-level
power-cap enforcement of [Fan et al., Power provisioning]: if the
dispatched rate would push the site beyond its contracted cap ``Ps_i``,
the optimizer sheds the excess (the global dispatcher should never let
that happen — the MILP carries the same constraint — but defense in
depth protects against model mismatch between the affine decision model
and the exact stepped power model).
"""

from __future__ import annotations

from dataclasses import dataclass

from .datacenter import CapacityError, DataCenter, Provisioning

__all__ = ["LocalDecision", "LocalOptimizer"]


@dataclass(frozen=True)
class LocalDecision:
    """Outcome of one local-optimizer invocation."""

    served_rps: float
    shed_rps: float
    provisioning: Provisioning

    @property
    def power_mw(self) -> float:
        return self.provisioning.total_power_mw

    @property
    def capped(self) -> bool:
        """True when the power cap forced load shedding."""
        return self.shed_rps > 0.0


class LocalOptimizer:
    """Minimum-server provisioning with hard power-cap enforcement."""

    def __init__(self, datacenter: DataCenter):
        self.dc = datacenter

    #: Relative interval width at which the bisection stops. The
    #: returned rate then differs from the fixed-60-iteration answer by
    #: at most ``tol * hi`` — far inside the 1e-6 relative contract the
    #: regression test pins — while saving ~half the exact-model probes.
    BISECTION_REL_TOL = 1e-9
    _MAX_BISECTION_ITERS = 60

    def max_rate_within_cap(self) -> float:
        """Largest rate whose *exact* power stays within the site cap.

        Binary search over the stepped power model (the exact model is
        monotone in the rate), refined from the affine estimate.
        Converges when the bracket shrinks below
        ``BISECTION_REL_TOL`` relative to the initial upper bound;
        iterations spent are reported on the telemetry counter
        ``datacenter.local_optimizer.bisection_iters``.
        """
        dc = self.dc
        hi = dc.max_throughput_rps()
        if dc.power_cap_mw < float("inf"):
            # The affine estimate may undershoot the exact model: leave
            # slack above it and let the bisection tighten downward.
            hi = min(hi * 1.25 + 1.0, hi + 1e6)
        if dc.power_mw(hi) <= dc.power_cap_mw:
            return hi
        lo = 0.0
        tol = max(self.BISECTION_REL_TOL * hi, 1e-12)
        iters = 0
        while hi - lo > tol and iters < self._MAX_BISECTION_ITERS:
            mid = 0.5 * (lo + hi)
            try:
                ok = dc.power_mw(mid) <= dc.power_cap_mw
            except CapacityError:
                ok = False
            if ok:
                lo = mid
            else:
                hi = mid
            iters += 1
        from ..telemetry import get_telemetry

        tel = get_telemetry()
        if tel.enabled:
            tel.counter("datacenter.local_optimizer.bisection_iters").inc(iters)
        return lo

    def decide(self, dispatched_rps: float) -> LocalDecision:
        """Provision for ``dispatched_rps``, shedding load if the cap binds."""
        if dispatched_rps < 0:
            raise ValueError("dispatched rate must be >= 0")
        served = dispatched_rps
        try:
            prov = self.dc.provision(served)
            over_cap = prov.total_power_mw > self.dc.power_cap_mw + 1e-12
        except CapacityError:
            over_cap = True
        if over_cap:
            served = min(served, self.max_rate_within_cap())
            prov = self.dc.provision(served)
        return LocalDecision(
            served_rps=served,
            shed_rps=dispatched_rps - served,
            provisioning=prov,
        )
