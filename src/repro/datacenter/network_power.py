"""Networking power model (paper eq. (6)).

``p_networking = A * esp + B * asp + C * csp`` where (A, B, C) are the
active edge/aggregation/core switch counts from the fat-tree model and
(esp, asp, csp) the constant per-switch powers — "today's network
elements are not energy proportional, e.g., a switch going from zero to
full traffic increases power by less than 8%" (Section IV-B), so switch
power is load-independent and only the *number* of powered switches
varies with workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fattree import FatTree, SwitchCounts

__all__ = ["SwitchPowers", "NetworkPowerModel", "paper_switch_powers"]


@dataclass(frozen=True)
class SwitchPowers:
    """Per-switch constant power draws in watts."""

    edge_w: float
    aggregation_w: float
    core_w: float

    def __post_init__(self):
        if min(self.edge_w, self.aggregation_w, self.core_w) < 0:
            raise ValueError("switch powers must be >= 0")


def paper_switch_powers() -> list[SwitchPowers]:
    """The (edge, aggregate, core) switch powers of Section VI-A.

    "(184, 184, 240), (170, 170, 260), and (175, 175, 240) Watts for the
    three simulated data centers" (the OCR of the paper drops leading
    '1's; values follow Heller et al.'s ElasticTree switch measurements).
    """
    return [
        SwitchPowers(184.0, 184.0, 240.0),
        SwitchPowers(170.0, 170.0, 260.0),
        SwitchPowers(175.0, 175.0, 240.0),
    ]


@dataclass(frozen=True)
class NetworkPowerModel:
    """Networking power of one data center: topology + switch powers."""

    topology: FatTree
    powers: SwitchPowers

    def power_w(self, n_active_servers: int) -> float:
        """Exact stepped networking power for ``n_active_servers``."""
        counts = self.topology.active_switches(n_active_servers)
        return self._power_of(counts)

    def _power_of(self, counts: SwitchCounts) -> float:
        return (
            counts.edge * self.powers.edge_w
            + counts.aggregation * self.powers.aggregation_w
            + counts.core * self.powers.core_w
        )

    def full_power_w(self) -> float:
        """Power with the whole fabric on (all switches active)."""
        return self._power_of(self.topology.total_switches())

    def watts_per_server(self) -> float:
        """Smooth per-active-server networking power.

        The amortized slope used for the MILP's affine power model; the
        exact stepped :meth:`power_w` is used when evaluating realized
        cost in the simulator.
        """
        edge, agg, core = self.topology.switches_per_server()
        return (
            edge * self.powers.edge_w
            + agg * self.powers.aggregation_w
            + core * self.powers.core_w
        )
