"""Heterogeneous data centers (the paper's Section IX extension).

The paper assumes homogeneous servers per site and names heterogeneity
— "multiple service rates exist due to the heterogeneity in hardware"
from "repair, replacement, and expansion" — as future work. This module
implements it:

* a :class:`ServerPool` is a homogeneous group of servers inside a site;
* a :class:`HeterogeneousDataCenter` holds several pools and runs a
  greedy *efficiency-ordered* local optimizer: requests fill the pool
  with the lowest energy-per-request first, spilling into less
  efficient pools as load grows. For linear power and a shared
  response-time target this greedy order is optimal (exchange
  argument: moving a request from a more efficient pool to a less
  efficient one can only raise power).

The class is duck-type compatible with
:class:`~repro.datacenter.datacenter.DataCenter` for everything the
dispatchers and simulator touch (``provision``, ``power_mw``,
``affine_power``, ``max_throughput_rps``, ``power_cap_mw``, ``name``),
so heterogeneous sites drop straight into :class:`repro.core.Site`.
The greedy power curve is piecewise linear and convex; the single
affine decision model uses the *secant* slope at full capacity, which
upper-bounds the true curve (safe for budget decisions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .cooling import CoolingModel
from .datacenter import AffinePower, CapacityError, Provisioning, WATTS_PER_MW
from .fattree import fat_tree_for_servers
from .network_power import NetworkPowerModel, SwitchPowers
from .queueing import QueueParams, required_servers
from .server import PAPER_OPERATING_UTILIZATION, ServerSpec

__all__ = ["ServerPool", "HeterogeneousDataCenter"]


@dataclass(frozen=True)
class ServerPool:
    """A homogeneous group of servers inside a heterogeneous site."""

    spec: ServerSpec
    count: int

    def __post_init__(self):
        if self.count <= 0:
            raise ValueError("pool must contain at least one server")

    def watts_per_rps(self, utilization: float) -> float:
        """Energy efficiency at the operating utilization (W per req/s)."""
        return self.spec.power_w(utilization) / (utilization * self.spec.service_rate)

    def capacity_rps(self, utilization: float) -> float:
        """Throughput of the whole pool at the utilization cap."""
        return self.count * utilization * self.spec.service_rate


@dataclass(frozen=True)
class HeterogeneousDataCenter:
    """A site whose fleet mixes several server generations.

    Attributes mirror :class:`~repro.datacenter.DataCenter` where they
    overlap; ``pools`` replaces the single ``servers`` spec +
    ``max_servers`` pair.
    """

    name: str
    pools: tuple[ServerPool, ...]
    switch_powers: SwitchPowers
    cooling: CoolingModel
    target_response_s: float
    power_cap_mw: float = float("inf")
    queue: QueueParams = field(default_factory=QueueParams)
    utilization_cap: float = PAPER_OPERATING_UTILIZATION

    def __post_init__(self):
        if not self.pools:
            raise ValueError("at least one server pool required")
        if not 0 < self.utilization_cap <= 1:
            raise ValueError("utilization_cap must be in (0, 1]")
        if self.power_cap_mw <= 0:
            raise ValueError("power cap must be positive")
        for pool in self.pools:
            if self.target_response_s <= 1.0 / pool.spec.service_rate:
                raise ValueError(
                    f"{self.name}: response target unattainable for pool "
                    f"{pool.spec.name!r}"
                )

    # -- structure ---------------------------------------------------------

    @property
    def max_servers(self) -> int:
        return sum(p.count for p in self.pools)

    @property
    def network(self) -> NetworkPowerModel:
        return NetworkPowerModel(
            topology=fat_tree_for_servers(self.max_servers),
            powers=self.switch_powers,
        )

    def pools_by_efficiency(self) -> list[ServerPool]:
        """Pools sorted from most to least energy-efficient."""
        u = self.utilization_cap
        return sorted(self.pools, key=lambda p: p.watts_per_rps(u))

    # -- greedy local optimizer ------------------------------------------------

    def split_load(self, lam_rps: float) -> list[tuple[ServerPool, float]]:
        """Greedy efficiency-ordered split of ``lam_rps`` across pools.

        Returns (pool, rate) pairs, most efficient first; raises
        :class:`CapacityError` when the fleet cannot absorb the load.
        """
        if lam_rps < 0:
            raise ValueError("arrival rate must be >= 0")
        u = self.utilization_cap
        remaining = lam_rps
        split: list[tuple[ServerPool, float]] = []
        for pool in self.pools_by_efficiency():
            take = min(remaining, pool.capacity_rps(u))
            split.append((pool, take))
            remaining -= take
        if remaining > 1e-9:
            raise CapacityError(
                f"{self.name}: {lam_rps:.0f} req/s exceeds heterogeneous "
                f"fleet capacity {self.max_throughput_rps():.0f}"
            )
        return split

    def provision(self, lam_rps: float) -> Provisioning:
        """Provision every pool for its greedy share (exact model)."""
        if lam_rps == 0:
            return Provisioning(0, 0.0, 0.0, 0.0, 0.0)
        total_servers = 0
        server_w = 0.0
        weighted_util = 0.0
        for pool, rate in self.split_load(lam_rps):
            if rate <= 0:
                continue
            n_qos = required_servers(
                rate, pool.spec.service_rate, self.target_response_s, self.queue
            )
            n_util = math.ceil(
                rate / (self.utilization_cap * pool.spec.service_rate) - 1e-9
            )
            n = int(min(max(n_qos, n_util, 1), pool.count))
            util = rate / (n * pool.spec.service_rate)
            total_servers += n
            server_w += n * pool.spec.power_w(min(util, 1.0))
            weighted_util += util * n
        network_w = self.network.power_w(total_servers)
        cooling_w = self.cooling.power_w(server_w + network_w)
        mean_util = weighted_util / total_servers if total_servers else 0.0
        return Provisioning(total_servers, mean_util, server_w, network_w, cooling_w)

    def power_w(self, lam_rps: float) -> float:
        return self.provision(lam_rps).total_power_w

    def power_mw(self, lam_rps: float) -> float:
        return self.power_w(lam_rps) / WATTS_PER_MW

    # -- decision models ----------------------------------------------------------

    def affine_power(self) -> AffinePower:
        """Secant affine model: conservative for the convex greedy curve.

        Slope = power at full fleet capacity / capacity. Because the
        greedy curve is convex and passes through the origin, the
        secant lies on or above it everywhere — budget decisions made
        with it never underestimate the realized draw at full load.
        """
        u = self.utilization_cap
        capacity = sum(p.capacity_rps(u) for p in self.pools)
        server_w = sum(p.count * p.spec.power_w(u) for p in self.pools)
        per_fleet_w = (
            server_w + self.network.watts_per_server() * self.max_servers
        ) * self.cooling.overhead_factor
        return AffinePower(per_fleet_w / capacity / WATTS_PER_MW, 0.0)

    def piecewise_power(self) -> list[tuple[float, float]]:
        """The exact smooth curve: (capacity breakpoint rps, slope MW/rps).

        One segment per pool in efficiency order; useful for building a
        tighter (piecewise-linear convex) decision model.
        """
        u = self.utilization_cap
        overhead = self.cooling.overhead_factor
        net_per_server = self.network.watts_per_server()
        out = []
        cumulative = 0.0
        for pool in self.pools_by_efficiency():
            per_server_w = pool.spec.power_w(u) + net_per_server
            slope = overhead * per_server_w / (u * pool.spec.service_rate)
            cumulative += pool.capacity_rps(u)
            out.append((cumulative, slope / WATTS_PER_MW))
        return out

    def fleet_throughput_rps(self) -> float:
        """Largest rate the pools can serve (ignoring power caps)."""
        u = self.utilization_cap
        return sum(p.capacity_rps(u) for p in self.pools)

    def max_throughput_rps(self) -> float:
        affine = self.affine_power()
        return min(
            self.fleet_throughput_rps(),
            affine.max_rate_for_power(self.power_cap_mw),
        )

    def peak_power_mw(self) -> float:
        u = self.utilization_cap
        server_w = sum(p.count * p.spec.power_w(u) for p in self.pools)
        network_w = self.network.power_w(self.max_servers)
        return (server_w + network_w) * self.cooling.overhead_factor / WATTS_PER_MW
