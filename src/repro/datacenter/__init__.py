"""Data-center substrate: servers, queueing, networking, cooling, sites.

Implements the paper's Section IV-B models — linear server power, G/G/m
response time (Allen-Cunneen), k-ary fat-tree switching power, and
cooling-efficiency-based cooling power — composed into the per-site
:class:`DataCenter` and its :class:`LocalOptimizer`.
"""

from .battery import Battery, BatteryState
from .batched import SiteBank, supports_batching
from .cooling import PAPER_COOLING_EFFICIENCIES, CoolingModel, synthetic_coe_trace
from .erlang import (
    ErlangCache,
    erlang_b,
    erlang_c,
    mmm_required_servers,
    mmm_response_time,
)
from .datacenter import (
    AffinePower,
    CapacityError,
    DataCenter,
    Provisioning,
    WATTS_PER_MW,
)
from .fattree import FatTree, SwitchCounts, fat_tree_for_servers
from .heterogeneous import HeterogeneousDataCenter, ServerPool
from .local_optimizer import LocalDecision, LocalOptimizer
from .network_power import NetworkPowerModel, SwitchPowers, paper_switch_powers
from .queueing import QueueParams, max_arrival_rate, required_servers, response_time
from .server import PAPER_OPERATING_UTILIZATION, ServerSpec, paper_server_specs

__all__ = [
    "ServerSpec",
    "paper_server_specs",
    "PAPER_OPERATING_UTILIZATION",
    "QueueParams",
    "response_time",
    "required_servers",
    "max_arrival_rate",
    "FatTree",
    "SwitchCounts",
    "fat_tree_for_servers",
    "SwitchPowers",
    "NetworkPowerModel",
    "paper_switch_powers",
    "CoolingModel",
    "PAPER_COOLING_EFFICIENCIES",
    "synthetic_coe_trace",
    "DataCenter",
    "Provisioning",
    "AffinePower",
    "CapacityError",
    "WATTS_PER_MW",
    "LocalOptimizer",
    "LocalDecision",
    "HeterogeneousDataCenter",
    "ServerPool",
    "Battery",
    "BatteryState",
    "erlang_b",
    "erlang_c",
    "mmm_response_time",
    "mmm_required_servers",
    "ErlangCache",
    "SiteBank",
    "supports_batching",
]
