"""Batched (NumPy) evaluation of the per-site physical models.

The simulator's realized-billing loop and the benchmarks evaluate the
exact stepped power model — integral servers, stepped fat-tree switch
counts, cooling overhead — once per site per hour, through layers of
small Python objects. :class:`SiteBank` hoists every per-site constant
(server coefficients, queueing headroom, fat-tree geometry, switch
powers, cooling efficiency) into arrays at construction and evaluates
whole ``(site, request-rate)`` grids in single vectorized calls.

The arithmetic mirrors the scalar classes operation for operation —
same expressions, same association order, same ``ceil(x - 1e-9)``
guards — so results are **bit-identical** to the scalar path; the
equivalence is pinned on the paper's 13-site setup by
``tests/datacenter/test_batched.py``. The scalar classes remain the
reference implementation (and the fallback for heterogeneous sites,
which expose no single ``ServerSpec``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from .datacenter import WATTS_PER_MW, CapacityError, DataCenter, Provisioning

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["SiteBank", "supports_batching"]


def supports_batching(dc: DataCenter) -> bool:
    """True when ``dc`` is a homogeneous site the bank can vectorize."""
    return getattr(dc, "servers", None) is not None


class SiteBank:
    """Per-site constants stacked for batched physics evaluation.

    All methods accept rate arrays shaped ``(n_sites,)`` (one point per
    site) or ``(n_sites, n_candidates)`` (a grid of candidate rates per
    site) and return arrays of the same shape.
    """

    def __init__(self, datacenters: Sequence[DataCenter]):
        if not datacenters:
            raise ValueError("at least one data center required")
        for dc in datacenters:
            if not supports_batching(dc):
                raise ValueError(
                    f"{dc.name}: heterogeneous sites have no single server "
                    "spec; use the scalar path"
                )
        self.names = tuple(dc.name for dc in datacenters)
        self.n_sites = len(datacenters)
        arr = lambda f: np.array([f(dc) for dc in datacenters], dtype=float)

        # Server model: sp = I + D * u, mu requests/s per server.
        self.idle_w = arr(lambda dc: dc.servers.idle_w)
        self.dynamic_w = arr(lambda dc: dc.servers.dynamic_w)
        self.mu = arr(lambda dc: dc.servers.service_rate)
        self.utilization_cap = arr(lambda dc: dc.utilization_cap)
        self.max_servers = arr(lambda dc: dc.max_servers)
        self.power_cap_mw = arr(lambda dc: dc.power_cap_mw)

        # Queueing: n_qos = ceil((lam + K/(Rs - 1/mu)) / mu - 1e-9).
        # Same two-float quotient the scalar required_servers computes.
        self.queue_k = arr(lambda dc: dc.queue.k)
        self.target_response_s = arr(lambda dc: dc.target_response_s)
        service = 1.0 / self.mu
        self.headroom = self.queue_k / (self.target_response_s - service)
        self.ucap_mu = self.utilization_cap * self.mu

        # Fat-tree geometry and switch powers.
        trees = [dc.network.topology for dc in datacenters]
        self.servers_per_edge = np.array(
            [t.servers_per_edge_switch for t in trees], dtype=float
        )
        self.edge_per_pod = np.array([t.edge_per_pod for t in trees], dtype=float)
        self.agg_per_pod = np.array([t.agg_per_pod for t in trees], dtype=float)
        self.n_core = np.array([t.n_core for t in trees], dtype=float)
        self.n_pods = np.array([t.n_pods for t in trees], dtype=float)
        self.edge_w = arr(lambda dc: dc.switch_powers.edge_w)
        self.agg_w = arr(lambda dc: dc.switch_powers.aggregation_w)
        self.core_w = arr(lambda dc: dc.switch_powers.core_w)

        self.coe = arr(lambda dc: dc.cooling.coe)
        # Per-site constants the affine decision model builds on,
        # computed by the scalar reference once (trivially identical).
        self.watts_per_server = arr(lambda dc: dc.network.watts_per_server())
        self.fleet_rate_rps = arr(lambda dc: dc.fleet_throughput_rps())

    @classmethod
    def from_sites(cls, sites) -> "SiteBank":
        """Build from :class:`repro.core.Site` objects."""
        return cls([s.datacenter for s in sites])

    # -- provisioning (exact stepped model) ---------------------------------

    def _cols(self, rates: np.ndarray):
        """Broadcast helper: per-site constants against the rate grid."""
        if rates.ndim == 1:
            return lambda a: a
        return lambda a: a[:, None]

    def required_servers(self, rates_rps, validate: bool = True) -> np.ndarray:
        """Minimum active servers per (site, rate) point.

        Mirrors :meth:`DataCenter.required_servers`: the larger of the
        QoS fleet and the utilization-cap fleet, at least 1 whenever the
        rate is positive, 0 at rate 0.
        """
        rates = np.asarray(rates_rps, dtype=float)
        if np.any(rates < 0):
            raise ValueError("arrival rate must be >= 0")
        col = self._cols(rates)
        n_qos = np.ceil((rates + col(self.headroom)) / col(self.mu) - 1e-9)
        n_util = np.ceil(rates / col(self.ucap_mu) - 1e-9)
        n = np.maximum(np.maximum(n_qos, n_util), 1.0)
        n = np.where(rates == 0.0, 0.0, n)
        if validate and np.any(n > col(self.max_servers)):
            over = np.argwhere(n > col(self.max_servers))
            site = int(over[0][0])
            raise CapacityError(
                f"{self.names[site]}: rate needs more than the fleet of "
                f"{int(self.max_servers[site])} servers"
            )
        return n

    def network_power_w(self, n_servers) -> np.ndarray:
        """Stepped fat-tree power per (site, server-count) point."""
        n = np.asarray(n_servers, dtype=float)
        col = self._cols(n)
        edge = np.ceil(n / col(self.servers_per_edge))
        pods = np.ceil(edge / col(self.edge_per_pod))
        agg = pods * col(self.agg_per_pod)
        core = np.maximum(
            1.0, np.ceil(col(self.n_core) * pods / col(self.n_pods))
        )
        power = (
            edge * col(self.edge_w)
            + agg * col(self.agg_w)
            + core * col(self.core_w)
        )
        return np.where(n == 0.0, 0.0, power)

    def provision_arrays(self, rates_rps, coe=None, validate: bool = True):
        """Batched :meth:`DataCenter.provision`.

        Returns ``(n, util, server_w, network_w, cooling_w)`` arrays.
        ``coe`` overrides the per-site cooling efficiency (weather
        traces); shape ``(n_sites,)``.
        """
        rates = np.asarray(rates_rps, dtype=float)
        col = self._cols(rates)
        n = self.required_servers(rates, validate=validate)
        active = n > 0.0
        denom = np.where(active, n * col(self.mu), 1.0)
        util = np.where(active, rates / denom, 0.0)
        server_w = np.where(
            active, n * (col(self.idle_w) + col(self.dynamic_w) * util), 0.0
        )
        network_w = self.network_power_w(n)
        coe_arr = self.coe if coe is None else np.asarray(coe, dtype=float)
        cooling_w = (server_w + network_w) / col(coe_arr)
        return n, util, server_w, network_w, cooling_w

    def power_mw(self, rates_rps, coe=None, validate: bool = True) -> np.ndarray:
        """Batched :meth:`DataCenter.power_mw` (exact stepped model)."""
        n, util, server_w, network_w, cooling_w = self.provision_arrays(
            rates_rps, coe=coe, validate=validate
        )
        return (server_w + network_w + cooling_w) / WATTS_PER_MW

    def provisioning(self, i: int, n, util, server_w, network_w,
                     cooling_w) -> Provisioning:
        """Materialize site ``i``'s row as a scalar :class:`Provisioning`."""
        return Provisioning(
            n_servers=int(n[i]),
            utilization=float(util[i]),
            server_power_w=float(server_w[i]),
            network_power_w=float(network_w[i]),
            cooling_power_w=float(cooling_w[i]),
        )

    # -- queueing -----------------------------------------------------------

    def response_time(self, rates_rps, n_servers) -> np.ndarray:
        """Batched simplified Allen-Cunneen response time (seconds).

        ``R = 1/mu + K / (n mu - lam)``; ``inf`` where unstable, bare
        service time at zero load, 0.0 where no servers are active
        (matching the simulator's convention for idle sites).
        """
        rates = np.asarray(rates_rps, dtype=float)
        n = np.asarray(n_servers, dtype=float)
        col = self._cols(rates)
        capacity = n * col(self.mu)
        service = 1.0 / col(self.mu)
        with np.errstate(divide="ignore", invalid="ignore"):
            r = service + col(self.queue_k) / (capacity - rates)
        r = np.where(rates >= capacity, np.inf, r)
        r = np.where(rates == 0.0, service, r)
        return np.where(n == 0.0, 0.0, r)

    # -- smooth (affine) decision model -------------------------------------

    def affine(self, coe=None):
        """Batched :meth:`DataCenter.affine_power`.

        Returns ``(slope_mw_per_rps, intercept_mw)`` arrays. ``coe``
        overrides the cooling efficiencies (weather-varying hours).
        """
        coe_arr = self.coe if coe is None else np.asarray(coe, dtype=float)
        u = self.utilization_cap
        per_server_w = (
            self.idle_w + self.dynamic_w * u
        ) + self.watts_per_server
        overhead = 1.0 + 1.0 / coe_arr
        slope_w = overhead * per_server_w / (u * self.mu)
        headroom_servers = self.queue_k / (
            (self.target_response_s - 1.0 / self.mu) * self.mu
        )
        intercept_w = overhead * per_server_w * headroom_servers
        return slope_w / WATTS_PER_MW, intercept_w / WATTS_PER_MW

    def max_throughput_rps(self, coe=None) -> np.ndarray:
        """Batched :meth:`DataCenter.max_throughput_rps`."""
        slope, intercept = self.affine(coe=coe)
        power_rate = np.where(
            self.power_cap_mw <= intercept,
            0.0,
            (self.power_cap_mw - intercept) / slope,
        )
        return np.minimum(self.fleet_rate_rps, power_rate)
