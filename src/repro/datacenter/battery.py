"""Battery / UPS energy storage for data centers.

The paper's related work (Urgaonkar et al., SIGMETRICS'11; Govindan et
al., ISCA'11) explores "tapping into stored energy" to cut power bills.
This module provides the device model used by the day-ahead storage
planner in :mod:`repro.core.storage`: a simple energy reservoir with
power limits and charge/discharge efficiencies.

Sign conventions: charging draws extra power *from the grid*;
discharging offsets grid draw. State of charge (SOC) is tracked in MWh.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Battery", "BatteryState"]


@dataclass(frozen=True)
class Battery:
    """A stationary battery installation at one site.

    Attributes
    ----------
    capacity_mwh:
        Usable energy capacity.
    max_charge_mw, max_discharge_mw:
        Power limits (grid side for charge, load side for discharge).
    charge_efficiency, discharge_efficiency:
        Fractions of energy retained on the way in / out; their product
        is the round-trip efficiency (typical UPS strings: ~0.81).
    """

    capacity_mwh: float
    max_charge_mw: float
    max_discharge_mw: float
    charge_efficiency: float = 0.9
    discharge_efficiency: float = 0.9

    def __post_init__(self):
        if self.capacity_mwh <= 0:
            raise ValueError("capacity must be positive")
        if self.max_charge_mw <= 0 or self.max_discharge_mw <= 0:
            raise ValueError("power limits must be positive")
        for eff in (self.charge_efficiency, self.discharge_efficiency):
            if not 0 < eff <= 1:
                raise ValueError("efficiencies must be in (0, 1]")

    @property
    def round_trip_efficiency(self) -> float:
        return self.charge_efficiency * self.discharge_efficiency

    def initial_state(self, soc_fraction: float = 0.5) -> "BatteryState":
        """A fresh state at ``soc_fraction`` of capacity."""
        if not 0 <= soc_fraction <= 1:
            raise ValueError("soc_fraction must be in [0, 1]")
        return BatteryState(self, soc_mwh=self.capacity_mwh * soc_fraction)


@dataclass
class BatteryState:
    """Mutable battery state for step-by-step simulation."""

    battery: Battery
    soc_mwh: float

    def charge(self, grid_mw: float, hours: float = 1.0) -> float:
        """Charge from ``grid_mw`` for ``hours``; returns MW actually drawn.

        Clamped by the power limit and the remaining headroom.
        """
        if grid_mw < 0:
            raise ValueError("charge power must be >= 0")
        mw = min(grid_mw, self.battery.max_charge_mw)
        headroom = self.battery.capacity_mwh - self.soc_mwh
        mw = min(mw, headroom / (self.battery.charge_efficiency * hours))
        self.soc_mwh += mw * hours * self.battery.charge_efficiency
        return mw

    def discharge(self, load_mw: float, hours: float = 1.0) -> float:
        """Discharge to serve ``load_mw``; returns MW actually delivered."""
        if load_mw < 0:
            raise ValueError("discharge power must be >= 0")
        mw = min(load_mw, self.battery.max_discharge_mw)
        available = self.soc_mwh * self.battery.discharge_efficiency / hours
        mw = min(mw, available)
        self.soc_mwh -= mw * hours / self.battery.discharge_efficiency
        self.soc_mwh = max(0.0, self.soc_mwh)
        return mw

    @property
    def soc_fraction(self) -> float:
        return self.soc_mwh / self.battery.capacity_mwh
