"""G/G/m queueing model of a data center (Allen-Cunneen approximation).

Section IV-B models each data center as a single G/G/m queue: ``m``
homogeneous servers with service rate ``mu`` each, fed by a stream of
``lambda`` requests/second with squared coefficients of variation
``CA2`` (inter-arrival times) and ``CB2`` (request sizes). The
Allen-Cunneen approximation for the mean response time is

.. math::

    R = \\frac{1}{\\mu}
        + \\frac{C_A^2 + C_B^2}{2}
          \\cdot \\frac{\\rho^{\\sqrt{2(n+1)}-1}}{n \\mu - \\lambda}

(the classic ``P_m``-based form; the paper then simplifies using
``rho ~= 1`` — every active server kept busy by the local optimizer —
to ``R = 1/mu + K / (n mu - lambda)`` with ``K = (CA2 + CB2)/2``, the
form also used by Lin et al. for right-sizing). Both forms are
implemented; the simplified one admits the closed-form inverse
:func:`required_servers` that the local optimizer and the MILP
coefficients build on:

.. math::

    n(\\lambda) = \\left\\lceil \\frac{\\lambda + K/(R_s - 1/\\mu)}{\\mu}
    \\right\\rceil .
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["QueueParams", "response_time", "required_servers", "max_arrival_rate"]


@dataclass(frozen=True)
class QueueParams:
    """Traffic variability parameters of the G/G/m model.

    ``ca2``/``cb2`` are the squared coefficients of variation of request
    inter-arrival times and sizes; (1, 1) recovers the M/M/m-like case
    the paper's examples use.
    """

    ca2: float = 1.0
    cb2: float = 1.0

    def __post_init__(self):
        if self.ca2 < 0 or self.cb2 < 0:
            raise ValueError("squared coefficients of variation must be >= 0")

    @property
    def k(self) -> float:
        """The waiting-time coefficient ``K = (CA2 + CB2) / 2``."""
        return 0.5 * (self.ca2 + self.cb2)


def response_time(
    lam: float,
    n_servers: float,
    mu: float,
    params: QueueParams = QueueParams(),
    simplified: bool = True,
) -> float:
    """Mean response time (seconds) of the G/G/m data-center queue.

    Parameters
    ----------
    lam:
        Arrival rate in requests/second (aggregate at the data center).
    n_servers:
        Number of active servers ``m`` (may be fractional in the
        relaxed/continuous model).
    mu:
        Per-server service rate in requests/second.
    params:
        Traffic variability.
    simplified:
        When true (default), use the paper's ``rho ~= 1`` form
        ``R = 1/mu + K/(n mu - lam)``; otherwise the full Allen-Cunneen
        expression with the ``rho^{sqrt(2(n+1))-1}`` factor.

    Returns
    -------
    float
        Mean response time; ``inf`` when the queue is unstable
        (``lam >= n * mu``).
    """
    if lam < 0:
        raise ValueError("arrival rate must be >= 0")
    if n_servers <= 0 or mu <= 0:
        raise ValueError("n_servers and mu must be positive")
    capacity = n_servers * mu
    if lam >= capacity:
        return float("inf")
    if lam == 0.0:
        return 1.0 / mu
    service = 1.0 / mu
    if simplified:
        return service + params.k / (capacity - lam)
    rho = lam / capacity
    exponent = math.sqrt(2.0 * (n_servers + 1.0)) - 1.0
    return service + params.k * rho**exponent / (capacity - lam)


def required_servers(
    lam: float,
    mu: float,
    target_response: float,
    params: QueueParams = QueueParams(),
    integral: bool = True,
) -> float:
    """Minimum servers meeting a response-time target (paper eq. (3) inverted).

    Solves ``1/mu + K/(n mu - lam) <= Rs`` for the smallest ``n``:
    ``n = (lam + K / (Rs - 1/mu)) / mu``. This is what each site's
    local optimizer computes every invocation period.

    Parameters
    ----------
    lam:
        Arrival rate, requests/second.
    mu:
        Per-server service rate, requests/second.
    target_response:
        The QoS set point ``Rs`` in seconds; must exceed the bare
        service time ``1/mu``, otherwise no finite fleet suffices.
    integral:
        Round up to whole servers (default); the continuous value is
        used to build the MILP's affine power coefficients.

    Returns
    -------
    float
        Server count (``>= 1`` whenever ``lam > 0``; 0 for ``lam == 0``).
    """
    if lam < 0:
        raise ValueError("arrival rate must be >= 0")
    if mu <= 0:
        raise ValueError("mu must be positive")
    service = 1.0 / mu
    if target_response <= service:
        raise ValueError(
            f"target response {target_response}s does not exceed the bare "
            f"service time {service}s; no number of servers can meet it"
        )
    if lam == 0.0:
        return 0.0
    n = (lam + params.k / (target_response - service)) / mu
    if integral:
        return float(math.ceil(n - 1e-9))
    return n


def max_arrival_rate(
    n_servers: float,
    mu: float,
    target_response: float,
    params: QueueParams = QueueParams(),
) -> float:
    """Largest arrival rate ``n`` servers can serve within the QoS target.

    The inverse of :func:`required_servers` in the other direction:
    ``lam_max = n mu - K / (Rs - 1/mu)`` (clamped at 0). Used to turn a
    site's power cap into a throughput cap.
    """
    if n_servers < 0:
        raise ValueError("n_servers must be >= 0")
    if mu <= 0:
        raise ValueError("mu must be positive")
    service = 1.0 / mu
    if target_response <= service:
        raise ValueError("target response does not exceed the service time")
    lam = n_servers * mu - params.k / (target_response - service)
    return max(0.0, float(lam))
