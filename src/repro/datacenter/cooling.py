"""Cooling power model (paper eq. (7)).

The paper assumes an outside-air ("free cooling") strategy with a
*cooling efficiency* ``coe`` — "the heat being removed by the cooling
systems ... relative to the power consumed by the systems. A lower
temperature of the external air around the data center means a higher
value of coe and more efficient cooling."

With that definition, removing the heat produced by ``p_IT`` watts of
IT equipment consumes ``p_cooling = p_IT / coe`` — the coefficient-of-
performance form of the Ahmad & Vijaykumar model the paper cites. (The
paper's eq. (7) typesets the relation as a product; a product with
``coe > 1`` would make *more efficient* cooling draw *more* power,
contradicting the definition in the same paragraph, so the quotient
form is implemented. The paper's cooling efficiencies 1.94/1.39/1.74
then give cooling overheads of 51%/72%/57% of IT power — PUE 1.5-1.7,
consistent with 2012-era facilities.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CoolingModel", "PAPER_COOLING_EFFICIENCIES", "synthetic_coe_trace"]

#: Section VI-B: "we refer to the cooling efficiencies as 1.94, 1.39,
#: and 1.74 for the three data centers".
PAPER_COOLING_EFFICIENCIES = (1.94, 1.39, 1.74)


@dataclass(frozen=True)
class CoolingModel:
    """Cooling power as a function of IT (server + networking) power.

    Attributes
    ----------
    coe:
        Cooling efficiency; higher is more efficient (colder outside
        air). Must be positive.
    """

    coe: float

    def __post_init__(self):
        if self.coe <= 0:
            raise ValueError("cooling efficiency must be positive")

    def power_w(self, it_power_w: float) -> float:
        """Cooling power needed to remove ``it_power_w`` of heat."""
        if it_power_w < 0:
            raise ValueError("IT power must be >= 0")
        return it_power_w / self.coe

    @property
    def overhead_factor(self) -> float:
        """Total-power multiplier: ``p_IT * overhead_factor`` includes cooling."""
        return 1.0 + 1.0 / self.coe

    @property
    def pue(self) -> float:
        """Power usage effectiveness implied by the model (IT + cooling only)."""
        return self.overhead_factor


def synthetic_coe_trace(
    hours: int,
    base_coe: float,
    *,
    daily_amplitude: float = 0.15,
    noise: float = 0.02,
    seed: int = 0,
) -> np.ndarray:
    """Hourly cooling-efficiency trace driven by outside-air temperature.

    "A lower temperature of the external air around the data center
    means a higher value of coe and more efficient cooling"
    (Section IV-B) — so the trace peaks overnight (cold) and dips in
    the mid-afternoon heat. Used by the weather-varying extension of
    :class:`repro.core.Site`.

    Parameters
    ----------
    hours:
        Trace length.
    base_coe:
        Daily mean efficiency (e.g. the paper's per-site constants).
    daily_amplitude:
        Relative swing of the day/night cycle.
    noise:
        Relative sigma of multiplicative weather noise.
    seed:
        RNG seed.
    """
    if hours <= 0:
        raise ValueError("hours must be positive")
    if base_coe <= 0:
        raise ValueError("base_coe must be positive")
    if not 0 <= daily_amplitude < 1:
        raise ValueError("daily_amplitude must be in [0, 1)")
    rng = np.random.default_rng(seed)
    t = np.arange(hours)
    # Coldest ~5am, hottest ~3pm: efficiency peaks where temperature dips.
    cycle = np.cos(2.0 * np.pi * (t % 24 - 5.0) / 24.0)
    trace = base_coe * (1.0 + daily_amplitude * cycle)
    trace *= 1.0 + rng.normal(0.0, noise, size=hours)
    return np.maximum(trace, 0.1 * base_coe)
