"""Exact M/M/m queueing (Erlang C) for validating the Allen-Cunneen model.

The paper's response-time model is the Allen-Cunneen *approximation*
for G/G/m queues. For the special case of Poisson arrivals and
exponential service (CA2 = CB2 = 1) the exact answer is classical
Erlang-C, so this module provides the ground truth the test suite
checks the approximation against:

* :func:`erlang_b` / :func:`erlang_c` — blocking and waiting
  probabilities, computed with the numerically stable iterative
  recurrence (no factorials, works for hundreds of thousands of
  servers);
* :func:`mmm_response_time` — exact mean response time
  ``1/mu + C(m, a) / (m mu - lambda)``;
* :func:`mmm_required_servers` — exact minimal fleet for a response
  target, by upward search from the utilization floor.
"""

from __future__ import annotations

import math
from collections import OrderedDict

__all__ = [
    "erlang_b",
    "erlang_c",
    "mmm_response_time",
    "mmm_required_servers",
    "ErlangCache",
]


class ErlangCache:
    """Memo of the Erlang-B recurrence per offered load.

    The recurrence ``B(k) = a B(k-1) / (k + a B(k-1))`` is a prefix
    computation: ``B(m)`` for a larger ``m`` extends the same sequence.
    Per-hour queueing evaluations — especially the upward fleet search
    of :func:`mmm_required_servers`, which probes ``m, m+1, m+2, ...``
    at one fixed load — kept recomputing the whole prefix from scratch.
    This cache keeps, per offered load, the recurrence terms computed so
    far and extends them incrementally, making each probe O(1) instead
    of O(m).

    Bounded LRU on the offered-load key; telemetry counters
    ``datacenter.erlang_cache.hit`` / ``.miss`` track the reuse rate
    (a hit is any call that reuses at least one cached term).
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._terms: OrderedDict[float, list[float]] = OrderedDict()

    def erlang_b(self, m: int, offered_load: float) -> float:
        """Cached :func:`erlang_b` — identical recurrence, memoized."""
        if m < 0:
            raise ValueError("m must be >= 0")
        if offered_load < 0:
            raise ValueError("offered load must be >= 0")
        a = float(offered_load)
        terms = self._terms.get(a)
        from ..telemetry import get_telemetry

        tel = get_telemetry()
        if terms is None:
            terms = self._terms[a] = [1.0]  # B(0)
            while len(self._terms) > self.maxsize:
                self._terms.popitem(last=False)
            if tel.enabled:
                tel.counter("datacenter.erlang_cache.miss").inc()
        else:
            self._terms.move_to_end(a)
            if tel.enabled:
                tel.counter("datacenter.erlang_cache.hit").inc()
        b = terms[-1]
        for k in range(len(terms), m + 1):
            b = a * b / (k + a * b)
            terms.append(b)
        return terms[m]

    def clear(self) -> None:
        self._terms.clear()


#: Process-wide default cache used by the module-level functions.
_DEFAULT_CACHE = ErlangCache()


def erlang_b(m: int, offered_load: float) -> float:
    """Erlang-B blocking probability for ``m`` servers at load ``a``.

    Iterative recurrence: ``B(0) = 1``,
    ``B(k) = a B(k-1) / (k + a B(k-1))`` — numerically stable for any
    ``m`` (each step stays in [0, 1]). Recurrence prefixes are memoized
    per offered load (see :class:`ErlangCache`); results are identical
    to the uncached scan, which :func:`_erlang_b_uncached` retains for
    the equivalence tests.
    """
    return _DEFAULT_CACHE.erlang_b(m, offered_load)


def _erlang_b_uncached(m: int, offered_load: float) -> float:
    """Reference implementation: the plain recurrence scan."""
    if m < 0:
        raise ValueError("m must be >= 0")
    if offered_load < 0:
        raise ValueError("offered load must be >= 0")
    b = 1.0
    for k in range(1, m + 1):
        b = offered_load * b / (k + offered_load * b)
    return b


def erlang_c(m: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait (M/M/m).

    Requires a stable queue (``offered_load < m``); returns 1.0 at the
    stability boundary.
    """
    if m <= 0:
        raise ValueError("m must be >= 1")
    if offered_load < 0:
        raise ValueError("offered load must be >= 0")
    if offered_load >= m:
        return 1.0
    rho = offered_load / m
    b = erlang_b(m, offered_load)
    return b / (1.0 - rho * (1.0 - b))


def mmm_response_time(lam: float, m: int, mu: float) -> float:
    """Exact mean response time of an M/M/m queue (seconds).

    ``R = 1/mu + C(m, lam/mu) / (m mu - lam)``; ``inf`` when unstable.
    """
    if lam < 0:
        raise ValueError("arrival rate must be >= 0")
    if m <= 0 or mu <= 0:
        raise ValueError("m and mu must be positive")
    if lam >= m * mu:
        return math.inf
    if lam == 0:
        return 1.0 / mu
    c = erlang_c(m, lam / mu)
    return 1.0 / mu + c / (m * mu - lam)


def mmm_required_servers(lam: float, mu: float, target_response: float) -> int:
    """Exact minimal M/M/m fleet meeting a mean-response-time target."""
    if lam < 0:
        raise ValueError("arrival rate must be >= 0")
    if mu <= 0:
        raise ValueError("mu must be positive")
    if target_response <= 1.0 / mu:
        raise ValueError("target must exceed the bare service time")
    if lam == 0:
        return 0
    m = max(1, math.ceil(lam / mu))
    while mmm_response_time(lam, m, mu) > target_response:
        m += 1
    return m
