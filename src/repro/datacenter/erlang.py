"""Exact M/M/m queueing (Erlang C) for validating the Allen-Cunneen model.

The paper's response-time model is the Allen-Cunneen *approximation*
for G/G/m queues. For the special case of Poisson arrivals and
exponential service (CA2 = CB2 = 1) the exact answer is classical
Erlang-C, so this module provides the ground truth the test suite
checks the approximation against:

* :func:`erlang_b` / :func:`erlang_c` — blocking and waiting
  probabilities, computed with the numerically stable iterative
  recurrence (no factorials, works for hundreds of thousands of
  servers);
* :func:`mmm_response_time` — exact mean response time
  ``1/mu + C(m, a) / (m mu - lambda)``;
* :func:`mmm_required_servers` — exact minimal fleet for a response
  target, by upward search from the utilization floor.
"""

from __future__ import annotations

import math

__all__ = ["erlang_b", "erlang_c", "mmm_response_time", "mmm_required_servers"]


def erlang_b(m: int, offered_load: float) -> float:
    """Erlang-B blocking probability for ``m`` servers at load ``a``.

    Iterative recurrence: ``B(0) = 1``,
    ``B(k) = a B(k-1) / (k + a B(k-1))`` — numerically stable for any
    ``m`` (each step stays in [0, 1]).
    """
    if m < 0:
        raise ValueError("m must be >= 0")
    if offered_load < 0:
        raise ValueError("offered load must be >= 0")
    b = 1.0
    for k in range(1, m + 1):
        b = offered_load * b / (k + offered_load * b)
    return b


def erlang_c(m: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait (M/M/m).

    Requires a stable queue (``offered_load < m``); returns 1.0 at the
    stability boundary.
    """
    if m <= 0:
        raise ValueError("m must be >= 1")
    if offered_load < 0:
        raise ValueError("offered load must be >= 0")
    if offered_load >= m:
        return 1.0
    rho = offered_load / m
    b = erlang_b(m, offered_load)
    return b / (1.0 - rho * (1.0 - b))


def mmm_response_time(lam: float, m: int, mu: float) -> float:
    """Exact mean response time of an M/M/m queue (seconds).

    ``R = 1/mu + C(m, lam/mu) / (m mu - lam)``; ``inf`` when unstable.
    """
    if lam < 0:
        raise ValueError("arrival rate must be >= 0")
    if m <= 0 or mu <= 0:
        raise ValueError("m and mu must be positive")
    if lam >= m * mu:
        return math.inf
    if lam == 0:
        return 1.0 / mu
    c = erlang_c(m, lam / mu)
    return 1.0 / mu + c / (m * mu - lam)


def mmm_required_servers(lam: float, mu: float, target_response: float) -> int:
    """Exact minimal M/M/m fleet meeting a mean-response-time target."""
    if lam < 0:
        raise ValueError("arrival rate must be >= 0")
    if mu <= 0:
        raise ValueError("mu must be positive")
    if target_response <= 1.0 / mu:
        raise ValueError("target must exceed the bare service time")
    if lam == 0:
        return 0
    m = max(1, math.ceil(lam / mu))
    while mmm_response_time(lam, m, mu) > target_response:
        m += 1
    return m
