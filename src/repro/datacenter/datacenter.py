"""The per-site data-center model: servers + network + cooling power.

Combines the submodels of this package into the paper's eq. (4):
``p_i = p_server + p_networking + p_cooling``, all driven by the request
rate ``lambda_i`` the bill capper assigns to the site.

Two views of the same physics are exposed:

* :meth:`DataCenter.provision` / :meth:`DataCenter.power_w` — the
  *exact* stepped model (integral servers, stepped switch counts) used
  by the simulator to evaluate realized power and cost;
* :meth:`DataCenter.affine_power` — the *smooth* affine approximation
  ``p_i(lambda) = a * lambda + b`` used to keep the hourly optimization
  a MILP (Section IV-C keeps the pricing steps as the only
  integrality source).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .cooling import CoolingModel
from .fattree import fat_tree_for_servers
from .network_power import NetworkPowerModel, SwitchPowers
from .queueing import QueueParams, required_servers
from .server import PAPER_OPERATING_UTILIZATION, ServerSpec

__all__ = ["CapacityError", "Provisioning", "AffinePower", "DataCenter"]

WATTS_PER_MW = 1e6


class CapacityError(ValueError):
    """A request rate exceeds what the site can serve within QoS/power."""


@dataclass(frozen=True)
class Provisioning:
    """Local-optimizer outcome for one invocation period at one site."""

    n_servers: int
    utilization: float
    server_power_w: float
    network_power_w: float
    cooling_power_w: float

    @property
    def total_power_w(self) -> float:
        return self.server_power_w + self.network_power_w + self.cooling_power_w

    @property
    def total_power_mw(self) -> float:
        return self.total_power_w / WATTS_PER_MW


@dataclass(frozen=True)
class AffinePower:
    """Smooth power model ``p(lambda) = slope * lambda + intercept``.

    ``slope`` in MW per (request/second); ``intercept`` in MW, incurred
    only when the site serves any load (the MILP gates it on an
    activity binary).
    """

    slope_mw_per_rps: float
    intercept_mw: float

    def power_mw(self, lam_rps: float) -> float:
        if lam_rps < 0:
            raise ValueError("arrival rate must be >= 0")
        if lam_rps == 0:
            return 0.0
        return self.slope_mw_per_rps * lam_rps + self.intercept_mw

    def max_rate_for_power(self, power_mw: float) -> float:
        """Largest rate whose modeled power stays within ``power_mw``."""
        if power_mw <= self.intercept_mw:
            return 0.0
        return (power_mw - self.intercept_mw) / self.slope_mw_per_rps


@dataclass(frozen=True)
class DataCenter:
    """One geographically distinct data center (site *i* of the paper).

    Attributes
    ----------
    name:
        Site label.
    servers:
        Homogeneous server model (Section IX discusses the homogeneity
        assumption; heterogeneous sites are an extension, see
        :mod:`repro.datacenter.heterogeneous`).
    max_servers:
        Physical fleet size (paper: "up to 300,000 servers").
    switch_powers:
        Per-switch power draws of the site's fat-tree fabric.
    cooling:
        Cooling-efficiency model.
    target_response_s:
        The QoS set point ``Rs_i`` in seconds.
    power_cap_mw:
        The supplier-imposed cap ``Ps_i`` on the site's draw (constraint
        (b) of the optimization problems).
    queue:
        Traffic-variability parameters of the G/G/m model.
    utilization_cap:
        Operating utilization ceiling for active servers; the local
        optimizer provisions at least ``lambda / (cap * mu)`` servers so
        realized utilization matches the paper's "actual server
        utilization level (e.g., 80%)".
    """

    name: str
    servers: ServerSpec
    max_servers: int
    switch_powers: SwitchPowers
    cooling: CoolingModel
    target_response_s: float
    power_cap_mw: float = float("inf")
    queue: QueueParams = field(default_factory=QueueParams)
    utilization_cap: float = PAPER_OPERATING_UTILIZATION

    def __post_init__(self):
        if self.max_servers <= 0:
            raise ValueError("max_servers must be positive")
        if not 0 < self.utilization_cap <= 1:
            raise ValueError("utilization_cap must be in (0, 1]")
        if self.power_cap_mw <= 0:
            raise ValueError("power cap must be positive")
        if self.target_response_s <= 1.0 / self.servers.service_rate:
            raise ValueError(
                "target response time must exceed the per-request service time"
            )

    # -- derived structures ----------------------------------------------------

    @property
    def network(self) -> NetworkPowerModel:
        """Fat-tree network model sized for the fleet."""
        return NetworkPowerModel(
            topology=fat_tree_for_servers(self.max_servers),
            powers=self.switch_powers,
        )

    # -- local optimizer (exact stepped model) -----------------------------------

    def required_servers(self, lam_rps: float) -> int:
        """Minimum active servers for ``lam_rps`` (QoS + utilization cap)."""
        if lam_rps < 0:
            raise ValueError("arrival rate must be >= 0")
        if lam_rps == 0:
            return 0
        n_qos = required_servers(
            lam_rps, self.servers.service_rate, self.target_response_s, self.queue
        )
        n_util = math.ceil(
            lam_rps / (self.utilization_cap * self.servers.service_rate) - 1e-9
        )
        n = int(max(n_qos, n_util, 1))
        if n > self.max_servers:
            raise CapacityError(
                f"{self.name}: {lam_rps:.0f} req/s needs {n} servers "
                f"(> fleet of {self.max_servers})"
            )
        return n

    def provision(self, lam_rps: float) -> Provisioning:
        """Run the local optimizer: fewest servers, then the power bill."""
        n = self.required_servers(lam_rps)
        if n == 0:
            return Provisioning(0, 0.0, 0.0, 0.0, 0.0)
        util = lam_rps / (n * self.servers.service_rate)
        server_w = n * self.servers.power_w(util)
        network_w = self.network.power_w(n)
        cooling_w = self.cooling.power_w(server_w + network_w)
        return Provisioning(n, util, server_w, network_w, cooling_w)

    def power_w(self, lam_rps: float) -> float:
        """Exact total power (W) to serve ``lam_rps`` within QoS."""
        return self.provision(lam_rps).total_power_w

    def power_mw(self, lam_rps: float) -> float:
        """Exact total power in MW."""
        return self.power_w(lam_rps) / WATTS_PER_MW

    # -- smooth model for the MILP -------------------------------------------------

    def affine_power(self) -> AffinePower:
        """Affine approximation of :meth:`power_mw`.

        Slope: at the operating utilization ``u*`` each server carries
        ``u* mu`` req/s and draws ``sp(u*)`` plus its amortized share of
        the switching fabric, all inflated by the cooling overhead.
        Intercept: the queueing headroom ``K/(Rs - 1/mu)`` requests'
        worth of servers that must be on regardless of volume.
        """
        mu = self.servers.service_rate
        u = self.utilization_cap
        per_server_w = self.servers.power_w(u) + self.network.watts_per_server()
        overhead = self.cooling.overhead_factor
        slope_w = overhead * per_server_w / (u * mu)
        headroom_servers = self.queue.k / (
            (self.target_response_s - 1.0 / mu) * mu
        )
        intercept_w = overhead * per_server_w * headroom_servers
        return AffinePower(slope_w / WATTS_PER_MW, intercept_w / WATTS_PER_MW)

    # -- capacity -----------------------------------------------------------------

    def fleet_throughput_rps(self) -> float:
        """Largest rate the physical fleet can serve (ignoring power caps)."""
        return self.max_servers * self.utilization_cap * self.servers.service_rate

    def max_throughput_rps(self) -> float:
        """Largest request rate servable within fleet size and power cap."""
        affine = self.affine_power()
        power_cap = affine.max_rate_for_power(self.power_cap_mw)
        return min(self.fleet_throughput_rps(), power_cap)

    def peak_power_mw(self) -> float:
        """Power with the whole fleet active at the utilization cap."""
        n = self.max_servers
        server_w = n * self.servers.power_w(self.utilization_cap)
        network_w = self.network.power_w(n)
        return (
            (server_w + network_w) * self.cooling.overhead_factor / WATTS_PER_MW
        )
