"""k-ary fat-tree topology and active-switch accounting.

Section IV-B adopts the three-level k-ary fat-tree of Al-Fares et al.
to model data-center networking: ``k`` pods, each with ``k/2`` edge and
``k/2`` aggregation switches; ``(k/2)^2`` core switches; each edge
switch connects ``k/2`` servers, for ``k^3/4`` servers total.

The number of *active* switches "var[ies] significantly based on data
center workloads": when the local optimizer packs the active servers
onto as few racks/pods as possible (the ElasticTree strategy the paper
cites), the active edge/aggregation/core counts — the paper's ``A_i``,
``B_i``, ``C_i`` — are proportional to the number of active servers, in
the stepped form computed by :meth:`FatTree.active_switches`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FatTree", "SwitchCounts", "fat_tree_for_servers"]


@dataclass(frozen=True)
class SwitchCounts:
    """Active switch counts per level (the paper's A_i, B_i, C_i)."""

    edge: int
    aggregation: int
    core: int

    @property
    def total(self) -> int:
        return self.edge + self.aggregation + self.core


@dataclass(frozen=True)
class FatTree:
    """A k-ary fat-tree (``k`` even, ``k >= 2``).

    Attributes
    ----------
    k:
        Arity; the topology supports ``k^3/4`` servers.
    """

    k: int

    def __post_init__(self):
        if self.k < 2 or self.k % 2 != 0:
            raise ValueError("fat-tree arity k must be an even integer >= 2")

    # -- static topology ------------------------------------------------------

    @property
    def servers_per_edge_switch(self) -> int:
        return self.k // 2

    @property
    def edge_per_pod(self) -> int:
        return self.k // 2

    @property
    def agg_per_pod(self) -> int:
        return self.k // 2

    @property
    def n_pods(self) -> int:
        return self.k

    @property
    def n_core(self) -> int:
        return (self.k // 2) ** 2

    @property
    def max_servers(self) -> int:
        return self.k**3 // 4

    @property
    def servers_per_pod(self) -> int:
        return self.k**2 // 4

    def total_switches(self) -> SwitchCounts:
        """Counts with every switch powered (a fully active tree)."""
        half = self.k // 2
        return SwitchCounts(edge=self.k * half, aggregation=self.k * half, core=self.n_core)

    # -- workload-dependent counts -----------------------------------------------

    def active_switches(self, n_active_servers: int) -> SwitchCounts:
        """Switches that must be powered for ``n_active_servers``.

        Servers are packed densely: fill edge switches one at a time,
        pods one at a time. All aggregation switches of an active pod
        stay on (they form the pod's intra-connect), and the core layer
        is scaled proportionally to active pods (ElasticTree-style
        consolidation), with at least one core switch whenever any
        server is active.
        """
        if n_active_servers < 0:
            raise ValueError("server count must be >= 0")
        if n_active_servers > self.max_servers:
            raise ValueError(
                f"{n_active_servers} servers exceed fat-tree capacity "
                f"{self.max_servers} (k={self.k})"
            )
        if n_active_servers == 0:
            return SwitchCounts(0, 0, 0)
        edge = math.ceil(n_active_servers / self.servers_per_edge_switch)
        pods = math.ceil(edge / self.edge_per_pod)
        agg = pods * self.agg_per_pod
        core = max(1, math.ceil(self.n_core * pods / self.n_pods))
        return SwitchCounts(edge=edge, aggregation=agg, core=core)

    def switches_per_server(self) -> tuple[float, float, float]:
        """Asymptotic (edge, agg, core) switches per active server.

        The smooth amortization used to build the MILP's affine power
        coefficients: 1/(k/2) edge, 1/(k^2/4)*(k/2) = 2/k agg, and
        (k/2)^2 / (k^3/4) = 1/k core switches per server.
        """
        edge = 1.0 / self.servers_per_edge_switch
        agg = self.agg_per_pod / self.servers_per_pod
        core = self.n_core / self.max_servers
        return (edge, agg, core)


def fat_tree_for_servers(n_servers: int) -> FatTree:
    """Smallest even-k fat-tree that can host ``n_servers``.

    E.g. the paper's 300,000-server sites need ``k = 108``
    (108^3/4 = 314,928).
    """
    if n_servers <= 0:
        raise ValueError("server count must be positive")
    k = max(2, math.ceil((4.0 * n_servers) ** (1.0 / 3.0)))
    if k % 2:
        k += 1
    while k**3 // 4 < n_servers:  # guard against cube-root rounding
        k += 2
    return FatTree(k)
