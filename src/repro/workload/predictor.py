"""Hour-of-week workload prediction for the budgeter.

Section VI-B: "we maintain a history of the request arrival rate seen
during each hour of the week over the past several weeks. We then
calculate every averaged hourly workload weight of the whole week over
the past several weeks as the hourly budget weight in the coming week
... a 2-week long history trace data can provide a reasonable
prediction on hourly cost budgets."

:class:`HourOfWeekPredictor` implements exactly that: it averages the
historical rate seen at each of the 168 hours of the week over the most
recent ``history_weeks`` weeks, and exposes the normalized weights the
:class:`~repro.core.budgeter.Budgeter` multiplies into the weekly
budget share. It can also be updated online as the evaluated month
unfolds.
"""

from __future__ import annotations

import numpy as np

from .trace import HOURS_PER_WEEK, Trace

__all__ = ["HourOfWeekPredictor"]


class HourOfWeekPredictor:
    """Averaged hour-of-week workload weights from trailing history.

    Parameters
    ----------
    history:
        Historical trace (e.g. the October month); at least one full
        week is required.
    history_weeks:
        How many trailing weeks to average (paper default: 2).
    """

    def __init__(self, history: Trace, history_weeks: int = 2):
        if history_weeks < 1:
            raise ValueError("history_weeks must be >= 1")
        if history.hours < HOURS_PER_WEEK:
            raise ValueError("need at least one full week of history")
        self.history_weeks = history_weeks
        # Ring buffer of the most recent observations per hour-of-week.
        self._sums = np.zeros(HOURS_PER_WEEK)
        self._counts = np.zeros(HOURS_PER_WEEK, dtype=int)
        self._buffers: list[list[float]] = [[] for _ in range(HOURS_PER_WEEK)]
        how = history.hour_of_week()
        for h, rate in zip(how, history.rates_rps):
            self.observe(int(h), float(rate))

    # -- online updates ------------------------------------------------------

    def observe(self, hour_of_week: int, rate_rps: float) -> None:
        """Record an observed hourly rate, evicting beyond the window."""
        if not 0 <= hour_of_week < HOURS_PER_WEEK:
            raise ValueError("hour_of_week must be in 0..167")
        if rate_rps < 0:
            raise ValueError("rate must be >= 0")
        buf = self._buffers[hour_of_week]
        buf.append(rate_rps)
        if len(buf) > self.history_weeks:
            buf.pop(0)

    # -- queries --------------------------------------------------------------

    def predicted_rate(self, hour_of_week: int) -> float:
        """Mean rate observed at this hour-of-week over the window."""
        # Same validation as observe(): silently wrapping out-of-range
        # hours would hide caller indexing bugs on the query side only.
        if not 0 <= hour_of_week < HOURS_PER_WEEK:
            raise ValueError("hour_of_week must be in 0..167")
        buf = self._buffers[hour_of_week]
        if not buf:
            raise ValueError(f"no observations for hour-of-week {hour_of_week}")
        return float(np.mean(buf))

    def weekly_profile(self) -> np.ndarray:
        """Predicted rate for each of the 168 hours of a week."""
        return np.array([self.predicted_rate(h) for h in range(HOURS_PER_WEEK)])

    def weekly_weights(self) -> np.ndarray:
        """Hourly budget weights: profile normalized to sum to 1.

        These are the "hourly budget weight[s] in the coming week" the
        budgeter multiplies into each week's budget share.
        """
        profile = self.weekly_profile()
        total = profile.sum()
        if total <= 0:
            # Degenerate all-zero history: spread the budget uniformly.
            return np.full(HOURS_PER_WEEK, 1.0 / HOURS_PER_WEEK)
        return profile / total

    def predict_trace(self, hours: int, start_weekday: int = 0) -> Trace:
        """Forecast a trace of ``hours`` by tiling the weekly profile."""
        profile = self.weekly_profile()
        offset = start_weekday * 24
        idx = (np.arange(hours) + offset) % HOURS_PER_WEEK
        return Trace(profile[idx], start_weekday, "forecast")
