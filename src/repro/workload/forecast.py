"""Alternative workload forecasters and forecast evaluation.

Section IX: "there are some sophisticated algorithms that do workload
prediction ... in our future work we will improve our scheme to adapt
to the situation when the workload prediction is inaccurate." This
module supplies the pieces for that study:

* :class:`EwmaByHourPredictor` — per-hour-of-week exponentially
  weighted moving averages: reacts faster to drift than the paper's
  plain window average, at the cost of more noise;
* :class:`LastWeekPredictor` — the naive persistence baseline
  ("same hour last week");
* :func:`evaluate_predictor` — walk-forward accuracy on a trace
  (MAPE / RMSE / bias), used by the prediction-sensitivity example and
  to validate that the paper's 2-week average is a sensible default.

All predictors expose the same protocol as
:class:`~repro.workload.predictor.HourOfWeekPredictor` (``observe``,
``predicted_rate``, ``weekly_profile``, ``weekly_weights``), so any of
them can drive the :class:`~repro.core.budgeter.Budgeter`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .predictor import HourOfWeekPredictor
from .trace import HOURS_PER_WEEK, Trace

__all__ = [
    "EwmaByHourPredictor",
    "LastWeekPredictor",
    "ForecastScore",
    "evaluate_predictor",
]


class EwmaByHourPredictor:
    """Exponentially weighted hour-of-week profile.

    ``alpha`` is the weight of the newest observation; ``alpha=0.5``
    roughly matches the paper's 2-week average while adapting to trend.
    """

    def __init__(self, history: Trace, alpha: float = 0.5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if history.hours < HOURS_PER_WEEK:
            raise ValueError("need at least one full week of history")
        self.alpha = alpha
        self._profile = np.full(HOURS_PER_WEEK, np.nan)
        for h, rate in zip(history.hour_of_week(), history.rates_rps):
            self.observe(int(h), float(rate))

    def observe(self, hour_of_week: int, rate_rps: float) -> None:
        if not 0 <= hour_of_week < HOURS_PER_WEEK:
            raise ValueError("hour_of_week must be in 0..167")
        if rate_rps < 0:
            raise ValueError("rate must be >= 0")
        old = self._profile[hour_of_week]
        if np.isnan(old):
            self._profile[hour_of_week] = rate_rps
        else:
            self._profile[hour_of_week] = (
                self.alpha * rate_rps + (1 - self.alpha) * old
            )

    def predicted_rate(self, hour_of_week: int) -> float:
        v = self._profile[hour_of_week % HOURS_PER_WEEK]
        if np.isnan(v):
            raise ValueError(f"no observations for hour-of-week {hour_of_week}")
        return float(v)

    def weekly_profile(self) -> np.ndarray:
        if np.any(np.isnan(self._profile)):
            raise ValueError("profile incomplete: missing hours of week")
        return self._profile.copy()

    def weekly_weights(self) -> np.ndarray:
        profile = self.weekly_profile()
        total = profile.sum()
        if total <= 0:
            return np.full(HOURS_PER_WEEK, 1.0 / HOURS_PER_WEEK)
        return profile / total


class LastWeekPredictor:
    """Persistence baseline: predict exactly last week's rate."""

    def __init__(self, history: Trace):
        if history.hours < HOURS_PER_WEEK:
            raise ValueError("need at least one full week of history")
        self._last = np.full(HOURS_PER_WEEK, np.nan)
        for h, rate in zip(history.hour_of_week(), history.rates_rps):
            self._last[int(h)] = float(rate)

    def observe(self, hour_of_week: int, rate_rps: float) -> None:
        if not 0 <= hour_of_week < HOURS_PER_WEEK:
            raise ValueError("hour_of_week must be in 0..167")
        if rate_rps < 0:
            raise ValueError("rate must be >= 0")
        self._last[hour_of_week] = rate_rps

    def predicted_rate(self, hour_of_week: int) -> float:
        v = self._last[hour_of_week % HOURS_PER_WEEK]
        if np.isnan(v):
            raise ValueError(f"no observations for hour-of-week {hour_of_week}")
        return float(v)

    def weekly_profile(self) -> np.ndarray:
        if np.any(np.isnan(self._last)):
            raise ValueError("profile incomplete: missing hours of week")
        return self._last.copy()

    def weekly_weights(self) -> np.ndarray:
        profile = self.weekly_profile()
        total = profile.sum()
        if total <= 0:
            return np.full(HOURS_PER_WEEK, 1.0 / HOURS_PER_WEEK)
        return profile / total


@dataclass(frozen=True)
class ForecastScore:
    """Walk-forward forecast accuracy over a trace."""

    mape: float  # mean absolute percentage error (on nonzero hours)
    rmse: float  # root mean squared error, req/s
    bias: float  # mean (predicted - actual), req/s
    n_hours: int


def evaluate_predictor(predictor, trace: Trace, update: bool = True) -> ForecastScore:
    """Walk the trace hour by hour, scoring one-step-ahead forecasts.

    Parameters
    ----------
    predictor:
        Any object with ``predicted_rate(how)`` and ``observe(how, rate)``.
    trace:
        The evaluation month (not the history the predictor was built
        on).
    update:
        Feed each realized hour back into the predictor (online mode,
        like the real budgeter); disable for a frozen forecast.
    """
    errors = []
    actuals = []
    how = trace.hour_of_week()
    for h, actual in zip(how, trace.rates_rps):
        predicted = predictor.predicted_rate(int(h))
        errors.append(predicted - float(actual))
        actuals.append(float(actual))
        if update:
            predictor.observe(int(h), float(actual))
    errors_arr = np.array(errors)
    actuals_arr = np.array(actuals)
    nonzero = actuals_arr > 0
    mape = float(np.mean(np.abs(errors_arr[nonzero]) / actuals_arr[nonzero]))
    return ForecastScore(
        mape=mape,
        rmse=float(np.sqrt(np.mean(errors_arr**2))),
        bias=float(np.mean(errors_arr)),
        n_hours=len(errors),
    )
