"""Premium / ordinary customer mix.

Section V differentiates "premium customers who pay for their services
from ordinary customers who enjoy complimentary services"; the
evaluation (Section VII-C) assumes a fixed 80/20 hourly split, noting
"this specific proportion is orthogonal to our algorithm". The
:class:`CustomerMix` captures the proportion and produces the per-hour
(premium, ordinary) rate pair the bill capper consumes; a per-hour
varying mix is supported for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trace import Trace

__all__ = ["CustomerMix", "PAPER_PREMIUM_FRACTION"]

#: Section VII-C's evaluation split.
PAPER_PREMIUM_FRACTION = 0.80


@dataclass(frozen=True)
class CustomerMix:
    """Fraction of each hour's requests issued by premium customers."""

    premium_fraction: float = PAPER_PREMIUM_FRACTION

    def __post_init__(self):
        if not 0.0 <= self.premium_fraction <= 1.0:
            raise ValueError("premium fraction must be in [0, 1]")

    def split(self, workload: Trace) -> tuple[Trace, Trace]:
        """Split a workload trace into (premium, ordinary) traces."""
        premium, ordinary = workload.split(self.premium_fraction)
        return (
            Trace(premium.rates_rps, workload.start_weekday, f"{workload.name}:premium"),
            Trace(ordinary.rates_rps, workload.start_weekday, f"{workload.name}:ordinary"),
        )

    def premium_rate(self, total_rps: float) -> float:
        """Premium share of a scalar hourly rate."""
        if total_rps < 0:
            raise ValueError("rate must be >= 0")
        return total_rps * self.premium_fraction

    def ordinary_rate(self, total_rps: float) -> float:
        """Ordinary share of a scalar hourly rate."""
        if total_rps < 0:
            raise ValueError("rate must be >= 0")
        return total_rps * (1.0 - self.premium_fraction)
