"""Synthetic Wikipedia-like workload generation.

The paper drives its simulator with a 2-month Wikipedia request trace
(Oct-Nov 2007): October as budgeter history, November as the evaluated
month. That trace "shows a very clear weekly pattern" — which is the
only structural property the algorithms exploit (the budgeter predicts
hourly budgets from hour-of-week averages over the past two weeks).

:func:`wikipedia_like_trace` generates a seeded stand-in with the same
structure: a weekday/weekend weekly profile, a diurnal curve with an
evening peak (Wikipedia's global audience gives it a broad daily
swing), multiplicative lognormal noise, and optional *flash crowds* —
the "breaking news on major newspaper websites" events the paper uses
to motivate bill capping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trace import Trace

__all__ = ["FlashCrowd", "wikipedia_like_trace", "paper_two_month_workload"]

#: Diurnal profile (UTC-ish): overnight dip, broad daytime plateau,
#: evening peak — matches the shape of the Wikipedia load studies the
#: paper cites (Urdaneta et al.).
_DIURNAL = np.array(
    [
        0.55, 0.50, 0.47, 0.46, 0.48, 0.52, 0.60, 0.70,
        0.80, 0.87, 0.91, 0.93, 0.94, 0.95, 0.96, 0.98,
        1.00, 0.99, 0.96, 0.93, 0.88, 0.80, 0.70, 0.62,
    ]
)

#: Weekly factor per weekday (0 = Monday): weekdays busier than weekends.
_WEEKLY = np.array([1.00, 1.02, 1.03, 1.02, 0.98, 0.88, 0.86])


@dataclass(frozen=True)
class FlashCrowd:
    """A transient workload spike (breaking-news event).

    Attributes
    ----------
    start_hour:
        Hour index at which the spike begins.
    duration_h:
        Hours until the spike fully decays.
    magnitude:
        Peak multiplicative boost (1.0 = no boost; 2.0 doubles traffic).
    """

    start_hour: int
    duration_h: int
    magnitude: float

    def __post_init__(self):
        if self.start_hour < 0 or self.duration_h <= 0:
            raise ValueError("flash crowd start/duration invalid")
        if self.magnitude < 1.0:
            raise ValueError("flash crowd magnitude must be >= 1")

    def profile(self, hours: int) -> np.ndarray:
        """Multiplicative boost per hour: sharp rise, exponential decay."""
        boost = np.ones(hours)
        end = min(self.start_hour + self.duration_h, hours)
        for h in range(self.start_hour, end):
            age = h - self.start_hour
            decay = np.exp(-3.0 * age / self.duration_h)
            boost[h] = 1.0 + (self.magnitude - 1.0) * decay
        return boost


def wikipedia_like_trace(
    hours: int,
    peak_rps: float,
    *,
    seed: int = 0,
    noise: float = 0.04,
    start_weekday: int = 0,
    flash_crowds: tuple[FlashCrowd, ...] = (),
    name: str = "wikipedia-like",
) -> Trace:
    """Generate an hourly Wikipedia-like request trace.

    Parameters
    ----------
    hours:
        Trace length in hours.
    peak_rps:
        Approximate busiest-hour request rate (before flash crowds).
    seed:
        RNG seed; the trace is fully reproducible.
    noise:
        Relative sigma of the lognormal multiplicative noise.
    start_weekday:
        Weekday of hour 0 (0 = Monday).
    flash_crowds:
        Transient spikes applied multiplicatively.
    """
    if hours <= 0:
        raise ValueError("hours must be positive")
    if peak_rps <= 0:
        raise ValueError("peak_rps must be positive")
    rng = np.random.default_rng(seed)
    t = np.arange(hours)
    diurnal = _DIURNAL[t % 24]
    weekday = (start_weekday + t // 24) % 7
    weekly = _WEEKLY[weekday]
    base = diurnal * weekly
    jitter = rng.lognormal(mean=0.0, sigma=noise, size=hours)
    rates = peak_rps * base * jitter
    for crowd in flash_crowds:
        rates = rates * crowd.profile(hours)
    return Trace(rates, start_weekday=start_weekday, name=name)


def paper_two_month_workload(
    peak_rps: float,
    *,
    seed: int = 7,
    flash_crowds: tuple[FlashCrowd, ...] = (),
) -> tuple[Trace, Trace]:
    """The evaluation workload: (history month, evaluated month).

    Mirrors the paper's setup — "we take the 1-month long Wikipedia
    trace of November as the incoming workload in the simulator while
    using the October trace data to work as the historical observations"
    — as two 30-day seeded synthetic months with a shared weekly
    structure but independent noise. October 1st 2007 was a Monday and
    November 1st a Thursday; the start weekdays match.

    Flash crowds are applied to the *evaluated* month only (they are the
    unexpected events the budget was not provisioned for).
    """
    hours = 30 * 24
    history = wikipedia_like_trace(
        hours, peak_rps, seed=seed, start_weekday=0, name="october-history"
    )
    evaluated = wikipedia_like_trace(
        hours,
        peak_rps,
        seed=seed + 1,
        start_weekday=3,
        flash_crowds=flash_crowds,
        name="november-workload",
    )
    return history, evaluated
