"""Request-level burstiness: generation and CA2/CB2 estimation.

Section IV-B: "the average request arrival rate and request sizes can
be monitored by the bill capper in order to characterize these two
factors, i.e., CA2 and CB2" — the squared coefficients of variation
feeding the G/G/m model. This module provides both halves of that loop:

* request-level arrival generators with controllable burstiness —
  Poisson (CA2 = 1), hyperexponential renewal (CA2 > 1, bursty) and
  Erlang-k renewal (CA2 < 1, smoothed);
* a size generator with lognormal body (CB2 set via sigma);
* :func:`estimate_queue_params` — the monitoring side: moment
  estimators for CA2/CB2 from observed inter-arrival times and sizes,
  producing the :class:`~repro.datacenter.queueing.QueueParams` the
  optimizer consumes.

Tests close the loop: generate with a target CA2, estimate it back,
and verify the provisioning consequences (bursty traffic needs more
servers).
"""

from __future__ import annotations

import numpy as np

from ..datacenter import QueueParams

__all__ = [
    "poisson_arrivals",
    "hyperexp_arrivals",
    "erlang_arrivals",
    "lognormal_sizes",
    "estimate_ca2",
    "estimate_cb2",
    "estimate_queue_params",
]


def poisson_arrivals(rate: float, n: int, seed: int = 0) -> np.ndarray:
    """Inter-arrival times of a Poisson process (CA2 = 1)."""
    if rate <= 0 or n <= 0:
        raise ValueError("rate and n must be positive")
    rng = np.random.default_rng(seed)
    return rng.exponential(1.0 / rate, size=n)


def hyperexp_arrivals(
    rate: float, target_ca2: float, n: int, seed: int = 0
) -> np.ndarray:
    """Bursty inter-arrivals from a balanced 2-phase hyperexponential.

    Uses the standard balanced-means H2 fit: for any ``target_ca2 > 1``
    choose phase probability
    ``p = (1 + sqrt((ca2 - 1) / (ca2 + 1))) / 2`` with phase rates
    ``2 p rate`` and ``2 (1 - p) rate``; the resulting renewal process
    has mean ``1/rate`` and the requested CA2.
    """
    if rate <= 0 or n <= 0:
        raise ValueError("rate and n must be positive")
    if target_ca2 <= 1.0:
        raise ValueError("hyperexponential requires CA2 > 1")
    rng = np.random.default_rng(seed)
    p = 0.5 * (1.0 + np.sqrt((target_ca2 - 1.0) / (target_ca2 + 1.0)))
    rate1, rate2 = 2.0 * p * rate, 2.0 * (1.0 - p) * rate
    phase = rng.random(n) < p
    out = np.empty(n)
    out[phase] = rng.exponential(1.0 / rate1, size=int(phase.sum()))
    out[~phase] = rng.exponential(1.0 / rate2, size=int((~phase).sum()))
    return out


def erlang_arrivals(rate: float, k: int, n: int, seed: int = 0) -> np.ndarray:
    """Smoothed inter-arrivals from an Erlang-k renewal (CA2 = 1/k)."""
    if rate <= 0 or n <= 0:
        raise ValueError("rate and n must be positive")
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = np.random.default_rng(seed)
    return rng.gamma(shape=k, scale=1.0 / (k * rate), size=n)


def lognormal_sizes(
    mean_size: float, target_cb2: float, n: int, seed: int = 0
) -> np.ndarray:
    """Request sizes with the requested squared coefficient of variation.

    For a lognormal, ``CB2 = exp(sigma^2) - 1``; mean is matched via
    ``mu = ln(mean) - sigma^2 / 2``.
    """
    if mean_size <= 0 or n <= 0:
        raise ValueError("mean size and n must be positive")
    if target_cb2 <= 0:
        raise ValueError("CB2 must be positive")
    rng = np.random.default_rng(seed)
    sigma2 = np.log1p(target_cb2)
    mu = np.log(mean_size) - sigma2 / 2.0
    return rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=n)


def _squared_cv(samples: np.ndarray) -> float:
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.size < 2:
        raise ValueError("need at least two samples")
    if np.any(samples < 0):
        raise ValueError("samples must be >= 0")
    mean = samples.mean()
    if mean <= 0:
        raise ValueError("samples must have positive mean")
    return float(samples.var(ddof=1) / mean**2)


def estimate_ca2(interarrivals: np.ndarray) -> float:
    """Moment estimate of the arrival-process CA2 from inter-arrivals."""
    return _squared_cv(interarrivals)


def estimate_cb2(sizes: np.ndarray) -> float:
    """Moment estimate of the request-size CB2."""
    return _squared_cv(sizes)


def estimate_queue_params(
    interarrivals: np.ndarray, sizes: np.ndarray
) -> QueueParams:
    """The monitoring loop: observed samples -> G/G/m parameters."""
    return QueueParams(ca2=estimate_ca2(interarrivals), cb2=estimate_cb2(sizes))
