"""Workload substrate: traces, synthetic generation, mix, prediction."""

from .burstiness import (
    erlang_arrivals,
    estimate_ca2,
    estimate_cb2,
    estimate_queue_params,
    hyperexp_arrivals,
    lognormal_sizes,
    poisson_arrivals,
)
from .forecast import (
    EwmaByHourPredictor,
    ForecastScore,
    LastWeekPredictor,
    evaluate_predictor,
)
from .io import read_trace_csv, trace_to_csv_string, write_trace_csv
from .predictor import HourOfWeekPredictor
from .split import PAPER_PREMIUM_FRACTION, CustomerMix
from .synthetic import FlashCrowd, paper_two_month_workload, wikipedia_like_trace
from .trace import HOURS_PER_WEEK, Trace

__all__ = [
    "Trace",
    "HOURS_PER_WEEK",
    "FlashCrowd",
    "wikipedia_like_trace",
    "paper_two_month_workload",
    "CustomerMix",
    "PAPER_PREMIUM_FRACTION",
    "HourOfWeekPredictor",
    "EwmaByHourPredictor",
    "LastWeekPredictor",
    "ForecastScore",
    "evaluate_predictor",
    "write_trace_csv",
    "read_trace_csv",
    "trace_to_csv_string",
    "poisson_arrivals",
    "hyperexp_arrivals",
    "erlang_arrivals",
    "lognormal_sizes",
    "estimate_ca2",
    "estimate_cb2",
    "estimate_queue_params",
]
