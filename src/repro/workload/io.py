"""Trace persistence: CSV read/write.

Lets users bring their own hourly request traces (e.g. a real Wikipedia
or production trace) and persist generated ones. The format is a plain
two-column CSV::

    hour,rate_rps
    0,1234567.0
    1,1310000.5

with optional ``# key: value`` header comments carrying the trace name
and start weekday, so a round trip preserves the hour-of-week phase the
budgeter depends on.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from .trace import Trace

__all__ = ["write_trace_csv", "read_trace_csv", "trace_to_csv_string"]


def trace_to_csv_string(trace: Trace) -> str:
    """Serialize a trace to CSV text (with metadata comments)."""
    out = io.StringIO()
    out.write(f"# name: {trace.name}\n")
    out.write(f"# start_weekday: {trace.start_weekday}\n")
    writer = csv.writer(out)
    writer.writerow(["hour", "rate_rps"])
    for hour, rate in enumerate(trace.rates_rps):
        writer.writerow([hour, repr(float(rate))])
    return out.getvalue()


def write_trace_csv(trace: Trace, path: "str | Path") -> Path:
    """Write ``trace`` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(trace_to_csv_string(trace))
    return path


def read_trace_csv(path: "str | Path") -> Trace:
    """Read a trace written by :func:`write_trace_csv` (or hand-made).

    Rows must be sorted by hour and contiguous from 0; metadata
    comments are optional (defaults: weekday 0, name from the file).
    """
    path = Path(path)
    name = path.stem
    start_weekday = 0
    rates: list[float] = []
    expected_hour = 0
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if ":" in body:
                key, _, value = body.partition(":")
                key = key.strip().lower()
                if key == "name":
                    name = value.strip()
                elif key == "start_weekday":
                    start_weekday = int(value.strip())
            continue
        cells = [c.strip() for c in line.split(",")]
        if cells[0].lower() == "hour":
            continue  # header
        if len(cells) < 2:
            raise ValueError(f"{path}: malformed row {line!r}")
        hour = int(cells[0])
        if hour != expected_hour:
            raise ValueError(
                f"{path}: rows must be contiguous from 0 (got hour {hour}, "
                f"expected {expected_hour})"
            )
        rates.append(float(cells[1]))
        expected_hour += 1
    if not rates:
        raise ValueError(f"{path}: no data rows")
    return Trace(np.array(rates), start_weekday=start_weekday, name=name)
