"""The asyncio shell around the control loop: ``repro serve``'s engine.

:class:`ControlPlaneService` owns everything *operational* about the
streaming control plane — the pieces a long-lived process needs that
the pure :class:`~repro.service.controller.ControlLoop` deliberately
does not have:

* **tick feeding**, optionally paced to wall time (``pace_s_per_hour``
  wall seconds per simulated hour; ``0`` free-runs, yielding to the
  event loop periodically so the HTTP endpoint stays responsive);
* **the decision log**, one JSONL line per
  :class:`~repro.service.controller.DecisionEvent`, flushed per event
  so a ``SIGTERM`` never loses an acknowledged decision;
* **checkpointing** at every settled hour boundary (the control loop's
  ``on_settle`` hook) with the same atomic write-then-rename the batch
  engine uses; the payload stores the first unconsumed tick and the
  number of logged decisions, so :func:`restore_loop` plus a truncated
  log continue *bit-identically* — the merged decision log of a killed
  and resumed service equals the uninterrupted one byte for byte;
* **graceful stop**: ``SIGTERM``/``SIGINT`` set a flag checked between
  ticks; the in-progress hour is intentionally *not* settled (that is
  the crash-consistent state the checkpoint protocol already covers);
* **the HTTP API** (:class:`~repro.service.httpd.JsonHttpServer`):
  ``/healthz``, ``/status``, ``/decision``, ``/routing``, ``/hours``
  and ``/telemetry``;
* **DNS realization**: when a
  :class:`~repro.routing.WeightedDnsDispatcher` is attached, each
  re-dispatch window advances the resolver population, so ``/routing``
  reports both the target split and the TTL-lagged realized split (the
  dispatcher's deadline-based refresh makes the realized split
  converge to a new target within one TTL — the property that makes
  sub-hourly re-dispatch meaningful at all);
* **telemetry streaming**: spans are drained and counters snapshotted
  into a :class:`~repro.telemetry.RotatingJsonlWriter` at each settled
  hour, so a service running for days keeps bounded memory and bounded
  disk.

DNS resolver caches are deliberately *not* checkpointed: a restarted
service starts cold and converges within one TTL, exactly like a real
authoritative-DNS failover — and the decision log, which the identity
guarantee covers, never depends on the realized split.
"""

from __future__ import annotations

import asyncio
import pathlib
import signal
import time

from ..core import Budgeter
from ..resilience import DegradationPolicy, atomic_write_json, read_json
from ..telemetry import RotatingJsonlWriter, get_telemetry
from .controller import ControlLoop, DecisionEvent, TriggerPolicy
from .httpd import JsonHttpServer, StreamResponse
from .readmodel import DecisionReadModel, sse_stream

__all__ = [
    "SERVICE_CHECKPOINT_VERSION",
    "ControlPlaneService",
    "load_service_checkpoint",
    "restore_loop",
    "truncate_jsonl",
]

#: Service checkpoint schema version; bump when the payload changes.
#: Version history:
#:
#: * 1 — through the energy-only billing spine.
#: * 2 — adds the tariff spec and the settlement-ledger state (inside
#:   the ``"loop"`` payload); v1 checkpoints migrate onto the default
#:   ``energy`` tariff, whose ledger carries no cross-hour state.
SERVICE_CHECKPOINT_VERSION = 2


class ControlPlaneService:
    """Runs a :class:`ControlLoop` as an always-on asyncio service.

    Parameters
    ----------
    loop:
        The decision core (fresh, or restored via :func:`restore_loop`).
    ticks:
        The full tick stream; entries with ``seq < start_tick`` are
        skipped (the resume protocol).
    decision_log:
        JSONL path appended per decision. On resume the caller must
        first truncate it to ``decisions_logged`` lines
        (:func:`truncate_jsonl`).
    checkpoint_path:
        Atomic checkpoint written at every settled hour; ``None``
        disables checkpointing.
    meta:
        Carried verbatim in the checkpoint (the CLI stores its world
        and tick-source parameters so ``repro serve --resume`` can
        rebuild both).
    pace_s_per_hour:
        Wall seconds per simulated hour; ``0`` free-runs.
    dns:
        Optional :class:`~repro.routing.WeightedDnsDispatcher` advanced
        across re-dispatch windows for ``/routing``.
    telemetry_writer:
        Optional :class:`~repro.telemetry.RotatingJsonlWriter` fed at
        each settled hour (owned and closed by the service).
    http:
        Serve the JSON API (disable for pure replay benchmarks).
    handle_signals:
        Install SIGTERM/SIGINT handlers on the running event loop.
    """

    def __init__(
        self,
        loop: ControlLoop,
        ticks,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        http: bool = True,
        decision_log=None,
        checkpoint_path=None,
        meta: dict | None = None,
        pace_s_per_hour: float = 0.0,
        dns=None,
        telemetry_writer: RotatingJsonlWriter | None = None,
        start_tick: int = 0,
        decisions_logged: int = 0,
        handle_signals: bool = True,
        sse: bool = False,
    ):
        if pace_s_per_hour < 0:
            raise ValueError("pace must be >= 0")
        self.loop = loop
        self.ticks = ticks
        self.checkpoint_path = checkpoint_path
        self.meta = meta or {}
        self.pace_s_per_hour = pace_s_per_hour
        self.dns = dns
        self.telemetry_writer = telemetry_writer
        self.start_tick = int(start_tick)
        self.decision_log = (
            pathlib.Path(decision_log) if decision_log is not None else None
        )
        self.handle_signals = handle_signals
        #: Optional push plumbing (``repro serve --sse``): decisions are
        #: published into a read model feeding ``/decisions/stream`` and
        #: the ``/decision?since=`` long-poll. ``None`` keeps the
        #: original poll-only surface.
        self.readmodel = DecisionReadModel() if sse else None
        self.http_server = (
            JsonHttpServer(self._routes(), host, port) if http else None
        )
        loop.on_settle = self._on_settle

        self.ticks_processed = 0
        self.decisions_published = int(decisions_logged)
        self.checkpoints_written = 0
        #: Wall-clock duration of each on_tick() call that produced at
        #: least one decision — the bench's decision-latency sample.
        self.decide_wall_s: list[float] = []
        self.stop_requested = False
        self._current_tick_seq = self.start_tick
        self._target_fractions: dict[str, float] | None = None
        self._realized_fractions: dict[str, float] | None = None
        self._log_fh = None

    @property
    def port(self) -> int | None:
        return self.http_server.port if self.http_server else None

    def request_stop(self) -> None:
        """Stop after the current tick; in-progress hour stays open."""
        self.stop_requested = True

    # -- main loop ----------------------------------------------------------

    async def run(self) -> dict:
        """Feed the stream to the loop; return the run summary."""
        aio = asyncio.get_running_loop()
        if self.readmodel is not None:
            self.readmodel.bind_loop(aio)
        if self.handle_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    aio.add_signal_handler(sig, self.request_stop)
                except (NotImplementedError, RuntimeError):
                    pass  # non-Unix loop; rely on KeyboardInterrupt
        if self.http_server is not None:
            await self.http_server.start()
        if self.decision_log is not None:
            self.decision_log.parent.mkdir(parents=True, exist_ok=True)
            resuming = self.start_tick > 0 or self.decisions_published > 0
            mode = "a" if resuming else "w"
            self._log_fh = self.decision_log.open(mode, encoding="utf-8")
        try:
            prev_time = None
            for tick in self.ticks:
                if tick.seq < self.start_tick:
                    continue
                if self.stop_requested or self.loop.finished:
                    break
                if self.pace_s_per_hour > 0 and prev_time is not None:
                    delay = (tick.time_s - prev_time) / 3600.0
                    await asyncio.sleep(delay * self.pace_s_per_hour)
                else:
                    # Free-running: yield so the HTTP server gets turns
                    # between decisions (a sleep(0) costs microseconds;
                    # a dispatch costs milliseconds).
                    await asyncio.sleep(0)
                prev_time = tick.time_s
                self._current_tick_seq = tick.seq
                t0 = time.perf_counter()
                events = self.loop.on_tick(tick)
                wall = time.perf_counter() - t0
                self.ticks_processed += 1
                if events:
                    self.decide_wall_s.append(wall)
                for event in events:
                    self._publish(event)
            if not self.stop_requested:
                self.loop.finish()
        finally:
            if self._log_fh is not None:
                self._log_fh.close()
                self._log_fh = None
            if self.telemetry_writer is not None:
                self._drain_telemetry()
                self.telemetry_writer.close()
            if self.http_server is not None:
                await self.http_server.stop()
            if self.handle_signals:
                for sig in (signal.SIGTERM, signal.SIGINT):
                    try:
                        aio.remove_signal_handler(sig)
                    except (NotImplementedError, RuntimeError):
                        pass
        summary = self.loop.summary()
        summary["ticks"] = self.ticks_processed
        summary["stopped"] = self.stop_requested
        summary["checkpoints"] = self.checkpoints_written
        return summary

    # -- event plumbing -----------------------------------------------------

    def _publish(self, event: DecisionEvent) -> None:
        if self._log_fh is not None:
            self._log_fh.write(event.to_json() + "\n")
            self._log_fh.flush()
        self.decisions_published += 1
        if self.readmodel is not None:
            self.readmodel.publish(
                event.to_dict(), produced_mono=time.monotonic()
            )
        if self.dns is not None:
            # The window since the dispatcher's clock carried the *old*
            # answer weights; realize it before switching targets.
            window = event.time_s - self.dns.clock_s
            if self._target_fractions is not None and window > 0:
                self._realized_fractions = self.dns.dispatch_window(
                    self._target_fractions, window
                )
        self._target_fractions = event.fractions()

    def _on_settle(self, loop: ControlLoop, summary: dict) -> None:
        if self.telemetry_writer is not None:
            self._drain_telemetry()
        if self.checkpoint_path is None:
            return
        payload = {
            "kind": "service-run",
            "version": SERVICE_CHECKPOINT_VERSION,
            "strategy": loop.strategy.name,
            "name": loop.name,
            "horizon": loop.horizon,
            "trigger": {
                "lambda_delta": loop.trigger.lambda_delta,
                "price_delta": loop.trigger.price_delta,
                "debounce_s": loop.trigger.debounce_s,
                "max_staleness_s": loop.trigger.max_staleness_s,
            },
            "degradation": (
                loop.degradation.value if loop.degradation is not None else None
            ),
            "tariff": loop.ledger.tariff,
            "next_tick": self._current_tick_seq,
            "decisions_logged": self.decisions_published,
            "loop": loop.state_dict(),
            "budgeter": (
                loop.state.budgeter.checkpoint()
                if loop.state.budgeter is not None
                else None
            ),
            "strategy_state": (
                loop.strategy.state_dict()
                if hasattr(loop.strategy, "state_dict")
                else None
            ),
            "meta": self.meta,
        }
        atomic_write_json(payload, self.checkpoint_path)
        self.checkpoints_written += 1

    def _drain_telemetry(self) -> None:
        tel = get_telemetry()
        writer = self.telemetry_writer
        if tel.tracer.enabled:
            for span in tel.tracer.drain():
                writer.write(span.as_dict())
        writer.write_all(tel.registry.as_dicts())
        writer.flush()

    # -- HTTP API -----------------------------------------------------------

    def _routes(self) -> dict:
        routes = {
            "/healthz": lambda: (200, {"status": "ok"}),
            "/status": self._r_status,
            "/decision": self._r_decision,
            "/routing": self._r_routing,
            "/hours": self._r_hours,
            "/telemetry": self._r_telemetry,
        }
        if self.readmodel is not None:
            routes["/decision"] = self._r_decision_push
            routes["/decisions/stream"] = self._r_stream
        return routes

    def _r_status(self):
        loop = self.loop
        return 200, {
            "strategy": loop.name,
            "hour": loop.hour,
            "settled_hours": loop.settled_hours,
            "horizon": loop.horizon,
            "ticks_processed": self.ticks_processed,
            "decisions": loop.decisions,
            "lambda_rps": loop.lambda_now,
            "hour_budget": loop.hour_budget,
            "finished": loop.finished,
            "stopping": self.stop_requested,
        }

    def _r_decision(self):
        event = self.loop.current_event
        if event is None:
            return 404, {"error": "no decision yet"}
        return 200, event.to_dict()

    async def _r_decision_push(self, query):
        """``/decision`` with the read model: bare GET keeps the poll
        semantics; ``?since=<pub_seq>&wait_s=`` long-polls for the next
        newer record (200 with ``timeout: true`` when none arrives)."""
        since = query.get("since")
        if since is None:
            record = self.readmodel.latest()
            if record is None:
                return 404, {"error": "no decision yet"}
            return 200, {**record["event"], "pub_seq": record["pub_seq"]}
        wait_s = min(float(query.get("wait_s", 30.0)), 120.0)
        record = await self.readmodel.wait_newer(int(since), wait_s)
        if record is None:
            return 200, {"pub_seq": self.readmodel.pub_seq, "timeout": True}
        return 200, {**record["event"], "pub_seq": record["pub_seq"]}

    def _r_stream(self, query):
        return StreamResponse(
            sse_stream(self.readmodel, int(query.get("since", 0) or 0))
        )

    def _r_routing(self):
        if self._target_fractions is None:
            return 404, {"error": "no decision yet"}
        return 200, {
            "target": self._target_fractions,
            "realized": self._realized_fractions,
            "ttl_s": (
                self.dns.population.ttl_s if self.dns is not None else None
            ),
        }

    def _r_hours(self):
        # Cap the response at one week of hours; the full history lives
        # in the checkpoint and the telemetry stream.
        return 200, {"hours": self.loop.hour_summaries[-168:]}

    def _r_telemetry(self):
        metrics = get_telemetry().registry.as_dicts()
        return 200, {
            "counters": {
                m["name"]: m["value"] for m in metrics
                if m["type"] == "counter"
            },
            "gauges": {
                m["name"]: m["value"] for m in metrics if m["type"] == "gauge"
            },
        }


# -- checkpoint / resume ------------------------------------------------------


def load_service_checkpoint(path) -> dict:
    """Read and validate a checkpoint written by the service."""
    payload = read_json(path)
    if payload.get("kind") != "service-run":
        raise ValueError(f"{path} is not a service run checkpoint")
    version = payload.get("version")
    if version not in (1, SERVICE_CHECKPOINT_VERSION):
        raise ValueError(
            f"unsupported service checkpoint version {version!r} "
            f"(expected {SERVICE_CHECKPOINT_VERSION})"
        )
    for key in ("strategy", "horizon", "trigger", "next_tick",
                "decisions_logged", "loop", "meta"):
        if key not in payload:
            raise ValueError(f"service checkpoint missing {key!r}")
    return payload


def restore_loop(engine, payload: dict) -> ControlLoop:
    """Rebuild a :class:`ControlLoop` at a checkpoint's hour boundary.

    The engine (world) is the caller's responsibility — the CLI
    reconstructs it from the checkpoint's ``meta`` — because worlds are
    not serializable; everything decision-relevant (budgeter, strategy
    state, observations, the record in force) comes from the payload.
    """
    budgeter = (
        Budgeter.restore(payload["budgeter"])
        if payload.get("budgeter") is not None
        else None
    )
    loop = ControlLoop(
        engine,
        payload["strategy"],
        trigger=TriggerPolicy(**payload["trigger"]),
        budgeter=budgeter,
        # v1 checkpoints predate tariffs: None rebuilds the `energy`
        # default they were billed under. The ledger's accrued state
        # (and e.g. a demand charge's cycle peak) is then restored by
        # load_state from the loop payload.
        tariff=payload.get("tariff"),
        hours=payload["horizon"],
        degradation=(
            DegradationPolicy(payload["degradation"])
            if payload.get("degradation") is not None
            else None
        ),
        name=payload.get("name"),
    )
    if payload.get("strategy_state") and hasattr(loop.strategy, "load_state"):
        loop.strategy.load_state(payload["strategy_state"])
    loop.load_state(payload["loop"])
    return loop


def truncate_jsonl(path, keep_lines: int) -> int:
    """Drop log lines past ``keep_lines`` (decisions the checkpoint
    does not cover); returns the number of lines kept. A missing log
    with nothing to keep is created empty."""
    path = pathlib.Path(path)
    if not path.exists():
        if keep_lines > 0:
            raise ValueError(
                f"decision log {path} is missing but the checkpoint "
                f"expects {keep_lines} logged decisions"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        path.touch()
        return 0
    with path.open("r", encoding="utf-8") as fh:
        lines = fh.readlines()
    if len(lines) < keep_lines:
        raise ValueError(
            f"decision log {path} has {len(lines)} lines but the "
            f"checkpoint expects {keep_lines}; the log does not match "
            "this checkpoint"
        )
    if len(lines) > keep_lines:
        with path.open("w", encoding="utf-8") as fh:
            fh.writelines(lines[:keep_lines])
    return keep_lines
