"""The sharded control plane: one worker process per market-region group.

The single-process service (:mod:`repro.service.runtime`) tops out at
one core: every tick of every site funnels through one
:class:`~repro.service.controller.ControlLoop`. The paper's world is
the opposite shape — a multi-region grid actor whose *markets* are
independent within an hour and couple only through the shared monthly
budget — so the scale-out unit is the market region:

* **Region plan** — :func:`plan_regions` partitions the fleet with the
  same grouping the decomposition solver uses
  (:func:`~repro.core.decomposition.partition_market_regions`: sites
  sharing a pricing policy trade in one market). Each region gets a
  static *share*: its fraction of fleet throughput capacity, used both
  as its geo-DNS traffic share (region loops observe ``λ·share``) and
  its budget weight.
* **Workers** — regions are dealt round-robin onto ``N`` worker
  processes. Each worker rebuilds the world from the spec (fork- and
  spawn-safe: nothing unpicklable crosses the process boundary),
  builds one :class:`ControlLoop` per owned region over an
  :meth:`Engine.subset <repro.sim.engine.Engine.subset>` of its sites,
  and drives the shared tick stream: λ ticks are broadcast (scaled by
  region share), price ticks routed to the owning region only.
* **Budget ledger** — workers meet at every hour boundary in a
  two-phase barrier run by :class:`ShardCoordinator` in the front
  process: (1) each worker settles *all* its region loops and sends
  the spends; (2) when the last worker arrives, the coordinator
  settles the single shared :class:`~repro.core.Budgeter` (spends
  summed in fixed region order), writes one coordinated checkpoint,
  carves the next hour's budget by region share, and releases
  everyone. Unused budget flows through the budgeter's own carryover,
  so claw-back across regions is global, not per-region.
* **Determinism** — each region loop is a pure function of its tick
  substream, its hourly allotments and its region world; none of those
  depend on worker count or scheduling. The per-region decision logs
  merged by :func:`merge_region_logs` (ordered by ``(tick_seq,
  region)``) are therefore byte-identical for every ``N`` — including
  ``N=1`` and the in-process :func:`run_sharded_serial` reference —
  and identical again after a mid-run SIGTERM plus ``serve --resume``
  (per-region logs truncated to the coordinated checkpoint, exactly
  the single-service protocol, per worker).
* **Push, not poll** — workers stream every decision over their pipe;
  the front publishes them into a
  :class:`~repro.service.readmodel.DecisionReadModel` feeding the
  ``/decisions/stream`` SSE endpoint and the ``/decision`` long-poll.
  Subscriber queues are bounded with drop-oldest, so a stalled client
  costs the dispatch loops nothing.

A crashed or stopped worker aborts the in-flight barrier round (its
spends are missing, so the round cannot settle); the last *completed*
round's checkpoint is the resume point, and log truncation discards
whatever any worker dispatched past it.
"""

from __future__ import annotations

import asyncio
import dataclasses
import heapq
import json
import math
import multiprocessing as mp
import pathlib
import signal
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..core import Budgeter
from ..resilience import DegradationPolicy, atomic_write_json, read_json
from ..telemetry import Telemetry, get_telemetry, merge_counters, use_telemetry
from .controller import ControlLoop, TriggerPolicy
from .httpd import JsonHttpServer, StreamResponse
from .readmodel import DecisionReadModel, sse_stream
from .ticks import build_ticks

__all__ = [
    "SHARD_CHECKPOINT_VERSION",
    "RegionSpec",
    "plan_regions",
    "build_world",
    "RegionDriver",
    "ShardCoordinator",
    "ShardedControlPlane",
    "run_sharded_serial",
    "merge_region_logs",
    "load_shard_checkpoint",
]

#: Shard checkpoint schema version; bump when the payload changes.
#: Version history:
#:
#: * 1 — through the energy-only billing spine.
#: * 2 — region loop states carry settlement-ledger state and the
#:   payload names the tariff spec; v1 checkpoints migrate onto the
#:   default ``energy`` tariff (no cross-hour ledger state to restore).
SHARD_CHECKPOINT_VERSION = 2

_HOUR_S = 3600.0

#: Step-margin fraction for the choice sets sizing the region chunks —
#: grouping only, so any fixed value keeps the plan deterministic.
_PLAN_STEP_MARGIN = 0.05


# -- region planning ----------------------------------------------------------


@dataclass(frozen=True)
class RegionSpec:
    """One market region of the shard plan.

    ``share`` is the region's fraction of fleet throughput capacity —
    its static geo-DNS traffic share and budget weight. Static shares
    keep the ledger's state equal to the budgeter checkpoint (nothing
    extra to persist) and keep every region loop independent of the
    others' observations.
    """

    index: int
    sites: tuple[str, ...]
    share: float


def plan_regions(engine, max_region_combos: int = 512) -> list[RegionSpec]:
    """Partition an engine's sites into market regions with shares.

    Reuses :func:`~repro.core.decomposition.partition_market_regions`
    on the hour-0 snapshots so the control plane shards exactly where
    the dispatch solver decomposes — except regions here never span
    pricing policies: a region is the unit handed to one worker's
    :class:`ControlLoop`, and sites in different markets share nothing
    within an hour, so each policy group is partitioned on its own
    (chunked by the same choice-combination cap). Sites the enumeration
    kernel bails on count as one choice (they can still be grouped;
    only chunk sizing uses the counts).
    """
    from ..core.decomposition import partition_market_regions
    from ..core.enum_kernel import site_choices

    site_hours = engine._site_hours(0)

    class _One:  # stand-in choice set for kernel-bailed sites
        lo = np.zeros(1)

    choices = [
        site_choices(sh, _PLAN_STEP_MARGIN) or _One() for sh in site_hours
    ]
    by_policy: dict[int, list[int]] = {}
    for j, sh in enumerate(site_hours):
        by_policy.setdefault(id(sh.policy), []).append(j)
    groups: list[list[int]] = []
    for idxs in by_policy.values():
        for chunk in partition_market_regions(
            [site_hours[j] for j in idxs],
            [choices[j] for j in idxs],
            max_region_combos,
        ):
            groups.append([idxs[j] for j in chunk])
    caps = [float(s.datacenter.max_throughput_rps()) for s in engine.sites]
    total = sum(caps)
    if total <= 0:
        raise ValueError("fleet has no throughput capacity to share")
    return [
        RegionSpec(
            index=i,
            sites=tuple(engine.sites[j].name for j in idxs),
            share=sum(caps[j] for j in idxs) / total,
        )
        for i, idxs in enumerate(groups)
    ]


# -- world / spec plumbing ----------------------------------------------------


def build_world(world_spec: dict):
    """Instantiate a world from a plain-dict spec (worker-side safe).

    ``{"kind": "paper", "policy": 1, "seed": 7}`` builds the Section VI
    scenario; ``{"kind": "scaled", "sites": 8, ...}`` builds the
    enlarged fleet (:func:`~repro.experiments.scaled_paper_world`) the
    scale-out benchmarks shard across. Worker processes call this from
    the spec instead of unpickling a live world, which keeps the
    launch path identical under fork and spawn.
    """
    kind = world_spec.get("kind", "paper")
    if kind == "paper":
        from ..experiments import paper_world

        return paper_world(
            int(world_spec.get("policy", 1)), seed=int(world_spec.get("seed", 7))
        )
    if kind == "scaled":
        from ..experiments import scaled_paper_world

        return scaled_paper_world(
            int(world_spec.get("sites", 8)),
            policy_id=int(world_spec.get("policy", 1)),
            seed=int(world_spec.get("seed", 7)),
        )
    raise ValueError(f"unknown world kind {kind!r}")


def _build_engine(world):
    from ..sim.engine import Engine

    return Engine(world.sites, world.workload, world.mix)


def _build_spec_ticks(world, source: dict):
    from ..workload import read_trace_csv

    trace = (
        read_trace_csv(source["trace_file"]) if source.get("trace_file")
        else world.workload
    )
    return build_ticks(trace, source)


# -- the hour-barrier coordinator ---------------------------------------------


class ShardCoordinator:
    """The budget ledger and checkpoint writer at the hour barrier.

    Thread-safe: worker reader threads call :meth:`barrier` and block
    until every active worker has arrived for the round; the last
    arrival settles the budgeter, writes the coordinated checkpoint,
    carves the next hour, and releases the rest. A worker that stops or
    dies (:meth:`worker_gone`) aborts the in-flight round — the spends
    of its regions are missing, so settling would corrupt the ledger —
    and every waiter is released with a stop reply.
    """

    def __init__(
        self,
        regions: list[RegionSpec],
        budgeter: Budgeter | None,
        *,
        horizon: int,
        spec: dict,
        checkpoint_path=None,
        meta: dict | None = None,
        settled_hours: int = 0,
        next_tick: int = 0,
        region_states: dict | None = None,
    ):
        self.regions = regions
        self.budgeter = budgeter
        self.horizon = int(horizon)
        self.spec = spec
        self.checkpoint_path = checkpoint_path
        self.meta = meta or {}
        self.settled_hours = int(settled_hours)
        self.next_tick = int(next_tick)
        self.region_states: dict[str, dict] = dict(region_states or {})
        self.hour_summaries: list[dict] = []
        self.checkpoints_written = 0
        self.rounds = 0
        self._owned: dict[int, list[int]] = {0: [r.index for r in regions]}
        self._cv = threading.Condition()
        self._arrived: dict[int, dict] = {}
        self._replies: dict[int, dict] = {}
        self._gen = 0
        self._active: set[int] = {0}
        self._stopping = False

    def set_workers(self, owned: dict[int, list[int]]) -> None:
        """Declare the worker → owned-regions assignment before launch."""
        with self._cv:
            self._owned = {w: sorted(rs) for w, rs in owned.items()}
            self._active = set(self._owned)

    def request_stop(self) -> None:
        """Abort any in-flight round; future barriers answer stop."""
        with self._cv:
            self._stopping = True
            self._cv.notify_all()

    def worker_gone(self, wid: int) -> None:
        """A worker stopped, finished or died; release any waiters.

        After a worker leaves, no further round can cover all regions,
        so the barrier degrades to stop replies. At a natural finish
        every worker leaves *after* the final round, when nobody waits.
        """
        with self._cv:
            self._active.discard(wid)
            self._stopping = True
            self._cv.notify_all()

    def barrier(self, wid: int, payload: dict) -> tuple[str, dict | None]:
        """One worker's round arrival; blocks until the round resolves.

        Returns ``("allot", {region: budget})`` when the round settled
        and the next hour was carved, or ``("stop", None)`` when the
        run is winding down mid-round.
        """
        with self._cv:
            if self._stopping:
                # Once any worker is gone (or a stop was requested) no
                # round can ever cover all regions again, and a partial
                # round must never settle the budgeter.
                return ("stop", None)
            gen = self._gen
            self._arrived[wid] = payload
            if set(self._arrived) == self._active:
                replies = self._on_round(self._arrived)
                self._arrived = {}
                self._replies = replies
                self._gen += 1
                self._cv.notify_all()
                return ("allot", replies.get(wid))
            self._cv.wait_for(lambda: self._gen != gen or self._stopping)
            if self._gen == gen:  # stopped before the round completed
                self._arrived.pop(wid, None)
                return ("stop", None)
            return ("allot", self._replies.get(wid))

    # Called with the condition held by the round's last arrival.
    def _on_round(self, payloads: dict[int, dict]) -> dict[int, dict]:
        settles: dict[int, dict] = {}
        open_hours = set()
        next_ticks = set()
        for wid in sorted(payloads):
            p = payloads[wid]
            open_hours.add(p["open_hour"])
            next_ticks.add(int(p["next_tick"]))
            for key, entry in p["settles"].items():
                settles[int(key)] = entry
        if len(open_hours) != 1 or len(next_ticks) != 1:
            raise RuntimeError(
                f"barrier round disagreement: open_hours={open_hours}, "
                f"next_ticks={next_ticks} — workers drifted out of step"
            )
        open_hour = open_hours.pop()
        self.next_tick = next_ticks.pop()
        self.rounds += 1
        if settles:
            hours = {e["hour"] for e in settles.values()}
            if len(hours) != 1:
                raise RuntimeError(f"regions settled different hours: {hours}")
            hour = hours.pop()
            # Per-component spends fold in fixed (component, region)
            # order — each component summed over sorted regions, the
            # components summed in sorted-name order — so the float
            # total, and through it the budgeter's carryover, is
            # identical for every worker count. The energy-only tariff
            # reduces to the pre-ledger sum of region spends bit for
            # bit (one component, same region order, same fold).
            spends = {
                r: settles[r].get("spends", {"energy": settles[r]["spend"]})
                for r in settles
            }
            names = sorted({c for per in spends.values() for c in per})
            total = sum(
                sum(spends[r].get(name, 0.0) for r in sorted(settles))
                for name in names
            )
            if self.budgeter is not None:
                self.budgeter.record_spend(total)
            self.settled_hours = hour + 1
            for r in sorted(settles):
                entry = settles[r]
                self.hour_summaries.append(
                    {"region": r, **entry["summary"]}
                )
                self.region_states[str(r)] = {
                    "loop": entry["loop"],
                    "strategy_state": entry["strategy_state"],
                    "decisions_logged": entry["decisions_logged"],
                }
            self._write_checkpoint()
            get_telemetry().counter("service.shard.barriers").inc()
        allot_all: dict[int, float] = {}
        if open_hour is not None:
            total_h = (
                self.budgeter.hourly_budget()
                if self.budgeter is not None
                else math.inf
            )
            allot_all = {r.index: total_h * r.share for r in self.regions}
        return {
            wid: {r: allot_all.get(r, math.inf) for r in owned}
            for wid, owned in self._owned.items()
        }

    def _write_checkpoint(self) -> None:
        if self.checkpoint_path is None:
            return
        payload = {
            "kind": "shard-run",
            "version": SHARD_CHECKPOINT_VERSION,
            "strategy": self.spec["strategy"],
            "tariff": self.spec.get("tariff"),
            "horizon": self.horizon,
            "regions_planned": len(self.regions),
            "settled_hours": self.settled_hours,
            "next_tick": self.next_tick,
            "budgeter": (
                self.budgeter.checkpoint() if self.budgeter is not None else None
            ),
            "regions": self.region_states,
            "meta": self.meta,
        }
        atomic_write_json(payload, self.checkpoint_path)
        self.checkpoints_written += 1
        get_telemetry().counter("service.shard.checkpoints").inc()


def load_shard_checkpoint(path) -> dict:
    """Read and validate a coordinated shard checkpoint."""
    payload = read_json(path)
    if payload.get("kind") != "shard-run":
        raise ValueError(f"{path} is not a shard run checkpoint")
    version = payload.get("version")
    if version not in (1, SHARD_CHECKPOINT_VERSION):
        raise ValueError(
            f"unsupported shard checkpoint version {version!r} "
            f"(expected {SHARD_CHECKPOINT_VERSION})"
        )
    for key in ("strategy", "horizon", "settled_hours", "next_tick",
                "regions", "meta"):
        if key not in payload:
            raise ValueError(f"shard checkpoint missing {key!r}")
    return payload


# -- ledger clients -----------------------------------------------------------


class _DirectLedger:
    """In-process ledger client (serial reference, tests)."""

    def __init__(self, coordinator: ShardCoordinator, wid: int = 0):
        self._coordinator = coordinator
        self._wid = wid

    def exchange(self, settles, open_hour, next_tick):
        kind, allot = self._coordinator.barrier(
            self._wid,
            {"settles": settles, "open_hour": open_hour,
             "next_tick": next_tick},
        )
        return allot if kind == "allot" else None


class _PipeLedger:
    """Worker-side ledger client over the process pipe."""

    def __init__(self, conn):
        self._conn = conn

    def exchange(self, settles, open_hour, next_tick):
        self._conn.send(
            ("barrier",
             {"settles": settles, "open_hour": open_hour,
              "next_tick": next_tick})
        )
        kind, allot = self._conn.recv()
        return allot if kind == "allot" else None


# -- the region driver (one per worker) ---------------------------------------


class RegionDriver:
    """Drives the region loops owned by one worker over the tick stream.

    The same class backs the worker processes and the in-process serial
    reference — only the ledger client and the emit callback differ —
    which is what makes "serial == sharded" a structural property
    rather than a test-only coincidence.

    Parameters
    ----------
    engine:
        The full-world engine; each owned region gets a
        :meth:`~repro.sim.engine.Engine.subset` slice of it.
    regions:
        The full region plan (shares are needed for λ scaling).
    owned:
        Region indices this driver owns (sorted internally).
    ticks:
        The full tick stream; entries below ``start_tick`` are skipped.
    spec:
        The shard spec (strategy, trigger, degradation, horizon).
    ledger:
        Barrier client: ``exchange(settles, open_hour, next_tick)``
        returning ``{region: allotment}`` or ``None`` on stop.
    emit:
        Optional ``callback(region, event, wall_s, produced_mono)``
        fired per decision after the log line is flushed.
    log_fhs:
        Optional ``{region: file}`` of per-region JSONL logs; flushed
        before every barrier so the checkpoint's ``decisions_logged``
        never exceeds the bytes on disk.
    stop:
        Optional event-like object with ``is_set()`` checked between
        ticks (the SIGTERM path).
    resume:
        Optional shard checkpoint payload; restores loop and strategy
        state for owned regions and sets the tick/hour cursors.
    """

    def __init__(
        self,
        engine,
        regions: list[RegionSpec],
        owned,
        ticks,
        spec: dict,
        ledger,
        *,
        emit=None,
        log_fhs: dict | None = None,
        stop=None,
        pace_s_per_hour: float = 0.0,
        resume: dict | None = None,
    ):
        from ..sim.registry import get_strategy

        self.regions = regions
        self.order = sorted(owned)
        self.ticks = ticks
        self.spec = spec
        self.ledger = ledger
        self.emit = emit
        self.log_fhs = log_fhs or {}
        self.stop = stop
        self.pace_s_per_hour = float(pace_s_per_hour)
        self.horizon = int(spec["horizon"])
        self.stopped = False
        self.decide_wall_s: list[float] = []

        self._site_owner = {
            name: r for r in self.order for name in regions[r].sites
        }
        self._allot: dict[tuple[int, int], float] = {}
        self._last_allot: dict[int, float] = {}
        self._logged: dict[int, int] = {r: 0 for r in self.order}
        self.loops: dict[int, ControlLoop] = {}
        degradation = (
            DegradationPolicy(spec["degradation"])
            if spec.get("degradation") is not None
            else None
        )
        for r in self.order:
            strategy = get_strategy(spec["strategy"])
            budget_source = None
            if strategy.wants_budget:
                budget_source = (
                    lambda hour, _r=r: self._allot[(_r, hour)]
                )
            loop = ControlLoop(
                engine.subset(regions[r].sites),
                strategy,
                trigger=TriggerPolicy(**spec["trigger"]),
                budget_source=budget_source,
                tariff=spec.get("tariff"),
                hours=self.horizon,
                degradation=degradation,
                name=f"{spec['strategy']}/region{r}",
            )
            if resume is not None:
                state = resume["regions"].get(str(r))
                if state is None:
                    raise ValueError(
                        f"shard checkpoint has no state for region {r}"
                    )
                if state.get("strategy_state") and hasattr(
                    strategy, "load_state"
                ):
                    strategy.load_state(state["strategy_state"])
                loop.load_state(state["loop"])
                self._logged[r] = int(state["decisions_logged"])
            self.loops[r] = loop
        self.start_tick = int(resume["next_tick"]) if resume else 0
        self.start_hour = int(resume["settled_hours"]) if resume else 0

    # -- driving ------------------------------------------------------------

    def run(self) -> dict:
        """Drive the stream to completion (or stop); return summaries."""
        cur: int | None = None
        finished = False
        prev_time = None
        end_seq = len(self.ticks)
        for tick in self.ticks:
            if tick.seq < self.start_tick:
                continue
            if self.stop is not None and self.stop.is_set():
                self.stopped = True
                break
            hour_of = int(tick.time_s // _HOUR_S)
            if hour_of >= self.horizon:
                break  # post-horizon tail; settle below
            if self.pace_s_per_hour > 0 and prev_time is not None:
                time.sleep(
                    max(0.0, tick.time_s - prev_time)
                    / _HOUR_S * self.pace_s_per_hour
                )
            prev_time = tick.time_s
            if cur is None:
                if not self._open_round({}, self.start_hour, tick.seq):
                    self.stopped = True
                    break
                cur = self.start_hour
            while hour_of > cur:
                settles = self._settle_all(cur)
                nxt = cur + 1
                opening = nxt if nxt < self.horizon else None
                if not self._open_round(settles, opening, tick.seq):
                    self.stopped = True
                    break
                if opening is None:
                    finished = True
                    break
                cur = nxt
            if self.stopped or finished:
                break
            self._route(tick)
        if not self.stopped and not finished and cur is not None:
            # Stream ended mid-horizon: settle the open hour at its
            # boundary (the single-service finish() semantics) and let
            # the ledger record it.
            settles = self._settle_all(cur)
            self.ledger.exchange(settles, None, end_seq)
        return {r: self.loops[r].summary() for r in self.order}

    def _open_round(self, settles, open_hour, next_tick) -> bool:
        allot = self.ledger.exchange(settles, open_hour, next_tick)
        if allot is None:
            return False
        if open_hour is not None:
            for r in self.order:
                self._allot[(r, open_hour)] = allot.get(r, math.inf)
                self.loops[r].open_hour(open_hour)
        return True

    def _settle_all(self, hour: int) -> dict:
        settles = {}
        for r in self.order:
            loop = self.loops[r]
            summary = loop.settle_open_hour()
            fh = self.log_fhs.get(r)
            if fh is not None:
                fh.flush()
            settles[str(r)] = {
                "hour": hour,
                "spend": summary["spend"],
                # Per-component amounts so the coordinator's fold stays
                # deterministic at any worker count (see _on_round).
                "spends": {
                    li["component"]: li["amount"]
                    for li in summary["line_items"]
                },
                "summary": summary,
                "loop": loop.state_dict(),
                "strategy_state": (
                    loop.strategy.state_dict()
                    if hasattr(loop.strategy, "state_dict")
                    else None
                ),
                "decisions_logged": self._logged[r],
            }
        return settles

    def _route(self, tick) -> None:
        if tick.kind == "lambda":
            for r in self.order:
                self._feed(
                    r,
                    dataclasses.replace(
                        tick, value=tick.value * self.regions[r].share
                    ),
                )
        else:
            r = self._site_owner.get(tick.site)
            if r is not None:
                self._feed(r, tick)

    def _feed(self, r: int, tick) -> None:
        t0 = time.perf_counter()
        events = self.loops[r].on_tick(tick)
        wall = time.perf_counter() - t0
        if events:
            self.decide_wall_s.append(wall)
        for event in events:
            fh = self.log_fhs.get(r)
            if fh is not None:
                fh.write(event.to_json() + "\n")
                fh.flush()
            self._logged[r] += 1
            if self.emit is not None:
                self.emit(r, event, wall, time.monotonic())


# -- worker process entry -----------------------------------------------------


def _worker_main(wid: int, job: dict, conn, stop_ev) -> None:
    """Child-process entry: rebuild the world, drive owned regions.

    Everything in ``job`` is plain data. The worker reports decisions
    (``("event", region, event_dict, wall_s, produced_mono)``), barrier
    rounds, and a final ``("done", summaries, counters, stopped)`` —
    or ``("error", message)`` — over its pipe, then exits.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, lambda *_: stop_ev.set())
    tel = Telemetry()
    try:
        with use_telemetry(tel):
            spec = job["spec"]
            world = build_world(spec["world"])
            engine = _build_engine(world)
            regions = plan_regions(
                engine, spec.get("max_region_combos", 512)
            )
            ticks = _build_spec_ticks(world, spec["source"])
            resume = job.get("resume")
            log_fhs = {
                r: open(job["log_paths"][r], "a" if resume else "w",
                        encoding="utf-8")
                for r in job["owned"]
            }

            def emit(region, event, wall_s, produced_mono):
                conn.send(
                    ("event", region, event.to_dict(), wall_s, produced_mono)
                )

            try:
                driver = RegionDriver(
                    engine,
                    regions,
                    job["owned"],
                    ticks,
                    spec,
                    _PipeLedger(conn),
                    emit=emit,
                    log_fhs=log_fhs,
                    stop=stop_ev,
                    pace_s_per_hour=job.get("pace_s_per_hour", 0.0),
                    resume=resume,
                )
                summaries = driver.run()
            finally:
                for fh in log_fhs.values():
                    fh.close()
            counters = {
                m["name"]: m["value"]
                for m in tel.registry.as_dicts()
                if m["type"] == "counter"
            }
            conn.send(("done", summaries, counters, driver.stopped))
    except Exception as exc:  # noqa: BLE001 — report, don't hang the front
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


# -- log merging --------------------------------------------------------------


def merge_region_logs(log_paths: dict[int, pathlib.Path], out_path) -> int:
    """K-way merge per-region JSONL logs into one deterministic log.

    Order is ``(tick_seq, region)`` — the order a single loop over the
    union stream would have emitted — so the merged file is
    byte-identical for every worker count. Returns the line count.
    """
    def keyed(path, region):
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.rstrip("\n")
                if line:
                    yield (json.loads(line)["tick_seq"], region, line)

    out_path = pathlib.Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    streams = [keyed(p, r) for r, p in sorted(log_paths.items())]
    with out_path.open("w", encoding="utf-8") as out:
        for _, _, line in heapq.merge(*streams, key=lambda e: (e[0], e[1])):
            out.write(line + "\n")
            n += 1
    return n


# -- the serial reference -----------------------------------------------------


def run_sharded_serial(
    spec: dict,
    *,
    world=None,
    budgeter: Budgeter | None = None,
) -> tuple[list[str], ShardCoordinator]:
    """Drive the whole sharded pipeline in one process, no asyncio.

    The reference execution for the determinism contract: any
    ``--workers N`` run must produce exactly these merged log lines.
    Returns ``(merged_lines, coordinator)``.
    """
    world = world if world is not None else build_world(spec["world"])
    engine = _build_engine(world)
    regions = plan_regions(engine, spec.get("max_region_combos", 512))
    if budgeter is None and spec.get("monthly_budget") is not None:
        budgeter = world.budgeter(float(spec["monthly_budget"]))
    coordinator = ShardCoordinator(
        regions, budgeter, horizon=spec["horizon"], spec=spec
    )
    ticks = _build_spec_ticks(world, spec["source"])
    per_region: dict[int, list[str]] = {r.index: [] for r in regions}

    def emit(region, event, wall_s, produced_mono):
        per_region[region].append(event.to_json())

    driver = RegionDriver(
        engine,
        regions,
        [r.index for r in regions],
        ticks,
        spec,
        _DirectLedger(coordinator),
        emit=emit,
    )
    driver.run()
    merged: list[tuple[int, int, str]] = []
    for r, lines in sorted(per_region.items()):
        for line in lines:
            merged.append((json.loads(line)["tick_seq"], r, line))
    merged.sort(key=lambda e: (e[0], e[1]))
    return [line for _, _, line in merged], coordinator


# -- the multi-process front --------------------------------------------------


class ShardedControlPlane:
    """Front process: workers, coordinator, read model, HTTP push API.

    Parameters
    ----------
    spec:
        Plain-dict shard spec: ``world`` (see :func:`build_world`),
        ``source`` (tick-source spec), ``strategy``, ``trigger``,
        ``degradation``, ``horizon``, ``monthly_budget``, optional
        ``max_region_combos``.
    workers:
        Worker process count; clamped to the region count (a region is
        the unit of parallelism).
    decision_log:
        The merged JSONL log, written when the run completes.
        Per-region logs live beside it in ``<decision_log>.d/``.
    checkpoint_path:
        Coordinated checkpoint written at every settled hour barrier.
    resume_payload:
        A :func:`load_shard_checkpoint` payload; restores the budgeter
        and per-region state, truncates the per-region logs, and skips
        consumed ticks. The worker count may differ from the original
        run — determinism holds for any ``N``.
    """

    def __init__(
        self,
        spec: dict,
        *,
        workers: int = 2,
        decision_log="service_decisions.jsonl",
        checkpoint_path=None,
        host: str = "127.0.0.1",
        port: int = 0,
        http: bool = True,
        pace_s_per_hour: float = 0.0,
        resume_payload: dict | None = None,
        handle_signals: bool = True,
        history: int = 1024,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.spec = spec
        self.world = build_world(spec["world"])
        engine = _build_engine(self.world)
        self.regions = plan_regions(engine, spec.get("max_region_combos", 512))
        self.n_workers = max(1, min(int(workers), len(self.regions)))
        self.owned = {
            w: [r.index for r in self.regions[w :: self.n_workers]]
            for w in range(self.n_workers)
        }
        self.decision_log = pathlib.Path(decision_log)
        self.log_dir = self.decision_log.with_name(self.decision_log.name + ".d")
        self.log_paths = {
            r.index: self.log_dir / f"region{r.index:03d}.jsonl"
            for r in self.regions
        }
        self.pace_s_per_hour = float(pace_s_per_hour)
        self.handle_signals = handle_signals
        self.resume_payload = resume_payload

        budgeter = None
        if resume_payload is not None:
            if resume_payload.get("regions_planned") not in (
                None, len(self.regions)
            ):
                raise ValueError(
                    "checkpoint was written for "
                    f"{resume_payload.get('regions_planned')} regions but "
                    f"this spec plans {len(self.regions)}"
                )
            if resume_payload.get("budgeter") is not None:
                budgeter = Budgeter.restore(resume_payload["budgeter"])
        elif spec.get("monthly_budget") is not None:
            budgeter = self.world.budgeter(float(spec["monthly_budget"]))
        meta = {
            "spec": spec,
            "decision_log": str(self.decision_log),
            "workers": self.n_workers,
        }
        self.coordinator = ShardCoordinator(
            self.regions,
            budgeter,
            horizon=spec["horizon"],
            spec=spec,
            checkpoint_path=checkpoint_path,
            meta=meta,
            settled_hours=(
                resume_payload["settled_hours"] if resume_payload else 0
            ),
            next_tick=resume_payload["next_tick"] if resume_payload else 0,
            region_states=(
                resume_payload["regions"] if resume_payload else None
            ),
        )
        self.coordinator.set_workers(self.owned)
        self.readmodel = DecisionReadModel(history=history)
        self.http_server = (
            JsonHttpServer(self._routes(), host, port) if http else None
        )

        self.decisions_published = sum(
            int(st["decisions_logged"])
            for st in (resume_payload or {}).get("regions", {}).values()
        )
        self.decide_wall_s: list[float] = []
        self.worker_summaries: dict[int, dict] = {}
        self.worker_counters: dict[str, float] = {}
        self.worker_errors: dict[int, str] = {}
        self.stop_requested = False
        self._stopped = False
        self._lock = threading.Lock()
        self._procs: list[mp.Process] = []
        self._threads: list[threading.Thread] = []
        self._stop_ev = None
        self._done_evt: asyncio.Event | None = None
        self._aio: asyncio.AbstractEventLoop | None = None
        self._workers_left = 0

    @property
    def port(self) -> int | None:
        return self.http_server.port if self.http_server else None

    @classmethod
    def resume(cls, checkpoint_path, *, workers: int | None = None, **kwargs):
        """Rebuild a sharded service from its coordinated checkpoint."""
        payload = load_shard_checkpoint(checkpoint_path)
        if payload["settled_hours"] >= payload["horizon"]:
            raise ValueError(
                f"checkpoint {checkpoint_path} already covers its whole "
                f"{payload['horizon']} h horizon; nothing left to serve"
            )
        meta = payload["meta"]
        return cls(
            meta["spec"],
            workers=workers if workers is not None else meta["workers"],
            decision_log=kwargs.pop("decision_log", meta["decision_log"]),
            checkpoint_path=checkpoint_path,
            resume_payload=payload,
            **kwargs,
        )

    def request_stop(self) -> None:
        """SIGTERM path: workers stop between ticks; the in-flight
        barrier round (if any) aborts, leaving the last completed
        round's checkpoint as the resume point."""
        self.stop_requested = True
        if self._stop_ev is not None:
            self._stop_ev.set()
        self.coordinator.request_stop()

    # -- lifecycle ----------------------------------------------------------

    def run(self) -> dict:
        """Blocking entry point (the CLI's)."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> dict:
        aio = asyncio.get_running_loop()
        self._aio = aio
        self.readmodel.bind_loop(aio)
        self._done_evt = asyncio.Event()
        if self.handle_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    aio.add_signal_handler(sig, self.request_stop)
                except (NotImplementedError, RuntimeError):
                    pass
        if self.http_server is not None:
            await self.http_server.start()
        self._prepare_logs()
        self._launch_workers()
        try:
            await self._done_evt.wait()
            await aio.run_in_executor(None, self._join_workers)
        finally:
            if self.http_server is not None:
                await self.http_server.stop()
            if self.handle_signals:
                for sig in (signal.SIGTERM, signal.SIGINT):
                    try:
                        aio.remove_signal_handler(sig)
                    except (NotImplementedError, RuntimeError):
                        pass
        merged = None
        if not self._stopped and not self.worker_errors:
            merged = merge_region_logs(self.log_paths, self.decision_log)
        return self._summary(merged)

    def _prepare_logs(self) -> None:
        from .runtime import truncate_jsonl

        self.log_dir.mkdir(parents=True, exist_ok=True)
        if self.resume_payload is not None:
            for r, path in self.log_paths.items():
                state = self.resume_payload["regions"].get(str(r))
                keep = int(state["decisions_logged"]) if state else 0
                truncate_jsonl(path, keep)

    def _launch_workers(self) -> None:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._stop_ev = ctx.Event()
        if self.stop_requested:
            self._stop_ev.set()
        self._workers_left = self.n_workers
        for wid, owned in self.owned.items():
            parent_conn, child_conn = ctx.Pipe()
            job = {
                "spec": self.spec,
                "owned": owned,
                "log_paths": {r: str(self.log_paths[r]) for r in owned},
                "pace_s_per_hour": self.pace_s_per_hour,
                "resume": self.resume_payload,
            }
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, job, child_conn, self._stop_ev),
                name=f"shard-worker-{wid}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            thread = threading.Thread(
                target=self._reader, args=(wid, parent_conn),
                name=f"shard-reader-{wid}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _reader(self, wid: int, conn) -> None:
        tel = get_telemetry()
        try:
            while True:
                try:
                    msg = conn.recv()
                except EOFError:
                    self.coordinator.worker_gone(wid)
                    break
                kind = msg[0]
                if kind == "event":
                    _, region, event, wall_s, produced = msg
                    with self._lock:
                        self.decisions_published += 1
                        self.decide_wall_s.append(wall_s)
                    self.readmodel.publish(
                        event, region=region, produced_mono=produced
                    )
                    tel.counter("service.shard.events").inc()
                elif kind == "barrier":
                    conn.send(self.coordinator.barrier(wid, msg[1]))
                elif kind == "done":
                    _, summaries, counters, stopped = msg
                    with self._lock:
                        self.worker_summaries[wid] = summaries
                        for name, value in counters.items():
                            self.worker_counters[name] = (
                                self.worker_counters.get(name, 0.0) + value
                            )
                        self._stopped = self._stopped or stopped
                    if tel.enabled:
                        merge_counters(tel.registry, counters)
                    self.coordinator.worker_gone(wid)
                elif kind == "error":
                    with self._lock:
                        self.worker_errors[wid] = msg[1]
                    self.coordinator.worker_gone(wid)
        finally:
            conn.close()
            with self._lock:
                self._workers_left -= 1
                last = self._workers_left == 0
            if last and self._aio is not None:
                self._aio.call_soon_threadsafe(self._done_evt.set)

    def _join_workers(self) -> None:
        for proc in self._procs:
            proc.join(timeout=30.0)
            if proc.is_alive():  # pragma: no cover — defensive
                proc.terminate()
                proc.join(timeout=5.0)

    def _summary(self, merged_lines: int | None) -> dict:
        hours = self.coordinator.hour_summaries
        demand_p = sum(s["demand_premium_rps"] for s in hours)
        demand_o = sum(s["demand_ordinary_rps"] for s in hours)
        return {
            "strategy": self.spec["strategy"],
            "workers": self.n_workers,
            "regions": len(self.regions),
            "hours": self.coordinator.settled_hours,
            "decisions": self.decisions_published,
            # Full settled bills where present; restored pre-ledger
            # summaries fall back to the energy cost (their bill).
            "total_cost": sum(
                s.get("spend", s["realized_cost"]) for s in hours
            ),
            "hours_over_budget": sum(
                s.get("spend", s["realized_cost"]) > s["budget"] * (1 + 1e-9)
                for s in hours
            ),
            "premium_throughput": (
                sum(s["served_premium_rps"] for s in hours) / demand_p
                if demand_p > 0 else 1.0
            ),
            "ordinary_throughput": (
                sum(s["served_ordinary_rps"] for s in hours) / demand_o
                if demand_o > 0 else 1.0
            ),
            "stopped": self._stopped or self.stop_requested,
            "checkpoints": self.coordinator.checkpoints_written,
            "worker_errors": dict(self.worker_errors),
            "merged_log_lines": merged_lines,
        }

    # -- HTTP API -----------------------------------------------------------

    def _routes(self) -> dict:
        return {
            "/healthz": lambda: (200, {"status": "ok"}),
            "/status": self._r_status,
            "/decision": self._r_decision,
            "/decisions/stream": self._r_stream,
            "/regions": self._r_regions,
            "/hours": self._r_hours,
            "/telemetry": self._r_telemetry,
        }

    def _r_status(self):
        with self._lock:
            decisions = self.decisions_published
            errors = dict(self.worker_errors)
        return 200, {
            "strategy": self.spec["strategy"],
            "workers": self.n_workers,
            "workers_alive": sum(p.is_alive() for p in self._procs),
            "regions": len(self.regions),
            "settled_hours": self.coordinator.settled_hours,
            "horizon": self.coordinator.horizon,
            "decisions": decisions,
            "pub_seq": self.readmodel.pub_seq,
            "subscribers": self.readmodel.subscribers,
            "stopping": self.stop_requested,
            "worker_errors": errors,
        }

    async def _r_decision(self, query):
        since = query.get("since")
        if since is None:
            record = self.readmodel.latest()
            if record is None:
                return 404, {"error": "no decision yet"}
            return 200, self._enrich(record)
        wait_s = min(float(query.get("wait_s", 30.0)), 120.0)
        record = await self.readmodel.wait_newer(int(since), wait_s)
        if record is None:
            return 200, {
                "pub_seq": self.readmodel.pub_seq, "timeout": True,
            }
        return 200, self._enrich(record)

    @staticmethod
    def _enrich(record: dict) -> dict:
        return {
            **record["event"],
            "region": record["region"],
            "pub_seq": record["pub_seq"],
        }

    def _r_stream(self, query):
        return StreamResponse(
            sse_stream(self.readmodel, int(query.get("since", 0) or 0))
        )

    def _r_regions(self):
        snap = self.readmodel.snapshot()
        worker_of = {
            r: wid for wid, owned in self.owned.items() for r in owned
        }
        return 200, {
            "regions": [
                {
                    "index": r.index,
                    "sites": list(r.sites),
                    "share": r.share,
                    "worker": worker_of.get(r.index),
                    "last_pub_seq": (
                        snap["regions"].get(str(r.index), {}).get("pub_seq")
                    ),
                }
                for r in self.regions
            ],
        }

    def _r_hours(self):
        return 200, {"hours": self.coordinator.hour_summaries[-168:]}

    def _r_telemetry(self):
        metrics = get_telemetry().registry.as_dicts()
        with self._lock:
            merged = dict(self.worker_counters)
        return 200, {
            "counters": {
                m["name"]: m["value"] for m in metrics
                if m["type"] == "counter"
            },
            "worker_counters": merged,
            "gauges": {
                m["name"]: m["value"] for m in metrics if m["type"] == "gauge"
            },
            "readmodel": {
                "pub_seq": self.readmodel.pub_seq,
                "subscribers": self.readmodel.subscribers,
                "dropped": self.readmodel.dropped_total,
            },
        }
