"""A dependency-free asyncio HTTP/1.1 endpoint for the control plane.

The service's API surface is tiny — read-only GET endpoints polled by
the routing layer and by operators, plus one event stream — so a full
web framework would be the only third-party dependency in the
repository. Instead :class:`JsonHttpServer` speaks just enough HTTP/1.1
for ``curl`` and :mod:`urllib`:

* **keep-alive** by default (HTTP/1.1 semantics): repeated polls reuse
  the TCP connection instead of paying a fresh handshake per request;
  a client ``Connection: close`` (or HTTP/1.0 without ``keep-alive``)
  closes after one response, and a per-connection request cap bounds a
  stuck client.
* **status discipline**: malformed or oversized request lines answer
  ``400 Bad Request``; ``405`` is reserved for well-formed non-GET
  requests; unknown paths answer ``404`` listing the available routes.
* **query strings** are parsed into a plain dict handed to handlers
  that accept an argument; zero-argument handlers keep working
  unchanged.
* **streaming**: a handler may return a :class:`StreamResponse`
  wrapping an async iterator of pre-framed chunks — the substrate for
  the ``/decisions/stream`` server-sent-events endpoint. The response
  is written chunk by chunk with no Content-Length and the connection
  is dedicated (closed when the stream ends or the client goes away).

Handlers run on the event loop thread and may be sync or async; sync
handlers read the control loop's state without locking (the tick feed
and the HTTP server interleave cooperatively, never concurrently).

Budgets can legitimately be infinite, and the repository's JSON
convention keeps ``Infinity`` literals (Python's ``json`` both emits
and parses them), so responses use the same convention rather than
masking ``inf``.
"""

from __future__ import annotations

import asyncio
import inspect
import json
from urllib.parse import parse_qs, unquote

__all__ = ["JsonHttpServer", "StreamResponse"]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
}

#: Longest accepted request/header line; beyond it the request is a 400.
_MAX_LINE = 16384
#: Requests served per connection before the server closes it anyway.
_MAX_KEEPALIVE_REQUESTS = 1000


class StreamResponse:
    """A streamed (chunked-by-write) response body.

    Parameters
    ----------
    chunks:
        Async iterator yielding ``bytes`` already framed for the wire
        (for SSE: ``b"id: 7\\ndata: {...}\\n\\n"`` per event).
    content_type:
        Response ``Content-Type`` (default ``text/event-stream``).

    The server writes the head, then each chunk as it arrives, draining
    between chunks; client disconnects end the iteration (the iterator
    is always ``aclose``\\ d, so ``finally`` cleanup in the generator —
    unsubscribing from the read model — runs).
    """

    def __init__(self, chunks, content_type: str = "text/event-stream"):
        self.chunks = chunks
        self.content_type = content_type


class JsonHttpServer:
    """Serves a route table of JSON handlers over ``asyncio.start_server``.

    Parameters
    ----------
    routes:
        ``{"/path": handler}``. A handler takes no arguments or one
        ``query`` dict (single-valued query parameters), may be sync or
        async, and returns ``(status, payload)`` — or a
        :class:`StreamResponse` for a streamed body.
    host, port:
        Bind address. Port 0 binds an ephemeral port; read the actual
        one from :attr:`port` after :meth:`start`.
    """

    def __init__(self, routes: dict, host: str = "127.0.0.1", port: int = 0):
        self.routes = dict(routes)
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._tasks: set[asyncio.Task] = set()

    async def start(self) -> None:
        if self._server is not None:  # idempotent: callers may pre-bind
            return
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=_MAX_LINE
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        # Kick persistent connections (keep-alive idlers, SSE streams):
        # without this, wait_closed-style shutdown would hang on them.
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        await self._server.wait_closed()
        self._server = None

    # -- request handling ---------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        try:
            for _ in range(_MAX_KEEPALIVE_REQUESTS):
                if not await self._one_request(reader, writer):
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass  # client (or server shutdown) ended the exchange
        finally:
            self._tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _one_request(self, reader, writer) -> bool:
        """Serve one request; return True to keep the connection open."""
        try:
            request = await reader.readline()
        except ValueError:  # line longer than the stream limit
            await self._respond(
                writer, 400, {"error": "request line too long"}, close=True
            )
            return False
        if not request:
            return False  # client closed between requests
        # Drain headers up to the blank line; only Connection matters.
        client_close = False
        client_keepalive = False
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                await self._respond(
                    writer, 400, {"error": "header line too long"}, close=True
                )
                return False
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.partition(b":")
            if key.strip().lower() == b"connection":
                client_close = b"close" in value.strip().lower()
                client_keepalive = b"keep-alive" in value.strip().lower()

        parsed = self._parse_request_line(request)
        if parsed is None:
            await self._respond(
                writer, 400, {"error": "malformed request line"}, close=True
            )
            return False
        method, path, query, version = parsed
        # HTTP/1.1 defaults to keep-alive; 1.0 (and anything odd) only
        # persists on an explicit client keep-alive.
        keep = not client_close and (
            version == "HTTP/1.1" or client_keepalive
        )
        if method != "GET":
            await self._respond(
                writer, 405, {"error": f"method {method} not allowed"},
                close=not keep,
            )
            return keep
        result = await self._dispatch(path, query)
        if isinstance(result, StreamResponse):
            await self._stream(writer, result)
            return False  # the connection was dedicated to the stream
        status, payload = result
        await self._respond(writer, status, payload, close=not keep)
        return keep

    def _parse_request_line(self, request: bytes):
        """``(method, path, query, version)`` or None when malformed."""
        try:
            parts = request.decode("ascii").split()
        except UnicodeDecodeError:
            return None
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return None
        method, target, version = parts
        if not target.startswith("/"):
            return None
        raw_path, _, raw_query = target.partition("?")
        path = unquote(raw_path).rstrip("/") or "/"
        query = {
            k: v[-1] for k, v in parse_qs(raw_query, keep_blank_values=True).items()
        }
        return method, path, query, version

    async def _dispatch(self, path: str, query: dict):
        handler = self.routes.get(path)
        if handler is None:
            return 404, {"error": f"no route {path}",
                         "routes": sorted(self.routes)}
        result = handler(query) if _takes_query(handler) else handler()
        if inspect.isawaitable(result):
            result = await result
        return result

    async def _respond(
        self, writer, status: int, payload: dict, *, close: bool
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
        ).encode("ascii")
        writer.write(head + body)
        await writer.drain()

    async def _stream(self, writer, response: StreamResponse) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {response.content_type}\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head)
        await writer.drain()
        chunks = response.chunks
        try:
            async for chunk in chunks:
                writer.write(chunk)
                await writer.drain()
        finally:
            aclose = getattr(chunks, "aclose", None)
            if aclose is not None:
                await aclose()


def _takes_query(handler) -> bool:
    """Does the handler accept the parsed query dict?

    Zero-argument thunks (the original route style) are called bare;
    anything with a positional parameter receives the query dict.
    """
    try:
        sig = inspect.signature(handler)
    except (TypeError, ValueError):
        return False
    for p in sig.parameters.values():
        if p.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.VAR_POSITIONAL,
        ):
            return True
    return False
