"""A dependency-free asyncio HTTP/JSON endpoint for the control plane.

The service's API surface is tiny — a handful of read-only GET
endpoints polled by the routing layer and by operators — so a full web
framework would be the only third-party dependency in the repository.
Instead :class:`JsonHttpServer` speaks just enough HTTP/1.1 for
``curl`` and :mod:`urllib`: parse the request line, drain the headers,
dispatch on the path, answer one ``application/json`` body with
``Connection: close``.

Routes are a plain ``{path: callable}`` table; each callable returns
``(status_code, payload_dict)`` and runs on the event loop thread, so
handlers read the control loop's state without locking (the tick feed
and the HTTP server interleave cooperatively, never concurrently).

Budgets can legitimately be infinite, and the repository's JSON
convention keeps ``Infinity`` literals (Python's ``json`` both emits
and parses them), so responses use the same convention rather than
masking ``inf``.
"""

from __future__ import annotations

import asyncio
import json

__all__ = ["JsonHttpServer"]

_STATUS_TEXT = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}


class JsonHttpServer:
    """Serves a route table of JSON thunks over ``asyncio.start_server``.

    Parameters
    ----------
    routes:
        ``{"/path": callable}``; each callable takes no arguments and
        returns ``(status, payload)``.
    host, port:
        Bind address. Port 0 binds an ephemeral port; read the actual
        one from :attr:`port` after :meth:`start`.
    """

    def __init__(self, routes: dict, host: str = "127.0.0.1", port: int = 0):
        self.routes = dict(routes)
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        if self._server is not None:  # idempotent: callers may pre-bind
            return
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling ---------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            request = await reader.readline()
            # Drain headers up to the blank line; pipelining unsupported.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            status, payload = self._route(request)
            body = json.dumps(payload).encode("utf-8")
            head = (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Error')}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _route(self, request: bytes) -> tuple[int, dict]:
        try:
            method, path, _ = request.decode("ascii").split(" ", 2)
        except (UnicodeDecodeError, ValueError):
            return 405, {"error": "malformed request line"}
        if method != "GET":
            return 405, {"error": f"method {method} not allowed"}
        path = path.split("?", 1)[0].rstrip("/") or "/"
        handler = self.routes.get(path)
        if handler is None:
            return 404, {"error": f"no route {path}",
                         "routes": sorted(self.routes)}
        return handler()
