"""Streaming inputs for the control plane: λ and price-feed ticks.

The batch engine observes the workload once per hour; the streaming
control plane instead consumes a totally ordered sequence of
:class:`Tick` events carrying *simulated* time. Two tick kinds exist:

* ``"lambda"`` — the monitored total request rate (requests/second)
  across the whole client base;
* ``"price"`` — a per-site price-feed *scale*: the dispatcher's view
  of the site's background market demand is multiplied by this factor
  (a proxy for the locational price signal moving intra-hour). Price
  ticks distort only what the dispatcher *sees*; realized billing in
  :class:`~repro.service.controller.ControlLoop` always uses the
  ground-truth hour, mirroring the engine's fault model.

Sources are ordinary functions returning a finite ``list[Tick]`` — the
whole stream is materialized up front so a serial drive, the asyncio
service, and a killed-and-resumed service all iterate the *same*
sequence (seeded NumPy generators, no wall clock anywhere). Both
sources guarantee a λ tick exactly at every hour boundary they cover,
so the control loop always has a fresh observation when an hour opens.

:func:`replay_ticks` interpolates an hourly :class:`~repro.workload.Trace`
(sub-hourly linear ramp between consecutive hourly means, optional
seeded multiplicative jitter). :func:`bursty_ticks` modulates the same
ramp with hyperexponential burst factors from
:mod:`repro.workload.burstiness`, producing the flash-crowd-like
sub-hourly swings that exercise the trigger policy. Both optionally
emit per-site price-scale ticks following a seeded, clipped
multiplicative random walk. :func:`build_ticks` maps a plain-dict spec
(what ``repro serve`` stores in its checkpoint meta) onto a source, so
``--resume`` rebuilds the identical stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload import Trace
from ..workload.burstiness import hyperexp_arrivals

__all__ = ["Tick", "replay_ticks", "bursty_ticks", "build_ticks"]

#: Default scale-walk clamp: a site's observed background demand never
#: drifts outside [1/2x, 2x] of the truth.
_SCALE_LO, _SCALE_HI = 0.5, 2.0


@dataclass(frozen=True)
class Tick:
    """One timestamped observation consumed by the control loop.

    Attributes
    ----------
    seq:
        Position in the stream (0-based, contiguous within a source).
        Checkpoints store the first unconsumed ``seq``; resume skips
        everything before it.
    time_s:
        Simulated time of the observation, seconds from hour 0.
    kind:
        ``"lambda"`` or ``"price"``.
    value:
        The observed total request rate (rps) or the price-feed scale.
    site:
        The site a price tick applies to; ``None`` for λ ticks.
    """

    seq: int
    time_s: float
    kind: str
    value: float
    site: str | None = None

    def __post_init__(self):
        if self.kind not in ("lambda", "price"):
            raise ValueError(f"unknown tick kind {self.kind!r}")
        if self.kind == "price" and self.site is None:
            raise ValueError("price ticks must name a site")
        if self.time_s < 0:
            raise ValueError("tick time must be >= 0")
        if self.value < 0:
            raise ValueError("tick value must be >= 0")

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "time_s": self.time_s,
            "kind": self.kind,
            "value": self.value,
            "site": self.site,
        }


def _finalize(events: list[tuple[float, str, str | None, float]]) -> list[Tick]:
    """Order events and assign contiguous sequence numbers.

    The sort key is ``(time, kind, site)`` — deterministic even when a
    λ tick and price ticks share a timestamp (λ sorts first, so the
    dispatcher reacting to the λ observation already sees the
    coincident state the same way on every drive).
    """
    events.sort(key=lambda e: (e[0], e[1], e[2] or ""))
    return [
        Tick(seq=i, time_s=t, kind=kind, value=value, site=site)
        for i, (t, kind, site, value) in enumerate(events)
    ]


def _check_args(trace: Trace, ticks_per_hour: int, hours: int | None) -> int:
    if ticks_per_hour < 1:
        raise ValueError("ticks_per_hour must be >= 1")
    n_hours = trace.hours if hours is None else int(hours)
    if not 0 < n_hours <= trace.hours:
        raise ValueError(f"hours must be in 1..{trace.hours}")
    return n_hours


def _ramp(trace: Trace, hour: int, frac: float) -> float:
    """Sub-hourly λ: linear ramp between consecutive hourly means."""
    rates = trace.rates_rps
    here = float(rates[hour])
    there = float(rates[hour + 1]) if hour + 1 < len(rates) else here
    return here + (there - here) * frac


def _price_walk_events(
    events: list,
    sites: tuple[str, ...],
    n_hours: int,
    price_jitter: float,
    rng: np.random.Generator,
) -> None:
    """Append one mid-hour price-scale tick per site per hour.

    Each site's scale follows a clipped multiplicative random walk
    (lognormal steps of width ``price_jitter``), the standard small
    model for an intra-hour market signal drifting around its hourly
    mean. Ticks land at half past the hour, staggered a deterministic
    few seconds apart per site so no two events ever share an exact
    ``(time, kind, site)`` triple with a λ tick.
    """
    scales = {name: 1.0 for name in sites}
    for h in range(n_hours):
        for i, name in enumerate(sites):
            step = float(rng.normal(0.0, price_jitter))
            scales[name] = float(
                np.clip(scales[name] * np.exp(step), _SCALE_LO, _SCALE_HI)
            )
            events.append((h * 3600.0 + 1800.0 + i, "price", name, scales[name]))


def replay_ticks(
    trace: Trace,
    *,
    ticks_per_hour: int = 12,
    hours: int | None = None,
    jitter: float = 0.0,
    price_jitter: float = 0.0,
    sites: tuple[str, ...] = (),
    seed: int = 0,
) -> list[Tick]:
    """Replay an hourly trace as a sub-hourly λ tick stream.

    Emits ``ticks_per_hour`` evenly spaced λ ticks per hour — the first
    exactly at the hour boundary — linearly interpolated between the
    hourly means, optionally perturbed by seeded multiplicative
    Gaussian ``jitter`` (relative standard deviation). With
    ``price_jitter > 0`` each named site also gets one mid-hour
    price-scale tick per hour (see :func:`_price_walk_events`).
    """
    n_hours = _check_args(trace, ticks_per_hour, hours)
    if jitter < 0 or price_jitter < 0:
        raise ValueError("jitter must be >= 0")
    rng = np.random.default_rng(seed)
    dt = 3600.0 / ticks_per_hour
    events: list[tuple[float, str, str | None, float]] = []
    for h in range(n_hours):
        for k in range(ticks_per_hour):
            lam = _ramp(trace, h, k / ticks_per_hour)
            if jitter > 0:
                lam *= max(0.0, 1.0 + jitter * float(rng.normal()))
            events.append((h * 3600.0 + k * dt, "lambda", None, lam))
    if price_jitter > 0 and sites:
        _price_walk_events(events, tuple(sites), n_hours, price_jitter, rng)
    return _finalize(events)


def bursty_ticks(
    trace: Trace,
    *,
    ticks_per_hour: int = 12,
    hours: int | None = None,
    ca2: float = 4.0,
    price_jitter: float = 0.0,
    sites: tuple[str, ...] = (),
    seed: int = 0,
) -> list[Tick]:
    """Synthetic bursty λ stream: the hourly ramp times burst factors.

    Each λ tick's rate is the interpolated hourly mean multiplied by a
    unit-mean hyperexponential factor with squared coefficient of
    variation ``ca2`` (:func:`~repro.workload.burstiness.
    hyperexp_arrivals` with rate 1, so samples *are* the multipliers).
    CA2 well above 1 produces the short savage spikes that drive the
    trigger policy's λ-delta path; ``ca2`` must exceed 1 (use
    :func:`replay_ticks` for smooth feeds).
    """
    n_hours = _check_args(trace, ticks_per_hour, hours)
    if price_jitter < 0:
        raise ValueError("jitter must be >= 0")
    rng = np.random.default_rng(seed)
    bursts = hyperexp_arrivals(
        1.0, ca2, n_hours * ticks_per_hour, seed=seed + 1
    )
    dt = 3600.0 / ticks_per_hour
    events: list[tuple[float, str, str | None, float]] = []
    for h in range(n_hours):
        for k in range(ticks_per_hour):
            lam = _ramp(trace, h, k / ticks_per_hour)
            lam *= float(bursts[h * ticks_per_hour + k])
            events.append((h * 3600.0 + k * dt, "lambda", None, lam))
    if price_jitter > 0 and sites:
        _price_walk_events(events, tuple(sites), n_hours, price_jitter, rng)
    return _finalize(events)


def build_ticks(trace: Trace, spec: dict) -> list[Tick]:
    """Instantiate a tick stream from a plain-dict source spec.

    The spec is what ``repro serve`` persists in its checkpoint meta::

        {"kind": "replay" | "bursty", "ticks_per_hour": 12, "hours": 24,
         "seed": 0, "jitter": 0.02,          # replay only
         "ca2": 4.0,                          # bursty only
         "price_jitter": 0.0, "sites": ["CA", ...]}

    so that ``--resume`` rebuilds the byte-identical stream from disk
    without re-supplying CLI flags.
    """
    kind = spec.get("kind")
    common = dict(
        ticks_per_hour=int(spec.get("ticks_per_hour", 12)),
        hours=spec.get("hours"),
        price_jitter=float(spec.get("price_jitter", 0.0)),
        sites=tuple(spec.get("sites", ())),
        seed=int(spec.get("seed", 0)),
    )
    if kind == "replay":
        return replay_ticks(trace, jitter=float(spec.get("jitter", 0.0)), **common)
    if kind == "bursty":
        return bursty_ticks(trace, ca2=float(spec.get("ca2", 4.0)), **common)
    raise ValueError(f"unknown tick source kind {kind!r}")
