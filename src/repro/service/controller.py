"""The synchronous decision core of the streaming control plane.

Everything that *decides* lives here, free of asyncio, sockets and wall
clocks, so the asyncio service in :mod:`repro.service.runtime` is a
thin shell: feeding the same tick sequence through :class:`ControlLoop`
serially or through the event loop produces byte-identical decision
logs (the property ``benchmarks/bench_service.py`` asserts and
``tests/service`` pin).

One :class:`ControlLoop` drives one strategy over one
:class:`~repro.sim.engine.Engine` world. Each tick updates the observed
state (λ or a site's price-feed scale); the :class:`TriggerPolicy`
decides whether to re-dispatch:

* the first tick of every hour always dispatches (``hour-start``) —
  the batch engine's hourly cadence is the degenerate case;
* a relative λ or price change ≥ the configured threshold re-dispatches
  (``lambda-delta`` / ``price-delta``), but never sooner than
  ``debounce_s`` after the previous dispatch — a burst of threshold
  crossings coalesces into one re-dispatch at the end of the debounce
  window, because the delta is measured against the *last dispatched*
  state and therefore stays armed;
* regardless of deltas, a dispatch older than ``max_staleness_s`` is
  refreshed at the next tick (``staleness``) — the deadline that
  bounds how long a quiet feed can pin a stale decision.

Dispatches run through :func:`~repro.sim.engine.dispatch_with_degradation`
— the exact function behind the engine's ``dispatch`` stage — so solver
failures degrade by policy instead of crashing the service, and the
last good decision feeds HOLD_LAST exactly as in batch runs. Each
decision is realized against ground truth with
:meth:`Engine._realize <repro.sim.engine.Engine._realize>` (full-hour
rates); settlement time-weights the realized costs of the hour's
decision segments and feeds the blended bill to the budgeter, so a
re-dispatching month remains comparable with a batch month.

Hour settlement fires the ``on_settle`` callback — the service's
checkpoint hook. The loop's own :meth:`state_dict`/:meth:`load_state`
capture everything needed to continue bit-identically from a settled
hour boundary (λ/price observations, decision counters, the record in
force that bridges hour boundaries, and the last good decision).
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass

from ..billing import SettlementLedger, make_ledger, restore_ledger
from ..core import Budgeter, HourlyDecision
from ..resilience import DegradationPolicy
from ..sim.engine import (
    Engine,
    HourContext,
    RunState,
    dispatch_with_degradation,
)
from ..sim.records import HourRecord
from ..telemetry import get_telemetry
from .ticks import Tick

__all__ = ["TriggerPolicy", "DecisionEvent", "ControlLoop", "run_serial"]

_HOUR_S = 3600.0


@dataclass(frozen=True)
class TriggerPolicy:
    """When a tick is allowed to force a sub-hourly re-dispatch.

    Attributes
    ----------
    lambda_delta:
        Relative change of observed λ versus the last-dispatched λ that
        arms a re-dispatch (``0.05`` = 5 %). A tick landing *exactly*
        on the threshold fires (``>=`` comparison).
    price_delta:
        Same, for the largest relative change of any site's price-feed
        scale versus its value at the last dispatch.
    debounce_s:
        Minimum simulated seconds between dispatches for the delta
        paths. Crossings inside the window coalesce: the first tick
        past it still sees the accumulated delta and fires.
    max_staleness_s:
        A dispatch older than this is refreshed by the next tick even
        with both deltas quiet. Must exceed ``debounce_s``.
    """

    lambda_delta: float = 0.05
    price_delta: float = 0.05
    debounce_s: float = 120.0
    max_staleness_s: float = 900.0

    def __post_init__(self):
        if self.lambda_delta <= 0 or self.price_delta <= 0:
            raise ValueError("delta thresholds must be positive")
        if self.debounce_s < 0:
            raise ValueError("debounce must be >= 0")
        if self.max_staleness_s <= self.debounce_s:
            raise ValueError("max_staleness_s must exceed debounce_s")


@dataclass(frozen=True)
class DecisionEvent:
    """One dispatch decision as it entered the decision log.

    ``realized_cost_rate`` is the ground-truth bill *rate* ($ per full
    hour at this operating point); settlement scales it by the fraction
    of the hour the decision was actually in force.
    """

    seq: int
    tick_seq: int
    time_s: float
    hour: int
    reason: str
    lambda_rps: float
    budget: float
    step: str
    predicted_cost: float
    realized_cost_rate: float
    allocations: tuple[tuple[str, float], ...]  # (site, rate_rps)

    def fractions(self) -> dict[str, float]:
        """Routing fractions implied by the allocation (uniform if idle)."""
        total = sum(rate for _, rate in self.allocations)
        if total <= 0:
            n = len(self.allocations)
            return {site: 1.0 / n for site, _ in self.allocations}
        return {site: rate / total for site, rate in self.allocations}

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "tick_seq": self.tick_seq,
            "time_s": self.time_s,
            "hour": self.hour,
            "reason": self.reason,
            "lambda_rps": self.lambda_rps,
            "budget": self.budget,
            "step": self.step,
            "predicted_cost": self.predicted_cost,
            "realized_cost_rate": self.realized_cost_rate,
            "allocations": [[site, rate] for site, rate in self.allocations],
        }

    def to_json(self) -> str:
        """The decision-log line (no newline); key order is fixed, and
        JSON float repr round-trips exactly, so identical events always
        serialize to identical bytes — the log-diffing contract."""
        return json.dumps(self.to_dict())


#: Schema version of :meth:`ControlLoop.state_dict` payloads. Version
#: history:
#:
#: * 1 — through the energy-only billing spine.
#: * 2 — adds the settlement ledger state (``"ledger"``); v1 payloads
#:   migrate by keeping the loop's constructed ledger (energy-only
#:   checkpoints carry no cross-hour tariff state).
LOOP_STATE_VERSION = 2


class ControlLoop:
    """Pure synchronous core: ticks in, decision events out.

    Parameters
    ----------
    engine:
        The world (sites, workload trace for ground truth, mix).
    strategy:
        A registry name or :class:`~repro.sim.engine.DispatchStrategy`.
    trigger:
        The re-dispatch :class:`TriggerPolicy`.
    budgeter:
        Optional :class:`~repro.core.Budgeter`; only legal for
        strategies that consume a budget (as in :meth:`Engine.run`).
    budget_source:
        Optional ``callable(hour) -> float`` consulted instead of a
        budgeter when an hour opens — the hook the sharded control
        plane (:mod:`repro.service.shard`) uses to hand each region
        loop its hourly allotment from the shared budget ledger.
        Mutually exclusive with ``budgeter``; spend settlement is then
        the ledger's job (reported through ``on_settle``), not the
        loop's. When neither is given, the loop synthesizes a source
        returning ``inf`` — budgeted and unbudgeted hours open through
        the same code path.
    tariff:
        Tariff spec string (``"energy"``, ``"energy+demand:rate=6"``)
        or a pre-built :class:`~repro.billing.SettlementLedger`. Each
        hour's time-weighted energy cost and average power accrue into
        the ledger; settlement bills through its components. ``None``
        (the default) builds the ``energy`` tariff, whose single line
        item reproduces the pre-ledger spend bit for bit.
    hours:
        Horizon in hours (default: the engine workload's length).
        Ticks beyond the horizon are ignored.
    degradation:
        Degradation policy for solver failures (default
        :attr:`~repro.resilience.DegradationPolicy.PROPORTIONAL` — an
        always-on service must not crash on a solver hiccup).
    on_settle:
        ``callback(loop, summary_dict)`` fired after each hour settles
        (budgeter updated, summary appended) — the checkpoint hook.
    """

    def __init__(
        self,
        engine: Engine,
        strategy,
        *,
        trigger: TriggerPolicy | None = None,
        budgeter: Budgeter | None = None,
        budget_source=None,
        tariff: "str | SettlementLedger | None" = None,
        hours: int | None = None,
        degradation: DegradationPolicy | None = DegradationPolicy.PROPORTIONAL,
        name: str | None = None,
        on_settle=None,
        endogenous=None,
    ):
        self.engine = engine
        self.strategy = engine._resolve(strategy)
        #: Optional closed-loop pricing runtime
        #: (:class:`repro.sim.endogenous.EndogenousPrices`): every
        #: sub-hourly dispatch is iterated to the LMP fixed point and
        #: billed at the endogenous prices. ``None`` keeps the exogenous
        #: path bit-identical.
        self.endogenous = endogenous
        self.trigger = trigger or TriggerPolicy()
        self.horizon = engine._horizon(hours)
        self.degradation = degradation
        self.name = name or engine._result_name(self.strategy)
        self.on_settle = on_settle
        if budgeter is not None and budget_source is not None:
            raise ValueError(
                "pass either a budgeter or a budget_source, not both"
            )
        if (budgeter is not None or budget_source is not None) and (
            not self.strategy.wants_budget
        ):
            raise ValueError(
                f"strategy {self.strategy.name!r} does not consume a "
                "budget; run it without a budgeter"
            )
        # Hours always open through a budget source: an explicit one
        # (the shard ledger's hook) or the synthesized budgeter-or-inf
        # source below — one code path, so the two can't drift.
        self.budget_source = (
            budget_source
            if budget_source is not None
            else self._budgeter_source
        )
        self.ledger = (
            tariff
            if isinstance(tariff, SettlementLedger)
            else make_ledger(tariff)
        )
        # A freshly restored budgeter already has its settled hours
        # recorded, so only the remaining horizon must fit.
        already = budgeter.current_hour if budgeter is not None else 0
        engine._check_budgeter(
            budgeter, self.horizon, needed=self.horizon - already
        )
        self.strategy.prepare(engine)
        self.state = RunState(budgeter=budgeter)

        # Observed state (what the dispatcher sees).
        self.lambda_now = 0.0
        self.price_scale: dict[str, float] = {}
        # Dispatch bookkeeping.
        self.decisions = 0
        self.current_record: HourRecord | None = None
        self.current_event: DecisionEvent | None = None
        self._last_dispatch_s = 0.0
        self._lambda_at_dispatch = 0.0
        self._scale_at_dispatch: dict[str, float] = {}
        # Hour bookkeeping.
        self.hour: int | None = None
        self._start_hour = 0
        self._hour_open = False
        self.hour_budget = math.inf
        self._hour_decisions = 0
        self._segment_start = 0.0
        self._accrued: dict[str, float] = {}
        self.hour_summaries: list[dict] = []
        self.finished = False
        self._last_time = -math.inf

    # -- tick intake --------------------------------------------------------

    def on_tick(self, tick: Tick) -> tuple[DecisionEvent, ...]:
        """Advance the loop by one tick; return any decisions it caused."""
        if self.finished:
            return ()
        if tick.time_s < self._last_time:
            raise ValueError(
                f"tick {tick.seq} goes back in time "
                f"({tick.time_s} < {self._last_time})"
            )
        self._last_time = tick.time_s
        hour_of = int(tick.time_s // _HOUR_S)
        if self.hour is None:
            if hour_of < self._start_hour:
                raise ValueError(
                    f"first tick falls in hour {hour_of}, before the "
                    f"loop's start hour {self._start_hour}"
                )
            # Hours between the start and the first tick (possible on a
            # sparse feed) are settled by the catch-up loop below with
            # the decision in force, exactly as in an uninterrupted run.
            self._begin_hour(self._start_hour)
        while hour_of > self.hour:
            self._settle_hour()
            if self.hour + 1 >= self.horizon:
                self.finished = True
                return ()
            self._begin_hour(self.hour + 1)
        # Apply the observation.
        if tick.kind == "lambda":
            self.lambda_now = float(tick.value)
        else:  # "price" — validated by Tick
            self.price_scale[tick.site] = float(tick.value)
        reason = self._trigger_reason(tick)
        if reason is None:
            return ()
        return (self._dispatch(tick, reason),)

    def finish(self) -> None:
        """End of stream: settle the hour in progress at its boundary.

        The decision in force is extended to the hour's end — the same
        accrual an uninterrupted stream would have produced had its
        remaining ticks caused no re-dispatch — so stream truncation
        never leaves a half-accounted hour.
        """
        if not self.finished and self._hour_open:
            self._settle_hour()
        self.finished = True

    # -- explicit hour control (the sharded two-phase barrier) --------------

    def open_hour(self, hour: int) -> None:
        """Open ``hour`` explicitly (phase 2 of a shard hour barrier).

        :meth:`on_tick` normally advances hours on its own; a shard
        worker instead settles *all* its region loops, exchanges spends
        for allotments at the budget ledger, and only then opens the
        next hour on each loop — this method is that second phase.
        Only the hour right after the last settled one is legal.
        """
        if self._hour_open:
            raise ValueError(f"hour {self.hour} is still open")
        expected = self._start_hour if self.hour is None else self.hour + 1
        if hour != expected:
            raise ValueError(f"expected hour {expected}, got {hour}")
        if hour >= self.horizon:
            raise ValueError(f"hour {hour} is past the {self.horizon} h horizon")
        self._begin_hour(hour)

    def settle_open_hour(self) -> dict | None:
        """Settle the open hour at its boundary (phase 1 of a barrier).

        Returns the hour summary, or ``None`` when no hour is open
        (idempotent, so stream-end and explicit settlement compose).
        """
        if not self._hour_open:
            return None
        return self._settle_hour()

    # -- triggers -----------------------------------------------------------

    def _trigger_reason(self, tick: Tick) -> str | None:
        if self._hour_decisions == 0:
            return "hour-start"
        since = tick.time_s - self._last_dispatch_s
        if since >= self.trigger.debounce_s:
            if self._lambda_rel_delta() >= self.trigger.lambda_delta:
                return "lambda-delta"
            if self._price_rel_delta() >= self.trigger.price_delta:
                return "price-delta"
        if since >= self.trigger.max_staleness_s:
            return "staleness"
        return None

    def _lambda_rel_delta(self) -> float:
        base = self._lambda_at_dispatch
        if base <= 0:
            return math.inf if self.lambda_now > 0 else 0.0
        return abs(self.lambda_now - base) / base

    def _price_rel_delta(self) -> float:
        worst = 0.0
        for site, scale in self.price_scale.items():
            base = self._scale_at_dispatch.get(site, 1.0)
            worst = max(worst, abs(scale - base) / base)
        return worst

    # -- dispatch -----------------------------------------------------------

    def _observed_site_hours(self):
        """This hour's snapshots through the price-feed scale lens."""
        base = self.engine._site_hours(self.hour)
        if not self.price_scale:
            return base
        return [
            sh if (s := self.price_scale.get(sh.name, 1.0)) == 1.0
            else dataclasses.replace(sh, background_mw=sh.background_mw * s)
            for sh in base
        ]

    def _dispatch(self, tick: Tick, reason: str) -> DecisionEvent:
        tel = get_telemetry()
        self._close_segment(tick.time_s)
        ctx = HourContext(
            hour=self.hour,
            strategy=self.strategy,
            run_name=self.name,
            degradation=self.degradation,
        )
        ctx.total_rps = self.lambda_now
        ctx.demand_premium_rps = self.engine.mix.premium_rate(self.lambda_now)
        ctx.demand_ordinary_rps = self.engine.mix.ordinary_rate(self.lambda_now)
        ctx.site_hours = self._observed_site_hours()
        ctx.budget = self.hour_budget
        ctx.ledger = self.ledger
        with tel.span("service.dispatch", hour=self.hour, reason=reason):
            decision = dispatch_with_degradation(ctx, self.state)
            if self.endogenous is not None:
                try:
                    self.endogenous.apply(ctx, self.state)
                    decision = ctx.decision
                    record = self.engine._realize(self.hour, decision)
                finally:
                    self.endogenous.clear()
            else:
                record = self.engine._realize(self.hour, decision)
        tel.counter("service.dispatches").inc()
        tel.counter(f"service.trigger.{reason}").inc()

        self.current_record = record
        self._hour_decisions += 1
        self._last_dispatch_s = tick.time_s
        self._lambda_at_dispatch = self.lambda_now
        self._scale_at_dispatch = dict(self.price_scale)
        event = DecisionEvent(
            seq=self.decisions,
            tick_seq=tick.seq,
            time_s=tick.time_s,
            hour=self.hour,
            reason=reason,
            lambda_rps=self.lambda_now,
            budget=self.hour_budget,
            step=decision.step.value,
            predicted_cost=decision.predicted_cost,
            realized_cost_rate=record.realized_cost,
            allocations=tuple(
                (a.site, a.rate_rps) for a in decision.allocations
            ),
        )
        self.decisions += 1
        self.current_event = event
        return event

    # -- hour accounting ----------------------------------------------------

    def _budgeter_source(self, hour: int) -> float:
        """Default budget source: the budgeter's hourly budget, or
        ``inf`` when the loop runs uncapped — the same shape as the
        shard ledger's external source, so :meth:`_begin_hour` has one
        path regardless of who allots the hour."""
        budgeter = self.state.budgeter
        return budgeter.hourly_budget() if budgeter is not None else math.inf

    def _begin_hour(self, hour: int) -> None:
        self.hour = hour
        self._hour_open = True
        self._hour_decisions = 0
        self._segment_start = hour * _HOUR_S
        self._accrued = {
            "realized_cost": 0.0,
            "served_premium_rps": 0.0,
            "served_ordinary_rps": 0.0,
            "demand_premium_rps": 0.0,
            "demand_ordinary_rps": 0.0,
        }
        self.hour_budget = float(self.budget_source(hour))

    def _close_segment(self, end_s: float) -> None:
        """Accrue the in-force decision over ``[segment_start, end_s)``.

        Weights are fractions of the hour, so a decision in force for
        the whole hour contributes exactly its full-hour record — the
        batch-engine equivalence the determinism tests rely on.
        """
        record = self.current_record
        weight = (end_s - self._segment_start) / _HOUR_S
        if record is not None and weight > 0:
            acc = self._accrued
            acc["realized_cost"] += record.realized_cost * weight
            acc["served_premium_rps"] += record.served_premium_rps * weight
            acc["served_ordinary_rps"] += record.served_ordinary_rps * weight
            acc["demand_premium_rps"] += record.demand_premium_rps * weight
            acc["demand_ordinary_rps"] += record.demand_ordinary_rps * weight
            # Same `x * weight` fold the accruals above use, so the
            # ledger's energy equals acc["realized_cost"] bit for bit.
            self.ledger.accrue(
                record.realized_cost, record.total_power_mw, weight
            )
        self._segment_start = end_s

    def _settle_hour(self) -> dict:
        self._close_segment((self.hour + 1) * _HOUR_S)
        items = self.ledger.settle(self.hour)
        spend = SettlementLedger.total(items)
        summary = {
            "hour": self.hour,
            "budget": self.hour_budget,
            "decisions": self._hour_decisions,
            **self._accrued,
            "spend": spend,
            "line_items": [li.to_dict() for li in items],
        }
        budgeter = self.state.budgeter
        if budgeter is not None:
            budgeter.record_spend(spend)
        self.hour_summaries.append(summary)
        self._hour_open = False
        get_telemetry().counter("service.hours_settled").inc()
        if self.on_settle is not None:
            self.on_settle(self, summary)
        return summary

    # -- aggregate view ------------------------------------------------------

    @property
    def settled_hours(self) -> int:
        return len(self.hour_summaries)

    def summary(self) -> dict:
        """Headline totals over the settled hours (service run report)."""
        total = lambda key: sum(s[key] for s in self.hour_summaries)  # noqa: E731
        demand_p = total("demand_premium_rps")
        demand_o = total("demand_ordinary_rps")
        return {
            "strategy": self.name,
            "hours": self.settled_hours,
            "decisions": self.decisions,
            "total_cost": sum(
                s.get("spend", s["realized_cost"])
                for s in self.hour_summaries
            ),
            "hours_over_budget": sum(
                # Full settled bill when the summary carries one;
                # restored pre-ledger summaries fall back to the energy
                # cost (their bill *was* the energy cost).
                s.get("spend", s["realized_cost"]) > s["budget"] * (1 + 1e-9)
                for s in self.hour_summaries
            ),
            "premium_throughput": (
                total("served_premium_rps") / demand_p if demand_p > 0 else 1.0
            ),
            "ordinary_throughput": (
                total("served_ordinary_rps") / demand_o if demand_o > 0 else 1.0
            ),
        }

    # -- checkpoint state ----------------------------------------------------
    # Valid only at a settled hour boundary (the on_settle hook), where
    # the in-progress-hour accruals are empty by construction.

    def state_dict(self) -> dict:
        return {
            "v": LOOP_STATE_VERSION,
            "settled_hours": self.settled_hours,
            "lambda_now": self.lambda_now,
            "price_scale": dict(self.price_scale),
            "decisions": self.decisions,
            "hour_summaries": list(self.hour_summaries),
            "current_record": (
                self.current_record.to_dict()
                if self.current_record is not None
                else None
            ),
            "last_good": (
                self.state.last_good.to_dict()
                if self.state.last_good is not None
                else None
            ),
            "ledger": self.ledger.to_dict(),
        }

    def load_state(self, data: dict) -> None:
        """Rewind to a settled hour boundary captured by :meth:`state_dict`.

        The budgeter (already restored by the caller into
        ``self.state.budgeter``) and strategy state are external to the
        loop, mirroring the engine checkpoint layout.
        """
        version = data.get("v")
        if version not in (1, LOOP_STATE_VERSION):
            raise ValueError(
                f"unsupported control-loop state version {version!r} "
                f"(expected {LOOP_STATE_VERSION})"
            )
        self._start_hour = int(data["settled_hours"])
        if self._start_hour >= self.horizon:
            raise ValueError(
                f"checkpoint already covers {self._start_hour} hours of a "
                f"{self.horizon} h horizon; nothing left to run"
            )
        self.engine._check_budgeter(
            self.state.budgeter,
            self.horizon,
            needed=self.horizon - self._start_hour,
        )
        self.lambda_now = float(data["lambda_now"])
        self.price_scale = dict(data["price_scale"])
        self.decisions = int(data["decisions"])
        self.hour_summaries = list(data["hour_summaries"])
        self.current_record = (
            HourRecord.from_dict(data["current_record"])
            if data.get("current_record") is not None
            else None
        )
        self.state.last_good = (
            HourlyDecision.from_dict(data["last_good"])
            if data.get("last_good") is not None
            else None
        )
        # v1 states predate the ledger: keep the constructed one (the
        # energy-only default carries no cross-hour tariff state).
        if data.get("ledger") is not None:
            self.ledger = restore_ledger(data["ledger"])
        self._last_time = self._start_hour * _HOUR_S


def run_serial(loop: ControlLoop, ticks) -> list[DecisionEvent]:
    """Drive a loop through a tick sequence without an event loop.

    The reference execution: the asyncio service must produce exactly
    this sequence of events for the same ticks.
    """
    events: list[DecisionEvent] = []
    for tick in ticks:
        events.extend(loop.on_tick(tick))
    loop.finish()
    return events
