"""The replicated read model: what HTTP serves, decoupled from dispatch.

The control loop (and, sharded, every worker process) *publishes*
decision events; HTTP subscribers — SSE streams, long-polls, plain
``GET /decision`` — *read* them. :class:`DecisionReadModel` is the
buffer in between, built so that nothing a reader does can ever stall a
publisher:

* :meth:`publish` takes one lock, appends to bounded structures, and
  returns — no I/O, no waiting on consumers. It is safe to call from
  worker-pipe reader threads; wake-ups for asyncio waiters are
  scheduled with ``call_soon_threadsafe``.
* every subscriber owns a **bounded** queue; when a slow SSE client
  falls behind, its oldest undelivered events are dropped (and counted
  in ``dropped``) rather than buffered without bound or, worse,
  back-pressured into the dispatch path. The decision *log* on disk
  stays complete regardless — the queues are a live feed, not the
  record.
* the model keeps a bounded replay ring (``history`` events) so a
  subscriber arriving with ``since=<pub_seq>`` can catch up without a
  full log read, plus the latest event per region (the snapshot a bare
  ``GET /decision`` serves).

Every published record carries a monotonically increasing ``pub_seq``
(the SSE ``id:`` field) and the region that produced it. Publish
latency — producer ``time.monotonic()`` stamp to publish — is sampled
into ``push_latency_s`` for the benchmark's p50/p99 push numbers
(``time.monotonic`` shares one system-wide clock base on Linux, so
cross-process stamps compare fine).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque

from ..telemetry import get_telemetry

__all__ = ["DecisionReadModel", "Subscription", "sse_frame", "sse_stream"]

#: Push-latency samples kept for the bench (oldest dropped beyond this).
_LATENCY_SAMPLES = 65536


class Subscription:
    """One subscriber's bounded live feed of published records.

    Iterate with :meth:`drain` after awaiting :attr:`event`; the model
    appends records (dropping the oldest beyond ``maxlen``) and sets
    the event. ``dropped`` counts records this subscriber lost by
    falling behind.
    """

    __slots__ = ("queue", "dropped", "event", "_loop")

    def __init__(self, maxlen: int, loop: asyncio.AbstractEventLoop | None):
        self.queue: deque = deque(maxlen=maxlen)
        self.dropped = 0
        self.event = asyncio.Event()
        self._loop = loop

    def _offer(self, record: dict) -> None:
        """Append without blocking; count a drop when the queue is full."""
        if len(self.queue) == self.queue.maxlen:
            self.dropped += 1
        self.queue.append(record)
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.event.set)
        else:
            self.event.set()

    def drain(self) -> list[dict]:
        """Take everything queued so far and re-arm the event."""
        out = []
        while self.queue:
            out.append(self.queue.popleft())
        self.event.clear()
        # A record published between the drain and the clear must not
        # be lost: re-set when the queue is already non-empty again.
        if self.queue:
            self.event.set()
        return out


class DecisionReadModel:
    """Snapshot store + replay ring + per-subscriber bounded queues."""

    def __init__(self, history: int = 1024):
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=history)
        self._latest: dict | None = None
        self._latest_by_region: dict[int | None, dict] = {}
        self._subs: set[Subscription] = set()
        self._waiters: list[asyncio.Event] = []
        self._aio: asyncio.AbstractEventLoop | None = None
        self.pub_seq = 0
        #: Producer-stamp → publish latency samples (seconds).
        self.push_latency_s: deque = deque(maxlen=_LATENCY_SAMPLES)

    def bind_loop(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        """Attach the asyncio loop that subscribers live on.

        Publishes from other threads then wake waiters through
        ``call_soon_threadsafe``; without a bound loop, wake-ups are
        set directly (single-threaded use).
        """
        self._aio = loop or asyncio.get_running_loop()

    # -- write side ---------------------------------------------------------

    def publish(
        self,
        event: dict,
        *,
        region: int | None = None,
        produced_mono: float | None = None,
    ) -> int:
        """Record one decision event; never blocks on consumers.

        Returns the record's ``pub_seq``. ``produced_mono`` is the
        producer's ``time.monotonic()`` stamp for push-latency
        accounting.
        """
        now = time.monotonic()
        with self._lock:
            self.pub_seq += 1
            record = {"pub_seq": self.pub_seq, "region": region, "event": event}
            self._ring.append(record)
            self._latest = record
            self._latest_by_region[region] = record
            if produced_mono is not None:
                self.push_latency_s.append(max(0.0, now - produced_mono))
            subs = list(self._subs)
            waiters, self._waiters = self._waiters, []
        for sub in subs:
            sub._offer(record)
        for ev in waiters:
            if self._aio is not None:
                self._aio.call_soon_threadsafe(ev.set)
            else:
                ev.set()
        tel = get_telemetry()
        if tel.enabled:
            tel.counter("service.readmodel.published").inc()
            if produced_mono is not None:
                tel.histogram("service.readmodel.push_s").observe(
                    max(0.0, now - produced_mono)
                )
        return record["pub_seq"]

    # -- read side ----------------------------------------------------------

    def latest(self, region: int | None = None) -> dict | None:
        """The newest record (for ``region`` when given), or ``None``."""
        with self._lock:
            if region is None:
                return self._latest
            return self._latest_by_region.get(region)

    def snapshot(self) -> dict:
        """Per-region latest records plus the global cursor."""
        with self._lock:
            return {
                "pub_seq": self.pub_seq,
                "regions": {
                    str(r): rec for r, rec in self._latest_by_region.items()
                },
            }

    def since(self, pub_seq: int) -> list[dict]:
        """Ring records newer than ``pub_seq`` (oldest first).

        Records older than the ring's horizon are gone — subscribers
        that far behind re-anchor on the snapshot (the decision log on
        disk is the complete record).
        """
        with self._lock:
            return [r for r in self._ring if r["pub_seq"] > pub_seq]

    def subscribe(self, maxlen: int = 256) -> Subscription:
        sub = Subscription(maxlen, self._aio)
        with self._lock:
            self._subs.add(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            self._subs.discard(sub)

    @property
    def subscribers(self) -> int:
        with self._lock:
            return len(self._subs)

    @property
    def dropped_total(self) -> int:
        with self._lock:
            return sum(s.dropped for s in self._subs)

    async def wait_newer(
        self, pub_seq: int, timeout_s: float
    ) -> dict | None:
        """Long-poll primitive: the next record past ``pub_seq``.

        Returns the oldest such record, or ``None`` on timeout.
        """
        backlog = self.since(pub_seq)
        if backlog:
            return backlog[0]
        ev = asyncio.Event()
        with self._lock:
            # Re-check under the lock: a publish may have landed
            # between the backlog read and the waiter registration.
            if self._latest is not None and self._latest["pub_seq"] > pub_seq:
                return self._latest
            self._waiters.append(ev)
        try:
            await asyncio.wait_for(ev.wait(), timeout_s)
        except asyncio.TimeoutError:
            with self._lock:
                if ev in self._waiters:
                    self._waiters.remove(ev)
            return None
        backlog = self.since(pub_seq)
        return backlog[0] if backlog else self.latest()


# -- SSE plumbing -------------------------------------------------------------


def sse_frame(record: dict) -> bytes:
    """One server-sent event: ``id:`` is the record's ``pub_seq``, so a
    reconnecting client resumes with ``?since=<Last-Event-ID>``."""
    return (
        f"id: {record['pub_seq']}\ndata: {json.dumps(record)}\n\n"
    ).encode("utf-8")


async def sse_stream(model: DecisionReadModel, since: int = 0):
    """The ``/decisions/stream`` body: replay the ring past ``since``,
    then live-follow a bounded subscription until the client goes away
    (the server ``aclose``\\ s the generator, which unsubscribes)."""
    sub = model.subscribe()
    last = int(since)
    try:
        for record in model.since(last):
            last = record["pub_seq"]
            yield sse_frame(record)
        while True:
            await sub.event.wait()
            for record in sub.drain():
                if record["pub_seq"] <= last:
                    continue
                last = record["pub_seq"]
                yield sse_frame(record)
    finally:
        model.unsubscribe(sub)
