"""Power-market substrate: grids, DC-OPF/LMP, stepped pricing, demand.

This package models the paper's Section II world: ISO markets whose
locational prices follow the LMP methodology, computed from a DC
optimal power flow, and the piecewise-constant pricing policies the
bill-capping algorithms consume.
"""

from .closedloop import (
    ClosedLoopConfig,
    EndogenousPricer,
    FixedPointResult,
    MarketCoupling,
    available_grids,
    compress_steps,
    get_grid,
    line_outage,
    policies_from_sweep,
    register_grid,
)
from .curves import CurveBank, StepCurve
from .dcopf import DcOpf, DispatchResult
from .demand import (
    background_for_policy,
    reco_like_background,
    renewable_background,
)
from .grids import ieee9_like, ring, two_zone
from .lmp import LmpComponents, decompose_lmp
from .network import Bus, Generator, Grid, Line
from .pjm5bus import LOAD_BUSES, LOAD_SHARES, derive_step_policies, pjm5bus
from .ptdf import (
    PtdfMatrix,
    compute_ptdf,
    congestion_exposure,
    injection_shift_flows,
)
from .pricing import (
    PAPER_BREAKPOINTS_MW,
    PAPER_DC1_PRICES,
    SteppedPricingPolicy,
    flat_policy,
    paper_policies,
    paper_policy_dc1,
    scale_increments,
)

__all__ = [
    "Bus",
    "Generator",
    "Line",
    "Grid",
    "DcOpf",
    "DispatchResult",
    "pjm5bus",
    "derive_step_policies",
    "LOAD_BUSES",
    "LOAD_SHARES",
    "SteppedPricingPolicy",
    "flat_policy",
    "scale_increments",
    "paper_policy_dc1",
    "paper_policies",
    "PAPER_DC1_PRICES",
    "PAPER_BREAKPOINTS_MW",
    "reco_like_background",
    "renewable_background",
    "background_for_policy",
    "ClosedLoopConfig",
    "FixedPointResult",
    "MarketCoupling",
    "EndogenousPricer",
    "register_grid",
    "get_grid",
    "available_grids",
    "line_outage",
    "compress_steps",
    "policies_from_sweep",
    "PtdfMatrix",
    "compute_ptdf",
    "injection_shift_flows",
    "congestion_exposure",
    "two_zone",
    "ieee9_like",
    "ring",
    "LmpComponents",
    "decompose_lmp",
    "StepCurve",
    "CurveBank",
]
