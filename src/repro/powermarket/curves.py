"""Vectorized step-price curves: batched ``F_i(p_i + d_i)`` evaluation.

The hourly optimizers and benchmarks evaluate the piecewise-constant
price curves thousands of times per simulated month — per site, per
candidate load, per hour. The scalar :meth:`SteppedPricingPolicy.price`
path converts the policy's tuples and runs one ``searchsorted`` per
call; this module precomputes the breakpoint/price arrays once and
evaluates whole (site x candidate-load) grids in single NumPy calls.

Two layers:

* :class:`StepCurve` — one policy's curve with precomputed arrays;
  right-open step lookup over arbitrary-shaped load arrays.
* :class:`CurveBank` — a fleet of curves stacked into padded 2-D
  arrays, evaluating ``F_i(p_i + d_i)`` for *all* sites and *all*
  candidate loads at once (one broadcasted comparison, no Python loop).

Equivalence with the scalar path — including loads exactly on
breakpoints, where the right-open convention decides the level — is
pinned by ``tests/powermarket/test_curves.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .pricing import SteppedPricingPolicy

__all__ = ["StepCurve", "CurveBank"]


class StepCurve:
    """One pricing policy's step curve with precomputed arrays.

    ``price(P) = prices[k]`` for ``breakpoints[k-1] <= P < breakpoints[k]``
    (right-open, matching :meth:`SteppedPricingPolicy.price`).
    """

    __slots__ = ("name", "breakpoints", "prices")

    def __init__(self, name: str, breakpoints: Sequence[float],
                 prices: Sequence[float]):
        self.name = name
        self.breakpoints = np.ascontiguousarray(breakpoints, dtype=float)
        self.prices = np.ascontiguousarray(prices, dtype=float)
        if self.prices.size != self.breakpoints.size + 1:
            raise ValueError("need len(prices) == len(breakpoints) + 1")

    @classmethod
    def from_policy(cls, policy: SteppedPricingPolicy) -> "StepCurve":
        return cls(policy.name, policy.breakpoints, policy.prices)

    def level(self, loads_mw) -> np.ndarray:
        """Vectorized price-level index; accepts any array shape."""
        loads = np.asarray(loads_mw, dtype=float)
        if np.any(loads < 0):
            raise ValueError("negative market load")
        return np.searchsorted(self.breakpoints, loads, side="right")

    def price(self, loads_mw) -> np.ndarray:
        """Vectorized price ($/MWh) over an array of market loads."""
        return self.prices[self.level(loads_mw)]


class CurveBank:
    """All sites' step curves stacked for batched evaluation.

    Rows are padded to the widest curve: missing breakpoints are ``inf``
    (never selected by the right-open lookup) and missing prices repeat
    the last level, so padding is invisible to the result.
    """

    __slots__ = ("names", "breakpoints", "prices", "n_sites")

    def __init__(self, curves: Sequence[StepCurve]):
        if not curves:
            raise ValueError("at least one curve required")
        self.names = tuple(c.name for c in curves)
        self.n_sites = len(curves)
        width = max(c.breakpoints.size for c in curves)
        bp = np.full((self.n_sites, width), np.inf)
        pr = np.empty((self.n_sites, width + 1))
        for i, c in enumerate(curves):
            bp[i, : c.breakpoints.size] = c.breakpoints
            pr[i, : c.prices.size] = c.prices
            pr[i, c.prices.size :] = c.prices[-1]
        self.breakpoints = bp
        self.prices = pr

    @classmethod
    def from_policies(
        cls, policies: Sequence[SteppedPricingPolicy]
    ) -> "CurveBank":
        return cls([StepCurve.from_policy(p) for p in policies])

    def level(self, loads_mw) -> np.ndarray:
        """Level index per (site, candidate load).

        ``loads_mw`` is ``(n_sites,)`` or ``(n_sites, n_candidates)``;
        the result has the same shape. The lookup counts breakpoints
        ``<= load`` per row — exactly ``searchsorted(..., side="right")``
        applied row-wise.
        """
        loads = np.asarray(loads_mw, dtype=float)
        if loads.shape[0] != self.n_sites:
            raise ValueError(
                f"expected leading dimension {self.n_sites}, got {loads.shape}"
            )
        if np.any(loads < 0):
            raise ValueError("negative market load")
        if loads.ndim == 1:
            return (loads[:, None] >= self.breakpoints).sum(axis=1)
        if loads.ndim == 2:
            return (loads[:, :, None] >= self.breakpoints[:, None, :]).sum(axis=2)
        raise ValueError("loads must be 1-D (sites) or 2-D (sites x candidates)")

    def price(self, loads_mw) -> np.ndarray:
        """Batched ``F_i(load_i)`` across all sites (and candidates)."""
        idx = self.level(loads_mw)
        return np.take_along_axis(
            self.prices,
            idx if idx.ndim == 2 else idx[:, None],
            axis=1,
        ).reshape(idx.shape)

    def site_price(self, dc_power_mw, background_mw) -> np.ndarray:
        """``F_i(p_i + d_i)``: the price each site pays at its own draw.

        ``dc_power_mw`` broadcasts against ``background_mw`` along the
        site axis; candidate grids go in the trailing dimension.
        """
        dc = np.asarray(dc_power_mw, dtype=float)
        bg = np.asarray(background_mw, dtype=float)
        if dc.ndim == 2 and bg.ndim == 1:
            bg = bg[:, None]
        return self.price(dc + bg)
