"""Transmission-grid data model for the power-market substrate.

A :class:`Grid` is a set of :class:`Bus` es connected by
:class:`Line` s, with :class:`Generator` s attached to buses. It is the
input to the DC optimal power flow in :mod:`repro.powermarket.dcopf`,
whose nodal dual prices are the locational marginal prices (LMPs) that
drive the paper's pricing policies.

Loads are *not* stored on the grid: they are passed per-dispatch as a
``{bus: MW}`` mapping, because the whole point of the paper is sweeping
load levels to trace out the LMP step function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

__all__ = ["Bus", "Generator", "Line", "Grid"]


@dataclass(frozen=True)
class Bus:
    """A network node.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"B"``.
    """

    name: str


@dataclass(frozen=True)
class Generator:
    """A dispatchable generator.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"Brighton"``.
    bus:
        Name of the bus the unit is connected to.
    max_mw:
        Maximum output in MW.
    cost:
        Marginal (energy) cost in $/MWh; the DC-OPF uses a single linear
        cost segment per unit, as in the PJM 5-bus example.
    min_mw:
        Minimum stable output in MW (0 for the canonical example).
    """

    name: str
    bus: str
    max_mw: float
    cost: float
    min_mw: float = 0.0

    def __post_init__(self):
        if self.max_mw < self.min_mw:
            raise ValueError(f"generator {self.name}: max_mw < min_mw")
        if self.min_mw < 0:
            raise ValueError(f"generator {self.name}: negative min_mw")


@dataclass(frozen=True)
class Line:
    """A transmission line in the DC approximation.

    Attributes
    ----------
    from_bus, to_bus:
        Endpoint bus names; flow is positive from ``from_bus`` to
        ``to_bus``.
    reactance:
        Series reactance in per-unit (on :attr:`Grid.base_mva`).
    limit_mw:
        Thermal limit in MW applied to ``|flow|``; ``inf`` when
        unconstrained.
    """

    from_bus: str
    to_bus: str
    reactance: float
    limit_mw: float = float("inf")

    def __post_init__(self):
        if self.reactance <= 0:
            raise ValueError("line reactance must be positive")
        if self.limit_mw <= 0:
            raise ValueError("line limit must be positive")

    @property
    def susceptance(self) -> float:
        """Per-unit susceptance ``1/x`` used by the DC power-flow model."""
        return 1.0 / self.reactance

    @property
    def key(self) -> str:
        return f"{self.from_bus}-{self.to_bus}"


@dataclass
class Grid:
    """A transmission network: buses, lines, generators.

    Parameters
    ----------
    buses, lines, generators:
        Network elements. Every line endpoint and generator bus must
        name an existing bus (validated in ``__post_init__``).
    base_mva:
        MVA base for the per-unit system (100 for the PJM example).
    """

    buses: list[Bus]
    lines: list[Line]
    generators: list[Generator]
    base_mva: float = 100.0
    _bus_index: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self):
        names = [b.name for b in self.buses]
        if len(set(names)) != len(names):
            raise ValueError("duplicate bus names")
        self._bus_index = {name: i for i, name in enumerate(names)}
        for line in self.lines:
            for end in (line.from_bus, line.to_bus):
                if end not in self._bus_index:
                    raise ValueError(f"line {line.key}: unknown bus {end!r}")
            if line.from_bus == line.to_bus:
                raise ValueError(f"line {line.key}: self-loop")
        gen_names = [g.name for g in self.generators]
        if len(set(gen_names)) != len(gen_names):
            raise ValueError("duplicate generator names")
        for gen in self.generators:
            if gen.bus not in self._bus_index:
                raise ValueError(f"generator {gen.name}: unknown bus {gen.bus!r}")
        if not nx.is_connected(self.to_networkx()):
            raise ValueError("grid is not connected")

    # -- lookups -----------------------------------------------------------

    @property
    def n_buses(self) -> int:
        return len(self.buses)

    def bus_index(self, name: str) -> int:
        """Return the positional index of bus ``name``."""
        return self._bus_index[name]

    def generators_at(self, bus: str) -> list[Generator]:
        """Generators connected to ``bus``."""
        return [g for g in self.generators if g.bus == bus]

    @property
    def total_generation_capacity(self) -> float:
        """Sum of generator ``max_mw`` (the maximum servable system load)."""
        return sum(g.max_mw for g in self.generators)

    # -- export ---------------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Export the topology as a :mod:`networkx` graph.

        Node attributes carry generator capacity and cost; edge
        attributes carry reactance and thermal limit. Used for
        connectivity validation and by the examples for visualization
        and path analysis.
        """
        g = nx.Graph()
        for bus in self.buses:
            gens = self.generators_at(bus.name)
            g.add_node(
                bus.name,
                gen_capacity_mw=sum(x.max_mw for x in gens),
                min_gen_cost=min((x.cost for x in gens), default=None),
            )
        for line in self.lines:
            g.add_edge(
                line.from_bus,
                line.to_bus,
                reactance=line.reactance,
                limit_mw=line.limit_mw,
            )
        return g
