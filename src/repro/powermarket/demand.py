"""Synthetic background power demand (the ``d_i`` of Section IV).

The paper feeds its simulator a real hourly power-consumption trace from
Rockland Electric (RECO) in PJM, June 2005, to model the power consumed
in each local market by everyone *other* than the data center. That
trace is not redistributable, so this module generates a seeded
synthetic stand-in with the same structure the algorithms depend on:

* strong diurnal swing (overnight trough, late-afternoon peak);
* a weekday/weekend distinction;
* mild autocorrelated noise;
* a level calibrated relative to a pricing policy's breakpoints, so
  that the market sits near a price step and the data center's own
  draw can move the price — the paper's "price maker" regime.

Only the hourly MW level entering ``Pr_i = F_i(p_i + d_i)`` matters to
the algorithms, and that is exactly what is reproduced (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

import numpy as np

from .pricing import SteppedPricingPolicy

__all__ = [
    "reco_like_background",
    "renewable_background",
    "background_for_policy",
]

#: Normalized 24-hour shape: trough around 4am, peak around 5-6pm.
_DIURNAL = np.array(
    [
        0.62, 0.58, 0.55, 0.53, 0.52, 0.54, 0.60, 0.70,
        0.78, 0.84, 0.88, 0.91, 0.93, 0.95, 0.97, 0.99,
        1.00, 1.00, 0.97, 0.92, 0.86, 0.79, 0.72, 0.66,
    ]
)

_WEEKEND_FACTOR = 0.88


def reco_like_background(
    hours: int,
    peak_mw: float,
    *,
    seed: int = 0,
    noise: float = 0.03,
    start_weekday: int = 0,
) -> np.ndarray:
    """Generate an hourly background-demand trace in MW.

    Parameters
    ----------
    hours:
        Trace length.
    peak_mw:
        Weekday peak demand level.
    seed:
        RNG seed — traces are fully reproducible.
    noise:
        Relative standard deviation of the AR(1) multiplicative noise.
    start_weekday:
        Weekday of hour 0 (0 = Monday), used for the weekend dip.

    Returns
    -------
    numpy.ndarray
        Non-negative demand, shape ``(hours,)``.
    """
    if hours <= 0:
        raise ValueError("hours must be positive")
    if peak_mw <= 0:
        raise ValueError("peak_mw must be positive")
    rng = np.random.default_rng(seed)
    t = np.arange(hours)
    shape = _DIURNAL[t % 24].copy()
    weekday = (start_weekday + t // 24) % 7
    shape[weekday >= 5] *= _WEEKEND_FACTOR

    # AR(1) multiplicative noise keeps hour-to-hour demand realistic.
    eps = rng.normal(0.0, noise, size=hours)
    trace = peak_mw * shape * (1.0 + _ar1(eps, rho=0.7))
    return np.maximum(trace, 0.0)


def _ar1(eps: np.ndarray, rho: float) -> np.ndarray:
    """``ar[i] = rho * ar[i-1] + eps[i]`` without the Python loop.

    ``lfilter([1], [1, -rho], eps)`` runs the identical recurrence (one
    multiply, one add per step, in C), so existing seeded traces are
    reproduced bit for bit — pinned by the demand tests.
    """
    try:
        from scipy.signal import lfilter
    except ImportError:  # pragma: no cover - scipy is a core dependency
        out = np.empty_like(eps)
        acc = 0.0
        for i, e in enumerate(eps):
            acc = rho * acc + e
            out[i] = acc
        return out
    return lfilter([1.0], [1.0, -rho], eps)


#: Normalized solar production shape: zero overnight, bell over 7am-7pm.
_SOLAR = np.clip(np.sin((np.arange(24) - 6.5) / 12.5 * np.pi), 0.0, None)


def renewable_background(
    hours: int,
    peak_mw: float,
    *,
    renewable_fraction: float = 0.35,
    seed: int = 0,
    noise: float = 0.03,
    start_weekday: int = 0,
) -> np.ndarray:
    """Net background demand under renewable-shaped generation.

    The gross trace is :func:`reco_like_background`; from it a
    solar-shaped renewable production is subtracted, sized at
    ``renewable_fraction`` of the gross peak and modulated by seeded
    day-to-day cloudiness. The result is the classic "duck curve" net
    load — a midday trough and a steep evening ramp — which parks the
    market on a different side of the price steps than the plain
    diurnal trace and is one of the closed-loop scenario axes.

    Returns non-negative demand of shape ``(hours,)``, fully
    reproducible from ``seed`` (gross and cloudiness draws use
    decorrelated child seeds).
    """
    if not 0.0 <= renewable_fraction < 1.0:
        raise ValueError("renewable_fraction must be in [0, 1)")
    gross = reco_like_background(
        hours, peak_mw, seed=seed, noise=noise, start_weekday=start_weekday
    )
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x5EED]))
    t = np.arange(hours)
    days = hours // 24 + 1
    cloudiness = rng.uniform(0.5, 1.0, size=days)
    solar = (
        renewable_fraction * peak_mw * _SOLAR[t % 24] * cloudiness[t // 24]
    )
    return np.maximum(gross - solar, 0.0)


def background_for_policy(
    policy: SteppedPricingPolicy,
    hours: int,
    *,
    peak_fraction: float = 0.80,
    peak_mw: float | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Background demand calibrated against a pricing policy.

    By default the weekday peak is placed at ``peak_fraction`` of the
    policy's *first* interior breakpoint: the background alone stays in
    the cheapest price level, and it is the data center's own draw that
    decides whether the market crosses a step — the price-maker regime
    the paper studies. Pass ``peak_mw`` to override the anchor
    entirely. Flat policies (Policy 0) get a generic 80 MW peak.
    """
    if peak_mw is None:
        if policy.breakpoints:
            peak_mw = max(peak_fraction * policy.breakpoints[0], 5.0)
        else:
            peak_mw = 80.0
    return reco_like_background(hours, peak_mw=peak_mw, seed=seed)
