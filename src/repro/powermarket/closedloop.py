"""Closed-loop DC-OPF co-simulation: endogenous locational prices.

The paper's premise is that cloud-scale data centers are price
*makers*: the stepped policies ``F_i(P_i)`` of Figure 1 exist because
the DC's own draw moves the market. The exogenous pipeline still treats
those curves as fixed per hour. This module closes the loop:

1. after an hour's dispatch, inject every site's realized power at its
   grid bus and re-run :class:`~repro.powermarket.dcopf.DcOpf`;
2. extract fresh LMPs and regenerate each coupled bus's
   :class:`~repro.powermarket.pricing.SteppedPricingPolicy` from an
   :meth:`~repro.powermarket.dcopf.DcOpf.lmp_sweep` around the current
   operating point;
3. re-dispatch against the regenerated curves and iterate to a damped
   fixed point (plain relaxation or Anderson(1) acceleration).

Because LMPs are a *step function* of injected power, the undamped
iteration is a best-response dynamic that can cycle: when an operator
chases the cheap side of a congestion step, its own load re-congests
the line, the price jumps, the operator backs off, the price falls
back — a period-2 oscillation (cf. "When Market Prices Drive the
Load", PAPERS.md). The solver detects such cycles (``lmp_k ~ lmp_{k-2}
!= lmp_{k-1}``), counts them, and falls back to the exogenous path
when the iteration budget runs out, so a closed-loop run never stalls.

Telemetry counters: ``closedloop.iterations`` (every OPF re-clear),
``closedloop.converged`` / ``closedloop.oscillated`` /
``closedloop.fallback`` (per hour).

Scenario axes for the sweep engine: N-1 line outages via
:func:`line_outage` (a grid mutation hook), renewable-shaped background
demand (:func:`repro.powermarket.demand.renewable_background`), and
multi-operator competition (``ClosedLoopConfig.operators`` models K
symmetric operators chasing the same cheap buses).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping

import numpy as np

from ..telemetry import get_telemetry
from .dcopf import DcOpf
from .network import Grid
from .pjm5bus import _compress_steps
from .pricing import SteppedPricingPolicy, flat_policy

__all__ = [
    "ClosedLoopConfig",
    "FixedPointResult",
    "MarketCoupling",
    "EndogenousPricer",
    "register_grid",
    "get_grid",
    "available_grids",
    "line_outage",
    "compress_steps",
    "policies_from_sweep",
]

#: Public alias of the PJM helper: collapse a swept LMP curve into
#: ``(breakpoints, prices)`` step-policy data.
compress_steps = _compress_steps


# -- grid registry -----------------------------------------------------------

_GRID_FACTORIES: dict[str, Callable[[], Grid]] = {}


def register_grid(
    name: str, factory: Callable[[], Grid], *, replace: bool = False
) -> None:
    """Register a named grid factory for CLI/sweep resolution."""
    if not replace and name in _GRID_FACTORIES:
        raise ValueError(f"grid {name!r} already registered")
    if not callable(factory):
        raise TypeError("factory must be callable")
    _GRID_FACTORIES[name] = factory


def _ensure_builtins() -> None:
    if _GRID_FACTORIES:
        return
    from .grids import ieee9_like, two_zone
    from .pjm5bus import pjm5bus

    _GRID_FACTORIES["pjm5bus"] = pjm5bus
    _GRID_FACTORIES["two-zone"] = two_zone
    _GRID_FACTORIES["ieee9"] = ieee9_like


def available_grids() -> tuple[str, ...]:
    """Names of all registered grids."""
    _ensure_builtins()
    return tuple(sorted(_GRID_FACTORIES))


def get_grid(
    grid: "str | Grid",
    *,
    mutate: Callable[[Grid], Grid] | None = None,
) -> Grid:
    """Resolve a grid by registry name (or pass one through).

    ``mutate`` is an optional grid-mutation hook applied after
    resolution — e.g. :func:`line_outage` for N-1 contingency studies.
    """
    _ensure_builtins()
    if isinstance(grid, str):
        try:
            grid = _GRID_FACTORIES[grid]()
        except KeyError:
            raise ValueError(
                f"unknown grid {grid!r}; available: "
                f"{', '.join(available_grids())}"
            ) from None
    if mutate is not None:
        grid = mutate(grid)
    return grid


def line_outage(key: str) -> Callable[[Grid], Grid]:
    """Grid mutation hook removing line ``key`` (N-1 contingency).

    The returned callable builds a new :class:`Grid` without the line;
    :class:`Grid` validation rejects outages that island the network.
    """

    def mutate(grid: Grid) -> Grid:
        keep = [l for l in grid.lines if l.key != key]
        if len(keep) == len(grid.lines):
            raise KeyError(
                f"no line {key!r} in grid; lines: "
                f"{', '.join(l.key for l in grid.lines)}"
            )
        return Grid(
            buses=list(grid.buses),
            lines=keep,
            generators=list(grid.generators),
            base_mva=grid.base_mva,
        )

    return mutate


# -- coupling ----------------------------------------------------------------


@dataclass(frozen=True)
class MarketCoupling:
    """Binds simulation sites to grid buses.

    Attributes
    ----------
    grid:
        The transmission network whose DC-OPF clears the market.
    site_buses:
        ``{site name: bus name}`` — where each data center injects its
        load. Several sites may share a bus.
    """

    grid: Grid
    site_buses: dict[str, str]

    def __post_init__(self):
        names = {b.name for b in self.grid.buses}
        for site, bus in self.site_buses.items():
            if bus not in names:
                raise ValueError(
                    f"site {site!r} mapped to unknown bus {bus!r}"
                )
        if not self.site_buses:
            raise ValueError("coupling needs at least one site")

    @property
    def buses(self) -> tuple[str, ...]:
        """Coupled buses, in grid order (deduplicated)."""
        mapped = set(self.site_buses.values())
        return tuple(b.name for b in self.grid.buses if b.name in mapped)

    @classmethod
    def infer(cls, sites: Iterable, grid: "str | Grid") -> "MarketCoupling":
        """Map sites to buses by their pricing policy's region name.

        The paper's worlds name each site's policy after its market
        region (policy ``B`` prices bus ``B`` of the PJM system), so
        the policy name doubles as the bus assignment. Sites whose
        policy names no grid bus need an explicit ``site_buses``
        mapping instead.
        """
        grid = get_grid(grid)
        names = {b.name for b in grid.buses}
        mapping = {}
        for site in sites:
            region = site.policy.name
            if region not in names:
                raise ValueError(
                    f"cannot infer a bus for site {site.name!r}: policy "
                    f"region {region!r} is not a bus of the grid; pass "
                    "an explicit site_buses mapping"
                )
            mapping[site.name] = region
        return cls(grid=grid, site_buses=mapping)


# -- configuration / result --------------------------------------------------


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Tuning for the dispatch <-> OPF fixed-point iteration.

    Attributes
    ----------
    damping:
        Relaxation weight on the *new* injected-power iterate:
        ``p <- (1 - damping) * p + damping * p_new``. ``1.0`` is the
        undamped best-response dynamic (which can oscillate across
        congestion steps); ``0.5`` is a robust default.
    acceleration:
        ``"relaxation"`` (plain damped iteration) or ``"anderson"``
        (depth-1 Anderson mixing on the injected-power residual).
    max_iterations:
        OPF re-clears allowed per hour before falling back.
    tol_lmp:
        Convergence threshold on the max LMP change ($/MWh) between
        successive iterations.
    sweep_halfwidth_mw, sweep_step_mw:
        Window (system MW) of the ``lmp_sweep`` used to regenerate the
        stepped policies around the current operating point.
    operators:
        K symmetric operators chasing the same buses: nodal injections
        are ``K * p`` and each operator sees the other ``K - 1`` fleets
        as additional background demand. ``1`` is the single-operator
        paper setting.
    """

    damping: float = 0.5
    acceleration: str = "relaxation"
    max_iterations: int = 8
    tol_lmp: float = 1e-6
    sweep_halfwidth_mw: float = 150.0
    sweep_step_mw: float = 5.0
    operators: int = 1

    def __post_init__(self):
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if self.acceleration not in ("relaxation", "anderson"):
            raise ValueError(
                f"unknown acceleration {self.acceleration!r}; "
                "use 'relaxation' or 'anderson'"
            )
        if self.max_iterations < 2:
            raise ValueError("max_iterations must be >= 2")
        if self.tol_lmp <= 0 or self.sweep_step_mw <= 0:
            raise ValueError("tolerances and steps must be positive")
        if self.operators < 1:
            raise ValueError("operators must be >= 1")


@dataclass
class FixedPointResult:
    """Outcome of one hour's dispatch <-> OPF iteration.

    ``policies`` / ``lmps`` are keyed by bus; ``injections`` by site
    (the damped per-operator MW). ``fallback`` means the hour should be
    settled on the exogenous path (``policies`` then holds the last
    regenerated curves for diagnosis only).
    """

    converged: bool
    oscillated: bool
    fallback: bool
    iterations: int
    lmps: dict[str, float]
    policies: dict[str, SteppedPricingPolicy]
    injections: dict[str, float]
    lmp_history: list[dict[str, float]] = field(default_factory=list)


# -- policy regeneration -----------------------------------------------------


def policies_from_sweep(
    opf: DcOpf,
    shares: Mapping[str, float],
    system_loads: np.ndarray,
    *,
    fallback_lmp: Mapping[str, float] | None = None,
) -> dict[str, SteppedPricingPolicy]:
    """Regenerate stepped policies from an LMP sweep.

    Mirrors :func:`repro.powermarket.pjm5bus.derive_step_policies` but
    for arbitrary shares and load windows: each bus's swept LMP curve
    is compressed into steps and expressed over *locational* load
    (``share * system load``), which is how the policies consume
    ``P_i = p_i + d_i``. Zero-share buses (no locational axis to sweep)
    and all-infeasible sweeps get a flat policy at ``fallback_lmp``.
    """
    fallback_lmp = fallback_lmp or {}
    live = {b: s for b, s in shares.items() if s > 1e-12}
    out: dict[str, SteppedPricingPolicy] = {}
    sweep = opf.lmp_sweep(live, system_loads) if live else {}
    for bus, share in shares.items():
        if bus not in sweep:
            out[bus] = flat_policy(bus, float(fallback_lmp.get(bus, 0.0)))
            continue
        try:
            breakpoints, prices = compress_steps(
                np.asarray(system_loads, dtype=float), sweep[bus]
            )
        except ValueError:  # every sweep point infeasible
            out[bus] = flat_policy(bus, float(fallback_lmp.get(bus, 0.0)))
            continue
        locational = tuple(bp * share for bp in breakpoints)
        out[bus] = SteppedPricingPolicy(bus, locational, prices)
    return out


# -- the fixed point ---------------------------------------------------------


class EndogenousPricer:
    """Per-hour dispatch <-> DC-OPF fixed point for one market region.

    The pricer owns the grid and the iteration scheme but knows nothing
    about dispatch strategies: callers hand it a ``redispatch``
    callback that re-runs their dispatcher against regenerated policies
    and returns the sites' realized power. That keeps the power-market
    layer free of simulation imports (the engine adapter lives in
    :mod:`repro.sim.endogenous`).
    """

    def __init__(
        self,
        coupling: MarketCoupling,
        config: ClosedLoopConfig | None = None,
        *,
        mutate: Callable[[Grid], Grid] | None = None,
    ):
        self.config = config or ClosedLoopConfig()
        if mutate is not None:
            coupling = replace(coupling, grid=mutate(coupling.grid))
        self.coupling = coupling
        self.opf = DcOpf(self.coupling.grid)

    # -- pieces ------------------------------------------------------------

    def nodal_loads(
        self,
        background: Mapping[str, float],
        injections: Mapping[str, float],
    ) -> dict[str, float]:
        """Bus loads from per-site background + K x injected DC power."""
        k = self.config.operators
        loads: dict[str, float] = {}
        for site, bus in self.coupling.site_buses.items():
            loads[bus] = (
                loads.get(bus, 0.0)
                + float(background.get(site, 0.0))
                + k * max(0.0, float(injections.get(site, 0.0)))
            )
        return loads

    def regenerate(
        self,
        nodal_loads: Mapping[str, float],
        lmps: Mapping[str, float],
    ) -> dict[str, SteppedPricingPolicy]:
        """Fresh stepped policies from a sweep around the operating point."""
        cfg = self.config
        buses = self.coupling.buses
        total = sum(max(0.0, nodal_loads.get(b, 0.0)) for b in buses)
        if total > 0:
            shares = {b: max(0.0, nodal_loads.get(b, 0.0)) / total for b in buses}
        else:
            shares = {b: 1.0 / len(buses) for b in buses}
            total = cfg.sweep_step_mw
        lo = max(cfg.sweep_step_mw, total - cfg.sweep_halfwidth_mw)
        hi = total + cfg.sweep_halfwidth_mw
        window = np.arange(lo, hi + cfg.sweep_step_mw / 2, cfg.sweep_step_mw)
        return policies_from_sweep(
            self.opf, shares, window, fallback_lmp=lmps
        )

    # -- the iteration -----------------------------------------------------

    def solve_hour(
        self,
        background: Mapping[str, float],
        initial_injections: Mapping[str, float],
        redispatch: Callable[
            [dict[str, SteppedPricingPolicy], dict[str, float], dict[str, float]],
            Mapping[str, float],
        ],
    ) -> FixedPointResult:
        """Iterate dispatch <-> OPF to a damped fixed point.

        Parameters
        ----------
        background:
            ``{site: MW}`` non-DC demand at each site's bus.
        initial_injections:
            ``{site: MW}`` realized DC power of the exogenous dispatch
            (the iteration's starting point).
        redispatch:
            ``(policies_by_bus, injections_by_site, rivals_by_site) ->
            {site: MW}`` — re-run the dispatcher against regenerated
            policies. ``injections_by_site`` is the current damped
            iterate (spot-price takers read their operating point from
            it); ``rivals_by_site`` carries the rival operators' load
            (``(K - 1) * p``) so multi-operator competition prices
            correctly — all zeros for ``operators=1``.

        Returns
        -------
        FixedPointResult
        """
        cfg = self.config
        tel = get_telemetry()
        sites = tuple(self.coupling.site_buses)
        p = {s: max(0.0, float(initial_injections.get(s, 0.0))) for s in sites}
        policies: dict[str, SteppedPricingPolicy] = {}
        history: list[dict[str, float]] = []
        oscillated = False
        p_prev: dict[str, float] | None = None
        f_prev: dict[str, float] | None = None

        for it in range(1, cfg.max_iterations + 1):
            tel.counter("closedloop.iterations").inc()
            loads = self.nodal_loads(background, p)
            res = self.opf.dispatch(loads)
            if not res.feasible:
                # The damped operating point left the feasible region
                # (e.g. an N-1 outage shrank it): settle exogenously.
                tel.counter("closedloop.fallback").inc()
                return FixedPointResult(
                    converged=False,
                    oscillated=oscillated,
                    fallback=True,
                    iterations=it,
                    lmps=history[-1] if history else {},
                    policies=policies,
                    injections=p,
                    lmp_history=history,
                )
            lmps = {b: res.lmp_at(b) for b in self.coupling.buses}
            history.append(lmps)
            if len(history) >= 2 and self._delta(lmps, history[-2]) < cfg.tol_lmp:
                tel.counter("closedloop.converged").inc()
                return FixedPointResult(
                    converged=True,
                    oscillated=oscillated,
                    fallback=False,
                    iterations=it,
                    lmps=lmps,
                    policies=policies,
                    injections=p,
                    lmp_history=history,
                )
            if (
                not oscillated
                and len(history) >= 3
                and self._delta(lmps, history[-3]) < cfg.tol_lmp
                and self._delta(lmps, history[-2]) >= cfg.tol_lmp
            ):
                # Period-2 best-response cycle across a congestion step.
                oscillated = True
                tel.counter("closedloop.oscillated").inc()
            policies = self.regenerate(loads, lmps)
            rivals = {s: (cfg.operators - 1) * p[s] for s in sites}
            p_new = self._clean(redispatch(policies, dict(p), rivals), sites)
            p, p_prev, f_prev = self._mix(p, p_new, p_prev, f_prev)

        tel.counter("closedloop.fallback").inc()
        return FixedPointResult(
            converged=False,
            oscillated=oscillated,
            fallback=True,
            iterations=cfg.max_iterations,
            lmps=history[-1] if history else {},
            policies=policies,
            injections=p,
            lmp_history=history,
        )

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _clean(
        injections: Mapping[str, float], sites: tuple[str, ...]
    ) -> dict[str, float]:
        return {s: max(0.0, float(injections.get(s, 0.0))) for s in sites}

    @staticmethod
    def _delta(a: Mapping[str, float], b: Mapping[str, float]) -> float:
        return max(abs(a[k] - b.get(k, float("nan"))) for k in a) if a else 0.0

    def _mix(
        self,
        p: dict[str, float],
        p_new: dict[str, float],
        p_prev: dict[str, float] | None,
        f_prev: dict[str, float] | None,
    ) -> tuple[dict[str, float], dict[str, float], dict[str, float]]:
        """One damped/accelerated update of the injected-power iterate."""
        beta = self.config.damping
        f = {s: p_new[s] - p[s] for s in p}
        if self.config.acceleration == "anderson" and f_prev is not None:
            # Anderson(1): mix the two most recent damped steps with the
            # least-squares weight on the residual difference.
            df = {s: f[s] - f_prev[s] for s in f}
            denom = sum(v * v for v in df.values())
            theta = (
                sum(f[s] * df[s] for s in f) / denom if denom > 1e-18 else 0.0
            )
            theta = min(2.0, max(-2.0, theta))
            nxt = {
                s: max(
                    0.0,
                    (1.0 - theta) * (p[s] + beta * f[s])
                    + theta * (p_prev[s] + beta * f_prev[s]),
                )
                for s in p
            }
        else:
            nxt = {s: max(0.0, p[s] + beta * f[s]) for s in p}
        return nxt, dict(p), f
