"""Power Transfer Distribution Factors (PTDF) for DC networks.

PTDFs answer the question ISO planners ask constantly: *if one more MW
is injected at bus b (and withdrawn at the slack), how much of it flows
over line l?* They are the linear sensitivities of the B-theta DC
power-flow used by :mod:`repro.powermarket.dcopf`:

.. math::

    \\text{PTDF} = B_d A R^{-1}

with ``A`` the reduced incidence matrix, ``B_d`` the diagonal branch
susceptances and ``R`` the reduced nodal susceptance matrix (slack row
and column removed). The module also provides:

* :func:`injection_shift_flows` — line flows for an arbitrary injection
  vector without running an OPF;
* :func:`congestion_exposure` — which *load* bus moves a given line
  hardest, used to explain why LMPs split the way they do in Figure 1
  (bus D imports across the congested Brighton-Sundance tie).

The implementation is vectorized linear algebra; correctness is tested
against the OPF's dispatched flows on random networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import Grid

__all__ = ["PtdfMatrix", "compute_ptdf", "injection_shift_flows", "congestion_exposure"]


@dataclass(frozen=True)
class PtdfMatrix:
    """PTDF table: rows are lines, columns are buses.

    ``matrix[l, b]`` is the MW flowing on line ``l`` (in its
    orientation) per MW injected at bus ``b`` and withdrawn at the
    slack bus. The slack column is identically zero.
    """

    matrix: np.ndarray
    line_keys: tuple[str, ...]
    bus_names: tuple[str, ...]
    slack: str

    def factor(self, line_key: str, bus: str) -> float:
        """PTDF of one (line, bus) pair."""
        return float(
            self.matrix[self.line_keys.index(line_key), self.bus_names.index(bus)]
        )

    def flows_for_injections(self, injections: dict[str, float]) -> dict[str, float]:
        """Line flows for a balanced injection set (losses ignored).

        ``injections`` maps bus name to net MW injection (positive =
        generation). Any imbalance is absorbed by the slack bus, which
        is exactly the PTDF convention.
        """
        vec = np.zeros(len(self.bus_names))
        for bus, mw in injections.items():
            vec[self.bus_names.index(bus)] = mw
        flows = self.matrix @ vec
        return dict(zip(self.line_keys, flows.tolist()))


def compute_ptdf(grid: Grid, slack: str | None = None) -> PtdfMatrix:
    """Compute the PTDF matrix of ``grid`` relative to ``slack``.

    Parameters
    ----------
    grid:
        A connected DC network.
    slack:
        Reference bus; defaults to the grid's first bus.
    """
    buses = [b.name for b in grid.buses]
    slack = slack or buses[0]
    if slack not in buses:
        raise ValueError(f"unknown slack bus {slack!r}")
    n = len(buses)
    m = len(grid.lines)
    idx = {name: i for i, name in enumerate(buses)}
    s = idx[slack]

    # Incidence (lines x buses) and branch susceptances.
    A = np.zeros((m, n))
    b_diag = np.zeros(m)
    for l, line in enumerate(grid.lines):
        A[l, idx[line.from_bus]] = 1.0
        A[l, idx[line.to_bus]] = -1.0
        b_diag[l] = grid.base_mva * line.susceptance

    # Nodal susceptance matrix B = A^T diag(b) A, reduced by the slack.
    B = A.T @ (b_diag[:, None] * A)
    keep = [i for i in range(n) if i != s]
    R = B[np.ix_(keep, keep)]
    # theta_reduced = R^{-1} P_reduced; flows = diag(b) A theta.
    R_inv = np.linalg.inv(R)
    ptdf = np.zeros((m, n))
    ptdf[:, keep] = (b_diag[:, None] * A[:, keep]) @ R_inv
    return PtdfMatrix(
        matrix=ptdf,
        line_keys=tuple(line.key for line in grid.lines),
        bus_names=tuple(buses),
        slack=slack,
    )


def injection_shift_flows(
    grid: Grid,
    generation: dict[str, float],
    loads: dict[str, float],
    slack: str | None = None,
) -> dict[str, float]:
    """Line flows implied by a (balanced) generation/load pattern.

    Convenience wrapper: nets generation minus load per bus and applies
    the PTDF matrix. Matches :meth:`repro.powermarket.DcOpf.dispatch`
    flows for the same dispatch (tested).
    """
    ptdf = compute_ptdf(grid, slack)
    injections: dict[str, float] = {}
    for gen_name, mw in generation.items():
        gen = next(g for g in grid.generators if g.name == gen_name)
        injections[gen.bus] = injections.get(gen.bus, 0.0) + mw
    for bus, mw in loads.items():
        injections[bus] = injections.get(bus, 0.0) - mw
    return ptdf.flows_for_injections(injections)


def congestion_exposure(grid: Grid, line_key: str, slack: str | None = None) -> dict[str, float]:
    """How strongly each bus's demand loads a given line.

    Returns ``{bus: -PTDF[line, bus]}`` — positive values mean demand
    at that bus pushes flow in the line's positive orientation. The
    bus with the largest magnitude is the one whose LMP decouples first
    when the line congests.
    """
    ptdf = compute_ptdf(grid, slack)
    if line_key not in ptdf.line_keys:
        raise KeyError(f"unknown line {line_key!r}")
    row = ptdf.matrix[ptdf.line_keys.index(line_key)]
    return {bus: float(-row[i]) for i, bus in enumerate(ptdf.bus_names)}
