"""Additional benchmark grids beyond the PJM five-bus system.

The five-bus system of :mod:`repro.powermarket.pjm5bus` is the paper's
canonical example, but the DC-OPF/LMP machinery is general. This module
provides:

* :func:`two_zone` — the smallest system that exhibits congestion-
  driven price separation (teaching/tests);
* :func:`ieee9_like` — a 9-bus, 3-generator ring patterned after the
  WSCC/IEEE 9-bus case with MW-scale data, used to exercise the
  pricing-policy derivation on a second topology;
* :func:`ring` — parametric N-bus ring generator for property tests
  (any size, seeded random costs/limits).
"""

from __future__ import annotations

import numpy as np

from .network import Bus, Generator, Grid, Line

__all__ = ["two_zone", "ieee9_like", "ring"]


def two_zone(
    tie_limit_mw: float = 100.0,
    cheap_cost: float = 10.0,
    expensive_cost: float = 50.0,
    capacity_mw: float = 1000.0,
) -> Grid:
    """A two-zone market with a limited tie line.

    Zone X holds the cheap generation, zone Y the expensive local unit
    and the load. Below the tie limit both zones clear at the cheap
    cost; beyond it, zone Y's price jumps to the local unit's cost —
    the minimal congestion example.
    """
    return Grid(
        buses=[Bus("X"), Bus("Y")],
        lines=[Line("X", "Y", reactance=0.1, limit_mw=tie_limit_mw)],
        generators=[
            Generator("CheapZoneX", "X", max_mw=capacity_mw, cost=cheap_cost),
            Generator("LocalZoneY", "Y", max_mw=capacity_mw, cost=expensive_cost),
        ],
    )


def ieee9_like() -> Grid:
    """A 9-bus ring with 3 generators and 3 load buses.

    Follows the WSCC 9-bus topology (generators at buses 1-3 behind
    step-up branches onto a ring of buses 4-9) with merit-order costs
    and one deliberately tight ring segment so a load sweep produces a
    multi-step LMP curve, like the paper's Figure 1 but on a different
    network.
    """
    buses = [Bus(f"B{i}") for i in range(1, 10)]
    lines = [
        Line("B1", "B4", reactance=0.0576),
        Line("B2", "B7", reactance=0.0625),
        Line("B3", "B9", reactance=0.0586),
        Line("B4", "B5", reactance=0.0920),
        Line("B5", "B6", reactance=0.1700),
        Line("B6", "B7", reactance=0.0720),
        Line("B7", "B8", reactance=0.1008, limit_mw=150.0),
        Line("B8", "B9", reactance=0.1610),
        Line("B9", "B4", reactance=0.0850),
    ]
    generators = [
        Generator("G1", "B1", max_mw=250.0, cost=12.0),
        Generator("G2", "B2", max_mw=300.0, cost=20.0),
        Generator("G3", "B3", max_mw=270.0, cost=32.0),
    ]
    return Grid(buses=buses, lines=lines, generators=generators)


def ring(
    n_buses: int,
    *,
    seed: int = 0,
    gen_every: int = 2,
    limit_fraction: float = 0.5,
) -> Grid:
    """A parametric N-bus ring for property tests.

    Parameters
    ----------
    n_buses:
        Ring size (>= 3).
    seed:
        Seeds generator costs/capacities and line reactances.
    gen_every:
        A generator sits at every ``gen_every``-th bus.
    limit_fraction:
        Fraction of lines given a finite thermal limit.
    """
    if n_buses < 3:
        raise ValueError("ring needs at least 3 buses")
    rng = np.random.default_rng(seed)
    buses = [Bus(f"N{i}") for i in range(n_buses)]
    lines = []
    for i in range(n_buses):
        j = (i + 1) % n_buses
        limited = rng.random() < limit_fraction
        lines.append(
            Line(
                f"N{i}",
                f"N{j}",
                reactance=float(rng.uniform(0.02, 0.2)),
                limit_mw=float(rng.uniform(80, 400)) if limited else float("inf"),
            )
        )
    generators = [
        Generator(
            f"G{i}",
            f"N{i}",
            max_mw=float(rng.uniform(100, 600)),
            cost=float(rng.uniform(8, 45)),
        )
        for i in range(0, n_buses, gen_every)
    ]
    return Grid(buses=buses, lines=lines, generators=generators)
