"""The canonical PJM five-bus system and its stepped LMP policies.

Section II of the paper derives its locational pricing policies
(Figure 1) from the well-known PJM five-bus example system [Li & Bo,
"Congestion and price prediction under load variation"; PJM Training
Materials LMP 101]:

* five buses A-E;
* five generators — Alta (A, 110 MW, $14), Park City (A, 100 MW, $15),
  Solitude (C, 520 MW, $30), Sundance (D, 200 MW, $35... the training
  materials use $30), Brighton (E, 600 MW, $10);
* load drawn uniformly at buses B, C and D;
* the Brighton-Sundance (E-D) line is thermally limited, producing the
  second LMP step the paper describes at a system load of ~711.8 MW;
  Brighton's 600 MW capacity produces the first major step at 600 MW.

:func:`pjm5bus` builds the grid; :func:`derive_step_policies` sweeps the
system load through a DC-OPF and compresses each load bus's LMP curve
into a :class:`~repro.powermarket.pricing.SteppedPricingPolicy` over
*locational* load (system load / 3), which is exactly how the paper's
Figure 1 policies are produced.
"""

from __future__ import annotations

import numpy as np

from .dcopf import DcOpf
from .network import Bus, Generator, Grid, Line
from .pricing import SteppedPricingPolicy

__all__ = [
    "LOAD_BUSES",
    "LOAD_SHARES",
    "pjm5bus",
    "derive_step_policies",
]

#: Buses at which the system load is drawn, uniformly.
LOAD_BUSES = ("B", "C", "D")

#: The paper's uniform load distribution over the three consumer buses.
LOAD_SHARES = {bus: 1.0 / 3.0 for bus in LOAD_BUSES}


def pjm5bus(ed_limit_mw: float = 240.0) -> Grid:
    """Build the PJM five-bus example grid.

    Parameters
    ----------
    ed_limit_mw:
        Thermal limit of the Brighton-Sundance (E-D) tie, 240 MW in the
        canonical data. Pass ``inf`` to study the uncongested system.
    """
    buses = [Bus(n) for n in ("A", "B", "C", "D", "E")]
    lines = [
        Line("A", "B", reactance=0.0281),
        Line("A", "D", reactance=0.0304),
        Line("A", "E", reactance=0.0064),
        Line("B", "C", reactance=0.0108),
        Line("C", "D", reactance=0.0297),
        Line("D", "E", reactance=0.0297, limit_mw=ed_limit_mw),
    ]
    generators = [
        Generator("Alta", "A", max_mw=110.0, cost=14.0),
        Generator("ParkCity", "A", max_mw=100.0, cost=15.0),
        Generator("Solitude", "C", max_mw=520.0, cost=30.0),
        Generator("Sundance", "D", max_mw=200.0, cost=30.0),
        Generator("Brighton", "E", max_mw=600.0, cost=10.0),
    ]
    return Grid(buses=buses, lines=lines, generators=generators)


def _compress_steps(
    loads: np.ndarray, lmps: np.ndarray, atol: float = 1e-4
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Collapse a piecewise-constant LMP curve into (breakpoints, prices).

    Consecutive sweep points with the same LMP (within ``atol``) belong
    to one segment; a breakpoint is placed at the first load of each new
    segment. NaN (infeasible) tail points are dropped.
    """
    valid = ~np.isnan(lmps)
    loads, lmps = loads[valid], lmps[valid]
    if loads.size == 0:
        raise ValueError("no feasible points in sweep")
    # Rounding kills LP-solver fuzz (e.g. 13.999999999999998) so the same
    # physical step compresses to the same price at every bus.
    prices = [round(float(lmps[0]), 4)]
    breakpoints: list[float] = []
    for load, lmp in zip(loads[1:], lmps[1:]):
        if abs(lmp - prices[-1]) > atol:
            breakpoints.append(float(load))
            prices.append(round(float(lmp), 4))
    return tuple(breakpoints), tuple(prices)


def _refine_breakpoint(
    opf: DcOpf,
    bus: str,
    lo: float,
    hi: float,
    price_lo: float,
    tol_mw: float,
) -> float:
    """Bisect the system load at which ``bus``'s LMP leaves ``price_lo``.

    Precondition: the LMP at ``lo`` equals ``price_lo`` and at ``hi`` it
    differs (both within the coarse sweep's resolution). Returns the
    smallest load (within ``tol_mw``) whose LMP differs.
    """
    while hi - lo > tol_mw:
        mid = 0.5 * (lo + hi)
        res = opf.dispatch({b: s * mid for b, s in LOAD_SHARES.items()})
        if res.feasible and abs(res.lmp_at(bus) - price_lo) <= 1e-4:
            lo = mid
        else:
            hi = mid
    return hi


def derive_step_policies(
    grid: Grid | None = None,
    max_system_load_mw: float = 900.0,
    step_mw: float = 2.5,
    locational: bool = True,
    refine_tol_mw: float | None = None,
) -> dict[str, SteppedPricingPolicy]:
    """Sweep the 5-bus DC-OPF and return a step policy per load bus.

    Parameters
    ----------
    grid:
        Defaults to :func:`pjm5bus`.
    max_system_load_mw, step_mw:
        Sweep range and resolution; the sweep stops at infeasibility.
    locational:
        When true (default), breakpoints are expressed in *locational*
        load (system load x share), matching how the paper's policies
        consume ``P_i = p_i + d_i``; otherwise in system load.
    refine_tol_mw:
        When set, each detected breakpoint is located by bisection to
        this tolerance (in system MW) instead of the coarse sweep
        resolution — e.g. ``0.05`` pins the Brighton-Sundance
        congestion step to the canonical 711.8 MW.

    Returns
    -------
    dict
        ``{bus: SteppedPricingPolicy}`` for B, C, D.
    """
    grid = grid or pjm5bus()
    opf = DcOpf(grid)
    system_loads = np.arange(step_mw, max_system_load_mw + step_mw / 2, step_mw)
    sweep = opf.lmp_sweep(LOAD_SHARES, system_loads)
    policies = {}
    for bus, lmps in sweep.items():
        breakpoints, prices = _compress_steps(system_loads, lmps)
        if refine_tol_mw is not None:
            refined = []
            for k, bp in enumerate(breakpoints):
                refined.append(
                    _refine_breakpoint(
                        opf, bus, bp - step_mw, bp, prices[k], refine_tol_mw
                    )
                )
            breakpoints = tuple(refined)
        if locational:
            share = LOAD_SHARES[bus]
            breakpoints = tuple(bp * share for bp in breakpoints)
        policies[bus] = SteppedPricingPolicy(bus, breakpoints, prices)
    return policies
