"""DC optimal power flow with locational marginal prices.

The DC-OPF is the market-clearing engine behind the LMP methodology the
paper builds on (Section II): an ISO dispatches generators at least cost
subject to transmission limits, and the dual multiplier of each bus's
power-balance constraint is that bus's **locational marginal price** —
the cost of serving one more MW at the bus. LMP step changes appear
exactly when a new constraint (a generator limit or a line limit)
becomes binding as load grows, which is what produces the stepped
pricing policies of Figure 1.

Formulation (B-theta):

.. math::

    \\min \\sum_k c_k g_k \\quad \\text{s.t.} \\quad
    \\sum_{k \\in b} g_k - d_b = \\sum_{l: b \\to} f_l - \\sum_{l: \\to b} f_l,
    \\qquad f_l = B_l (\\theta_{from} - \\theta_{to}),
    \\qquad |f_l| \\le F_l,
    \\qquad 0 \\le g_k \\le G_k.

The LP is built on :class:`repro.solver.Model` and solved with a backend
that reports equality duals (HiGHS by default; the pure-NumPy simplex
also works and is exercised in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..solver import Model, ScipyLpBackend, SolveStatus, quicksum
from .network import Grid

__all__ = ["DispatchResult", "DcOpf"]


@dataclass
class DispatchResult:
    """Market-clearing outcome for one load vector.

    Attributes
    ----------
    feasible:
        Whether the load could be served.
    total_cost:
        Generation cost in $/h (``nan`` if infeasible).
    generation:
        ``{generator name: MW}``.
    flows:
        ``{line key: MW}`` with sign per line orientation.
    lmp:
        ``{bus name: $/MWh}`` — dual of the bus balance constraint.
    """

    feasible: bool
    total_cost: float
    generation: dict[str, float]
    flows: dict[str, float]
    lmp: dict[str, float]

    def lmp_at(self, bus: str) -> float:
        """LMP at ``bus``; raises ``KeyError`` for unknown buses."""
        return self.lmp[bus]


class DcOpf:
    """DC optimal power flow solver for a :class:`Grid`.

    Parameters
    ----------
    grid:
        The transmission network.
    backend:
        Any LP backend exposing equality duals (default: HiGHS
        ``linprog``). The pure simplex engine may be passed for a fully
        self-contained stack.
    """

    def __init__(self, grid: Grid, backend=None):
        self.grid = grid
        self.backend = backend or ScipyLpBackend()

    def dispatch(self, loads: dict[str, float]) -> DispatchResult:
        """Clear the market for the given nodal loads (MW).

        Buses absent from ``loads`` carry zero load. Negative loads are
        rejected.
        """
        m, gen_vars, flow_vars, balance_order = self._build(loads)
        res = m.solve(backend=self.backend)
        if res.status is not SolveStatus.OPTIMAL:
            return DispatchResult(False, float("nan"), {}, {}, {})

        # Equality duals are mapped back to buses by *constraint name*
        # (`balance[<bus>]`), never by positional offset: `_build`'s row
        # ordering must not silently decide which dual is an LMP.
        eq_rows = self._eq_rows(m)
        if res.duals_eq.size < len(eq_rows):
            raise ValueError(
                f"backend {res.backend or type(self.backend).__name__!s} "
                f"returned {res.duals_eq.size} equality duals for "
                f"{len(eq_rows)} equality rows; LMPs need an LP backend "
                "that reports duals"
            )
        lmps = {
            bus: float(res.duals_eq[eq_rows[f"balance[{bus}]"]])
            for bus in balance_order
        }
        generation = {name: float(res.value(v)) for name, v in gen_vars.items()}
        flows = {key: float(res.value(v)) for key, v in flow_vars.items()}
        return DispatchResult(True, float(res.objective), generation, flows, lmps)

    def load_growth_headroom(self, loads: dict[str, float], bus: str) -> float:
        """MW of extra load at ``bus`` before any LMP changes.

        Computed in a *single* solve via the simplex solver's RHS
        sensitivity ranging on the bus's balance row: within the
        returned headroom the optimal basis — and therefore every
        nodal price — is provably unchanged. ``inf`` when no constraint
        ever binds (practically: bounded by generation capacity, which
        ranging reports too).

        The value is *incremental* MW above the current load at ``bus``
        (``rhs_range_eq`` reports deltas relative to the current RHS,
        not the absolute RHS at which the basis changes).
        """
        from ..solver import SimplexSolver

        if bus not in {b.name for b in self.grid.buses}:
            raise KeyError(f"unknown bus {bus!r}")
        m, _, _, _ = self._build(loads)
        sf = m.to_standard_form()
        res = SimplexSolver().solve(sf, ranging=True)
        if res.status is not SolveStatus.OPTIMAL:
            raise ValueError("load vector is infeasible")
        # Resolve the balance row by name among the equality rows —
        # positional arithmetic breaks as soon as `_build` reorders rows.
        row = self._eq_rows(m)[f"balance[{bus}]"]
        _, hi = res.rhs_range_eq[row]
        return float(hi)

    @staticmethod
    def _eq_rows(m: Model) -> dict[str, int]:
        """Name -> row index of the model's equality constraints.

        Matches ``Model.to_standard_form``'s ordering (insertion order
        among ``==`` constraints), which is also the order backends
        report ``duals_eq`` and ``rhs_range_eq`` in.
        """
        return {
            c.name: i
            for i, c in enumerate(k for k in m._constrs if k.kind == "==")
        }

    def _build(self, loads: dict[str, float]):
        """Construct the OPF model; returns (model, gens, flows, balance order)."""
        bus_names = {b.name for b in self.grid.buses}
        for bus, mw in loads.items():
            if bus not in bus_names:
                raise KeyError(f"unknown bus {bus!r} in load vector")
            if mw < 0:
                raise ValueError(f"negative load at bus {bus!r}")

        grid = self.grid
        m = Model("dcopf")
        gen_vars = {
            g.name: m.var(f"g[{g.name}]", lb=g.min_mw, ub=g.max_mw)
            for g in grid.generators
        }
        # Reference bus angle fixed at zero removes the rotational nullspace.
        theta = {}
        for i, bus in enumerate(grid.buses):
            if i == 0:
                theta[bus.name] = m.var(f"theta[{bus.name}]", lb=0.0, ub=0.0)
            else:
                theta[bus.name] = m.var(
                    f"theta[{bus.name}]", lb=-float("inf"), ub=float("inf")
                )

        # Line flows as explicit variables tied to angle differences;
        # keeps the balance rows sparse and makes flow limits plain bounds.
        flow_vars = {}
        for line in grid.lines:
            lim = line.limit_mw
            f = m.var(f"f[{line.key}]", lb=-lim, ub=lim)
            flow_vars[line.key] = f
            coupling = grid.base_mva * line.susceptance
            m.add(
                f == coupling * (theta[line.from_bus] - theta[line.to_bus]),
                name=f"flow[{line.key}]",
            )

        # Nodal balance; constraint order is recorded so duals can be
        # mapped back to buses (equality rows keep insertion order).
        balance_order: list[str] = []
        for bus in grid.buses:
            inflow = quicksum(
                flow_vars[l.key] for l in grid.lines if l.to_bus == bus.name
            )
            outflow = quicksum(
                flow_vars[l.key] for l in grid.lines if l.from_bus == bus.name
            )
            gen = quicksum(gen_vars[g.name] for g in grid.generators_at(bus.name))
            load = float(loads.get(bus.name, 0.0))
            m.add(gen + inflow - outflow == load, name=f"balance[{bus.name}]")
            balance_order.append(bus.name)

        m.minimize(
            quicksum(g.cost * gen_vars[g.name] for g in grid.generators)
        )
        return m, gen_vars, flow_vars, balance_order

    # -- sweeps ------------------------------------------------------------------

    def lmp_sweep(
        self,
        load_shares: dict[str, float],
        system_loads: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """LMP at every load bus for a range of system loads.

        Parameters
        ----------
        load_shares:
            Fraction of the system load drawn at each bus (must sum to
            1, e.g. ``{"B": 1/3, "C": 1/3, "D": 1/3}`` for the paper's
            uniformly distributed load).
        system_loads:
            1-D array of total system loads in MW.

        Returns
        -------
        dict
            ``{bus: array of LMPs}`` for each bus in ``load_shares``;
            infeasible load levels yield ``nan``.
        """
        total_share = sum(load_shares.values())
        # Relative tolerance: float accumulation (e.g. rounded thirds)
        # must not reject an intentionally-complete share vector.  The
        # shares are renormalized so the sweep is exact either way.
        if not np.isclose(total_share, 1.0, rtol=1e-6, atol=0.0):
            raise ValueError(f"load shares sum to {total_share}, expected 1")
        shares = {b: s / total_share for b, s in load_shares.items()}
        out = {bus: np.full(len(system_loads), np.nan) for bus in load_shares}
        for i, total in enumerate(np.asarray(system_loads, dtype=float)):
            res = self.dispatch({b: s * total for b, s in shares.items()})
            if res.feasible:
                for bus in load_shares:
                    out[bus][i] = res.lmp_at(bus)
        return out
