"""Locational pricing policies: piecewise-constant price vs. market load.

A :class:`SteppedPricingPolicy` is the paper's ``Pr_i = F_i(P_i)``: the
electricity price paid by every consumer in market *i* as a step
function of the *total* power drawn in that market, ``P_i = p_i + d_i``
(data-center power plus background demand). The steps come from the LMP
methodology — each level corresponds to a set of binding generation or
transmission constraints (Section II, Figure 1).

Factories at the bottom build the paper's four experimental policies:

* ``Policy 0`` — flat price (the *price-taker* world assumed by
  Min-Only);
* ``Policy 1`` — the basic locational policy derived from the PJM
  five-bus system;
* ``Policies 2 and 3`` — Policy 1 with its price increments over the
  base level doubled and tripled (Section VII-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "SteppedPricingPolicy",
    "flat_policy",
    "scale_increments",
    "paper_policy_dc1",
    "paper_policies",
    "PAPER_DC1_PRICES",
    "PAPER_BREAKPOINTS_MW",
]


@dataclass(frozen=True)
class SteppedPricingPolicy:
    """Piecewise-constant electricity price as a function of market load.

    ``price(P) = prices[k]`` for ``breakpoints[k-1] <= P < breakpoints[k]``
    with ``breakpoints`` the *interior* step locations (len = len(prices)-1).
    Loads beyond the last breakpoint take the final price.

    Attributes
    ----------
    name:
        Label for reports ("B", "C", "D", ...).
    breakpoints:
        Strictly increasing interior breakpoints in MW.
    prices:
        Price of each level in $/MWh; one more entry than breakpoints.
    """

    name: str
    breakpoints: tuple[float, ...]
    prices: tuple[float, ...]

    def __post_init__(self):
        if len(self.prices) != len(self.breakpoints) + 1:
            raise ValueError(
                f"policy {self.name!r}: need len(prices) == len(breakpoints)+1"
            )
        if len(self.prices) == 0:
            raise ValueError("at least one price level required")
        bp = np.asarray(self.breakpoints, dtype=float)
        if bp.size and (np.any(np.diff(bp) <= 0) or bp[0] <= 0):
            raise ValueError("breakpoints must be positive and strictly increasing")
        if any(p < 0 for p in self.prices):
            raise ValueError("negative prices not supported")
        # Precomputed arrays for the hot lookup paths. Frozen dataclass,
        # so set past the guard; they are derived state, not fields —
        # eq/hash/repr still read the tuples.
        object.__setattr__(self, "_bp_arr", bp)
        object.__setattr__(
            self, "_pr_arr", np.asarray(self.prices, dtype=float)
        )

    # -- evaluation -------------------------------------------------------------

    @property
    def n_levels(self) -> int:
        """Number of price levels (the ``m_i`` of Section IV-C)."""
        return len(self.prices)

    def level_index(self, load_mw: float) -> int:
        """Index of the price level active at ``load_mw``."""
        if load_mw < 0:
            raise ValueError("negative market load")
        return int(np.searchsorted(self._bp_arr, load_mw, side="right"))

    def price(self, load_mw: float) -> float:
        """Price ($/MWh) at total market load ``load_mw``."""
        return self.prices[self.level_index(load_mw)]

    def price_array(self, loads_mw: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`price` over an array of loads."""
        loads = np.asarray(loads_mw, dtype=float)
        if np.any(loads < 0):
            raise ValueError("negative market load")
        idx = np.searchsorted(self._bp_arr, loads, side="right")
        return self._pr_arr[idx]

    # -- segment geometry (used by the MILP linearization) -----------------------

    def segment_bounds(self) -> list[tuple[float, float]]:
        """Market-load interval ``[lo, hi)`` of each price level.

        The last segment's ``hi`` is ``inf``.
        """
        edges = (0.0, *self.breakpoints, float("inf"))
        return [(edges[k], edges[k + 1]) for k in range(self.n_levels)]

    # -- summary statistics (used by the Min-Only baselines) ---------------------

    @property
    def average_price(self) -> float:
        """Unweighted mean of the step prices — Min-Only (Avg)'s constant."""
        return float(np.mean(self.prices))

    @property
    def lowest_price(self) -> float:
        """Lowest step price — Min-Only (Low)'s constant."""
        return float(np.min(self.prices))

    def is_flat(self) -> bool:
        """True when the price never changes with load (price-taker world)."""
        return len(set(self.prices)) == 1

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (JSON/YAML-friendly) for config files."""
        return {
            "name": self.name,
            "breakpoints": list(self.breakpoints),
            "prices": list(self.prices),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SteppedPricingPolicy":
        """Inverse of :meth:`to_dict`; validates like the constructor."""
        try:
            return cls(
                name=str(data["name"]),
                breakpoints=tuple(float(b) for b in data["breakpoints"]),
                prices=tuple(float(p) for p in data["prices"]),
            )
        except KeyError as missing:
            raise ValueError(f"policy dict missing key {missing}") from None


def flat_policy(name: str, price: float) -> SteppedPricingPolicy:
    """Policy 0: a single constant price (data centers are price takers)."""
    return SteppedPricingPolicy(name, (), (price,))


def scale_increments(
    policy: SteppedPricingPolicy, factor: float, suffix: str = ""
) -> SteppedPricingPolicy:
    """Scale every price increment over the base level by ``factor``.

    This is how the paper constructs Policies 2 and 3 from Policy 1:
    e.g. DC 1's Policy 1 prices ``(10.00, 13.90, 15.00, 22.00, 24.00)``
    become ``(10.00, 17.80, 20.00, 34.00, 38.00)`` with ``factor=2`` and
    ``(10.00, 21.70, 25.00, 46.00, 52.00)`` with ``factor=3``.
    """
    if factor < 0:
        raise ValueError("factor must be non-negative")
    base = policy.prices[0]
    prices = tuple(base + factor * (p - base) for p in policy.prices)
    return SteppedPricingPolicy(
        f"{policy.name}{suffix or f'x{factor:g}'}", policy.breakpoints, prices
    )


#: The DC 1 (location B) step prices stated in Section VII-B, $/MWh.
PAPER_DC1_PRICES: tuple[float, ...] = (10.00, 13.90, 15.00, 22.00, 24.00)

#: Interior breakpoints, in MW of *locational* market load. The PJM 5-bus
#: system distributes load uniformly over B, C, D, and its LMP steps occur
#: at system loads of roughly {300, 450, 600, 711.8} MW (Brighton's limit
#: binds at 600, the Brighton-Sundance line at 711.8 per Section II);
#: locational breakpoints are a third of those.
PAPER_BREAKPOINTS_MW: tuple[float, ...] = (100.0, 150.0, 200.0, 237.3)


def paper_policy_dc1() -> SteppedPricingPolicy:
    """Policy 1 for Data Center 1 with the exact prices from the paper."""
    return SteppedPricingPolicy("B", PAPER_BREAKPOINTS_MW, PAPER_DC1_PRICES)


def paper_policies(derived: Sequence[SteppedPricingPolicy] | None = None):
    """The three locational Policy-1 curves for DC 1-3 (buses B, C, D).

    The paper states DC 1's prices explicitly; the other two locations
    are read off Figure 1, which we regenerate from the PJM 5-bus DC-OPF
    (see :func:`repro.powermarket.pjm5bus.derive_step_policies`). When
    ``derived`` policies are supplied (e.g. from that sweep) they are
    used for C and D; otherwise hand-transcribed curves consistent with
    the 5-bus LMP literature are used.
    """
    b = paper_policy_dc1()
    if derived is not None:
        by_name = {p.name: p for p in derived}
        return [b, by_name["C"], by_name["D"]]
    c = SteppedPricingPolicy("C", PAPER_BREAKPOINTS_MW, (10.0, 15.0, 21.0, 28.0, 30.0))
    d = SteppedPricingPolicy("D", PAPER_BREAKPOINTS_MW, (10.0, 14.3, 17.0, 25.0, 27.0))
    return [b, c, d]
