"""LMP decomposition into energy and congestion components.

The CLMP literature the paper builds on (Li, "Continuous locational
marginal pricing") decomposes each bus's price as

.. math::

    LMP_b = \\lambda^{energy} + \\lambda^{congestion}_b

(the lossless DC model has no loss component): the *energy* component
is the system marginal price at the reference bus, and the *congestion*
component redistributes the binding line constraints' shadow prices
through the network sensitivities,

.. math::

    \\lambda^{congestion}_b = - \\sum_l PTDF_{l,b} \\, \\mu_l,

with ``mu_l`` the (non-positive, SciPy-convention) duals of the line
limits. Decomposing makes Figure 1's structure legible: the first step
(Brighton's limit) moves the *energy* component everywhere at once; the
second (the E-D line) is pure *congestion* and splits the buses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..solver import ScipyLpBackend
from .dcopf import DcOpf
from .network import Grid
from .ptdf import compute_ptdf

__all__ = ["LmpComponents", "decompose_lmp"]


@dataclass(frozen=True)
class LmpComponents:
    """Per-bus LMP split into energy and congestion parts ($/MWh)."""

    energy: float
    congestion: dict[str, float]
    lmp: dict[str, float]

    def at(self, bus: str) -> tuple[float, float, float]:
        """(energy, congestion, total) at ``bus``."""
        return (self.energy, self.congestion[bus], self.lmp[bus])

    @property
    def congested(self) -> bool:
        """True when any congestion component is non-negligible."""
        return any(abs(v) > 1e-6 for v in self.congestion.values())


def decompose_lmp(
    grid: Grid, loads: dict[str, float], slack: str | None = None
) -> LmpComponents:
    """Decompose the OPF's LMPs at ``loads`` into energy + congestion.

    Parameters
    ----------
    grid:
        The network.
    loads:
        Nodal loads in MW (as for :meth:`DcOpf.dispatch`).
    slack:
        Reference bus for the decomposition (defaults to the grid's
        first bus, matching :func:`compute_ptdf`). The energy component
        is that bus's LMP; congestion components are relative to it.

    Raises
    ------
    ValueError
        When the load vector is infeasible.

    Notes
    -----
    The identity ``LMP_b = energy - sum_l PTDF[l, b] * mu_l`` is exact
    for the lossless DC model and is asserted against the directly
    computed LMPs (rather than silently trusted) — a mismatch beyond
    tolerance raises, since it would indicate degenerate duals.
    """
    slack = slack or grid.buses[0].name
    # One solve for LMPs and line duals. Line limits are variable
    # bounds in the OPF model, so re-solve with explicit limit rows to
    # obtain their duals cleanly.
    from ..solver import Model, SolveStatus, quicksum

    opf = DcOpf(grid)
    m, gen_vars, flow_vars, balance_order = opf._build(loads)
    # Line limits live as variable *bounds* in the OPF model; duplicated
    # rows would leave the duals degenerate (the solver may charge the
    # bound and report zero on the row). Free the bounds and carry the
    # limits exclusively as rows, whose duals we then read.
    limited = [l for l in grid.lines if l.limit_mw != float("inf")]
    n_ub_before = sum(1 for c in m.constraints if c.kind == "<=")
    for line in limited:
        var = flow_vars[line.key]
        var.lb, var.ub = -float("inf"), float("inf")
        m.add(var <= line.limit_mw, name=f"lim+[{line.key}]")
        m.add(-1.0 * var <= line.limit_mw, name=f"lim-[{line.key}]")
    res = m.solve(backend=ScipyLpBackend())
    if res.status is not SolveStatus.OPTIMAL:
        raise ValueError("load vector is infeasible")

    n_flow_eqs = len(grid.lines)
    lmp = {
        bus: float(res.duals_eq[n_flow_eqs + i])
        for i, bus in enumerate(balance_order)
    }
    # Net shadow price per limited line: mu(+row) - mu(-row), both <= 0.
    mu = {}
    for k, line in enumerate(limited):
        plus = float(res.duals_ub[n_ub_before + 2 * k])
        minus = float(res.duals_ub[n_ub_before + 2 * k + 1])
        mu[line.key] = plus - minus

    energy = lmp[slack]
    ptdf = compute_ptdf(grid, slack=slack)
    # PTDF is the flow increase per MW *injected* at the bus; a load
    # withdraws, hence the positive product with the (net, SciPy-signed)
    # line shadow prices recovers LMP - energy. One matrix-vector
    # product replaces the per-bus per-line Python loop.
    mu_vec = np.array([mu.get(key, 0.0) for key in ptdf.line_keys])
    cong_by_bus = dict(
        zip(ptdf.bus_names, (mu_vec @ ptdf.matrix).tolist())
    )
    congestion = {bus: cong_by_bus[bus] for bus in balance_order}

    # Exactness check of the decomposition identity.
    for bus in balance_order:
        recomposed = energy + congestion[bus]
        if abs(recomposed - lmp[bus]) > 1e-4 * max(1.0, abs(lmp[bus])):
            raise ValueError(
                f"LMP decomposition mismatch at {bus}: "
                f"{recomposed:.6f} vs {lmp[bus]:.6f} (degenerate duals?)"
            )
    return LmpComponents(energy=energy, congestion=congestion, lmp=lmp)
