"""Pluggable tariff / settlement layer.

``repro.billing`` turns the bill from a single hand-threaded scalar
into a settled list of per-component line items:

* :class:`~repro.billing.components.TariffComponent` — one tariff term
  (``charge(hour_ctx) -> LineItem`` plus checkpoint serialization);
* :class:`~repro.billing.components.EnergyCharge` — the paper's
  energy-only bill, bit-for-bit;
* :class:`~repro.billing.components.DemandCharge` — billing-cycle
  peak-kW tracking with incremental settlement and the linearized peak
  term the dispatcher uses to shave peaks;
* :class:`~repro.billing.ledger.SettlementLedger` — ordered components
  plus the open hour's usage accruals;
* the named registry (:func:`register_tariff` / :func:`get_tariff` /
  :func:`available_tariffs`), mirroring ``sim.registry`` and
  ``solver.registry``, with :func:`make_ledger` parsing CLI specs like
  ``energy+demand:rate=6,cycle=168``.
"""

from .components import (
    DEFAULT_DEMAND_RATE_PER_KW,
    HOURS_PER_MONTH,
    DemandCharge,
    EnergyCharge,
    HourUsage,
    LineItem,
    TariffComponent,
)
from .ledger import LEDGER_STATE_VERSION, SettlementLedger
from .registry import (
    DEFAULT_TARIFF,
    available_tariffs,
    get_tariff,
    make_ledger,
    register_tariff,
    restore_component,
    restore_ledger,
)

__all__ = [
    "DEFAULT_DEMAND_RATE_PER_KW",
    "DEFAULT_TARIFF",
    "HOURS_PER_MONTH",
    "LEDGER_STATE_VERSION",
    "DemandCharge",
    "EnergyCharge",
    "HourUsage",
    "LineItem",
    "SettlementLedger",
    "TariffComponent",
    "available_tariffs",
    "get_tariff",
    "make_ledger",
    "register_tariff",
    "restore_component",
    "restore_ledger",
]
