"""The settlement ledger: accrue usage, settle hours into line items.

One :class:`SettlementLedger` replaces the ad-hoc scalar spend plumbing
that used to ride through the engine settle stage, the service control
loop's time-weighted accrual, and the shard budget barrier. The ledger
accrues the two usage quantities every tariff component consumes
(realized energy cost and average power), and at each hour boundary
settles them through its ordered component list into
:class:`~repro.billing.components.LineItem` rows.

Bit-identity contract
---------------------
Under the default ``energy`` tariff the ledger must be invisible:

* accrual uses exactly the ``acc += value * weight`` fold (from 0.0, in
  arrival order) the control loop has always used for
  ``realized_cost``, so the accrued energy is the same float;
* the hour total folds component amounts starting from ``0.0``, and
  ``0.0 + energy == energy`` bitwise, so the budgeter records the same
  spend and every downstream hourly budget — hence every decision log
  byte — is unchanged.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .components import HourUsage, LineItem, TariffComponent

__all__ = ["SettlementLedger", "LEDGER_STATE_VERSION"]

LEDGER_STATE_VERSION = 1


class SettlementLedger:
    """Ordered tariff components plus the current hour's accruals."""

    def __init__(
        self,
        components: Iterable[TariffComponent],
        *,
        tariff: str = "energy",
    ) -> None:
        self.components: list[TariffComponent] = list(components)
        if not self.components:
            raise ValueError("a settlement ledger needs >= 1 component")
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tariff components in {names}")
        #: The spec string this ledger was built from (display/meta).
        self.tariff = tariff
        self._energy = 0.0
        self._power = 0.0

    # -- accrual / settlement ---------------------------------------------------

    def accrue(
        self, energy_cost: float, power_mw: float, weight: float = 1.0
    ) -> None:
        """Fold one segment's usage into the open hour.

        Whole-hour callers (the engine) pass ``weight=1.0`` once; the
        service control loop calls this per tick segment with the same
        fractional weights it applies to its other accruals.
        """
        self._energy += energy_cost * weight
        self._power += power_mw * weight

    def settle(self, hour: int) -> list[LineItem]:
        """Close the hour: charge every component, reset the accruals."""
        usage = HourUsage(hour, self._energy, self._power)
        self._energy = 0.0
        self._power = 0.0
        return [component.charge(usage) for component in self.components]

    @staticmethod
    def total(items: Iterable[LineItem]) -> float:
        """Sum of line-item amounts, folded from 0.0 in ledger order."""
        total = 0.0
        for item in items:
            total += item.amount
        return total

    # -- dispatcher hooks ---------------------------------------------------------

    def project(self, hour: int, energy_cost: float, power_mw: float) -> float:
        """Projected hour bill of a candidate dispatch, all components."""
        total = 0.0
        for component in self.components:
            total += component.project(hour, energy_cost, power_mw)
        return total

    def peak_term(self, hour: int) -> tuple[float, float] | None:
        """First component's ``(cycle_peak_mw, penalty_per_mw)``, if any."""
        for component in self.components:
            term = component.peak_term(hour)
            if term is not None:
                return term
        return None

    def component(self, name: str) -> TariffComponent | None:
        for component in self.components:
            if component.name == name:
                return component
        return None

    @property
    def component_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.components)

    @property
    def is_energy_only(self) -> bool:
        return self.component_names == ("energy",)

    # -- checkpointing ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "v": LEDGER_STATE_VERSION,
            "tariff": self.tariff,
            "components": [c.to_dict() for c in self.components],
            "accrued": {"energy": self._energy, "power": self._power},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SettlementLedger":
        version = data.get("v")
        if version != LEDGER_STATE_VERSION:
            raise ValueError(
                f"unsupported ledger state version {version!r} "
                f"(expected {LEDGER_STATE_VERSION})"
            )
        # Imported here: the registry imports this module for make_ledger.
        from .registry import restore_component

        ledger = cls(
            [restore_component(c) for c in data["components"]],
            tariff=str(data.get("tariff", "")),
        )
        accrued = data.get("accrued", {})
        ledger._energy = float(accrued.get("energy", 0.0))
        ledger._power = float(accrued.get("power", 0.0))
        return ledger
