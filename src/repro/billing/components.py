"""Tariff components: the per-hour charges a settlement is made of.

The paper's bill model is energy-only — the hourly bill is the sum of
the sites' stepped energy charges, and a single scalar rode through the
budgeter, the engine settle stage, the service accrual and the shard
ledger. Real cloud tariffs add more terms, most importantly a **demand
charge**: a per-kW price on the billing cycle's peak average power.

This module defines the component protocol and the first two concrete
components:

* :class:`EnergyCharge` — reproduces today's bill bit-for-bit: its line
  item *is* the accrued realized energy cost, unchanged.
* :class:`DemandCharge` — tracks the billing-cycle peak of the hourly
  average power and bills the *increment* each hour, so the cycle's
  line items always sum to ``rate × cycle_peak_kW`` no matter when the
  cycle is cut by a checkpoint/resume.

Components are stateful across the hours of one run (the demand charge
carries its cycle peak) and serialize through ``to_dict``/``from_dict``
for checkpoints, exactly like strategies and budgeters do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "HourUsage",
    "LineItem",
    "TariffComponent",
    "EnergyCharge",
    "DemandCharge",
    "DEFAULT_DEMAND_RATE_PER_KW",
    "HOURS_PER_MONTH",
]

#: Default demand-charge rate ($ per kW of billing-cycle peak). Real
#: utility tariffs run $5-20/kW-month; the paper world draws ~100 MW at
#: ~$1M/month energy, where $12/kW would dominate the bill. The default
#: is deliberately mild so `energy+demand` perturbs rather than
#: replaces the energy economics; sweeps scan the interesting range.
DEFAULT_DEMAND_RATE_PER_KW = 2.0

#: Default billing-cycle length: one month of hours (the paper's 30-day
#: month), matching the budgeter's month horizon.
HOURS_PER_MONTH = 720


@dataclass(frozen=True)
class HourUsage:
    """What one settled hour consumed — the input to ``charge``.

    ``energy_cost`` is the accrued realized energy cost over the hour
    ($); ``power_mw`` is the time-weighted average fleet power (MW).
    For whole-hour engine settles the average is just the hour's
    ``total_power_mw``; the service control loop accrues both with the
    same segment weights it uses for everything else.
    """

    hour: int
    energy_cost: float
    power_mw: float


@dataclass(frozen=True)
class LineItem:
    """One component's charge for one settled hour."""

    component: str
    amount: float
    detail: Mapping[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        out: dict = {"component": self.component, "amount": self.amount}
        if self.detail:
            out["detail"] = dict(self.detail)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "LineItem":
        return cls(
            component=str(data["component"]),
            amount=float(data["amount"]),
            detail=dict(data.get("detail", {})),
        )


class TariffComponent:
    """Base class / protocol for one term of a tariff.

    Subclasses implement :meth:`charge` (consume one hour's usage,
    update any accrual state, return the hour's line item) and the
    ``to_dict``/``from_dict`` checkpoint pair. The remaining hooks have
    neutral defaults:

    * :meth:`project` — the charge this hour's *candidate* dispatch
      would add, used by the capper to reserve budget headroom before
      committing;
    * :meth:`peak_term` — ``(cycle_peak_mw, penalty_per_mw)`` when the
      component prices peak power, feeding the linearized peak term in
      the dispatch MILP; ``None`` otherwise.
    """

    #: Registry name; instances of one class share it.
    name = "component"

    def charge(self, hour_ctx: HourUsage) -> LineItem:
        raise NotImplementedError

    def project(self, hour: int, energy_cost: float, power_mw: float) -> float:
        return 0.0

    def peak_term(self, hour: int) -> tuple[float, float] | None:
        return None

    def to_dict(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: Mapping) -> "TariffComponent":
        raise NotImplementedError

    @classmethod
    def from_params(cls, params: Mapping[str, str]) -> "TariffComponent":
        """Build from CLI spec parameters (``demand:rate=4,cycle=168``)."""
        if params:
            raise ValueError(
                f"tariff component {cls.name!r} takes no parameters, got "
                f"{sorted(params)}"
            )
        return cls()


class EnergyCharge(TariffComponent):
    """The paper's energy-only bill, verbatim.

    The line item's amount is exactly the accrued realized energy cost
    — the same float the pre-tariff code fed straight to
    ``Budgeter.record_spend`` — so a ledger holding only this component
    settles bit-identically to the old scalar plumbing.
    """

    name = "energy"

    def charge(self, hour_ctx: HourUsage) -> LineItem:
        return LineItem("energy", hour_ctx.energy_cost)

    def project(self, hour: int, energy_cost: float, power_mw: float) -> float:
        return energy_cost

    def to_dict(self) -> dict:
        return {"kind": "energy"}

    @classmethod
    def from_dict(cls, data: Mapping) -> "EnergyCharge":
        return cls()


class DemandCharge(TariffComponent):
    """Billing-cycle peak-demand charge, billed incrementally.

    Tracks the running peak of the hourly average power within the
    current billing cycle (``hour // cycle_hours``). Each settled hour
    bills only the *new* peak established that hour::

        amount = penalty_per_mw * max(0, power_mw - peak_so_far)

    so the cycle's line items telescope to ``penalty * cycle_peak`` —
    the classic demand charge — while staying attributable hour by
    hour, surviving checkpoint/resume mid-cycle, and folding across
    shard regions like any other spend. A new cycle resets the peak.

    ``peak_term`` exposes ``(cycle_peak_mw, penalty_per_mw)`` to the
    dispatcher: the capper adds a ``peak_excess`` variable to the MILP
    priced at the penalty, which is exactly this marginal charge, so
    the optimizer shaves peaks only when the energy saved elsewhere
    doesn't cover the demand charge incurred.
    """

    name = "demand"

    def __init__(
        self,
        rate_per_kw: float = DEFAULT_DEMAND_RATE_PER_KW,
        cycle_hours: int = HOURS_PER_MONTH,
    ) -> None:
        if rate_per_kw < 0:
            raise ValueError("demand rate must be >= 0")
        if cycle_hours < 1:
            raise ValueError("billing cycle must be >= 1 hour")
        self.rate_per_kw = float(rate_per_kw)
        self.cycle_hours = int(cycle_hours)
        #: Peak hourly average power (MW) seen in the current cycle.
        self.peak_mw = 0.0
        #: Index of the cycle ``peak_mw`` belongs to; None = unstarted.
        self.cycle: int | None = None

    @property
    def penalty_per_mw(self) -> float:
        """Demand-charge rate in $ per MW of cycle peak."""
        return self.rate_per_kw * 1000.0

    def _cycle_peak(self, hour: int) -> float:
        """The effective prior peak for ``hour`` (0 across a cycle cut)."""
        if self.cycle is not None and hour // self.cycle_hours == self.cycle:
            return self.peak_mw
        return 0.0

    def charge(self, hour_ctx: HourUsage) -> LineItem:
        cycle = hour_ctx.hour // self.cycle_hours
        if cycle != self.cycle:
            self.cycle = cycle
            self.peak_mw = 0.0
        increment = max(0.0, hour_ctx.power_mw - self.peak_mw)
        self.peak_mw = max(self.peak_mw, hour_ctx.power_mw)
        return LineItem(
            "demand",
            self.penalty_per_mw * increment,
            detail={"peak_mw": self.peak_mw, "increment_mw": increment},
        )

    def project(self, hour: int, energy_cost: float, power_mw: float) -> float:
        return self.penalty_per_mw * max(
            0.0, power_mw - self._cycle_peak(hour)
        )

    def peak_term(self, hour: int) -> tuple[float, float] | None:
        if self.penalty_per_mw <= 0.0:
            return None
        return (self._cycle_peak(hour), self.penalty_per_mw)

    def to_dict(self) -> dict:
        return {
            "kind": "demand",
            "rate_per_kw": self.rate_per_kw,
            "cycle_hours": self.cycle_hours,
            "peak_mw": self.peak_mw,
            "cycle": self.cycle,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "DemandCharge":
        out = cls(
            rate_per_kw=float(data["rate_per_kw"]),
            cycle_hours=int(data["cycle_hours"]),
        )
        out.peak_mw = float(data["peak_mw"])
        cycle = data.get("cycle")
        out.cycle = None if cycle is None else int(cycle)
        return out

    @classmethod
    def from_params(cls, params: Mapping[str, str]) -> "DemandCharge":
        kwargs: dict = {}
        for key, value in params.items():
            if key in ("rate", "rate_per_kw"):
                kwargs["rate_per_kw"] = float(value)
            elif key in ("cycle", "cycle_hours"):
                kwargs["cycle_hours"] = int(value)
            else:
                raise ValueError(
                    f"unknown demand-charge parameter {key!r}; expected "
                    "'rate' or 'cycle'"
                )
        return cls(**kwargs)
