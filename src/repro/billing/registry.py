"""Central registry of tariff components, mirroring ``sim.registry``.

Every billing term the repo can settle — the paper's energy charge, the
demand charge, and anything a user registers — is a named component
class here. All entry points (``repro run/serve/compare/sweep
--tariff``, ``repro tariffs``, checkpoint restore) resolve tariffs
through this module, so adding a term is one :func:`register_tariff`
call.

A *tariff spec* is a ``+``-joined list of component tokens, each
optionally parameterized::

    energy
    energy+demand
    energy+demand:rate=6,cycle=168

:func:`make_ledger` parses a spec into a fresh
:class:`~repro.billing.ledger.SettlementLedger`; component state is
per-run (the demand charge carries its cycle peak) and must never be
shared between runs.
"""

from __future__ import annotations

from typing import Mapping

from .components import DemandCharge, EnergyCharge, TariffComponent
from .ledger import SettlementLedger

__all__ = [
    "DEFAULT_TARIFF",
    "register_tariff",
    "get_tariff",
    "available_tariffs",
    "make_ledger",
    "restore_component",
    "restore_ledger",
]

#: The spec every entry point defaults to: the paper's energy-only bill.
DEFAULT_TARIFF = "energy"

_COMPONENTS: dict[str, type[TariffComponent]] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Register the built-in components exactly once."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        _COMPONENTS.setdefault("energy", EnergyCharge)
        _COMPONENTS.setdefault("demand", DemandCharge)


def register_tariff(
    name: str, component: type[TariffComponent], *, replace: bool = False
) -> None:
    """Register a component class under ``name``.

    ``component`` must subclass :class:`TariffComponent` with a
    matching ``name`` attribute. Re-registering an existing name raises
    unless ``replace=True`` — shadowing a built-in silently is almost
    always a bug in user code.
    """
    if not name or not isinstance(name, str):
        raise ValueError("tariff name must be a non-empty string")
    if not (isinstance(component, type) and issubclass(component, TariffComponent)):
        raise TypeError("tariff component must subclass TariffComponent")
    _ensure_builtins()
    if name in _COMPONENTS and not replace:
        raise ValueError(
            f"tariff {name!r} is already registered; pass replace=True "
            "to override it"
        )
    if component.name != name:
        raise ValueError(
            f"component class for {name!r} is named {component.name!r}"
        )
    _COMPONENTS[name] = component


def get_tariff(
    name: str, params: Mapping[str, str] | None = None
) -> TariffComponent:
    """A fresh component instance for ``name``.

    Raises :class:`ValueError` with the list of registered names when
    the name is unknown — the message every CLI entry point surfaces
    verbatim.
    """
    _ensure_builtins()
    cls = _COMPONENTS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown tariff {name!r}; expected one of {available_tariffs()}"
        )
    return cls.from_params(params or {})


def available_tariffs() -> tuple[str, ...]:
    """All registered component names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_COMPONENTS))


def make_ledger(spec: str | None = None) -> SettlementLedger:
    """Parse a tariff spec string into a fresh settlement ledger."""
    spec = (spec or DEFAULT_TARIFF).strip()
    if not spec:
        spec = DEFAULT_TARIFF
    components = []
    for token in spec.split("+"):
        token = token.strip()
        if not token:
            raise ValueError(f"empty component in tariff spec {spec!r}")
        name, _, param_str = token.partition(":")
        params: dict[str, str] = {}
        if param_str:
            for pair in param_str.split(","):
                key, sep, value = pair.partition("=")
                if not sep or not key.strip():
                    raise ValueError(
                        f"bad parameter {pair!r} in tariff spec {spec!r}; "
                        "expected key=value"
                    )
                params[key.strip()] = value.strip()
        components.append(get_tariff(name.strip(), params))
    return SettlementLedger(components, tariff=spec)


def restore_component(data: Mapping) -> TariffComponent:
    """Rebuild one component from its ``to_dict`` checkpoint payload."""
    _ensure_builtins()
    kind = data.get("kind")
    cls = _COMPONENTS.get(kind)
    if cls is None:
        raise ValueError(
            f"checkpoint names unknown tariff {kind!r}; expected one of "
            f"{available_tariffs()}"
        )
    return cls.from_dict(data)


def restore_ledger(data: Mapping | None) -> SettlementLedger:
    """Rebuild a ledger from its checkpoint payload.

    ``None`` — the shape every pre-tariff checkpoint migrates through —
    restores the default energy-only ledger.
    """
    if data is None:
        return make_ledger(DEFAULT_TARIFF)
    return SettlementLedger.from_dict(data)
