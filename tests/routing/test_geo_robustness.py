"""Tests for geo latency accounting and DNS routing robustness."""

import numpy as np
import pytest

from repro.core import CostMinimizer
from repro.experiments import paper_world
from repro.routing import (
    GeoTopology,
    ResolverPopulation,
    WeightedDnsDispatcher,
    paper_geo_topology,
    routing_error,
)


class TestGeoTopology:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeoTopology(("r",), (0.5,), ("s",), np.array([[1.0]]))  # shares != 1
        with pytest.raises(ValueError):
            GeoTopology(("r",), (1.0,), ("s",), np.array([[1.0, 2.0]]))  # shape
        with pytest.raises(ValueError):
            GeoTopology(("r",), (1.0,), ("s",), np.array([[-1.0]]))

    def test_mean_rtt_uniform_split(self):
        topo = paper_geo_topology()
        split = {s: 1 / 3 for s in topo.sites}
        rtt = topo.mean_rtt(split)
        assert rtt == pytest.approx(float(
            np.asarray(topo.region_shares) @ topo.rtt_ms @ np.full(3, 1 / 3)
        ))

    def test_nearest_site_split(self):
        topo = paper_geo_topology()
        split = topo.nearest_site_split()
        assert sum(split.values()) == pytest.approx(1.0)
        # Each region's nearest is its home site in the paper topology.
        assert split == {"DC1": 0.42, "DC2": 0.25, "DC3": 0.33}

    def test_min_rtt_is_lower_bound(self):
        topo = paper_geo_topology()
        for split in (
            {s: 1 / 3 for s in topo.sites},
            {"DC1": 1.0},
            {"DC3": 0.9, "DC1": 0.1},
        ):
            assert topo.mean_rtt(split) >= topo.min_mean_rtt() - 1e-9

    def test_region_aware_routing_achieves_bound(self):
        topo = paper_geo_topology()
        assignment = topo.nearest_site_assignment()
        assert topo.region_aware_mean_rtt(assignment) == pytest.approx(
            topo.min_mean_rtt()
        )

    def test_weighted_dns_cannot_achieve_bound(self):
        # The structural gap: region-agnostic weighted DNS hands every
        # region the same answer distribution, so even the "right"
        # aggregate fractions miss the GeoDNS optimum.
        topo = paper_geo_topology()
        agnostic = topo.mean_rtt(topo.nearest_site_split())
        aware = topo.region_aware_mean_rtt(topo.nearest_site_assignment())
        assert agnostic > aware + 5.0

    def test_latency_penalty(self):
        topo = paper_geo_topology()
        assert topo.latency_penalty_ms({"DC1": 1.0}) > 10.0
        assert topo.latency_penalty_ms(topo.nearest_site_split()) >= 0.0

    def test_region_aware_unknown_site_rejected(self):
        topo = paper_geo_topology()
        with pytest.raises(KeyError):
            topo.region_aware_mean_rtt({r: "nope" for r in topo.regions})

    def test_split_validation(self):
        topo = paper_geo_topology()
        with pytest.raises(ValueError):
            topo.mean_rtt({"DC1": -1.0, "DC2": 2.0})
        with pytest.raises(ValueError):
            topo.mean_rtt({})


class TestRoutingRobustness:
    """The capper's savings survive realistic DNS imprecision."""

    @pytest.fixture(scope="class")
    def world(self):
        return paper_world(max_servers=500_000)

    def test_cost_under_dns_errors_close_to_ideal(self, world):
        solver = CostMinimizer()
        dns = WeightedDnsDispatcher(
            [s.name for s in world.sites],
            ResolverPopulation(n_resolvers=5000, ttl_s=300.0, skew=0.6),
            seed=11,
        )
        ideal_total, realized_total = 0.0, 0.0
        for t in range(24):
            sh = [s.hour(t) for s in world.sites]
            lam = float(world.workload.rates_rps[t])
            decision = solver.solve(sh, lam)
            targets = {a.site: a.rate_rps for a in decision.allocations}
            realized_fracs = dns.dispatch_hour(
                {k: max(v, 1e-9) for k, v in targets.items()}
            )
            for site in world.sites:
                cap = site.datacenter.max_throughput_rps()
                _, _, ideal_cost = site.evaluate_hour(t, targets[site.name])
                ideal_total += ideal_cost
                # DNS may overshoot a site's capacity; the local
                # optimizer would shed (here: clamp) the excess.
                _, _, real_cost = site.evaluate_hour(
                    t, min(realized_fracs[site.name] * lam, cap)
                )
                realized_total += real_cost
        # DNS imprecision costs a few percent, not the savings.
        assert realized_total <= ideal_total * 1.10

    def test_latency_audit_of_cost_aware_split(self, world):
        # Cost-aware routing concentrates load; its latency penalty is
        # measurable but bounded by the worst single-site assignment.
        topo = paper_geo_topology()
        solver = CostMinimizer()
        sh = [s.hour(40) for s in world.sites]
        lam = float(world.workload.rates_rps[40])
        decision = solver.solve(sh, lam)
        split = {a.site: a.rate_rps for a in decision.allocations}
        penalty = topo.latency_penalty_ms(split)
        worst = max(
            topo.latency_penalty_ms({s: 1.0}) for s in topo.sites
        )
        assert 0.0 <= penalty <= worst
