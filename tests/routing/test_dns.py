"""Tests for the weighted-DNS dispatcher."""

import numpy as np
import pytest

from repro.routing import ResolverPopulation, WeightedDnsDispatcher, routing_error


class TestResolverPopulation:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResolverPopulation(n_resolvers=0)
        with pytest.raises(ValueError):
            ResolverPopulation(ttl_s=0.0)
        with pytest.raises(ValueError):
            ResolverPopulation(skew=-1.0)

    def test_client_shares_sum_to_one(self):
        pop = ResolverPopulation(n_resolvers=500, skew=1.0)
        shares = pop.client_shares(np.random.default_rng(0))
        assert shares.shape == (500,)
        assert shares.sum() == pytest.approx(1.0)
        assert np.all(shares > 0)

    def test_skew_concentrates_load(self):
        rng = np.random.default_rng(0)
        flat = ResolverPopulation(n_resolvers=500, skew=0.0).client_shares(rng)
        skewed = ResolverPopulation(n_resolvers=500, skew=1.5).client_shares(
            np.random.default_rng(0)
        )
        assert skewed.max() > flat.max() * 3


class TestDispatcher:
    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedDnsDispatcher([])
        d = WeightedDnsDispatcher(["a", "b"])
        with pytest.raises(ValueError):
            d.dispatch_hour({"a": -1.0, "b": 2.0})
        with pytest.raises(ValueError):
            d.dispatch_hour({"a": 0.0, "b": 0.0})
        with pytest.raises(ValueError):
            d.dispatch_window({"a": 1.0}, window_s=0.0)

    def test_realized_fractions_sum_to_one(self):
        d = WeightedDnsDispatcher(["a", "b", "c"], seed=1)
        out = d.dispatch_hour({"a": 0.5, "b": 0.3, "c": 0.2})
        assert sum(out.values()) == pytest.approx(1.0)

    def test_converges_to_targets_with_many_resolvers(self):
        pop = ResolverPopulation(n_resolvers=20_000, skew=0.2, ttl_s=60.0)
        d = WeightedDnsDispatcher(["a", "b", "c"], pop, seed=2)
        target = {"a": 0.5, "b": 0.3, "c": 0.2}
        out = d.dispatch_hour(target)
        assert routing_error(out, target) < 0.02

    def test_granularity_error_with_few_resolvers(self):
        pop = ResolverPopulation(n_resolvers=20, skew=1.0)
        d = WeightedDnsDispatcher(["a", "b"], pop, seed=3)
        out = d.dispatch_hour({"a": 0.5, "b": 0.5})
        # Few, skewed resolvers: realized split visibly off target.
        assert routing_error(out, {"a": 0.5, "b": 0.5}) > 0.01

    def test_ttl_lag_carries_old_allocation(self):
        # Long TTL + short window: most resolvers keep the old answer.
        pop = ResolverPopulation(n_resolvers=5000, ttl_s=3600.0, skew=0.2)
        d = WeightedDnsDispatcher(["a", "b"], pop, seed=4)
        d.dispatch_hour({"a": 1.0, "b": 0.0})  # everyone cached on a
        out = d.dispatch_window({"a": 0.0, "b": 1.0}, window_s=360.0)
        # Only ~10% refreshed: site a still carries most traffic.
        assert out["a"] > 0.8

    def test_full_refresh_after_ttl(self):
        pop = ResolverPopulation(n_resolvers=5000, ttl_s=300.0, skew=0.2)
        d = WeightedDnsDispatcher(["a", "b"], pop, seed=5)
        d.dispatch_hour({"a": 1.0, "b": 0.0})
        out = d.dispatch_hour({"a": 0.0, "b": 1.0})  # hour >> TTL
        assert out["b"] == pytest.approx(1.0)

    def test_reproducible(self):
        t = {"a": 0.6, "b": 0.4}
        o1 = WeightedDnsDispatcher(["a", "b"], seed=9).dispatch_hour(t)
        o2 = WeightedDnsDispatcher(["a", "b"], seed=9).dispatch_hour(t)
        assert o1 == o2

    def test_unnormalized_targets_accepted(self):
        # Absolute rates work too: the dispatcher normalizes.
        pop = ResolverPopulation(n_resolvers=20_000, skew=0.2)
        d = WeightedDnsDispatcher(["a", "b"], pop, seed=6)
        out = d.dispatch_hour({"a": 3e6, "b": 1e6})
        assert out["a"] == pytest.approx(0.75, abs=0.02)


class TestRoutingError:
    def test_zero_when_exact(self):
        assert routing_error({"a": 0.5, "b": 0.5}, {"a": 0.5, "b": 0.5}) == 0.0

    def test_total_variation(self):
        assert routing_error({"a": 1.0, "b": 0.0}, {"a": 0.0, "b": 1.0}) == pytest.approx(1.0)


class TestDeadlineSchedule:
    """Sub-TTL windows compose: the property ``repro serve`` leans on."""

    def test_clock_advances_by_window(self):
        d = WeightedDnsDispatcher(["a", "b"], seed=0)
        assert d.clock_s == 0.0
        d.dispatch_window({"a": 1.0, "b": 0.0}, window_s=60.0)
        d.dispatch_window({"a": 1.0, "b": 0.0}, window_s=90.0)
        assert d.clock_s == pytest.approx(150.0)

    def test_windows_summing_to_ttl_refresh_everyone(self):
        # Six 50 s windows == one 300 s TTL: every resolver has hit its
        # scheduled expiry exactly once, so the flip to site b is total
        # — a per-window Bernoulli model would leave a stale tail of
        # (1 - 1/6)^6 ~ 33% still on a.
        pop = ResolverPopulation(n_resolvers=5000, ttl_s=300.0, skew=0.2)
        d = WeightedDnsDispatcher(["a", "b"], pop, seed=7)
        d.dispatch_hour({"a": 1.0, "b": 0.0})
        for _ in range(6):
            out = d.dispatch_window({"a": 0.0, "b": 1.0}, window_s=50.0)
        assert out["b"] == pytest.approx(1.0)

    def test_partial_ttl_refreshes_proportional_share(self):
        # Deadlines are uniform over the TTL, so a half-TTL window
        # refreshes about half the resolvers.
        pop = ResolverPopulation(n_resolvers=20_000, ttl_s=300.0, skew=0.0)
        d = WeightedDnsDispatcher(["a", "b"], pop, seed=8)
        d.dispatch_hour({"a": 1.0, "b": 0.0})
        out = d.dispatch_window({"a": 0.0, "b": 1.0}, window_s=150.0)
        assert out["b"] == pytest.approx(0.5, abs=0.05)

    def test_window_spanning_many_ttls_assigns_once(self):
        pop = ResolverPopulation(n_resolvers=1000, ttl_s=300.0, skew=0.2)
        d = WeightedDnsDispatcher(["a", "b"], pop, seed=9)
        out = d.dispatch_window({"a": 0.3, "b": 0.7}, window_s=10 * 3600.0)
        assert out["a"] + out["b"] == pytest.approx(1.0)
        # Next deadline lands within one TTL of the new clock.
        follow = d.dispatch_window({"a": 1.0, "b": 0.0}, window_s=300.0)
        assert follow["a"] == pytest.approx(1.0)

    def test_window_sequence_reproducible(self):
        def run():
            pop = ResolverPopulation(n_resolvers=2000, ttl_s=300.0)
            d = WeightedDnsDispatcher(["a", "b"], pop, seed=10)
            outs = []
            for i in range(5):
                outs.append(d.dispatch_window({"a": 0.5, "b": 0.5}, window_s=70.0))
            return outs

        assert run() == run()
