"""Tests for the weighted-DNS dispatcher."""

import numpy as np
import pytest

from repro.routing import ResolverPopulation, WeightedDnsDispatcher, routing_error


class TestResolverPopulation:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResolverPopulation(n_resolvers=0)
        with pytest.raises(ValueError):
            ResolverPopulation(ttl_s=0.0)
        with pytest.raises(ValueError):
            ResolverPopulation(skew=-1.0)

    def test_client_shares_sum_to_one(self):
        pop = ResolverPopulation(n_resolvers=500, skew=1.0)
        shares = pop.client_shares(np.random.default_rng(0))
        assert shares.shape == (500,)
        assert shares.sum() == pytest.approx(1.0)
        assert np.all(shares > 0)

    def test_skew_concentrates_load(self):
        rng = np.random.default_rng(0)
        flat = ResolverPopulation(n_resolvers=500, skew=0.0).client_shares(rng)
        skewed = ResolverPopulation(n_resolvers=500, skew=1.5).client_shares(
            np.random.default_rng(0)
        )
        assert skewed.max() > flat.max() * 3


class TestDispatcher:
    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedDnsDispatcher([])
        d = WeightedDnsDispatcher(["a", "b"])
        with pytest.raises(ValueError):
            d.dispatch_hour({"a": -1.0, "b": 2.0})
        with pytest.raises(ValueError):
            d.dispatch_hour({"a": 0.0, "b": 0.0})
        with pytest.raises(ValueError):
            d.dispatch_window({"a": 1.0}, window_s=0.0)

    def test_realized_fractions_sum_to_one(self):
        d = WeightedDnsDispatcher(["a", "b", "c"], seed=1)
        out = d.dispatch_hour({"a": 0.5, "b": 0.3, "c": 0.2})
        assert sum(out.values()) == pytest.approx(1.0)

    def test_converges_to_targets_with_many_resolvers(self):
        pop = ResolverPopulation(n_resolvers=20_000, skew=0.2, ttl_s=60.0)
        d = WeightedDnsDispatcher(["a", "b", "c"], pop, seed=2)
        target = {"a": 0.5, "b": 0.3, "c": 0.2}
        out = d.dispatch_hour(target)
        assert routing_error(out, target) < 0.02

    def test_granularity_error_with_few_resolvers(self):
        pop = ResolverPopulation(n_resolvers=20, skew=1.0)
        d = WeightedDnsDispatcher(["a", "b"], pop, seed=3)
        out = d.dispatch_hour({"a": 0.5, "b": 0.5})
        # Few, skewed resolvers: realized split visibly off target.
        assert routing_error(out, {"a": 0.5, "b": 0.5}) > 0.01

    def test_ttl_lag_carries_old_allocation(self):
        # Long TTL + short window: most resolvers keep the old answer.
        pop = ResolverPopulation(n_resolvers=5000, ttl_s=3600.0, skew=0.2)
        d = WeightedDnsDispatcher(["a", "b"], pop, seed=4)
        d.dispatch_hour({"a": 1.0, "b": 0.0})  # everyone cached on a
        out = d.dispatch_window({"a": 0.0, "b": 1.0}, window_s=360.0)
        # Only ~10% refreshed: site a still carries most traffic.
        assert out["a"] > 0.8

    def test_full_refresh_after_ttl(self):
        pop = ResolverPopulation(n_resolvers=5000, ttl_s=300.0, skew=0.2)
        d = WeightedDnsDispatcher(["a", "b"], pop, seed=5)
        d.dispatch_hour({"a": 1.0, "b": 0.0})
        out = d.dispatch_hour({"a": 0.0, "b": 1.0})  # hour >> TTL
        assert out["b"] == pytest.approx(1.0)

    def test_reproducible(self):
        t = {"a": 0.6, "b": 0.4}
        o1 = WeightedDnsDispatcher(["a", "b"], seed=9).dispatch_hour(t)
        o2 = WeightedDnsDispatcher(["a", "b"], seed=9).dispatch_hour(t)
        assert o1 == o2

    def test_unnormalized_targets_accepted(self):
        # Absolute rates work too: the dispatcher normalizes.
        pop = ResolverPopulation(n_resolvers=20_000, skew=0.2)
        d = WeightedDnsDispatcher(["a", "b"], pop, seed=6)
        out = d.dispatch_hour({"a": 3e6, "b": 1e6})
        assert out["a"] == pytest.approx(0.75, abs=0.02)


class TestRoutingError:
    def test_zero_when_exact(self):
        assert routing_error({"a": 0.5, "b": 0.5}, {"a": 0.5, "b": 0.5}) == 0.0

    def test_total_variation(self):
        assert routing_error({"a": 1.0, "b": 0.0}, {"a": 0.0, "b": 1.0}) == pytest.approx(1.0)
