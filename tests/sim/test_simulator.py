"""Integration tests: the simulator end to end on a reduced paper world.

These exercise the full stack — workload -> budgeter -> bill capper MILPs
-> local optimizers -> realized stepped prices — on short horizons so
the suite stays fast.
"""

import numpy as np
import pytest

from repro.core import CappingStep, PriceMode
from repro.experiments import paper_world
from repro.sim import Simulator


@pytest.fixture(scope="module")
def world():
    # Smaller fleet + short horizons keep each simulated hour cheap.
    return paper_world(max_servers=500_000, seed=3)


@pytest.fixture(scope="module")
def sim(world):
    return Simulator(world.sites, world.workload, world.mix)


@pytest.fixture(scope="module")
def uncapped(sim):
    return sim.run_capping(hours=48)


class TestUncapped:
    def test_everything_served(self, uncapped):
        assert uncapped.premium_throughput_fraction == pytest.approx(1.0, abs=1e-6)
        assert uncapped.ordinary_throughput_fraction == pytest.approx(1.0, abs=1e-6)

    def test_all_hours_cost_min(self, uncapped):
        assert uncapped.step_counts() == {CappingStep.COST_MIN: 48}

    def test_positive_costs(self, uncapped):
        assert np.all(uncapped.hourly_costs > 0)

    def test_predicted_close_to_realized(self, uncapped):
        # The affine decision model should track the stepped reality
        # closely in aggregate (margin keeps prices consistent).
        predicted = sum(h.predicted_cost for h in uncapped.hours)
        assert predicted == pytest.approx(uncapped.total_cost, rel=0.10)

    def test_no_hour_over_infinite_budget(self, uncapped):
        assert uncapped.hours_over_budget == 0

    def test_qos_met_every_hour(self, world, uncapped):
        # The realized G/G/m response time never exceeds the target —
        # the "lower bill is not bought with worse performance" claim.
        targets = {s.name: s.datacenter.target_response_s for s in world.sites}
        for h in uncapped.hours:
            for rec in h.sites:
                if rec.served_rps > 0:
                    assert rec.response_time_s <= targets[rec.site] + 1e-9
            assert h.worst_response_time_s <= max(targets.values()) + 1e-9


class TestBaselines:
    def test_min_only_serves_everything(self, sim):
        res = sim.run_min_only(PriceMode.AVG, hours=48)
        assert res.premium_throughput_fraction == pytest.approx(1.0, abs=1e-6)

    def test_capping_no_more_expensive(self, sim, uncapped):
        res = sim.run_min_only(PriceMode.AVG, hours=48)
        assert uncapped.total_cost <= res.total_cost * (1 + 1e-6)


class TestCapped:
    def test_tight_budget_caps_cost(self, world, sim, uncapped):
        month_scale = world.hours / 48
        budgeter = world.budgeter(uncapped.total_cost * month_scale * 0.6)
        res = sim.run_capping(budgeter, hours=48)
        # Premium always fully served.
        assert res.premium_throughput_fraction == pytest.approx(1.0, abs=1e-6)
        # Ordinary throttled at least somewhere.
        assert res.ordinary_throughput_fraction < 1.0
        # Cheaper than the uncapped run.
        assert res.total_cost < uncapped.total_cost

    def test_budget_recorded(self, world, sim, uncapped):
        budgeter = world.budgeter(uncapped.total_cost * 10)
        res = sim.run_capping(budgeter, hours=24)
        assert np.all(np.isfinite(res.hourly_budgets))

    def test_abundant_budget_equals_uncapped(self, world, sim, uncapped):
        month_scale = world.hours / 48
        budgeter = world.budgeter(uncapped.total_cost * month_scale * 3.0)
        res = sim.run_capping(budgeter, hours=48)
        assert res.total_cost == pytest.approx(uncapped.total_cost, rel=1e-6)
        assert res.ordinary_throughput_fraction == pytest.approx(1.0, abs=1e-6)


class TestValidation:
    def test_hours_bounds(self, sim):
        with pytest.raises(ValueError):
            sim.run_capping(hours=0)
        with pytest.raises(ValueError):
            sim.run_capping(hours=10**6)

    def test_horizon_beyond_budgeting_period_rejected(self, world, sim):
        # Regression: this used to crash mid-month with an opaque
        # RuntimeError("budgeting period exhausted") after simulating
        # (and paying for) month_hours of dispatch.
        from repro.core import Budgeter

        short = Budgeter(1e6, world.predictor(), month_hours=24)
        with pytest.raises(ValueError, match="exceeds the budgeter's remaining"):
            sim.run_capping(short, hours=48)

    def test_partially_spent_budgeter_counts_remaining_hours(self, world, sim):
        budgeter = world.budgeter(1e6)
        for _ in range(budgeter.month_hours - 10):
            budgeter.hourly_budget()
            budgeter.record_spend(0.0)
        with pytest.raises(ValueError, match="remaining 10 budgeted hours"):
            sim.run_capping(budgeter, hours=48)

    def test_workload_longer_than_background_rejected(self, world):
        from repro.core import Site
        from repro.sim import Simulator
        from repro.workload import Trace

        short_sites = [
            Site(s.datacenter, s.policy, s.background_mw[:10]) for s in world.sites
        ]
        with pytest.raises(ValueError, match="exceeds background"):
            Simulator(short_sites, world.workload, world.mix)

    def test_empty_sites_rejected(self, world):
        with pytest.raises(ValueError):
            Simulator([], world.workload, world.mix)
