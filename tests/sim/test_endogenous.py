"""Engine/serve integration of closed-loop endogenous pricing.

The acceptance criteria of the closed-loop PR, as tests:

* the damped fixed point converges every hour of a paper-world month
  within the iteration budget;
* with the feature off, runs are bit-identical to the plain pipeline
  (field for field, including after an endogenous run on the same
  world);
* hours that fall back settle exactly on the exogenous path;
* the sweep metric exposes the scenario axes (N-1 outage, renewable
  background, multi-operator competition) and competition moves prices.
"""

import pytest

from repro.experiments import paper_world
from repro.powermarket import ClosedLoopConfig
from repro.service import ControlLoop, Tick
from repro.sim import Engine, closedloop_metric, run_sweep, sweep_grid
from repro.sim.endogenous import EndogenousPriceMiddleware, EndogenousPrices
from repro.telemetry import Telemetry, use_telemetry

HOURS = 24


def _engine(seed=7):
    world = paper_world(1, seed=seed)
    return world, Engine(world.sites, world.workload, world.mix)


def _dicts(result):
    return [h.to_dict() for h in result.hours]


@pytest.fixture(scope="module")
def baseline():
    _, engine = _engine()
    return _dicts(engine.run("capping", hours=HOURS))


class TestEngineIntegration:
    def test_paper_world_converges_every_hour(self, baseline):
        tel = Telemetry()
        _, engine = _engine()
        mw = EndogenousPriceMiddleware.for_engine(engine, grid="pjm5bus")
        with use_telemetry(tel):
            result = engine.run("capping", hours=HOURS, middleware=[mw])
        converged = tel.registry.get("closedloop.converged").value
        iterations = tel.registry.get("closedloop.iterations").value
        assert converged == HOURS
        assert tel.registry.get("closedloop.fallback") is None
        # Convergence needs >= 2 OPF clears (the check compares
        # successive LMP vectors) and must stay within the budget.
        cfg = mw.runtime.pricer.config
        assert 2 * HOURS <= iterations <= cfg.max_iterations * HOURS
        # The hour is billed at the endogenous prices, which differ
        # from the hand-transcribed paper curves somewhere in the month.
        assert _dicts(result) != baseline

    def test_disabled_is_bit_identical(self, baseline):
        _, engine = _engine()
        again = engine.run("capping", hours=HOURS, middleware=[])
        assert _dicts(again) == baseline

    def test_no_leakage_after_endogenous_run(self, baseline):
        _, engine = _engine()
        mw = EndogenousPriceMiddleware.for_engine(engine)
        with use_telemetry(Telemetry()):
            engine.run("capping", hours=6, middleware=[mw])
        # The override must not survive the run: a plain run on the
        # same engine reproduces the baseline exactly.
        assert engine.policy_override is None
        assert _dicts(engine.run("capping", hours=HOURS)) == baseline

    def test_fallback_hours_settle_exogenously(self, baseline):
        # K=50 symmetric operators push the nodal loads past total
        # generation: every hour's OPF is infeasible, every hour falls
        # back — and the run is bit-identical to the exogenous one.
        tel = Telemetry()
        world, engine = _engine()
        mw = EndogenousPriceMiddleware.for_engine(
            engine,
            grid="two-zone",
            site_buses={s.name: "Y" for s in world.sites},
            config=ClosedLoopConfig(operators=50),
        )
        with use_telemetry(tel):
            result = engine.run("capping", hours=HOURS, middleware=[mw])
        assert tel.registry.get("closedloop.fallback").value == HOURS
        assert tel.registry.get("closedloop.converged") is None
        assert engine.policy_override is None
        assert _dicts(result) == baseline


class TestServeIntegration:
    def test_control_loop_applies_and_clears(self):
        world, engine = _engine()
        runtime = EndogenousPrices(engine, grid="pjm5bus")
        loop = ControlLoop(
            engine,
            "capping",
            budgeter=world.budgeter(2_000_000.0),
            hours=2,
            endogenous=runtime,
        )
        with use_telemetry(Telemetry()):
            events = loop.on_tick(
                Tick(seq=0, time_s=0.0, kind="lambda", value=100.0)
            )
        assert events
        assert runtime.last is not None and runtime.last.converged
        assert engine.policy_override is None

    def test_exogenous_loop_unaffected(self):
        world, engine = _engine()
        loop = ControlLoop(
            engine, "capping", budgeter=world.budgeter(2_000_000.0), hours=2
        )
        assert loop.endogenous is None
        events = loop.on_tick(
            Tick(seq=0, time_s=0.0, kind="lambda", value=100.0)
        )
        assert events


class TestSweepMetric:
    def test_scenario_axes(self):
        grid = sweep_grid(
            hours=[6],
            line_outage=[None, "D-E"],
            background=["reco", "renewable"],
        )
        with use_telemetry(Telemetry()) as tel:
            out = run_sweep(closedloop_metric, grid)
        assert len(out) == 4
        for summary in out:
            assert summary["hours"] == 6
            assert summary["convergence_rate"] == pytest.approx(1.0)
            assert summary["fallback_hours"] == 0.0
            assert summary["mean_iterations"] >= 2.0
        # Counters from the per-scenario bundles merge into the ambient.
        merged = tel.registry.get("closedloop.iterations")
        assert merged is not None and merged.value >= 2 * 6 * 4

    def test_competition_raises_cost(self):
        with use_telemetry(Telemetry()):
            solo = closedloop_metric({"hours": 6, "operators": 1})
        with use_telemetry(Telemetry()):
            crowd = closedloop_metric({"hours": 6, "operators": 8})
        assert crowd["total_cost"] > solo["total_cost"] * 1.5

    def test_renewable_background_changes_month(self):
        with use_telemetry(Telemetry()):
            reco = closedloop_metric({"hours": 6, "background": "reco"})
        with use_telemetry(Telemetry()):
            duck = closedloop_metric({"hours": 6, "background": "renewable"})
        assert reco["convergence_rate"] == duck["convergence_rate"] == 1.0
