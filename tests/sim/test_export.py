"""Tests for result CSV export and pricing-policy serialization."""

import csv
import json

import numpy as np
import pytest

from repro.powermarket import SteppedPricingPolicy
from repro.sim import SimulationResult

from .test_records import make_hour


class TestResultCsv:
    def test_round_trippable_columns(self, tmp_path):
        res = SimulationResult("t")
        for i in range(5):
            res.append(make_hour(hour=i, realized=100.0 + i, budget=200.0))
        path = res.to_csv(tmp_path / "run.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 5
        assert rows[3]["realized_cost"] == repr(103.0)
        assert rows[0]["step"] == "cost-min"
        assert rows[0]["DC1_power_mw"] == repr(5.0)
        assert float(rows[0]["budget"]) == 200.0

    def test_infinite_budget_written_empty(self, tmp_path):
        res = SimulationResult("t")
        res.append(make_hour())
        path = res.to_csv(tmp_path / "run.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["budget"] == ""

    def test_empty_result_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SimulationResult("empty").to_csv(tmp_path / "x.csv")

    def test_real_simulation_exports(self, tmp_path):
        from repro.core import Site
        from repro.sim import Simulator
        from repro.workload import CustomerMix, Trace
        from tests.sim.test_simulator_properties import tiny_site

        site = tiny_site()
        wl = Trace(np.full(4, 2e6))
        res = Simulator([site], wl, CustomerMix()).run_capping(hours=4)
        path = res.to_csv(tmp_path / "sim.csv")
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 4
        total = sum(float(r["realized_cost"]) for r in rows)
        assert total == pytest.approx(res.total_cost)


class TestPolicySerialization:
    def test_round_trip(self):
        pol = SteppedPricingPolicy("B", (100.0, 200.0), (10.0, 20.0, 30.0))
        again = SteppedPricingPolicy.from_dict(pol.to_dict())
        assert again == pol

    def test_json_round_trip(self):
        pol = SteppedPricingPolicy("B", (100.0,), (10.0, 20.0))
        blob = json.dumps(pol.to_dict())
        again = SteppedPricingPolicy.from_dict(json.loads(blob))
        assert again.price(150.0) == 20.0

    def test_from_dict_validates(self):
        with pytest.raises(ValueError):
            SteppedPricingPolicy.from_dict({"name": "x", "prices": [1.0]})
        with pytest.raises(ValueError):
            SteppedPricingPolicy.from_dict(
                {"name": "x", "breakpoints": [5.0, 1.0], "prices": [1, 2, 3]}
            )
