"""Property and edge-case tests for the simulator's invariants."""

import numpy as np
import pytest

from repro.core import Site
from repro.datacenter import (
    CoolingModel,
    DataCenter,
    ServerSpec,
    SwitchPowers,
)
from repro.powermarket import SteppedPricingPolicy, flat_policy
from repro.sim import Simulator
from repro.workload import CustomerMix, Trace


def tiny_site(name="DC", max_servers=20_000, power_cap=float("inf"), seed=0):
    rng = np.random.default_rng(seed)
    dc = DataCenter(
        name=name,
        servers=ServerSpec.from_operating_point(f"{name}-srv", 90.0, 500.0),
        max_servers=max_servers,
        switch_powers=SwitchPowers(184.0, 184.0, 240.0),
        cooling=CoolingModel(1.9),
        target_response_s=0.5,
        power_cap_mw=power_cap,
    )
    policy = SteppedPricingPolicy(name, (1.0, 2.0), (10.0, 20.0, 40.0))
    bg = rng.uniform(0.3, 0.9, size=48)
    return Site(dc, policy, bg)


def run_tiny(workload_rates, **site_kwargs):
    site = tiny_site(**site_kwargs)
    wl = Trace(np.asarray(workload_rates, dtype=float))
    sim = Simulator([site], wl, CustomerMix())
    return sim.run_capping(hours=len(workload_rates))


class TestInvariants:
    def test_served_never_exceeds_demand(self):
        res = run_tiny([1e6, 3e6, 5e6, 2e6])
        for h in res.hours:
            assert h.served_total_rps <= h.demand_total_rps * (1 + 1e-9)

    def test_costs_nonnegative_and_finite(self):
        res = run_tiny([0.0, 1e6, 7e6, 0.0])
        assert np.all(res.hourly_costs >= 0.0)
        assert np.all(np.isfinite(res.hourly_costs))

    def test_zero_demand_hours_cost_nothing(self):
        res = run_tiny([0.0, 0.0])
        assert res.total_cost == 0.0
        assert res.hourly_power_mw.tolist() == [0.0, 0.0]

    def test_demand_beyond_capacity_clamped_not_crashed(self):
        # A single small site offered far more than it can serve.
        res = run_tiny([1e9, 1e9], max_servers=1_000)
        assert res.premium_throughput_fraction <= 1.0
        for h in res.hours:
            assert h.served_total_rps < 1e9

    def test_power_cap_respected_every_hour(self):
        res = run_tiny([5e6, 6e6, 7e6], power_cap=0.8)
        assert np.all(res.hourly_power_mw <= 0.8 + 1e-6)

    def test_flat_policy_cost_proportional_to_energy(self):
        site = tiny_site()
        site = Site(site.datacenter, flat_policy("DC", 12.0), site.background_mw)
        wl = Trace(np.array([2e6, 4e6]))
        res = Simulator([site], wl, CustomerMix()).run_capping(hours=2)
        for h in res.hours:
            assert h.realized_cost == pytest.approx(12.0 * h.total_power_mw, rel=1e-9)

    def test_records_are_per_site_complete(self):
        site_a = tiny_site("A", seed=1)
        site_b = tiny_site("B", seed=2)
        wl = Trace(np.full(3, 2e6))
        res = Simulator([site_a, site_b], wl, CustomerMix()).run_capping(hours=3)
        for h in res.hours:
            assert {rec.site for rec in h.sites} == {"A", "B"}
            assert h.realized_cost == pytest.approx(
                sum(rec.cost for rec in h.sites)
            )

    def test_monotone_workload_monotone_power(self):
        rates = [1e6, 2e6, 4e6, 8e6]
        res = run_tiny(rates)
        powers = res.hourly_power_mw
        # Background varies, but power is driven by load on a single site.
        assert powers.tolist() == sorted(powers.tolist())


class TestBaselineInvariants:
    def test_min_only_capping_cost_ordering(self):
        from repro.core import PriceMode

        site = tiny_site(seed=3)
        wl = Trace(np.full(6, 5e6))
        sim = Simulator([site], wl, CustomerMix())
        capping = sim.run_capping(hours=6)
        for mode in (PriceMode.AVG, PriceMode.LOW, PriceMode.CURRENT):
            baseline = sim.run_min_only(mode, hours=6)
            # With one site there is no routing freedom: realized bills
            # coincide — the guarantee is capping is never *worse*.
            assert capping.total_cost <= baseline.total_cost * (1 + 1e-9)
