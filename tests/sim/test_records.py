"""Unit tests for simulation records and aggregates."""

import numpy as np
import pytest

from repro.core import CappingStep
from repro.sim import HourRecord, SimulationResult, SiteRecord


def make_hour(
    hour=0,
    step=CappingStep.COST_MIN,
    budget=float("inf"),
    realized=100.0,
    served_p=80.0,
    served_o=20.0,
    demand_p=80.0,
    demand_o=20.0,
):
    site = SiteRecord("DC1", 100.0, 100.0, 5.0, 10.0, realized, 1000)
    return HourRecord(
        hour=hour,
        step=step,
        budget=budget,
        predicted_cost=realized,
        realized_cost=realized,
        demand_premium_rps=demand_p,
        demand_ordinary_rps=demand_o,
        served_premium_rps=served_p,
        served_ordinary_rps=served_o,
        sites=(site,),
    )


class TestHourRecord:
    def test_totals(self):
        h = make_hour()
        assert h.served_total_rps == 100.0
        assert h.total_power_mw == 5.0

    def test_over_budget(self):
        assert make_hour(budget=50.0, realized=100.0).over_budget
        assert not make_hour(budget=100.0, realized=100.0).over_budget
        assert not make_hour().over_budget  # inf budget


class TestSimulationResult:
    def _result(self, n=10):
        r = SimulationResult("test")
        for i in range(n):
            r.append(make_hour(hour=i, realized=100.0 + i))
        return r

    def test_series_shapes(self):
        r = self._result(5)
        assert len(r) == 5
        assert r.hourly_costs.tolist() == [100.0, 101.0, 102.0, 103.0, 104.0]
        assert r.total_cost == pytest.approx(510.0)

    def test_throughput_fractions(self):
        r = SimulationResult("t")
        r.append(make_hour(served_p=80.0, served_o=10.0))
        r.append(make_hour(served_p=40.0, served_o=0.0, demand_p=80.0))
        assert r.premium_throughput_fraction == pytest.approx(120.0 / 160.0)
        assert r.ordinary_throughput_fraction == pytest.approx(10.0 / 40.0)

    def test_throughput_with_zero_demand(self):
        r = SimulationResult("t")
        r.append(make_hour(demand_p=0.0, demand_o=0.0, served_p=0.0, served_o=0.0))
        assert r.premium_throughput_fraction == 1.0
        assert r.ordinary_throughput_fraction == 1.0

    def test_hours_over_budget(self):
        r = SimulationResult("t")
        r.append(make_hour(budget=50.0))
        r.append(make_hour(budget=500.0))
        assert r.hours_over_budget == 1

    def test_budget_utilization(self):
        r = self._result(5)  # costs 100..104 -> 510 total
        assert r.budget_utilization(1020.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            r.budget_utilization(0.0)

    def test_step_counts(self):
        r = SimulationResult("t")
        r.append(make_hour(step=CappingStep.COST_MIN))
        r.append(make_hour(step=CappingStep.PREMIUM_ONLY))
        r.append(make_hour(step=CappingStep.COST_MIN))
        counts = r.step_counts()
        assert counts[CappingStep.COST_MIN] == 2
        assert counts[CappingStep.PREMIUM_ONLY] == 1

    def test_summary_keys(self):
        s = self._result().summary()
        assert set(s) == {
            "total_cost",
            "mean_hourly_cost",
            "premium_throughput",
            "ordinary_throughput",
            "hours_over_budget",
            "degraded_hours",
            "peak_power_mw",
        }


class TestRecordVersioning:
    def test_to_dict_stamps_current_version(self):
        from repro.sim.records import RECORD_VERSION

        d = make_hour().to_dict()
        assert d["v"] == RECORD_VERSION

    def test_round_trip_is_field_identical(self):
        rec = make_hour(hour=3, budget=250.0)
        assert HourRecord.from_dict(rec.to_dict()) == rec

    def test_future_version_rejected_with_clear_error(self):
        d = make_hour().to_dict()
        d["v"] = 99
        with pytest.raises(ValueError, match="version"):
            HourRecord.from_dict(d)

    def test_missing_version_rejected(self):
        d = make_hour().to_dict()
        del d["v"]
        with pytest.raises(ValueError, match="version"):
            HourRecord.from_dict(d)

    def test_malformed_site_record_rejected(self):
        d = make_hour().to_dict()
        d["sites"][0]["bogus_field"] = 1.0
        with pytest.raises(ValueError, match="site record"):
            HourRecord.from_dict(d)
