"""``Simulator(batched=True)`` must be bit-identical to the scalar path.

The batched realize loop swaps the per-site ``LocalOptimizer`` /
``policy.price`` calls for :class:`SiteBank` / :class:`CurveBank`
evaluations. It is the default, so any drift — a reordered float
addition, a different step-boundary convention — would silently change
every published number. These tests replay identical worlds down both
paths and compare every record field exactly, including a power-capped
world (the scalar shedding fallback) and a weather-cooling world (the
per-hour ``coe`` override).
"""

import dataclasses

from repro.core import PriceMode
from repro.datacenter import synthetic_coe_trace
from repro.experiments.paper_setup import paper_world
from repro.sim import Simulator


def run_pair(world, hours, strategy="capping", budget_fraction=None):
    results = []
    for batched in (True, False):
        sim = Simulator(world.sites, world.workload, world.mix, batched=batched)
        if strategy == "capping":
            budgeter = None
            if budget_fraction is not None:
                anchor = Simulator(
                    world.sites, world.workload, world.mix
                ).run_capping(hours=hours)
                monthly = (
                    anchor.total_cost * world.hours / hours * budget_fraction
                )
                budgeter = world.budgeter(monthly)
            results.append(sim.run_capping(budgeter, hours=hours))
        else:
            results.append(sim.run_min_only(strategy, hours=hours))
    return results


def assert_identical(a, b):
    assert len(a) == len(b)
    assert a.total_cost == b.total_cost
    for ha, hb in zip(a.hours, b.hours):
        assert ha.realized_cost == hb.realized_cost
        assert ha.predicted_cost == hb.predicted_cost
        assert ha.served_premium_rps == hb.served_premium_rps
        assert ha.served_ordinary_rps == hb.served_ordinary_rps
        for sa, sb in zip(ha.sites, hb.sites):
            assert sa.site == sb.site
            assert sa.dispatched_rps == sb.dispatched_rps
            assert sa.served_rps == sb.served_rps
            assert sa.power_mw == sb.power_mw
            assert sa.price == sb.price
            assert sa.cost == sb.cost
            assert sa.n_servers == sb.n_servers
            assert sa.response_time_s == sb.response_time_s


class TestBitIdentity:
    def test_capping_uncapped(self):
        world = paper_world()
        batched, scalar = run_pair(world, 48)
        assert_identical(batched, scalar)

    def test_capping_with_budget(self):
        world = paper_world()
        batched, scalar = run_pair(world, 48, budget_fraction=0.85)
        assert_identical(batched, scalar)

    def test_min_only_modes(self):
        world = paper_world()
        for mode in (PriceMode.AVG, PriceMode.LOW, PriceMode.CURRENT):
            batched, scalar = run_pair(world, 36, strategy=mode)
            assert_identical(batched, scalar)

    def test_power_capped_world_exercises_scalar_fallback(self):
        # A tight site cap forces shedding: the batched path must defer
        # to the scalar LocalOptimizer for the capped hours and still
        # match bit for bit.
        world = paper_world(power_cap_mw=8.0)
        batched, scalar = run_pair(world, 36)
        assert_identical(batched, scalar)
        assert any(
            s.dispatched_rps > s.served_rps
            for h in batched.hours
            for s in h.sites
        )

    def test_weather_cooling_world(self):
        # Per-hour cooling-efficiency traces flow through the ``coe``
        # override of the batched provisioning.
        world = paper_world(seed=3)
        sites = [
            dataclasses.replace(
                site,
                coe_trace=synthetic_coe_trace(
                    len(site.background_mw),
                    site.datacenter.cooling.coe,
                    seed=10 + i,
                ),
            )
            for i, site in enumerate(world.sites)
        ]
        results = []
        for batched in (True, False):
            sim = Simulator(sites, world.workload, world.mix, batched=batched)
            results.append(sim.run_capping(hours=36))
        assert_identical(*results)


class TestFallbackWiring:
    def test_heterogeneous_fleet_disables_the_bank(self):
        world = paper_world(heterogeneous=True)
        sim = Simulator(world.sites, world.workload, world.mix)
        assert sim._bank is None and sim._curves is None
        # And the run still works on the scalar path.
        res = sim.run_capping(hours=6)
        assert res.total_cost > 0

    def test_batched_false_never_builds_banks(self):
        world = paper_world()
        sim = Simulator(world.sites, world.workload, world.mix, batched=False)
        assert sim._bank is None and sim._curves is None
