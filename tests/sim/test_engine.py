"""Tests for the strategy engine and registry (`repro.sim.engine`).

The engine is *the* hourly control loop now: every entry point routes
through it, so these tests pin (a) the registry contract, (b) that the
legacy `Simulator.run_*` wrappers are bit-identical to direct engine
runs, and (c) that user-registered strategies are first-class citizens
of the pipeline.
"""

import pytest

from repro.core import BillCapper, CappingStep, HourlyDecision, PriceMode
from repro.experiments import paper_world
from repro.sim import (
    Engine,
    Simulator,
    available_strategies,
    compare_strategies,
    get_strategy,
    register_strategy,
)
from repro.sim.registry import _FACTORIES
from repro.sim.strategies import CappingStrategy, MinOnlyStrategy

HOURS = 12


@pytest.fixture(scope="module")
def world():
    return paper_world(max_servers=500_000, seed=3)


@pytest.fixture(scope="module")
def engine(world):
    return Engine(world.sites, world.workload, world.mix)


def records_equal(a, b):
    """Field-for-field equality of two SimulationResults."""
    return len(a.hours) == len(b.hours) and all(
        x.to_dict() == y.to_dict() for x, y in zip(a.hours, b.hours)
    )


class TestRegistry:
    def test_builtins_registered(self):
        names = available_strategies()
        assert set(names) >= {
            "capping",
            "min-only-avg",
            "min-only-low",
            "min-only-current",
            "hierarchical",
        }
        assert names == tuple(sorted(names))

    def test_fresh_instance_per_get(self):
        assert get_strategy("capping") is not get_strategy("capping")

    def test_unknown_name_lists_options(self):
        with pytest.raises(ValueError, match="unknown strategy 'nope'"):
            get_strategy("nope")
        with pytest.raises(ValueError, match="min-only-avg"):
            get_strategy("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy("capping", CappingStrategy)

    def test_replace_allows_override(self):
        original = _FACTORIES["capping"]
        try:
            register_strategy("capping", CappingStrategy, replace=True)
        finally:
            _FACTORIES["capping"] = original

    def test_factory_name_mismatch_rejected(self):
        register_strategy("misnamed", CappingStrategy)
        try:
            with pytest.raises(ValueError, match="named 'capping'"):
                get_strategy("misnamed")
        finally:
            del _FACTORIES["misnamed"]

    def test_invalid_registrations(self):
        with pytest.raises(ValueError, match="non-empty string"):
            register_strategy("", CappingStrategy)
        with pytest.raises(TypeError, match="callable"):
            register_strategy("not-callable", object())


class TestWrapperEquivalence:
    """Simulator.run_* are thin wrappers: results match engine runs exactly."""

    def test_run_capping_uncapped(self, world, engine):
        sim = Simulator(world.sites, world.workload, world.mix)
        assert records_equal(
            sim.run_capping(hours=HOURS), engine.run("capping", hours=HOURS)
        )

    def test_run_capping_budgeted(self, world, engine):
        anchor = engine.run("capping", hours=HOURS)
        monthly = anchor.total_cost * world.hours / HOURS * 0.7
        sim = Simulator(world.sites, world.workload, world.mix)
        via_sim = sim.run_capping(world.budgeter(monthly), hours=HOURS)
        direct = engine.run(
            "capping", budgeter=world.budgeter(monthly), hours=HOURS
        )
        assert records_equal(via_sim, direct)
        assert via_sim.name == direct.name == "cost-capping"

    def test_run_min_only_all_modes(self, world, engine):
        sim = Simulator(world.sites, world.workload, world.mix)
        for mode in PriceMode:
            via_sim = sim.run_min_only(mode, hours=HOURS)
            direct = engine.run(f"min-only-{mode.value}", hours=HOURS)
            assert records_equal(via_sim, direct)
            assert via_sim.name == f"min-only-{mode.value}"

    def test_strategy_instance_and_name_agree(self, engine):
        by_name = engine.run("min-only-avg", hours=HOURS)
        by_instance = engine.run(
            MinOnlyStrategy(mode=PriceMode.AVG), hours=HOURS
        )
        assert records_equal(by_name, by_instance)

    def test_caller_capper_not_mutated(self, world, engine):
        """A caller-supplied BillCapper comes back untouched (no
        `capper.degradation = ...` leak from the run)."""
        from repro.resilience import DegradationPolicy, FaultInjector, FaultSpec

        capper = BillCapper()
        assert capper.degradation is None
        engine.run(
            CappingStrategy(capper=capper),
            hours=6,
            faults=FaultInjector(FaultSpec(solver_error=1.0)),
            degradation=DegradationPolicy.PROPORTIONAL,
        )
        assert capper.degradation is None
        assert capper._last_good is None


class TestValidation:
    def test_price_taker_rejects_budgeter(self, world, engine):
        with pytest.raises(ValueError, match="does not consume a budget"):
            engine.run(
                "min-only-avg",
                budgeter=world.budgeter(1e6),
                hours=2,
            )

    def test_hours_out_of_range(self, engine):
        with pytest.raises(ValueError, match="hours must be in"):
            engine.run("capping", hours=0)
        with pytest.raises(ValueError, match="hours must be in"):
            engine.run("capping", hours=10**6)

    def test_empty_sites_rejected(self, world):
        with pytest.raises(ValueError, match="at least one site"):
            Engine([], world.workload, world.mix)


class TestHierarchical:
    def test_runs_through_engine(self, world, engine):
        anchor = engine.run("capping", hours=2)
        monthly = anchor.total_cost * world.hours / 2 * 0.8
        res = engine.run(
            "hierarchical", budgeter=world.budgeter(monthly), hours=2
        )
        assert len(res.hours) == 2
        assert res.name == "hierarchical"
        assert res.premium_throughput_fraction == pytest.approx(1.0, abs=1e-6)


class GreedyCheapestSite:
    """Toy custom strategy: everything to the hour's cheapest avg price."""

    name = "greedy-cheapest"
    wants_budget = False

    def prepare(self, world):
        pass

    def decide(self, ctx):
        from repro.core import Allocation

        cheapest = min(
            ctx.site_hours, key=lambda sh: sh.policy.prices[0]
        )
        served = min(ctx.total_rps, cheapest.max_rate_rps)
        return HourlyDecision(
            step=CappingStep.BASELINE,
            allocations=tuple(
                Allocation(
                    site=sh.name,
                    rate_rps=served if sh.name == cheapest.name else 0.0,
                    predicted_power_mw=0.0,
                    predicted_price=0.0,
                    predicted_cost=0.0,
                )
                for sh in ctx.site_hours
            ),
            served_premium_rps=ctx.demand_premium_rps,
            served_ordinary_rps=max(
                0.0, served - ctx.demand_premium_rps
            ),
            demand_premium_rps=ctx.demand_premium_rps,
            demand_ordinary_rps=ctx.demand_ordinary_rps,
            predicted_cost=0.0,
        )


class TestCustomStrategy:
    @pytest.fixture(autouse=True)
    def _registered(self):
        register_strategy("greedy-cheapest", GreedyCheapestSite, replace=True)
        yield
        _FACTORIES.pop("greedy-cheapest", None)

    def test_listed_and_resolvable(self):
        assert "greedy-cheapest" in available_strategies()
        assert isinstance(get_strategy("greedy-cheapest"), GreedyCheapestSite)

    def test_runs_through_engine(self, engine):
        res = engine.run("greedy-cheapest", hours=4)
        assert len(res.hours) == 4
        assert res.name == "greedy-cheapest"
        # Single-site dispatch every hour.
        for h in res.hours:
            assert sum(1 for s in h.sites if s.dispatched_rps > 0) <= 1

    def test_joins_compare(self):
        res = compare_strategies(
            strategies=("capping", "greedy-cheapest"), hours=2
        )
        assert list(res) == ["capping", "greedy-cheapest"]
        assert len(res["greedy-cheapest"].hours) == 2
